//! The TTL-control-plane headline claims, enforced end to end.
//!
//! The `ablation_ttl` sweep is only worth shipping if it is non-vacuous:
//! the adaptive TTL plane must hold the MRC planner's hit ratio on the
//! diurnal day (the regime capacity resizing was built for), must win
//! dollars outright on at least one of the regimes MRC is blind to
//! (working-set churn, invalidation storms), and per-tenant controllers
//! must actually isolate a quiet tenant from a neighbor's storm. These
//! tests run the same cells as the bin and the golden suite, at golden
//! budget, through the parallel sweep runner.

use bench::sweep::SweepRunner;
use bench::ttl::{
    cell_dollars, experiment, isolation_experiment, run_sweep, tenant_hit, Plane, Schedule,
    TtlSpec,
};
use dcache::experiment::run_kv_experiment;
use dcache::ArchKind;

const WARMUP: u64 = 8_000;
const MEASURED: u64 = 12_000;

fn triplet(arch: ArchKind, schedule: Schedule) -> Vec<TtlSpec> {
    Plane::ALL
        .iter()
        .map(|&plane| TtlSpec {
            arch,
            schedule,
            plane,
        })
        .collect()
}

#[test]
fn ttl_plane_matches_mrc_hits_on_the_diurnal_day() {
    let specs = triplet(ArchKind::Remote, Schedule::Diurnal);
    let r = run_sweep(&SweepRunner::from_env(), &specs, WARMUP, MEASURED);
    let (mrc, ttl) = (&r[1], &r[2]);
    assert!(ttl.ttl_decisions > 0, "{ttl:?}");
    // One-sided: expiry must not cost more than 2 points against the
    // capacity planner (beating it, as resident-byte billing lets it run
    // the full configured cache, is fine).
    assert!(
        mrc.cache_hit_ratio - ttl.cache_hit_ratio <= 0.02,
        "TTL plane must stay within 2 points of the MRC planner: mrc {} vs ttl {}",
        mrc.cache_hit_ratio,
        ttl.cache_hit_ratio
    );
}

#[test]
fn ttl_plane_wins_dollars_under_churn_or_storms() {
    // The regimes the MRC planner is blind to: it sizes capacity off reuse
    // distances, so ghost entries from a rotated hot set (churn) or an
    // invalidation burst (storm) still occupy billed DRAM. Expiry reclaims
    // them. The TTL plane must be strictly cheaper than BOTH the static
    // fleet and the MRC plane on at least one of these cells.
    let mut wins = 0;
    for schedule in [Schedule::Churn, Schedule::Storm] {
        let specs = triplet(ArchKind::Remote, schedule);
        let r = run_sweep(&SweepRunner::from_env(), &specs, WARMUP, MEASURED);
        let statics = cell_dollars(Plane::Static, &r[0]);
        let mrc = cell_dollars(Plane::Mrc, &r[1]);
        let ttl = cell_dollars(Plane::Ttl, &r[2]);
        assert!(r[2].expired_entries > 0, "{}: nothing expired", schedule.label());
        if ttl < mrc && ttl < statics {
            wins += 1;
        }
        println!(
            "{}: static ${statics:.2} mrc ${mrc:.2} ttl ${ttl:.2}",
            schedule.label()
        );
    }
    assert!(
        wins > 0,
        "TTL must beat static-peak AND MRC-elastic on at least one churn/storm cell"
    );
}

#[test]
fn per_tenant_ttl_isolates_a_neighbors_storm() {
    let quiet = run_kv_experiment(&isolation_experiment(false, WARMUP, MEASURED)).unwrap();
    let stormy = run_kv_experiment(&isolation_experiment(true, WARMUP, MEASURED)).unwrap();
    // The storm really happened to the aggressor...
    let agg_writes = |r: &dcache::ExperimentReport| {
        let t = r.tenants.iter().find(|t| t.label == "aggressor").unwrap();
        t.writes as f64 / t.requests as f64
    };
    assert!(
        agg_writes(&stormy) > agg_writes(&quiet) + 0.05,
        "storm write share {} vs quiet {}",
        agg_writes(&stormy),
        agg_writes(&quiet)
    );
    // ...and the victim barely noticed: the stated isolation bound.
    let moved = (tenant_hit(&stormy, "victim") - tenant_hit(&quiet, "victim")).abs();
    assert!(
        moved <= 0.02,
        "a neighbor's storm moved the victim's hit ratio by {moved} (> 0.02): quiet {} vs storm {}",
        tenant_hit(&quiet, "victim"),
        tenant_hit(&stormy, "victim")
    );
}

#[test]
fn ttl_cells_expose_the_control_loop_in_the_report() {
    let spec = TtlSpec {
        arch: ArchKind::Linked,
        schedule: Schedule::Churn,
        plane: Plane::Ttl,
    };
    let r = run_kv_experiment(&experiment(&spec, WARMUP, MEASURED)).unwrap();
    assert!(r.ttl_decisions > 0);
    assert!(r.ttl_changes > 0);
    assert!(r.expired_entries > 0);
    assert!(r.expiry_sweep_cpu_us > 0);
    assert!(r.ttl_mean_resident_bytes > 0.0);
    assert_eq!(r.tenants.len(), 1, "the sweep's single service tenant");
}
