//! Crash-replay determinism: the durability layer's headline invariant,
//! enforced exhaustively.
//!
//! A deterministic (splitmix64-driven) op sequence runs against a durable
//! cluster, and a storage pod is crashed and recovered at **every** event
//! boundary — after each committed op. At each boundary the recovered
//! cluster must serve exactly the committed prefix: acked writes are never
//! lost (re-replicated from the quorum when the local fsync tail was
//! discarded), deletes stay deleted, and the shadow model matches byte for
//! byte. A second pass re-runs the same schedule and must land on
//! identical durability counters and identical state — and the recovery
//! ablation figure must be byte-identical whether the sweep runs on one
//! worker or four.

use std::collections::BTreeMap;

use bench::golden::ablation_recovery;
use bench::sweep::SweepRunner;
use simnet::{SimDuration, SimTime};
use storekit::schema::ColumnType;
use storekit::value::Datum;
use storekit::{
    Catalog, ClusterConfig, ColumnDef, DurabilityConfig, DurabilityStats, FsyncPolicy, SqlCluster,
    TableSchema,
};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add(
        TableSchema::new(
            "kv",
            vec![
                ColumnDef::new("k", ColumnType::Int),
                ColumnDef::new("v", ColumnType::Bytes),
            ],
            "k",
            &[],
        )
        .unwrap(),
    );
    c
}

fn durable_cluster() -> SqlCluster {
    SqlCluster::new(
        catalog(),
        ClusterConfig {
            durability: DurabilityConfig {
                enabled: true,
                // Group commit leaves an un-fsynced tail at most crash
                // points, so recovery exercises quorum re-replication, and
                // a tight snapshot cadence keeps WAL replay bounded.
                fsync: FsyncPolicy::Group(4),
                snapshot_every_entries: 256,
            },
            ..ClusterConfig::default()
        },
    )
}

fn t(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(n)
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Put(i64, u8),
    Del(i64),
}

const KEYS: u64 = 64;

/// The deterministic op schedule: ~90% upserts, ~10% deletes over a small
/// hot key space so updates and deletes genuinely recur.
fn schedule(ops: usize) -> Vec<Op> {
    let mut s = 0x0D15_EA5E_u64;
    (0..ops)
        .map(|_| {
            let r = splitmix64(&mut s);
            let key = (r % KEYS) as i64;
            if r % 10 == 9 {
                Op::Del(key)
            } else {
                Op::Put(key, (r >> 32) as u8)
            }
        })
        .collect()
}

fn apply(c: &mut SqlCluster, model: &mut BTreeMap<i64, Vec<u8>>, op: Op, now: SimTime) {
    match op {
        Op::Put(k, b) => {
            let v = vec![b; 16];
            if model.contains_key(&k) {
                c.execute(
                    "UPDATE kv SET v = ? WHERE k = ?",
                    &[Datum::Bytes(v.clone()), k.into()],
                    now,
                )
                .unwrap();
            } else {
                c.execute(
                    "INSERT INTO kv VALUES (?, ?)",
                    &[k.into(), Datum::Bytes(v.clone())],
                    now,
                )
                .unwrap();
            }
            model.insert(k, v);
        }
        Op::Del(k) => {
            c.execute("DELETE FROM kv WHERE k = ?", &[k.into()], now).unwrap();
            model.remove(&k);
        }
    }
}

/// Read key `k` through the cluster's public query path.
fn read(c: &mut SqlCluster, k: i64, now: SimTime) -> Option<Vec<u8>> {
    let r = c
        .execute("SELECT v FROM kv WHERE k = ?", &[k.into()], now)
        .unwrap();
    r.rows.first().map(|row| match row.get(0) {
        Some(Datum::Bytes(b)) => b.clone(),
        other => panic!("unexpected datum {other:?}"),
    })
}

fn assert_state_matches(c: &mut SqlCluster, model: &BTreeMap<i64, Vec<u8>>, now: SimTime, at: usize) {
    for k in 0..KEYS as i64 {
        assert_eq!(
            read(c, k, now).as_ref(),
            model.get(&k),
            "key {k} diverged after the crash at boundary {at}"
        );
    }
}

/// Run `ops` committed operations, crashing and recovering a storage pod
/// at every event boundary, verifying the just-touched key each time and
/// the whole key space periodically. Returns the final durability stats
/// and the final recovered state for cross-run comparison.
fn exhaustive_crash_pass(ops: usize) -> (DurabilityStats, BTreeMap<i64, Vec<u8>>) {
    let mut c = durable_cluster();
    let mut model = BTreeMap::new();
    let pods = c.storages.len();
    for (i, &op) in schedule(ops).iter().enumerate() {
        let now = t(i as u64);
        apply(&mut c, &mut model, op, now);
        // Crash a different pod each boundary; the quorum carries the
        // un-fsynced tail back onto the recovered pod.
        c.crash_pod(i % pods);
        c.recover_pod(i % pods, now);
        let touched = match op {
            Op::Put(k, _) | Op::Del(k) => k,
        };
        assert_eq!(
            read(&mut c, touched, now).as_ref(),
            model.get(&touched),
            "acked write lost at boundary {i}"
        );
        if i % 128 == 0 {
            assert_state_matches(&mut c, &model, now, i);
        }
    }
    let final_now = t(ops as u64 + 1);
    assert_state_matches(&mut c, &model, final_now, ops);
    let stats = c.durability_stats();
    assert_eq!(stats.recoveries, ops as u64, "one recovery per boundary");
    let mut state = BTreeMap::new();
    for k in 0..KEYS as i64 {
        if let Some(v) = read(&mut c, k, final_now) {
            state.insert(k, v);
        }
    }
    (stats, state)
}

#[test]
fn every_event_boundary_crash_recovers_the_committed_prefix() {
    exhaustive_crash_pass(1_000);
}

#[test]
fn crash_replay_lands_on_identical_counters_and_state_across_runs() {
    let (stats_a, state_a) = exhaustive_crash_pass(300);
    let (stats_b, state_b) = exhaustive_crash_pass(300);
    assert_eq!(stats_a, stats_b, "durability counters diverged across runs");
    assert_eq!(state_a, state_b, "recovered state diverged across runs");
    assert!(stats_a.wal_appends > 0 && stats_a.replayed_entries > 0);
}

#[test]
fn recovery_figure_is_byte_identical_across_worker_counts() {
    let seq = ablation_recovery(&SweepRunner::sequential());
    let par = ablation_recovery(&SweepRunner::new(4));
    assert_eq!(
        seq.to_json(),
        par.to_json(),
        "post-recovery report counters must not depend on worker count"
    );
}
