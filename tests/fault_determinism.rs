//! Property tests: fault schedules replay deterministically.
//!
//! The repository's reproducibility contract is that a run is a pure
//! function of (seed, configuration, schedule). These properties pin the
//! two halves of that contract at the network level:
//!
//! 1. same seed + same schedule → byte-identical fault/delivery traces,
//!    even when the schedule includes probabilistic loss windows;
//! 2. schedules *without* probabilistic loss never consume randomness at
//!    all — the trace is identical across different RNG seeds, which is
//!    what keeps fault-free experiment runs bit-equal to the seed runs.

// The offline `proptest` stub swallows `proptest!` blocks, leaving the
// strategy helpers (and some imports) unreferenced in offline builds.
#![allow(dead_code, unused_imports)]

use dcache_cost::sim::{
    Delivery, FaultDriver, FaultSchedule, Network, NodeId, SimDuration, SimTime,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

const NODES: u32 = 5;

/// One proptest-generated schedule entry, before conversion to a real event.
#[derive(Debug, Clone)]
enum GenEvent {
    CrashFor { at_ms: u64, node: u32, down_ms: u64 },
    Partition { at_ms: u64, a: u32, b: u32, heal_ms: u64 },
    LatencySpike { at_ms: u64, extra_us: u64, len_ms: u64 },
    DropWindow { at_ms: u64, prob: f64, len_ms: u64 },
}

fn gen_event(allow_random_loss: bool) -> impl Strategy<Value = GenEvent> {
    let crash = (0u64..40, 0u32..NODES, 1u64..20)
        .prop_map(|(at_ms, node, down_ms)| GenEvent::CrashFor { at_ms, node, down_ms });
    let partition = (0u64..40, 0u32..NODES, 0u32..NODES, 1u64..20)
        .prop_map(|(at_ms, a, b, heal_ms)| GenEvent::Partition { at_ms, a, b, heal_ms });
    let spike = (0u64..40, 1u64..500, 1u64..20)
        .prop_map(|(at_ms, extra_us, len_ms)| GenEvent::LatencySpike { at_ms, extra_us, len_ms });
    if allow_random_loss {
        let drop = (0u64..40, 0.05f64..0.95, 1u64..20)
            .prop_map(|(at_ms, prob, len_ms)| GenEvent::DropWindow { at_ms, prob, len_ms });
        prop_oneof![crash, partition, spike, drop].boxed()
    } else {
        prop_oneof![crash, partition, spike].boxed()
    }
}

fn build_schedule(events: &[GenEvent]) -> FaultSchedule {
    let t = |ms: u64| SimTime::ZERO + SimDuration::from_millis(ms);
    let mut s = FaultSchedule::new();
    for ev in events {
        match *ev {
            GenEvent::CrashFor { at_ms, node, down_ms } => {
                s.crash_for(t(at_ms), NodeId(node), SimDuration::from_millis(down_ms));
            }
            GenEvent::Partition { at_ms, a, b, heal_ms } => {
                s.partition_window(t(at_ms), t(at_ms + heal_ms), NodeId(a), NodeId(b));
            }
            GenEvent::LatencySpike { at_ms, extra_us, len_ms } => {
                s.latency_spike(
                    t(at_ms),
                    t(at_ms + len_ms),
                    SimDuration::from_micros(extra_us),
                );
            }
            GenEvent::DropWindow { at_ms, prob, len_ms } => {
                s.drop_window(t(at_ms), t(at_ms + len_ms), prob);
            }
        }
    }
    s
}

/// Replay `schedule` against a fresh network, sending `sends` messages on a
/// 1 ms grid, and return the full fault + delivery trace as text.
fn trace(schedule: &FaultSchedule, sends: &[(u64, u32, u32)], rng_seed: u64) -> String {
    let mut net = Network::new();
    let mut driver = FaultDriver::new(schedule);
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut out = String::new();
    for ms in 0..64u64 {
        let now = SimTime::ZERO + SimDuration::from_millis(ms);
        for ev in driver.due(now) {
            writeln!(out, "t={ms} apply {:?}", ev.kind).unwrap();
            ev.apply_to(&mut net);
        }
        for &(t_ms, from, to) in sends {
            if t_ms == ms {
                let d = net.send(&mut rng, NodeId(from), NodeId(to), 64);
                match d {
                    Delivery::After(delay) => {
                        writeln!(out, "t={ms} {from}->{to} after {}ns", delay.as_nanos()).unwrap()
                    }
                    Delivery::Dropped => writeln!(out, "t={ms} {from}->{to} dropped").unwrap(),
                }
            }
        }
    }
    writeln!(out, "delivered={} dropped={}", net.delivered, net.dropped).unwrap();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed + same schedule → byte-identical traces, drop windows and
    /// all.
    #[test]
    fn same_seed_same_schedule_is_byte_identical(
        events in proptest::collection::vec(gen_event(true), 0..8),
        sends in proptest::collection::vec((0u64..60, 0u32..NODES, 0u32..NODES), 1..64),
        seed in any::<u64>(),
    ) {
        let schedule = build_schedule(&events);
        let a = trace(&schedule, &sends, seed);
        let b = trace(&schedule, &sends, seed);
        prop_assert_eq!(a, b);
    }

    /// Without probabilistic loss windows, the trace never touches the RNG:
    /// two different seeds give the same bytes. This is the invariant that
    /// keeps fault-free runs bit-identical to the pre-fault-engine seed.
    #[test]
    fn deterministic_faults_ignore_the_rng_seed(
        events in proptest::collection::vec(gen_event(false), 0..8),
        sends in proptest::collection::vec((0u64..60, 0u32..NODES, 0u32..NODES), 1..64),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let schedule = build_schedule(&events);
        let a = trace(&schedule, &sends, seed_a);
        let b = trace(&schedule, &sends, seed_b);
        prop_assert_eq!(a, b);
    }

    /// A crashed node drops everything addressed to or from it until its
    /// scheduled restart, independent of all other events.
    #[test]
    fn crash_windows_black_hole_their_node(
        node in 0u32..NODES,
        at_ms in 1u64..30,
        down_ms in 1u64..20,
        peer in 0u32..NODES,
    ) {
        prop_assume!(peer != node);
        let t = |ms: u64| SimTime::ZERO + SimDuration::from_millis(ms);
        let mut s = FaultSchedule::new();
        s.crash_for(t(at_ms), NodeId(node), SimDuration::from_millis(down_ms));
        let mut net = Network::new();
        let mut driver = FaultDriver::new(&s);
        let mut rng = StdRng::seed_from_u64(0);
        for ms in 0..60u64 {
            driver.apply_due(&mut net, t(ms));
            let d = net.send(&mut rng, NodeId(peer), NodeId(node), 16);
            let down = ms >= at_ms && ms < at_ms + down_ms;
            if down {
                prop_assert_eq!(d, Delivery::Dropped, "ms={}", ms);
            } else {
                prop_assert!(matches!(d, Delivery::After(_)), "ms={}", ms);
            }
        }
    }
}
