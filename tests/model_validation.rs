//! Theory-vs-simulation cross-validation.
//!
//! The §4 model says compute cost is affine in the cache miss ratio:
//! `cores(s_A) = A + MR(s_A) · B`, with `MR` an analytic Zipf/LRU estimate.
//! The simulator computes cost from actual code paths and an actual LRU
//! cache. If both are right, calibrating `(A, B)` from two simulated cache
//! sizes must *predict* the simulated cost at other sizes, using the
//! analytic miss ratio alone. That closes the loop between
//! `costmodel::theory`, `cachekit`'s MRC machinery, and the `dcache`
//! experiment pipeline.
//!
//! Last revalidated 2026-08-08 against the checked-in calibration bands,
//! after the durability layer (WAL + snapshots + SSD tier) merged — the
//! layer defaults off, and these crash-free runs stay inside the same
//! tolerance bands with no recalibration.

use dcache_cost::cache::mrc::che_lru_hit_ratio;
use dcache_cost::cache::mrc::zipf_popularities;
use dcache_cost::cost::Pricing;
use dcache_cost::study::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache_cost::study::{ArchKind, DeploymentConfig};
use dcache_cost::workload::{KvWorkloadConfig, SizeDist};

/// The checked-in calibration: tolerance bands these tests must hold, kept
/// next to a recalibration procedure so drift is a measured event, not a
/// reason to `#[ignore]`.
const CALIBRATION: &str = include_str!("../calibration/model_validation.json");

/// Read one numeric field out of the calibration JSON. A 15-line extractor
/// beats a serde dependency here: the file is flat, checked in, and a
/// malformed edit should fail the suite loudly.
fn calibrated(key: &str) -> f64 {
    let needle = format!("\"{key}\"");
    let at = CALIBRATION
        .find(&needle)
        .unwrap_or_else(|| panic!("calibration key {key} missing"));
    let rest = &CALIBRATION[at + needle.len()..];
    let rest = rest
        .trim_start()
        .strip_prefix(':')
        .unwrap_or_else(|| panic!("calibration key {key}: expected ':'"))
        .trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|e| panic!("calibration key {key}: {e}"))
}

#[test]
fn calibration_file_matches_compiled_constants() {
    assert_eq!(calibrated("workload_keys") as u64, KEYS);
    assert_eq!(calibrated("workload_value_bytes") as u64, VALUE_BYTES);
    assert!(calibrated("che_hit_tolerance") > 0.0);
    assert!(calibrated("per_miss_min_us") < calibrated("per_miss_max_us"));
}

const KEYS: u64 = 20_000;
const VALUE_BYTES: u64 = 4_096;
const ENTRY_BYTES: u64 = VALUE_BYTES + 64; // cachekit's per-entry overhead

fn run_linked(per_server_cache_bytes: u64) -> dcache_cost::study::ExperimentReport {
    let mut deployment = DeploymentConfig::paper(ArchKind::Linked);
    deployment.linked_cache_bytes_per_server = per_server_cache_bytes;
    let cfg = KvExperimentConfig {
        deployment,
        workload: KvWorkloadConfig {
            keys: KEYS,
            alpha: 1.2,
            read_ratio: 1.0, // pure reads: the regime §4 models
            sizes: SizeDist::Fixed(VALUE_BYTES),
            seed: 17,
            churn_period: None,
        },
        qps: 100_000.0,
        warmup_requests: 60_000,
        requests: 60_000,
        prewarm: true,
        crash_leaders_at_request: None,
        cache_fault_schedule: None,
        trace_sample_every: None,
        diurnal: None,
        observability: None,
        tenants: None,
        pricing: Pricing::default(),
    };
    run_kv_experiment(&cfg).unwrap()
}

/// Analytic LRU hit ratio for a total cache of `entries` slots over the
/// workload's Zipf(1.2) popularity (Che's approximation).
fn analytic_hit(entries: u64) -> f64 {
    let pops = zipf_popularities(KEYS as usize, 1.2);
    che_lru_hit_ratio(&pops, entries as usize)
}

#[test]
fn simulated_hit_ratios_track_che_approximation() {
    let tolerance = calibrated("che_hit_tolerance");
    // Cache fractions from ~3% to 120% of the keyspace (3 servers).
    for key in [
        "cache_fraction_small",
        "cache_fraction_mid",
        "cache_fraction_large",
    ] {
        let fraction = calibrated(key);
        let per_server = ((KEYS as f64 * fraction / 3.0) * ENTRY_BYTES as f64) as u64;
        let report = run_linked(per_server);
        let entries = (per_server * 3) / ENTRY_BYTES;
        let predicted = analytic_hit(entries.min(KEYS));
        let measured = report.cache_hit_ratio;
        assert!(
            (measured - predicted).abs() < tolerance,
            "fraction {fraction}: measured hit {measured:.3} vs Che {predicted:.3} (band ±{tolerance})"
        );
    }
}

#[test]
fn affine_miss_ratio_model_predicts_simulated_cost() {
    let err_budget = calibrated("affine_rel_err_budget");
    // Calibrate cores(s) = A + MR(s)·B at two sizes…
    let small =
        ((KEYS as f64 * calibrated("cache_fraction_small") / 3.0) * ENTRY_BYTES as f64) as u64;
    let large =
        ((KEYS as f64 * calibrated("cache_fraction_large") / 3.0) * ENTRY_BYTES as f64) as u64;
    let r_small = run_linked(small);
    let r_large = run_linked(large);
    let mr_small = 1.0 - r_small.cache_hit_ratio;
    let mr_large = 1.0 - r_large.cache_hit_ratio;
    assert!(
        mr_small - mr_large > 0.1,
        "sizes must separate miss ratios: small {mr_small:.3} vs large {mr_large:.3}"
    );
    let b = (r_small.total_cores - r_large.total_cores) / (mr_small - mr_large);
    let a = r_large.total_cores - mr_large * b;
    assert!(b > 0.0, "misses must cost compute");

    // …and predict a third size from its *analytic* miss ratio only.
    let mid = ((KEYS as f64 * calibrated("cache_fraction_mid") / 3.0) * ENTRY_BYTES as f64) as u64;
    let r_mid = run_linked(mid);
    let entries = (mid * 3) / ENTRY_BYTES;
    let mr_analytic = 1.0 - analytic_hit(entries);
    let predicted_cores = a + mr_analytic * b;
    let err = (predicted_cores - r_mid.total_cores).abs() / r_mid.total_cores;
    assert!(
        err < err_budget,
        "model predicted {predicted_cores:.2} cores, simulator measured {:.2} ({:.1}% off, budget {:.0}%)",
        r_mid.total_cores,
        err * 100.0,
        err_budget * 100.0
    );
}

#[test]
fn per_miss_cost_is_in_the_calibrated_band() {
    // The implied c_A (core-seconds per miss) must sit near the DESIGN.md §5
    // estimate used by TheoryParams::default (180 µs, for 23 KB entries —
    // at 4 KB values somewhat less). The band lives in the calibration file.
    let band = calibrated("per_miss_min_us")..calibrated("per_miss_max_us");
    let qps = calibrated("workload_qps");
    let small =
        ((KEYS as f64 * calibrated("cache_fraction_small") / 3.0) * ENTRY_BYTES as f64) as u64;
    let large =
        ((KEYS as f64 * calibrated("cache_fraction_large") / 3.0) * ENTRY_BYTES as f64) as u64;
    let r_small = run_linked(small);
    let r_large = run_linked(large);
    let d_mr = r_large.cache_hit_ratio - r_small.cache_hit_ratio;
    let c_a = (r_small.total_cores - r_large.total_cores) / (qps * d_mr);
    let c_a_us = c_a * 1e6;
    assert!(
        band.contains(&c_a_us),
        "implied per-miss cost {c_a_us:.0} µs outside the calibrated band {band:?}"
    );
}
