//! Golden-figure regression suite.
//!
//! Each figure of the paper has a checked-in snapshot under
//! `tests/golden/<figure>.json`: a small set of summary metrics computed
//! from the figure's experiments at fixed seeds and reduced (test-sized)
//! budgets. This suite re-runs those experiments through the parallel
//! sweep runner and compares every metric against the snapshot with the
//! per-field tolerances encoded in `bench::golden::tolerance_for` —
//! counters and flags must match exactly, model outputs to 1e-9, simulated
//! fractions/costs/latencies within small windows.
//!
//! To re-bless the snapshots after an intentional behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --release --test golden_figures
//! ```
//!
//! The diff of `tests/golden/` then documents exactly which figures moved
//! and by how much.

use std::path::PathBuf;

use bench::golden::{all_figures, compare, GoldenFigure};
use bench::sweep::SweepRunner;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn bless_mode() -> bool {
    std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1")
}

#[test]
fn figures_match_goldens() {
    let runner = SweepRunner::from_env();
    let figures = all_figures(&runner);
    assert!(
        figures.len() >= 7,
        "expected golden coverage for fig2..fig8, got {}",
        figures.len()
    );

    let dir = golden_dir();
    if bless_mode() {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
        for fig in &figures {
            let path = dir.join(format!("{}.json", fig.name));
            std::fs::write(&path, fig.to_json()).expect("write golden");
            println!("blessed {}", path.display());
        }
        return;
    }

    let mut violations = Vec::new();
    for fig in &figures {
        let path = dir.join(format!("{}.json", fig.name));
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                violations.push(format!(
                    "{}: missing golden {} ({e}); run UPDATE_GOLDEN=1 to bless",
                    fig.name,
                    path.display()
                ));
                continue;
            }
        };
        let expected = GoldenFigure::parse(&text)
            .unwrap_or_else(|e| panic!("{}: malformed golden: {e}", fig.name));
        violations.extend(compare(&expected, fig));
    }
    assert!(
        violations.is_empty(),
        "golden-figure regressions:\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn goldens_on_disk_are_well_formed() {
    // Snapshots must parse and carry at least one metric per point, so a
    // truncated or hand-mangled file fails loudly here rather than as a
    // confusing tolerance violation above.
    if bless_mode() {
        // `figures_match_goldens` is rewriting the snapshots concurrently.
        return;
    }
    let dir = golden_dir();
    assert!(dir.exists(), "tests/golden missing; bless with UPDATE_GOLDEN=1");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("read tests/golden") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read golden");
        let fig = GoldenFigure::parse(&text)
            .unwrap_or_else(|e| panic!("{}: malformed: {e}", path.display()));
        assert!(!fig.points.is_empty(), "{}: no points", path.display());
        for p in &fig.points {
            assert!(
                !p.metrics.is_empty(),
                "{}: point {:?} has no metrics",
                path.display(),
                p.label
            );
        }
        // Round-trip: parse(to_json(parse(x))) is the identity, so blessing
        // never rewrites a snapshot that didn't change.
        assert_eq!(fig.to_json(), text, "{}: not in canonical form", path.display());
        seen += 1;
    }
    assert!(seen >= 7, "expected >=7 golden snapshots, found {seen}");
}
