//! Sequential-vs-parallel determinism: the sweep runner's headline
//! guarantee, enforced end to end.
//!
//! The parallel runner must be a pure scheduling change: running a sweep
//! with `jobs = 1` and `jobs = N` has to produce **byte-identical**
//! serialized reports and telemetry exports, because every simulation is a
//! closed deterministic system keyed only by its config (seeds included)
//! and results are merged back in spec order. These tests are what lets
//! `repro_all --jobs N` claim bit-for-bit equality with `--jobs 1`.

use std::time::{Duration, Instant};

use bench::golden::small_kv;
use bench::sweep::SweepRunner;
use dcache::experiment::{
    run_kv_experiment, run_kv_experiment_with_telemetry, KvExperimentConfig,
};
use dcache::ArchKind;

/// A small randomized sweep: every paper architecture at a mix of read
/// ratios, value sizes and workload seeds.
fn mini_sweep() -> Vec<KvExperimentConfig> {
    let cells: [(f64, u64, u64); 3] = [(0.50, 1 << 10, 42), (0.95, 1 << 10, 7), (0.95, 64 << 10, 1234)];
    let mut specs = Vec::new();
    for &(read_ratio, value_bytes, seed) in &cells {
        for &arch in &ArchKind::PAPER {
            let mut cfg = small_kv(arch, read_ratio, value_bytes);
            cfg.workload.seed = seed;
            specs.push(cfg);
        }
    }
    specs
}

#[test]
fn parallel_sweep_reports_are_byte_identical_to_sequential() {
    let specs = mini_sweep();
    let seq = SweepRunner::sequential()
        .run_map(&specs, |_, cfg| run_kv_experiment(cfg).expect("run"));
    let par = SweepRunner::new(4)
        .run_map(&specs, |_, cfg| run_kv_experiment(cfg).expect("run"));

    assert_eq!(seq.len(), par.len());
    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        // `Debug` covers every field of the report (tiers, cost breakdowns,
        // latency percentiles, fault counters), so byte-equal debug strings
        // are byte-equal serialized reports.
        assert_eq!(
            format!("{s:?}"),
            format!("{p:?}"),
            "spec {i} ({}): parallel run diverged from sequential",
            specs[i].deployment.arch.label()
        );
    }
}

#[test]
fn parallel_sweep_telemetry_exports_are_byte_identical() {
    // Telemetry is the part most tempted to share global state; assert the
    // per-experiment registries, trace logs and CPU profiles all come back
    // bit-for-bit equal under parallel execution.
    let mut specs: Vec<KvExperimentConfig> = [ArchKind::Remote, ArchKind::Linked]
        .iter()
        .map(|&arch| small_kv(arch, 0.95, 1 << 10))
        .collect();
    for cfg in &mut specs {
        cfg.trace_sample_every = Some(97);
    }

    let run = |cfg: &KvExperimentConfig| {
        let (report, bundle) = run_kv_experiment_with_telemetry(cfg).expect("run");
        (
            format!("{report:?}"),
            bundle.registry.to_prometheus_text(),
            bundle.traces_jsonl,
            bundle.profile.to_collapsed(),
        )
    };
    let seq = SweepRunner::sequential().run_map(&specs, |_, cfg| run(cfg));
    let par = SweepRunner::new(4).run_map(&specs, |_, cfg| run(cfg));

    for ((s_rep, s_prom, s_traces, s_prof), (p_rep, p_prom, p_traces, p_prof)) in
        seq.iter().zip(&par)
    {
        assert_eq!(s_rep, p_rep, "report diverged");
        assert_eq!(s_prom, p_prom, "prometheus export diverged");
        assert_eq!(s_traces, p_traces, "trace jsonl diverged");
        assert_eq!(s_prof, p_prof, "collapsed profile diverged");
    }

    // Post-hoc merge is order-insensitive: merging the two registries'
    // exports must not depend on which finished first.
    let mut ab = telemetry::Registry::new();
    let mut ba = telemetry::Registry::new();
    let bundles: Vec<_> = specs
        .iter()
        .map(|cfg| run_kv_experiment_with_telemetry(cfg).expect("run").1)
        .collect();
    ab.merge(&bundles[0].registry);
    ab.merge(&bundles[1].registry);
    ba.merge(&bundles[1].registry);
    ba.merge(&bundles[0].registry);
    assert_eq!(ab.to_prometheus_text(), ba.to_prometheus_text());
}

#[test]
fn parallel_batching_sweep_is_byte_identical_to_sequential() {
    // The batching ablation carries extra per-run state (coalescing
    // windows, the frame-size histogram) that must stay inside each
    // experiment; a jobs=1 and a jobs=4 sweep over the same specs must
    // serialize to the same bytes, report batch counters included.
    use bench::batching::{run_sweep, sweep_specs};
    let specs = sweep_specs();
    let seq = run_sweep(&SweepRunner::sequential(), &specs, 500, 1_000);
    let par = run_sweep(&SweepRunner::new(4), &specs, 500, 1_000);

    assert_eq!(seq.len(), par.len());
    let mut coalesced_cells = 0;
    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(
            format!("{s:?}"),
            format!("{p:?}"),
            "batching spec {i} (max_batch {}): parallel diverged",
            specs[i].max_batch
        );
        if s.mean_batch_size > 1.0 {
            coalesced_cells += 1;
        }
    }
    // The sweep must actually exercise coalescing, not just the baseline.
    assert!(
        coalesced_cells > 0,
        "no cell coalesced; the determinism check would be vacuous"
    );
}

#[test]
fn parallel_hotkey_sweep_is_byte_identical_to_sequential() {
    // The hot-key ablation layers the in-process L0 tier (TinyLFU sketch
    // state, per-server LRU, version invalidation, staleness histograms)
    // onto the serve path. All of that state must stay inside each
    // experiment: jobs=1 and jobs=4 over the same specs must serialize to
    // the same bytes, L0 counters and age percentiles included.
    use bench::hotkey::{run_sweep, sweep_specs};
    let specs = sweep_specs();
    let seq = run_sweep(&SweepRunner::sequential(), &specs, 500, 1_000);
    let par = run_sweep(&SweepRunner::new(4), &specs, 500, 1_000);

    assert_eq!(seq.len(), par.len());
    let mut absorbing_cells = 0;
    let mut stale_cells = 0;
    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(
            format!("{s:?}"),
            format!("{p:?}"),
            "hotkey spec {i} ({}): parallel diverged",
            specs[i].label()
        );
        if s.l0_hits > 0 {
            absorbing_cells += 1;
        }
        if s.l0_stale_serves > 0 {
            stale_cells += 1;
        }
    }
    // The sweep must actually exercise the tier and both consistency
    // modes, not just the off baselines.
    assert!(
        absorbing_cells > 0,
        "no cell hit the L0; the determinism check would be vacuous"
    );
    assert!(
        stale_cells > 0,
        "no serve-stale cell served stale; the staleness path went untested"
    );
}

#[test]
fn parallel_elastic_sweep_is_byte_identical_to_sequential() {
    // The elastic ablation adds the most run-local state yet: a SHARDS
    // profiler, planner hysteresis, live resizes and ring drains with
    // migration, plus diurnal clock stretching and load-window tracking.
    // All of it must stay inside each experiment: jobs=1 and jobs=4 over
    // the same specs must serialize to the same bytes, elastic counters
    // and billing adjustments included.
    use bench::elastic::{run_sweep, sweep_specs};
    let specs = sweep_specs();
    let seq = run_sweep(&SweepRunner::sequential(), &specs, 6_000, 6_000);
    let par = run_sweep(&SweepRunner::new(4), &specs, 6_000, 6_000);

    assert_eq!(seq.len(), par.len());
    let mut resized_cells = 0;
    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(
            format!("{s:?}"),
            format!("{p:?}"),
            "elastic spec {i} ({}): parallel diverged",
            specs[i].label()
        );
        if s.elastic_resizes > 0 {
            resized_cells += 1;
        }
    }
    // The sweep must actually exercise the controller, not just baselines.
    assert!(
        resized_cells > 0,
        "no cell resized; the determinism check would be vacuous"
    );
}

#[test]
fn parallel_ttl_sweep_is_byte_identical_to_sequential() {
    // The TTL ablation threads yet more run-local state through each
    // experiment: per-tenant age histograms and TTL controllers, tenant
    // pickers, churn/storm schedule evaluation, expiry sweeps with their
    // CPU charges, and resident-byte billing. jobs=1 and jobs=4 over the
    // same specs must serialize to the same bytes, per-tenant reports and
    // TTL counters included.
    use bench::ttl::{run_sweep, sweep_specs};
    let specs = sweep_specs();
    let seq = run_sweep(&SweepRunner::sequential(), &specs, 6_000, 6_000);
    let par = run_sweep(&SweepRunner::new(4), &specs, 6_000, 6_000);

    assert_eq!(seq.len(), par.len());
    let mut adopting_cells = 0;
    let mut expiring_cells = 0;
    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(
            format!("{s:?}"),
            format!("{p:?}"),
            "ttl spec {i} ({}): parallel diverged",
            specs[i].label()
        );
        if s.ttl_changes > 0 {
            adopting_cells += 1;
        }
        if s.expired_entries > 0 {
            expiring_cells += 1;
        }
    }
    // The sweep must actually exercise the plane, not just baselines.
    assert!(
        adopting_cells > 0,
        "no cell adopted a TTL; the determinism check would be vacuous"
    );
    assert!(
        expiring_cells > 0,
        "no cell expired entries; the sweep path went untested"
    );
}

#[test]
fn four_workers_give_at_least_2x_speedup() {
    // Scheduling-only check with uniform synthetic jobs, so it holds even
    // on a loaded CI box: 8 sleeps of 50 ms are ≥400 ms sequentially and
    // ≤~100 ms across 4 workers. Requiring only 2× leaves wide margin.
    let specs = [50u64; 8];
    let work = |_: usize, ms: &u64| std::thread::sleep(Duration::from_millis(*ms));

    let t0 = Instant::now();
    SweepRunner::sequential().run_map(&specs, work);
    let sequential = t0.elapsed();

    let t1 = Instant::now();
    SweepRunner::new(4).run_map(&specs, work);
    let parallel = t1.elapsed();

    assert!(
        parallel * 2 <= sequential,
        "expected >=2x speedup with 4 workers: sequential {sequential:?}, parallel {parallel:?}"
    );
}

#[test]
fn sharded_single_experiment_merges_byte_identically_across_jobs() {
    // PR-8's giant-run sharding: one experiment split per app server, each
    // shard replaying the full request stream and serving only its
    // partition. The shard *count* is fixed by the config (never by the
    // worker count), so jobs=1 and jobs=N execute the same shard set and
    // the deterministic merge must be byte-identical.
    use dcache::experiment::{merge_kv_shards, run_kv_shard};

    for &arch in &ArchKind::PAPER {
        let cfg = small_kv(arch, 0.9, 1 << 10);
        let shards = cfg.deployment.app_servers;
        let shard_ids: Vec<usize> = (0..shards).collect();

        let seq = SweepRunner::sequential()
            .run_map(&shard_ids, |_, &s| run_kv_shard(&cfg, s, shards).expect("shard"));
        let par = SweepRunner::new(4)
            .run_map(&shard_ids, |_, &s| run_kv_shard(&cfg, s, shards).expect("shard"));

        let merged_seq = merge_kv_shards(&cfg, seq).expect("merge seq");
        let merged_par = merge_kv_shards(&cfg, par).expect("merge par");
        assert_eq!(
            format!("{merged_seq:?}"),
            format!("{merged_par:?}"),
            "{}: sharded merge diverged between jobs=1 and jobs=4",
            arch.label()
        );
    }
}
