//! Observability determinism and non-vacuousness, end to end.
//!
//! The PR-7 observability layer promises two things at once:
//!
//! 1. **Byte-determinism.** The timeline JSONL, the alert log and the tail
//!    attribution are derived purely from the simulation's virtual clock
//!    and fixed seeds, so a double run — and a `jobs = 1` vs `jobs = 4`
//!    sweep — must reproduce every artifact byte for byte.
//! 2. **Non-vacuousness.** The incident-day scenario actually exercises
//!    the machinery: heartbeats land, fault windows annotate the timeline,
//!    at least one SLO alert fires *and resolves*, every slowest-1%
//!    request gets exactly one primary cause, and the per-cause excess
//!    totals add up to the measured tail excess.
//!
//! Together these are what make `results/obs/` trustworthy: the artifacts
//! cannot silently drift, and they cannot silently go empty either.

use bench::obs::{run_sweep, ARCHS};
use bench::sweep::SweepRunner;
use dcache::obs::ObsArtifacts;

/// A budget big enough to cross both scheduled incidents (the fault
/// fractions are budget-proportional) while keeping the suite fast.
const WARMUP: u64 = 8_000;
const MEASURED: u64 = 16_000;

/// The three deterministic artifacts, serialized exactly as `obs_report`
/// writes them to disk.
fn artifact_bytes(obs: &ObsArtifacts) -> (String, String, String) {
    (
        obs.timeseries.to_jsonl(),
        obs.alerts_json(),
        obs.tail.to_json(),
    )
}

#[test]
fn double_run_and_parallel_sweep_are_byte_identical() {
    let seq = run_sweep(&SweepRunner::sequential(), WARMUP, MEASURED);
    let seq2 = run_sweep(&SweepRunner::sequential(), WARMUP, MEASURED);
    let par = run_sweep(&SweepRunner::new(4), WARMUP, MEASURED);
    assert_eq!(seq.len(), ARCHS.len());

    for (i, ((r1, b1), ((_, b2), (_, b3)))) in seq.iter().zip(seq2.iter().zip(&par)).enumerate() {
        let label = r1.arch.label();
        let a1 = artifact_bytes(b1.obs.as_ref().expect("obs enabled"));
        let a2 = artifact_bytes(b2.obs.as_ref().expect("obs enabled"));
        let a3 = artifact_bytes(b3.obs.as_ref().expect("obs enabled"));
        assert_eq!(a1, a2, "{label} (spec {i}): double run diverged");
        assert_eq!(a1, a3, "{label} (spec {i}): parallel sweep diverged");
        // The report's observability summary fields ride along.
        let (r2, r3) = (&seq2[i].0, &par[i].0);
        assert_eq!(r1.slo_alerts_fired, r2.slo_alerts_fired);
        assert_eq!(r1.tail_p99_threshold_us, r3.tail_p99_threshold_us);
        assert_eq!(r1.tail_causes, r2.tail_causes);
        assert_eq!(r1.tail_causes, r3.tail_causes);
    }
}

#[test]
fn incident_day_exercises_every_subsystem() {
    let runs = run_sweep(&SweepRunner::sequential(), WARMUP, MEASURED);
    for (report, bundle) in &runs {
        let label = report.arch.label();
        let obs = bundle.obs.as_ref().expect("obs enabled");

        // Heartbeats and annotations landed on the timeline.
        assert!(obs.timeseries.len() >= 4, "{label}: too few heartbeats");
        assert!(
            obs.timeseries
                .annotations()
                .iter()
                .any(|a| a.kind == "fault"),
            "{label}: no fault-window annotations"
        );
        assert!(
            obs.timeseries
                .annotations()
                .iter()
                .any(|a| a.kind == "resize"),
            "{label}: elastic resizes should annotate the timeline"
        );

        // At least one alert fires — and the outage is bounded, so the
        // burn-rate engine must also resolve it before the day ends.
        assert!(!obs.alerts.is_empty(), "{label}: no SLO alert fired");
        assert!(
            obs.alerts.iter().any(|a| a.resolved_at_ns.is_some()),
            "{label}: alerts never resolved"
        );
        assert_eq!(report.slo_alerts_fired, obs.alerts.len() as u64);

        // Every slowest-1% request has exactly one primary cause, and the
        // per-cause excess totals account for the whole measured tail.
        let tail = &obs.tail;
        assert!(tail.threshold_us > 0, "{label}: degenerate p99 threshold");
        assert!(!tail.tail_requests.is_empty(), "{label}: empty tail");
        let cause_count: u64 = tail.causes.iter().map(|c| c.count).sum();
        assert_eq!(
            cause_count,
            tail.tail_requests.len() as u64,
            "{label}: causes must partition the tail"
        );
        let cause_excess: u64 = tail.causes.iter().map(|c| c.excess_us).sum();
        let slack = tail.causes.len() as u64; // µs rounding, 1 per cause
        assert!(
            cause_excess.abs_diff(tail.total_excess_us) <= slack,
            "{label}: per-cause excess {cause_excess} µs vs total {} µs",
            tail.total_excess_us
        );
        // The incident day must surface more than one mechanism overall.
        assert!(
            tail.causes.iter().filter(|c| c.count > 0).count() >= 1,
            "{label}: attribution is vacuous"
        );
    }
    // Across the two architectures the scenario separates causes: the
    // remote tier's outage shows up as fault-window excess, the durable
    // storage crash as WAL/recovery excess.
    let all_causes: Vec<&str> = runs
        .iter()
        .flat_map(|(_, b)| {
            b.obs
                .as_ref()
                .expect("obs enabled")
                .tail
                .causes
                .iter()
                .filter(|c| c.count > 0)
                .map(|c| c.cause.label())
        })
        .collect();
    assert!(
        all_causes.contains(&"fault_window"),
        "cache outage missing from tail: {all_causes:?}"
    );
    assert!(
        all_causes.contains(&"wal_fsync_recovery"),
        "storage crash recovery missing from tail: {all_causes:?}"
    );
}
