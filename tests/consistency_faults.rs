//! Consistency under faults, end to end: the Figure 8 hazard, fencing,
//! leader failover during cached serving, and linearizability checking of
//! machine-generated histories.

use dcache_cost::sim::{SimDuration, SimTime};
use dcache_cost::study::consistency::{
    check_linearizable, delayed_write_scenario, HistoryOp,
};
use dcache_cost::study::deployment::{kv_catalog, Deployment};
use dcache_cost::study::{ArchKind, DeploymentConfig};
use dcache_cost::store::value::Datum;

fn t(ms: u64) -> SimTime {
    SimTime::from_nanos(ms * 1_000_000)
}

#[test]
fn figure8_hazard_and_fix() {
    let broken = delayed_write_scenario(false).unwrap();
    assert!(!broken.linearizable);
    assert_ne!(broken.final_cache_value, broken.final_storage_value);

    let fixed = delayed_write_scenario(true).unwrap();
    assert!(fixed.linearizable);
    assert_eq!(fixed.final_cache_value, fixed.final_storage_value);
}

#[test]
fn storage_survives_leader_failover_mid_run() {
    let mut d = Deployment::new(
        DeploymentConfig::test_small(ArchKind::LinkedVersion),
        kv_catalog("kv"),
    );
    d.cluster
        .bulk_load(
            "kv",
            (0..50i64).map(|k| vec![Datum::Int(k), Datum::Payload { len: 256, seed: 0 }]),
        )
        .unwrap();

    // Serve some traffic, then crash every region's leader and re-elect.
    for k in 0..50 {
        d.serve_kv_read("kv", k, t(k as u64)).unwrap();
    }
    for r in 0..d.cluster.region_count() {
        let slot = d.cluster.region(r).leader_slot().unwrap();
        d.cluster.region_mut(r).crash(slot);
        d.cluster.region_mut(r).elect(t(100)).unwrap();
    }

    // All data still served, and version checks still catch staleness.
    for k in 0..50 {
        let out = d.serve_kv_read("kv", k, t(200 + k as u64)).unwrap();
        assert!(!out.not_found, "key {k} lost in failover");
        assert_eq!(out.seed, Some(0));
    }
    // Writes work against the new leaders.
    let w = d
        .serve_kv_write("kv", 7, Datum::Payload { len: 256, seed: 9 }, t(300))
        .unwrap();
    assert!(w.version.is_some());
    let r = d.serve_kv_read("kv", 7, t(301)).unwrap();
    assert_eq!(r.seed, Some(9));
}

#[test]
fn version_checked_reads_are_linearizable_under_interleaving() {
    // Drive an adversarial interleaving: reads through the cache racing
    // direct storage writes, with every completed operation recorded, then
    // hand the history to the checker.
    let mut d = Deployment::new(
        DeploymentConfig::test_small(ArchKind::LinkedVersion),
        kv_catalog("kv"),
    );
    d.cluster
        .bulk_load("kv", vec![vec![Datum::Int(1), Datum::Payload { len: 64, seed: 0 }]])
        .unwrap();

    let mut history = vec![HistoryOp::write(0, t(0), t(0))];
    let mut clock = 1u64;
    for round in 1..=10u64 {
        // External writer updates storage directly (bypassing the cache).
        let start = t(clock);
        d.cluster
            .execute(
                "UPDATE kv SET v = ? WHERE k = 1",
                &[Datum::Payload { len: 64, seed: round }],
                start,
            )
            .unwrap();
        history.push(HistoryOp::write(round, start, t(clock + 1)));
        clock += 2;

        // Cached read with version check must observe the new value.
        let start = t(clock);
        let out = d.serve_kv_read("kv", 1, start).unwrap();
        history.push(HistoryOp::read(out.seed, start, t(clock + 1)));
        clock += 2;
    }
    assert!(
        check_linearizable(&history, None),
        "version-checked history must linearize: {history:?}"
    );
}

#[test]
fn plain_linked_interleaving_fails_the_checker() {
    // The same experiment without version checks produces a non-linearizable
    // history (stale reads after external writes).
    let mut d = Deployment::new(
        DeploymentConfig::test_small(ArchKind::Linked),
        kv_catalog("kv"),
    );
    d.cluster
        .bulk_load("kv", vec![vec![Datum::Int(1), Datum::Payload { len: 64, seed: 0 }]])
        .unwrap();
    // Fill the cache.
    d.serve_kv_read("kv", 1, t(1)).unwrap();

    let mut history = vec![HistoryOp::write(0, t(0), t(0))];
    // External write lands...
    d.cluster
        .execute(
            "UPDATE kv SET v = ? WHERE k = 1",
            &[Datum::Payload { len: 64, seed: 1 }],
            t(10),
        )
        .unwrap();
    history.push(HistoryOp::write(1, t(10), t(11)));
    // ...and the cache keeps serving the old value.
    let out = d.serve_kv_read("kv", 1, t(20)).unwrap();
    history.push(HistoryOp::read(out.seed, t(20), t(21)));
    assert_eq!(out.seed, Some(0), "linked serves stale");
    assert!(!check_linearizable(&history, None));
}

#[test]
fn lease_expiry_recovers_freshness_without_per_read_checks() {
    let mut d = Deployment::new(
        DeploymentConfig::test_small(ArchKind::LeaseOwned),
        kv_catalog("kv"),
    );
    d.cluster
        .bulk_load("kv", vec![vec![Datum::Int(1), Datum::Payload { len: 64, seed: 0 }]])
        .unwrap();
    d.serve_kv_read("kv", 1, t(1)).unwrap();

    // External write while the owner holds its lease: the externally-written
    // value is invisible to lease-owned reads *by design* — correctness
    // requires all writes to route through the owner. Route one through:
    d.serve_kv_write("kv", 1, Datum::Payload { len: 64, seed: 5 }, t(2))
        .unwrap();
    let fresh = d.serve_kv_read("kv", 1, t(3)).unwrap();
    assert_eq!(fresh.seed, Some(5));
    assert_eq!(fresh.version_checks, 0, "no storage contact while leased");

    // After lease expiry (10s) the next read re-validates against storage.
    let late = SimTime::ZERO + SimDuration::from_secs(20);
    let out = d.serve_kv_read("kv", 1, late).unwrap();
    assert_eq!(out.version_checks, 1);
    assert_eq!(out.seed, Some(5));
}

#[test]
fn checker_handles_larger_random_histories() {
    // Sanity on checker performance/pruning: a serial history of 24 ops.
    let mut history = Vec::new();
    let mut clock = 0u64;
    for v in 0..12u64 {
        history.push(HistoryOp::write(v, t(clock), t(clock + 1)));
        history.push(HistoryOp::read(Some(v), t(clock + 2), t(clock + 3)));
        clock += 4;
    }
    assert!(check_linearizable(&history, None));
    // Corrupt one read and it must fail.
    history[13] = HistoryOp::read(Some(99), history[13].invoked, history[13].completed);
    assert!(!check_linearizable(&history, None));
}
