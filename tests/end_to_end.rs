//! Cross-crate integration tests: whole-system runs through the public API.

use dcache_cost::cost::Pricing;
use dcache_cost::study::experiment::{
    compare_architectures, run_kv_experiment, KvExperimentConfig,
};
use dcache_cost::study::{ArchKind, DeploymentConfig};
use dcache_cost::workload::{KvWorkloadConfig, SizeDist};

fn mid_cfg(arch: ArchKind) -> KvExperimentConfig {
    KvExperimentConfig {
        deployment: DeploymentConfig::paper(arch),
        workload: KvWorkloadConfig {
            keys: 10_000,
            alpha: 1.2,
            read_ratio: 0.95,
            sizes: SizeDist::Fixed(4_096),
            seed: 99,
            churn_period: None,
        },
        qps: 100_000.0,
        warmup_requests: 15_000,
        requests: 15_000,
        prewarm: true,
        crash_leaders_at_request: None,
        cache_fault_schedule: None,
        trace_sample_every: None,
        diurnal: None,
        observability: None,
        tenants: None,
        pricing: Pricing::default(),
    }
}

#[test]
fn identical_seeds_give_identical_reports() {
    let a = run_kv_experiment(&mid_cfg(ArchKind::Linked)).unwrap();
    let b = run_kv_experiment(&mid_cfg(ArchKind::Linked)).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "the whole pipeline must be deterministic"
    );
}

#[test]
fn different_seeds_change_details_not_conclusions() {
    let mut cfg = mid_cfg(ArchKind::Linked);
    let a = run_kv_experiment(&cfg).unwrap();
    cfg.workload.seed = 100;
    let b = run_kv_experiment(&cfg).unwrap();
    assert_ne!(a.total_cost.total(), b.total_cost.total());
    // But the cost is in the same ballpark (within 20%).
    let ratio = a.total_cost.total() / b.total_cost.total();
    assert!(
        (0.8..1.25).contains(&ratio),
        "seed sensitivity too high: {ratio}"
    );
}

#[test]
fn paper_ordering_holds_end_to_end() {
    // The paper's central comparative claim, on a mid-size run:
    // linked < remote < base ≈ linked+version.
    let reports = compare_architectures(&ArchKind::PAPER, mid_cfg(ArchKind::Base)).unwrap();
    let cost = |arch: ArchKind| {
        reports
            .iter()
            .find(|r| r.arch == arch)
            .unwrap()
            .total_cost
            .total()
    };
    let base = cost(ArchKind::Base);
    let remote = cost(ArchKind::Remote);
    let linked = cost(ArchKind::Linked);
    let checked = cost(ArchKind::LinkedVersion);
    assert!(linked < remote, "linked {linked} < remote {remote}");
    assert!(remote < base, "remote {remote} < base {base}");
    assert!(
        checked > base * 0.85,
        "version checks erase most of the benefit: {checked} vs base {base}"
    );
    // Headline band: linked saves 3-4x (abstract).
    let saving = base / linked;
    assert!(
        (2.5..6.0).contains(&saving),
        "linked saving {saving} outside the paper's plausible band"
    );
}

#[test]
fn latency_benefit_accompanies_cost_benefit() {
    let base = run_kv_experiment(&mid_cfg(ArchKind::Base)).unwrap();
    let linked = run_kv_experiment(&mid_cfg(ArchKind::Linked)).unwrap();
    assert!(linked.read_latency_p50_us * 3 < base.read_latency_p50_us);
    assert!(linked.read_latency_p99_us <= base.read_latency_p99_us);
}

#[test]
fn memory_fractions_match_section_5_3_bands() {
    let base = run_kv_experiment(&mid_cfg(ArchKind::Base)).unwrap();
    let linked = run_kv_experiment(&mid_cfg(ArchKind::Linked)).unwrap();
    // §5.3: memory is 6-22% of total for Linked, 1-5% for Base.
    let b = base.memory_cost_fraction();
    let l = linked.memory_cost_fraction();
    assert!((0.005..=0.10).contains(&b), "base memory fraction {b}");
    assert!((0.05..=0.40).contains(&l), "linked memory fraction {l}");
    assert!(l > b);
}

#[test]
fn value_size_widen_the_gap() {
    // Figure 4b's trend on a reduced sweep.
    let saving_at = |bytes: u64| {
        let mut cfg = mid_cfg(ArchKind::Base);
        cfg.workload.sizes = SizeDist::Fixed(bytes);
        let base = run_kv_experiment(&cfg).unwrap();
        cfg.deployment.arch = ArchKind::Linked;
        let linked = run_kv_experiment(&cfg).unwrap();
        base.total_cost.total() / linked.total_cost.total()
    };
    let small = saving_at(1 << 10);
    let large = saving_at(512 << 10);
    assert!(
        large > small,
        "saving must grow with value size: {small:.2} -> {large:.2}"
    );
}

#[test]
fn write_heavy_workloads_shrink_the_benefit() {
    // Figure 4a's trend: more writes, less saving.
    let saving_at = |read_ratio: f64| {
        let mut cfg = mid_cfg(ArchKind::Base);
        cfg.workload.read_ratio = read_ratio;
        let base = run_kv_experiment(&cfg).unwrap();
        cfg.deployment.arch = ArchKind::Linked;
        let linked = run_kv_experiment(&cfg).unwrap();
        base.total_cost.total() / linked.total_cost.total()
    };
    let write_heavy = saving_at(0.5);
    let read_heavy = saving_at(0.99);
    assert!(
        read_heavy > write_heavy,
        "saving must grow with read ratio: {write_heavy:.2} vs {read_heavy:.2}"
    );
    assert!(
        write_heavy > 1.0,
        "even at 50% writes the cache must not lose"
    );
}

#[test]
fn storage_tier_cpu_collapses_under_linked() {
    let base = run_kv_experiment(&mid_cfg(ArchKind::Base)).unwrap();
    let linked = run_kv_experiment(&mid_cfg(ArchKind::Linked)).unwrap();
    let storage_cores = |r: &dcache_cost::study::ExperimentReport| {
        r.tier("storage").unwrap().cores + r.tier("sql_frontend").unwrap().cores
    };
    assert!(
        storage_cores(&linked) < storage_cores(&base) / 4.0,
        "database tiers must shed most load: {} vs {}",
        storage_cores(&linked),
        storage_cores(&base)
    );
}
