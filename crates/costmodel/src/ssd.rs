//! SSD-tier extension of the §4 model.
//!
//! The paper's related work (§7, discussing Kangaroo) notes that this work
//! targets DRAM caches and that "SSD caches may further improve cost".
//! This module extends the analytical model with a second, flash-backed
//! cache tier at the application:
//!
//! ```text
//! T(s_A, s_F, s_D) = QPS · [ (MR(s_A) − MR(s_A+s_F)) · c_F      (flash hits)
//!                          +  MR(s_A+s_F) · c_A                  (full misses)
//!                          +  MR(s_A+s_F+s_D) · c_D ]            (disk path)
//!                  + c_M·s_A·N_r + c_F$·s_F·N_r + c_M·s_D
//! ```
//!
//! where `c_F` is the CPU cost of serving from flash (NVMe read + checksum;
//! far below the network path `c_A` but above DRAM's ~0) and `c_F$` the
//! $/GB-month of SSD (the paper's §3 storage price band). The headline
//! result, asserted by tests and printed by the `fig2_theory` bench's SSD
//! table: because SSD is ~25× cheaper per GB than DRAM while a flash hit
//! still avoids the whole network+SQL path, a DRAM+SSD hybrid strictly
//! dominates DRAM-only for large, moderately-skewed working sets.

use crate::theory::TheoryModel;
use serde::{Deserialize, Serialize};

/// Flash-tier parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SsdTier {
    /// $/GB-month for flash (GCP local SSD ≈ $0.08).
    pub ssd_gb_month: f64,
    /// Core-seconds of CPU per flash hit (NVMe syscall + checksum + copy).
    pub c_f_core_secs: f64,
}

impl Default for SsdTier {
    fn default() -> Self {
        SsdTier {
            ssd_gb_month: 0.08,
            c_f_core_secs: 25e-6,
        }
    }
}

/// A DRAM+SSD allocation and its cost.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HybridAllocation {
    pub dram_gb: f64,
    pub ssd_gb: f64,
    pub monthly_cost: f64,
}

/// Evaluate the hybrid model on top of an existing [`TheoryModel`].
pub struct HybridModel<'a> {
    pub base: &'a TheoryModel,
    pub ssd: SsdTier,
}

impl<'a> HybridModel<'a> {
    pub fn new(base: &'a TheoryModel, ssd: SsdTier) -> Self {
        HybridModel { base, ssd }
    }

    /// Monthly cost with `s_a` GB of DRAM cache, `s_f` GB of flash cache,
    /// and `s_d` GB of storage-layer cache.
    pub fn total_cost(&self, s_a: f64, s_f: f64, s_d: f64) -> f64 {
        let p = &self.base.params;
        let mr_a = self.base.miss_ratio(s_a);
        let mr_af = self.base.miss_ratio(s_a + s_f);
        let mr_afd = self.base.miss_ratio(s_a + s_f + s_d);
        let flash_hits = (mr_a - mr_af).max(0.0);
        let cores = p.qps
            * (flash_hits * self.ssd.c_f_core_secs
                + mr_af * p.c_a_core_secs
                + mr_afd * p.c_d_core_secs);
        cores * p.pricing.cpu_core_month
            + s_a * p.replicas * p.pricing.mem_gb_month
            + s_f * p.replicas * self.ssd.ssd_gb_month
            + s_d * p.pricing.mem_gb_month
    }

    /// Grid-search the best (DRAM, SSD) split for a fixed `s_d`.
    pub fn optimize(&self, s_d: f64, max_dram_gb: f64, max_ssd_gb: f64) -> HybridAllocation {
        let mut best = HybridAllocation {
            dram_gb: 0.0,
            ssd_gb: 0.0,
            monthly_cost: self.total_cost(0.0, 0.0, s_d),
        };
        let mut dram = 0.01f64;
        while dram <= max_dram_gb {
            let mut ssd = 0.0f64;
            loop {
                let cost = self.total_cost(dram, ssd, s_d);
                if cost < best.monthly_cost {
                    best = HybridAllocation {
                        dram_gb: dram,
                        ssd_gb: ssd,
                        monthly_cost: cost,
                    };
                }
                if ssd >= max_ssd_gb {
                    break;
                }
                ssd = (ssd.max(0.01) * 1.35).min(max_ssd_gb);
            }
            dram *= 1.35;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory::{TheoryModel, TheoryParams};

    fn base_model() -> TheoryModel {
        TheoryModel::new(TheoryParams {
            keys: 1_000_000,
            alpha: 1.0, // moderate skew: the regime where SSD shines
            mean_entry_bytes: 230_000.0,
            qps: 40_000.0,
            ..TheoryParams::default()
        })
    }

    #[test]
    fn flash_tier_reduces_to_base_model_when_empty() {
        let base = base_model();
        let hybrid = HybridModel::new(&base, SsdTier::default());
        for (s_a, s_d) in [(0.5, 1.0), (4.0, 1.0), (16.0, 0.0)] {
            let diff = (hybrid.total_cost(s_a, 0.0, s_d) - base.total_cost(s_a, s_d)).abs();
            assert!(diff < 1e-9, "s_f=0 must equal the DRAM-only model: {diff}");
        }
    }

    #[test]
    fn adding_flash_below_dram_price_saves() {
        let base = base_model();
        let hybrid = HybridModel::new(&base, SsdTier::default());
        let dram_only = hybrid.total_cost(8.0, 0.0, 1.0);
        let with_flash = hybrid.total_cost(8.0, 64.0, 1.0);
        assert!(
            with_flash < dram_only,
            "64 GB of $0.08 flash must pay for itself: {with_flash} vs {dram_only}"
        );
    }

    #[test]
    fn optimal_hybrid_beats_optimal_dram_only() {
        let base = base_model();
        let hybrid = HybridModel::new(&base, SsdTier::default());
        let dram_only_best = base.optimal_s_a(1.0, 128.0);
        let dram_only_cost = base.total_cost(dram_only_best, 1.0);
        let alloc = hybrid.optimize(1.0, 128.0, 512.0);
        assert!(
            alloc.monthly_cost < dram_only_cost,
            "hybrid {:?} must beat DRAM-only ${dram_only_cost:.0}",
            alloc
        );
        assert!(alloc.ssd_gb > 0.0, "the optimum must actually use flash");
    }

    #[test]
    fn expensive_flash_is_not_used() {
        let base = base_model();
        let pricey = SsdTier {
            ssd_gb_month: 10.0, // costlier than DRAM
            ..SsdTier::default()
        };
        let hybrid = HybridModel::new(&base, pricey);
        let alloc = hybrid.optimize(1.0, 64.0, 256.0);
        assert!(
            alloc.ssd_gb < 0.1,
            "flash priced above DRAM must not be allocated: {alloc:?}"
        );
    }

    #[test]
    fn flash_is_monotone_improvement_at_fixed_dram() {
        let base = base_model();
        let hybrid = HybridModel::new(&base, SsdTier::default());
        // At fixed DRAM, growing the (cheap) flash tier never hurts until
        // the working set is covered.
        let costs: Vec<f64> = [0.0, 8.0, 32.0, 128.0]
            .iter()
            .map(|&s_f| hybrid.total_cost(2.0, s_f, 1.0))
            .collect();
        for w in costs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "flash growth must not raise cost: {costs:?}");
        }
        // And it always costs less than no cache at all.
        assert!(costs[3] < hybrid.total_cost(0.0, 0.0, 1.0));
    }
}
