//! # costmodel — dollars from resources, and the §4 analytical model
//!
//! Two halves:
//!
//! * [`pricing`] — the paper's §3 cloud unit prices (≈$17/vCPU-month,
//!   ≈$2/GB-month DRAM, ≈$2/100GB-month disk) and helpers turning measured
//!   `(cores, GB)` usage into monthly dollar costs with per-component
//!   breakdowns.
//! * [`ssd`] — the §7 extension: a flash tier between DRAM and the network
//!   path, with a joint DRAM+SSD allocation optimizer.
//! * [`theory`] — the §4 model
//!   `T = QPS·(MR(s_A)·c_A + MR(s_A+s_D)·c_D) + c_M·(s_A·N_r + s_D)`,
//!   its partial derivatives in the two cache-size knobs, the optimal
//!   allocation rule (grow the linked cache until marginal benefit equals
//!   the marginal cost of DRAM), and the Figure 2 sweeps over Zipf α,
//!   replica count, and memory-price multipliers.

pub mod pricing;
pub mod ssd;
pub mod theory;

pub use pricing::{CostBreakdown, Pricing, ResourceUsage};
pub use ssd::{HybridModel, SsdTier};
pub use theory::{RpcTax, TheoryModel, TheoryParams, TtlTheory};
