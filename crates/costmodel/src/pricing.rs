//! Cloud unit pricing and cost aggregation.
//!
//! The paper's §3 reference prices on GCP: a vCPU core ≈ $17/month, a GB of
//! DRAM ≈ $2/month, and persistent disk ≈ $2 per 100 GB per month. The cost
//! of a deployment is simply `Σ cores·P_cpu + Σ GB·P_mem + Σ diskGB·P_disk`
//! over its billed tiers — the paper bills steady-state usage, arguing that
//! autoscaling and custom VM shapes make cores/GB fungible (§5.1).

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::Add;

/// Unit prices in dollars per month.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pricing {
    pub cpu_core_month: f64,
    pub mem_gb_month: f64,
    pub disk_gb_month: f64,
    /// Local NVMe/SSD $/GB·month — between DRAM and cold persistent disk;
    /// bills the storage tier's WAL + snapshot residency. Matches
    /// [`crate::ssd::SsdTier::default`].
    pub ssd_gb_month: f64,
}

impl Default for Pricing {
    /// The paper's §3 GCP reference prices.
    fn default() -> Self {
        Pricing {
            cpu_core_month: 17.0,
            mem_gb_month: 2.0,
            disk_gb_month: 0.02,
            ssd_gb_month: 0.08,
        }
    }
}

impl Pricing {
    /// Scale the memory price (the §4 sensitivity analysis runs DRAM up to
    /// 40× today's price and shows caches still win).
    pub fn with_memory_multiplier(mut self, multiplier: f64) -> Self {
        self.mem_gb_month *= multiplier;
        self
    }

    /// Monthly cost of one usage bundle.
    pub fn monthly(&self, usage: &ResourceUsage) -> CostBreakdown {
        CostBreakdown {
            compute: usage.cores * self.cpu_core_month,
            memory: usage.mem_gb * self.mem_gb_month,
            disk: usage.disk_gb * self.disk_gb_month,
            ssd: usage.ssd_gb * self.ssd_gb_month,
        }
    }
}

/// Steady-state resource usage of one tier (or a whole deployment).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    pub cores: f64,
    pub mem_gb: f64,
    pub disk_gb: f64,
    /// Local SSD residency (WAL + snapshots); 0 everywhere durability is
    /// off, keeping legacy bundles and their totals untouched.
    pub ssd_gb: f64,
}

impl ResourceUsage {
    pub fn new(cores: f64, mem_gb: f64, disk_gb: f64) -> Self {
        ResourceUsage { cores, mem_gb, disk_gb, ssd_gb: 0.0 }
    }

    /// The same bundle with an SSD residency attached.
    pub fn with_ssd(mut self, ssd_gb: f64) -> Self {
        self.ssd_gb = ssd_gb;
        self
    }
}

impl Add for ResourceUsage {
    type Output = ResourceUsage;
    fn add(self, rhs: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            cores: self.cores + rhs.cores,
            mem_gb: self.mem_gb + rhs.mem_gb,
            disk_gb: self.disk_gb + rhs.disk_gb,
            ssd_gb: self.ssd_gb + rhs.ssd_gb,
        }
    }
}

impl Sum for ResourceUsage {
    fn sum<I: Iterator<Item = ResourceUsage>>(iter: I) -> Self {
        iter.fold(ResourceUsage::default(), |a, b| a + b)
    }
}

/// Monthly dollars, split by resource.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    pub compute: f64,
    pub memory: f64,
    pub disk: f64,
    /// SSD-tier dollars (WAL + snapshot residency); 0 with durability off.
    pub ssd: f64,
}

impl CostBreakdown {
    pub fn total(&self) -> f64 {
        self.compute + self.memory + self.disk + self.ssd
    }

    /// Fraction of total cost that is memory — the paper reports 6–22% for
    /// Linked and 1–5% for Base (§5.3).
    pub fn memory_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.memory / t
        }
    }
}

impl Add for CostBreakdown {
    type Output = CostBreakdown;
    fn add(self, rhs: CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            compute: self.compute + rhs.compute,
            memory: self.memory + rhs.memory,
            disk: self.disk + rhs.disk,
            ssd: self.ssd + rhs.ssd,
        }
    }
}

impl Sum for CostBreakdown {
    fn sum<I: Iterator<Item = CostBreakdown>>(iter: I) -> Self {
        iter.fold(CostBreakdown::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_prices() {
        let p = Pricing::default();
        // §3: 1 vCPU ≈ $17/mo, 1 GB ≈ $2/mo, storage $2 per 100 GB.
        let c = p.monthly(&ResourceUsage::new(1.0, 1.0, 100.0));
        assert!((c.compute - 17.0).abs() < 1e-9);
        assert!((c.memory - 2.0).abs() < 1e-9);
        assert!((c.disk - 2.0).abs() < 1e-9);
        assert!((c.total() - 21.0).abs() < 1e-9);
    }

    #[test]
    fn memory_multiplier_scales_only_memory() {
        let p = Pricing::default().with_memory_multiplier(40.0);
        let c = p.monthly(&ResourceUsage::new(1.0, 1.0, 0.0));
        assert!((c.memory - 80.0).abs() < 1e-9);
        assert!((c.compute - 17.0).abs() < 1e-9);
    }

    #[test]
    fn usage_and_costs_sum() {
        let tiers = vec![
            ResourceUsage::new(2.0, 8.0, 0.0),
            ResourceUsage::new(1.0, 16.0, 50.0),
        ];
        let total: ResourceUsage = tiers.into_iter().sum();
        assert_eq!(total, ResourceUsage::new(3.0, 24.0, 50.0));
        let p = Pricing::default();
        let c = p.monthly(&total);
        assert!((c.total() - (3.0 * 17.0 + 24.0 * 2.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn memory_fraction_bounds() {
        let c = CostBreakdown { compute: 90.0, memory: 10.0, disk: 0.0, ssd: 0.0 };
        assert!((c.memory_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(CostBreakdown::default().memory_fraction(), 0.0);
    }

    #[test]
    fn ssd_residency_bills_between_dram_and_disk() {
        let p = Pricing::default();
        assert!(p.ssd_gb_month < p.mem_gb_month && p.ssd_gb_month > p.disk_gb_month);
        let c = p.monthly(&ResourceUsage::new(0.0, 0.0, 0.0).with_ssd(100.0));
        assert!((c.ssd - 8.0).abs() < 1e-9);
        assert!((c.total() - 8.0).abs() < 1e-9);
        // Zero-SSD bundles price exactly as before the tier existed.
        let legacy = p.monthly(&ResourceUsage::new(1.0, 2.0, 3.0));
        assert_eq!(legacy.ssd, 0.0);
        assert!((legacy.total() - (17.0 + 4.0 + 0.06)).abs() < 1e-9);
    }
}
