//! Loopback integration tests for the batched MGET/MSET path.
//!
//! The contract under test: one MGET frame is *semantically identical* to N
//! sequential GETs (same hits, same misses, same values, same versions) —
//! the only thing batching removes is N−1 frame round trips. Same for MSET
//! vs N sequential SETs, modulo the versions it assigns being its own.

use netrpc::{CacheClient, CacheServer, ResilientClient, ResilientConfig};

async fn start() -> (std::net::SocketAddr, netrpc::ServerHandle) {
    let server = CacheServer::bind("127.0.0.1:0", 4 << 20).await.unwrap();
    let addr = server.local_addr();
    (addr, server.spawn())
}

#[tokio::test]
async fn mget_equals_n_sequential_gets() {
    let (addr, handle) = start().await;
    let mut client = CacheClient::connect(addr).await.unwrap();

    // Populate every third key so the batch mixes hits and misses.
    let keys: Vec<Vec<u8>> = (0..32u32).map(|i| format!("key-{i}").into_bytes()).collect();
    for (i, key) in keys.iter().enumerate() {
        if i % 3 != 0 {
            let value = format!("value-{i}").into_bytes();
            client.set(key, &value, None).await.unwrap();
        }
    }

    // Sequential baseline: N individual GETs.
    let mut sequential = Vec::new();
    for key in &keys {
        sequential.push(client.get(key).await.unwrap());
    }

    // One MGET of the same keys in the same order.
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let batched = client.mget(&refs).await.unwrap();

    assert_eq!(batched, sequential, "MGET must equal N sequential GETs");
    assert!(batched.iter().any(|i| i.is_some()), "batch saw hits");
    assert!(batched.iter().any(|i| i.is_none()), "batch saw misses");

    handle.shutdown().await;
}

#[tokio::test]
async fn mset_then_reads_match_sequential_set_semantics() {
    let (addr, handle) = start().await;
    let mut client = CacheClient::connect(addr).await.unwrap();

    let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..16u32)
        .map(|i| {
            (
                format!("mk-{i}").into_bytes(),
                vec![i as u8; (i as usize % 7) + 1],
            )
        })
        .collect();
    let refs: Vec<(&[u8], &[u8])> = entries
        .iter()
        .map(|(k, v)| (k.as_slice(), v.as_slice()))
        .collect();
    let versions = client.mset(&refs, None).await.unwrap();

    // Versions are assigned in entry order, strictly increasing — exactly
    // the sequence N sequential SETs would produce.
    assert_eq!(versions.len(), entries.len());
    assert!(versions.windows(2).all(|w| w[0] < w[1]));

    // Every entry is visible to both single GET and MGET, with the version
    // MSET reported.
    let key_refs: Vec<&[u8]> = entries.iter().map(|(k, _)| k.as_slice()).collect();
    let batched = client.mget(&key_refs).await.unwrap();
    for (i, (key, value)) in entries.iter().enumerate() {
        let single = client.get(key).await.unwrap();
        assert_eq!(single, Some((value.clone(), versions[i])));
        assert_eq!(batched[i], Some((value.clone(), versions[i])));
    }

    handle.shutdown().await;
}

#[tokio::test]
async fn mset_with_ttl_expires_the_whole_batch() {
    let (addr, handle) = start().await;
    let mut client = CacheClient::connect(addr).await.unwrap();
    client
        .mset(&[(b"t1".as_slice(), b"x".as_slice()), (b"t2", b"y")], Some(30))
        .await
        .unwrap();
    let live = client.mget(&[b"t1".as_slice(), b"t2"]).await.unwrap();
    assert!(live.iter().all(|i| i.is_some()));
    tokio::time::sleep(std::time::Duration::from_millis(60)).await;
    let gone = client.mget(&[b"t1".as_slice(), b"t2"]).await.unwrap();
    assert_eq!(gone, vec![None, None]);
    handle.shutdown().await;
}

#[tokio::test]
async fn empty_batches_are_legal_no_ops() {
    let (addr, handle) = start().await;
    let mut client = CacheClient::connect(addr).await.unwrap();
    assert_eq!(client.mget(&[]).await.unwrap(), vec![]);
    assert_eq!(client.mset(&[], None).await.unwrap(), vec![]);
    handle.shutdown().await;
}

#[tokio::test]
async fn resilient_client_batches_with_deadlines() {
    // The resilient wrapper routes MGET through the idempotent retry path
    // and MSET through single-attempt; over a healthy loopback both must
    // behave exactly like the plain client.
    let (addr, handle) = start().await;
    let mut client = ResilientClient::new(addr, ResilientConfig::default());

    let versions = client
        .mset(&[(b"a".as_slice(), b"1".as_slice()), (b"b", b"2")], None)
        .await
        .unwrap();
    assert_eq!(versions.len(), 2);
    let items = client
        .mget(&[b"a".as_slice(), b"missing", b"b"])
        .await
        .unwrap();
    assert_eq!(items[0], Some((b"1".to_vec(), versions[0])));
    assert_eq!(items[1], None);
    assert_eq!(items[2], Some((b"2".to_vec(), versions[1])));
    assert_eq!(client.stats().retries, 0, "healthy path retries nothing");

    handle.shutdown().await;

    // With the server gone, MGET exhausts its retries (counted), while
    // MSET fails after exactly one attempt — the idempotency split.
    let mut cfg = ResilientConfig {
        request_timeout: std::time::Duration::from_millis(100),
        connect_timeout: std::time::Duration::from_millis(100),
        failure_threshold: 100, // keep the breaker out of the way
        ..ResilientConfig::default()
    };
    cfg.retry.base_backoff = std::time::Duration::from_millis(1);
    cfg.retry.max_backoff = std::time::Duration::from_millis(5);
    let mut dead = ResilientClient::new(addr, cfg);
    assert!(dead.mget(&[b"a".as_slice()]).await.is_err());
    let retries_after_mget = dead.stats().retries;
    assert!(retries_after_mget > 0, "idempotent MGET retries");
    assert!(dead
        .mset(&[(b"a".as_slice(), b"1".as_slice())], None)
        .await
        .is_err());
    assert_eq!(
        dead.stats().retries,
        retries_after_mget,
        "MSET must not retry: an ambiguous batch mutation is never replayed"
    );
}
