//! Fault-injection tests for the resilient client: servers that die
//! mid-session, come back on the same port, hang without responding, or
//! refuse connections entirely.

use netrpc::{CacheServer, ResilientClient, ResilientConfig, RetryPolicy};
use std::time::Duration;

async fn start() -> (std::net::SocketAddr, netrpc::ServerHandle) {
    let server = CacheServer::bind("127.0.0.1:0", 4 << 20).await.unwrap();
    let addr = server.local_addr();
    (addr, server.spawn())
}

fn fast_cfg() -> ResilientConfig {
    ResilientConfig {
        request_timeout: Duration::from_millis(500),
        connect_timeout: Duration::from_millis(500),
        retry: RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(20),
            jitter: 0.5,
        },
        failure_threshold: 10,
        open_for: Duration::from_millis(200),
        jitter_seed: 7,
    }
}

#[tokio::test]
async fn server_killed_mid_session_errors_instead_of_hanging() {
    let (addr, handle) = start().await;
    let mut client = ResilientClient::new(addr, fast_cfg());
    client.set(b"k", b"v", None).await.unwrap();
    assert_eq!(client.get(b"k").await.unwrap(), Some((b"v".to_vec(), 1)));

    handle.shutdown().await;

    // The dead server must surface as a prompt error, never a hang: each
    // retried call (3 attempts + backoff) is bounded well under the outer
    // 5s guard. Shutdown races the connection task noticing it, so one
    // straggler request may still be answered — but never two.
    let mut got_err = false;
    for _ in 0..2 {
        let res = tokio::time::timeout(Duration::from_secs(5), client.get(b"k")).await;
        let inner = res.expect("call must not hang after server death");
        if inner.is_err() {
            got_err = true;
            break;
        }
    }
    assert!(got_err, "dead server must produce an error");
}

#[tokio::test]
async fn client_reconnects_after_server_restart_on_same_port() {
    let (addr, handle) = start().await;
    let mut client = ResilientClient::new(addr, fast_cfg());
    client.set(b"k", b"v1", None).await.unwrap();
    handle.shutdown().await;
    // Drain the shutdown race (the old connection may answer one straggler).
    let _ = client.get(b"k").await;
    assert!(client.get(b"k").await.is_err());

    // Same port, fresh (cold) server — the client must redial on its own.
    let server = CacheServer::bind(&addr.to_string(), 4 << 20).await.unwrap();
    let handle = server.spawn();

    assert_eq!(client.get(b"k").await.unwrap(), None, "restart is cold");
    client.set(b"k", b"v2", None).await.unwrap();
    assert_eq!(client.get(b"k").await.unwrap(), Some((b"v2".to_vec(), 1)));
    assert!(client.stats().connects >= 2, "must have redialed");
    handle.shutdown().await;
}

#[tokio::test]
async fn request_deadline_fires_on_unresponsive_server() {
    // A listener that accepts and then ignores the connection: the classic
    // hang. The per-request deadline must convert it into TimedOut.
    let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
    let addr = listener.local_addr().unwrap();
    let hold = tokio::spawn(async move {
        let mut held = Vec::new();
        loop {
            let (sock, _) = match listener.accept().await {
                Ok(x) => x,
                Err(_) => return,
            };
            held.push(sock); // keep open, never respond
        }
    });

    let mut cfg = fast_cfg();
    cfg.request_timeout = Duration::from_millis(100);
    cfg.retry.max_retries = 1;
    let mut client = ResilientClient::new(addr, cfg);
    let err = tokio::time::timeout(Duration::from_secs(5), client.get(b"k"))
        .await
        .expect("deadline must bound the call")
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    assert!(client.stats().timeouts >= 1);
    assert_eq!(client.stats().retries, 1, "idempotent GET retries once");
    hold.abort();
}

#[tokio::test]
async fn circuit_breaker_opens_fails_fast_and_recovers() {
    let (addr, handle) = start().await;
    handle.shutdown().await; // port is now refusing connections

    let mut cfg = fast_cfg();
    cfg.failure_threshold = 1;
    cfg.retry.max_retries = 0;
    cfg.open_for = Duration::from_millis(150);
    let mut client = ResilientClient::new(addr, cfg);

    assert!(client.get(b"k").await.is_err(), "first failure trips breaker");
    assert_eq!(client.stats().breaker_opens, 1);
    assert!(client.circuit_open());

    // While open: fail fast, no socket traffic.
    let err = client.get(b"k").await.unwrap_err();
    assert!(err.to_string().contains("circuit breaker open"));
    assert_eq!(client.stats().fast_failures, 1);

    // Bring the server back; after the cool-down the half-open probe
    // succeeds and the breaker closes.
    let server = CacheServer::bind(&addr.to_string(), 4 << 20).await.unwrap();
    let handle = server.spawn();
    tokio::time::sleep(Duration::from_millis(200)).await;
    client.ping().await.expect("half-open probe must close breaker");
    assert!(!client.circuit_open());
    client.set(b"k", b"v", None).await.unwrap();
    assert!(client.get(b"k").await.unwrap().is_some());
    handle.shutdown().await;
}

#[tokio::test]
async fn mutations_are_never_retried() {
    let (addr, handle) = start().await;
    handle.shutdown().await; // dead port

    let mut client = ResilientClient::new(addr, fast_cfg());
    let _ = client.get(b"k").await; // idempotent: retries
    let after_get = client.stats().retries;
    assert_eq!(after_get, 2, "GET uses the full retry budget");
    let _ = client.set(b"k", b"v", None).await;
    let _ = client.del(b"k").await;
    assert_eq!(
        client.stats().retries,
        after_get,
        "SET/DEL must not add retries"
    );
}
