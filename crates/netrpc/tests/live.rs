//! End-to-end tests of the remote cache over real TCP (loopback), plus
//! property tests of the codec against arbitrary inputs.

// The offline `proptest` stub swallows `proptest!` blocks, leaving the
// strategy helpers (and some imports) unreferenced in offline builds.
#![allow(dead_code, unused_imports)]
use bytes::BytesMut;
use netrpc::codec::{CodecError, Request, Response};
use netrpc::{CacheClient, CacheServer};
use proptest::prelude::*;

async fn start() -> (std::net::SocketAddr, netrpc::ServerHandle) {
    let server = CacheServer::bind("127.0.0.1:0", 4 << 20).await.unwrap();
    let addr = server.local_addr();
    (addr, server.spawn())
}

#[tokio::test]
async fn get_set_del_version_over_tcp() {
    let (addr, handle) = start().await;
    let mut client = CacheClient::connect(addr).await.unwrap();

    client.ping().await.unwrap();
    assert_eq!(client.get(b"missing").await.unwrap(), None);

    let v1 = client.set(b"user:1", b"ada", None).await.unwrap();
    assert_eq!(
        client.get(b"user:1").await.unwrap(),
        Some((b"ada".to_vec(), v1))
    );
    assert_eq!(client.version(b"user:1").await.unwrap(), Some(v1));

    let v2 = client.set(b"user:1", b"bob", None).await.unwrap();
    assert!(v2 > v1, "versions advance");
    assert_eq!(
        client.get(b"user:1").await.unwrap(),
        Some((b"bob".to_vec(), v2))
    );

    assert!(client.del(b"user:1").await.unwrap());
    assert!(!client.del(b"user:1").await.unwrap());
    assert_eq!(client.get(b"user:1").await.unwrap(), None);

    handle.shutdown().await;
}

#[tokio::test]
async fn large_values_cross_the_wire_intact() {
    let (addr, handle) = start().await;
    let mut client = CacheClient::connect(addr).await.unwrap();
    let value: Vec<u8> = (0..1_000_000u32).map(|i| (i.wrapping_mul(2654435761)) as u8).collect();
    let v = client.set(b"big", &value, None).await.unwrap();
    let (got, version) = client.get(b"big").await.unwrap().unwrap();
    assert_eq!(got, value);
    assert_eq!(version, v);
    handle.shutdown().await;
}

#[tokio::test]
async fn concurrent_clients_share_the_store() {
    let (addr, handle) = start().await;
    let mut tasks = Vec::new();
    for c in 0..8u8 {
        tasks.push(tokio::spawn(async move {
            let mut client = CacheClient::connect(addr).await.unwrap();
            for i in 0..50u8 {
                client.set(&[c, i], &[c, i, 99], None).await.unwrap();
            }
        }));
    }
    for t in tasks {
        t.await.unwrap();
    }
    let mut client = CacheClient::connect(addr).await.unwrap();
    for c in 0..8u8 {
        for i in 0..50u8 {
            let (v, _) = client.get(&[c, i]).await.unwrap().unwrap();
            assert_eq!(v, vec![c, i, 99]);
        }
    }
    let (_, _, entries, _) = client.stats().await.unwrap();
    assert_eq!(entries, 400);
    handle.shutdown().await;
}

#[tokio::test]
async fn ttl_expires_entries() {
    let (addr, handle) = start().await;
    let mut client = CacheClient::connect(addr).await.unwrap();
    client.set(b"ephemeral", b"x", Some(30)).await.unwrap();
    assert!(client.get(b"ephemeral").await.unwrap().is_some());
    tokio::time::sleep(std::time::Duration::from_millis(60)).await;
    assert_eq!(client.get(b"ephemeral").await.unwrap(), None);
    handle.shutdown().await;
}

#[tokio::test]
async fn malformed_frame_gets_error_then_disconnect() {
    use tokio::io::{AsyncReadExt, AsyncWriteExt};
    let (addr, handle) = start().await;
    let mut raw = tokio::net::TcpStream::connect(addr).await.unwrap();
    // A frame with an unknown tag.
    raw.write_all(&[1, 0, 0, 0, 0xFF]).await.unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).await.unwrap();
    let mut frame = BytesMut::from(&buf[..]);
    match Response::decode(&mut frame).unwrap() {
        Response::Error { message } => assert!(message.contains("corrupt")),
        other => panic!("expected error, got {other:?}"),
    }
    handle.shutdown().await;
}

#[tokio::test]
async fn server_shutdown_is_clean_with_idle_connections() {
    let (addr, handle) = start().await;
    let _idle = CacheClient::connect(addr).await.unwrap();
    handle.shutdown().await;
    // New connections are refused after shutdown.
    assert!(CacheClient::connect(addr).await.is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Decoding arbitrary bytes never panics and never fabricates a frame
    /// longer than the input.
    #[test]
    fn request_decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut buf = BytesMut::from(&bytes[..]);
        let _ = Request::decode(&mut buf);
        let mut buf = BytesMut::from(&bytes[..]);
        let _ = Response::decode(&mut buf);
    }

    /// Any request round-trips bit-exactly through the codec.
    #[test]
    fn request_round_trip(
        key in proptest::collection::vec(any::<u8>(), 0..64),
        value in proptest::collection::vec(any::<u8>(), 0..512),
        ttl in proptest::option::of(any::<u64>()),
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 0..16),
        entries in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..32), proptest::collection::vec(any::<u8>(), 0..128)),
            0..16,
        ),
        which in 0u8..8,
    ) {
        let req = match which {
            0 => Request::Get { key },
            1 => Request::Set { key, value, ttl_ms: ttl },
            2 => Request::Del { key },
            3 => Request::Version { key },
            4 => Request::Stats,
            5 => Request::MGet { keys },
            6 => Request::MSet { entries, ttl_ms: ttl },
            _ => Request::Ping,
        };
        let mut buf = BytesMut::new();
        req.encode(&mut buf);
        prop_assert_eq!(Request::decode(&mut buf), Ok(req));
        prop_assert!(buf.is_empty());
    }

    /// Batched responses round-trip bit-exactly, hits and misses mixed.
    #[test]
    fn batched_response_round_trip(
        items in proptest::collection::vec(
            proptest::option::of((proptest::collection::vec(any::<u8>(), 0..128), any::<u64>())),
            0..16,
        ),
        versions in proptest::collection::vec(any::<u64>(), 0..16),
        which in 0u8..2,
    ) {
        let resp = match which {
            0 => Response::Values { items },
            _ => Response::StoredMany { versions },
        };
        let mut buf = BytesMut::new();
        resp.encode(&mut buf);
        prop_assert_eq!(Response::decode(&mut buf), Ok(resp));
        prop_assert!(buf.is_empty());
    }

    /// Pipelined frames always decode back in order, regardless of how the
    /// byte stream is chunked (stream reassembly correctness).
    #[test]
    fn pipelined_frames_survive_arbitrary_chunking(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 1..8),
        chunk in 1usize..32,
    ) {
        let reqs: Vec<Request> = keys.into_iter().map(|key| Request::Get { key }).collect();
        let mut wire = BytesMut::new();
        for r in &reqs {
            r.encode(&mut wire);
        }
        // Feed the stream in `chunk`-sized pieces.
        let mut rx = BytesMut::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            rx.extend_from_slice(piece);
            loop {
                match Request::decode(&mut rx) {
                    Ok(r) => decoded.push(r),
                    Err(CodecError::Incomplete) => break,
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
            }
        }
        prop_assert_eq!(decoded, reqs);
    }
}
