//! The cache client: sequential request/response over one TCP connection.

use crate::codec::{CodecError, Request, Response};
use bytes::BytesMut;
use std::io;
use std::net::SocketAddr;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

/// A connected client. Not `Clone`: one in-flight request per connection
/// (open more connections for concurrency, as Memcached clients do).
pub struct CacheClient {
    socket: TcpStream,
    inbound: BytesMut,
    outbound: BytesMut,
}

fn protocol_err(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl CacheClient {
    pub async fn connect(addr: SocketAddr) -> io::Result<CacheClient> {
        let socket = TcpStream::connect(addr).await?;
        socket.set_nodelay(true)?;
        Ok(CacheClient {
            socket,
            inbound: BytesMut::with_capacity(8 * 1024),
            outbound: BytesMut::with_capacity(8 * 1024),
        })
    }

    /// Send one request and await its response.
    pub async fn call(&mut self, req: Request) -> io::Result<Response> {
        self.outbound.clear();
        req.encode(&mut self.outbound);
        self.socket.write_all(&self.outbound).await?;
        loop {
            match Response::decode(&mut self.inbound) {
                Ok(resp) => return Ok(resp),
                Err(CodecError::Incomplete) => {}
                Err(e) => return Err(protocol_err(e)),
            }
            if self.socket.read_buf(&mut self.inbound).await? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed connection mid-response",
                ));
            }
        }
    }

    /// GET: `Some((value, version))` on hit.
    pub async fn get(&mut self, key: &[u8]) -> io::Result<Option<(Vec<u8>, u64)>> {
        match self.call(Request::Get { key: key.to_vec() }).await? {
            Response::Value { value, version } => Ok(Some((value, version))),
            Response::NotFound => Ok(None),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// SET: returns the assigned version.
    pub async fn set(&mut self, key: &[u8], value: &[u8], ttl_ms: Option<u64>) -> io::Result<u64> {
        match self
            .call(Request::Set {
                key: key.to_vec(),
                value: value.to_vec(),
                ttl_ms,
            })
            .await?
        {
            Response::Stored { version } => Ok(version),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// DEL: true if the key existed.
    pub async fn del(&mut self, key: &[u8]) -> io::Result<bool> {
        match self.call(Request::Del { key: key.to_vec() }).await? {
            Response::Deleted => Ok(true),
            Response::NotFound => Ok(false),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// VERSION: the wire-level version check.
    pub async fn version(&mut self, key: &[u8]) -> io::Result<Option<u64>> {
        match self.call(Request::Version { key: key.to_vec() }).await? {
            Response::VersionIs { version } => Ok(Some(version)),
            Response::NotFound => Ok(None),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// STATS: `(hits, misses, entries, used_bytes)`.
    pub async fn stats(&mut self) -> io::Result<(u64, u64, u64, u64)> {
        match self.call(Request::Stats).await? {
            Response::Stats {
                hits,
                misses,
                entries,
                used_bytes,
            } => Ok((hits, misses, entries, used_bytes)),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    pub async fn ping(&mut self) -> io::Result<()> {
        match self.call(Request::Ping).await? {
            Response::Pong => Ok(()),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// MGET: fetch many keys in one frame. Results come back in request
    /// order, `None` marking a miss — semantically identical to N
    /// sequential [`Self::get`] calls, minus N−1 round trips.
    pub async fn mget(&mut self, keys: &[&[u8]]) -> io::Result<Vec<Option<(Vec<u8>, u64)>>> {
        let req = Request::MGet {
            keys: keys.iter().map(|k| k.to_vec()).collect(),
        };
        match self.call(req).await? {
            Response::Values { items } => {
                if items.len() != keys.len() {
                    return Err(protocol_err(format!(
                        "mget returned {} items for {} keys",
                        items.len(),
                        keys.len()
                    )));
                }
                Ok(items)
            }
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// MSET: store many entries in one frame (one optional TTL for all).
    /// Returns the assigned versions in entry order.
    pub async fn mset(
        &mut self,
        entries: &[(&[u8], &[u8])],
        ttl_ms: Option<u64>,
    ) -> io::Result<Vec<u64>> {
        let req = Request::MSet {
            entries: entries
                .iter()
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect(),
            ttl_ms,
        };
        match self.call(req).await? {
            Response::StoredMany { versions } => {
                if versions.len() != entries.len() {
                    return Err(protocol_err(format!(
                        "mset returned {} versions for {} entries",
                        versions.len(),
                        entries.len()
                    )));
                }
                Ok(versions)
            }
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }
}
