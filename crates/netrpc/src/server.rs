//! The cache server: tokio TCP, one task per connection, shared store.
//!
//! The store is a [`cachekit::Cache`] behind a `parking_lot` mutex with a
//! monotonically increasing version counter — `SET` returns the assigned
//! version, `VERSION` reads it, giving the wire-level equivalent of the
//! paper's version check. Shutdown is cooperative: a watch channel closes
//! the accept loop and in-flight connections finish their current request.

use crate::codec::{CodecError, Request, Response};
use crate::obs::{record_span, SharedTraceSink};
use bytes::BytesMut;
use cachekit::{Cache, PolicyKind};
use parking_lot::Mutex;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};
use telemetry::SpanStatus;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::watch;
use tokio::task::JoinHandle;

/// One stored entry.
#[derive(Debug, Clone)]
struct Entry {
    value: Vec<u8>,
    version: u64,
}

struct Store {
    cache: Cache<Vec<u8>, Entry>,
    next_version: u64,
}

/// Shared server state.
pub struct Shared {
    store: Mutex<Store>,
    trace_sink: Mutex<Option<SharedTraceSink>>,
}

fn now_nanos() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

impl Shared {
    fn new(capacity_bytes: u64) -> Self {
        Shared {
            store: Mutex::new(Store {
                cache: Cache::new(capacity_bytes, PolicyKind::Lru),
                next_version: 1,
            }),
            trace_sink: Mutex::new(None),
        }
    }

    /// Attach a shared trace sink: every subsequent `apply` records one
    /// wall-clock span (tier `server`, named after the request kind). The
    /// wire protocol carries no trace context, so server spans use trace
    /// id 0 — they are per-node observations, correlated by time.
    pub fn attach_trace_sink(&self, sink: SharedTraceSink) {
        *self.trace_sink.lock() = Some(sink);
    }

    /// Apply one request. Pure with respect to IO — trivially testable.
    pub fn apply(&self, req: Request) -> Response {
        let name = match &req {
            Request::Get { .. } => "net.server_get",
            Request::Set { .. } => "net.server_set",
            Request::Del { .. } => "net.server_del",
            Request::Version { .. } => "net.server_version",
            Request::Stats => "net.server_stats",
            Request::Ping => "net.server_ping",
            Request::MGet { .. } => "net.server_mget",
            Request::MSet { .. } => "net.server_mset",
        };
        let sink = self.trace_sink.lock().clone();
        let start = now_nanos();
        let resp = self.apply_inner(req);
        let status = match &resp {
            Response::Error { .. } => SpanStatus::Failed,
            _ => SpanStatus::Ok,
        };
        record_span(&sink, 0, name, "server", start, now_nanos(), 0, status);
        resp
    }

    fn apply_inner(&self, req: Request) -> Response {
        let now = now_nanos();
        let mut store = self.store.lock();
        match req {
            Request::Get { key } => match store.cache.get(&key, now) {
                Some(e) => Response::Value {
                    value: e.value.clone(),
                    version: e.version,
                },
                None => Response::NotFound,
            },
            Request::Set { key, value, ttl_ms } => {
                let version = store.next_version;
                store.next_version += 1;
                let bytes = value.len() as u64;
                let entry = Entry { value, version };
                match ttl_ms {
                    Some(t) => {
                        store
                            .cache
                            .insert_with_ttl(key, entry, bytes, now, t.saturating_mul(1_000_000));
                    }
                    None => {
                        store.cache.insert(key, entry, bytes, now);
                    }
                }
                Response::Stored { version }
            }
            Request::Del { key } => match store.cache.remove(&key) {
                Some(_) => Response::Deleted,
                None => Response::NotFound,
            },
            Request::Version { key } => match store.cache.get(&key, now) {
                Some(e) => Response::VersionIs { version: e.version },
                None => Response::NotFound,
            },
            Request::Stats => {
                let stats = store.cache.stats();
                Response::Stats {
                    hits: stats.hits,
                    misses: stats.misses,
                    entries: store.cache.len() as u64,
                    used_bytes: store.cache.used_bytes(),
                }
            }
            Request::Ping => Response::Pong,
            // Batched ops apply the whole frame under one lock acquisition:
            // that single traversal of socket + lock + dispatch is exactly
            // the fixed per-RPC cost MGET/MSET exist to amortize.
            Request::MGet { keys } => {
                let mut items = Vec::with_capacity(keys.len());
                for key in keys {
                    items.push(
                        store
                            .cache
                            .get(&key, now)
                            .map(|e| (e.value.clone(), e.version)),
                    );
                }
                Response::Values { items }
            }
            Request::MSet { entries, ttl_ms } => {
                let mut versions = Vec::with_capacity(entries.len());
                for (key, value) in entries {
                    let version = store.next_version;
                    store.next_version += 1;
                    let bytes = value.len() as u64;
                    let entry = Entry { value, version };
                    match ttl_ms {
                        Some(t) => {
                            store.cache.insert_with_ttl(
                                key,
                                entry,
                                bytes,
                                now,
                                t.saturating_mul(1_000_000),
                            );
                        }
                        None => {
                            store.cache.insert(key, entry, bytes, now);
                        }
                    }
                    versions.push(version);
                }
                Response::StoredMany { versions }
            }
        }
    }
}

/// A bound-but-not-yet-running server.
pub struct CacheServer {
    listener: TcpListener,
    shared: Arc<Shared>,
    local_addr: SocketAddr,
}

/// Handle to a running server: request shutdown, await completion.
pub struct ServerHandle {
    shutdown_tx: watch::Sender<bool>,
    join: JoinHandle<()>,
    pub shared: Arc<Shared>,
}

impl ServerHandle {
    /// Signal shutdown and wait for the accept loop to exit.
    pub async fn shutdown(self) {
        let _ = self.shutdown_tx.send(true);
        let _ = self.join.await;
    }
}

impl CacheServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) with the given
    /// cache capacity.
    pub async fn bind(addr: &str, capacity_bytes: u64) -> io::Result<CacheServer> {
        let listener = TcpListener::bind(addr).await?;
        let local_addr = listener.local_addr()?;
        Ok(CacheServer {
            listener,
            shared: Arc::new(Shared::new(capacity_bytes)),
            local_addr,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Start serving; returns a handle for shutdown. Connections run as
    /// independent tasks; a failed connection never takes the server down.
    pub fn spawn(self) -> ServerHandle {
        let (shutdown_tx, shutdown_rx) = watch::channel(false);
        let shared = self.shared.clone();
        let listener = self.listener;
        let accept_shared = shared.clone();
        let mut accept_shutdown = shutdown_rx.clone();
        let join = tokio::spawn(async move {
            // Not a `while let`: the shutdown arm breaks the loop too.
            #[allow(clippy::while_let_loop)]
            loop {
                tokio::select! {
                    accepted = listener.accept() => {
                        match accepted {
                            Ok((socket, _peer)) => {
                                let conn_shared = accept_shared.clone();
                                let conn_shutdown = shutdown_rx.clone();
                                tokio::spawn(async move {
                                    let _ = serve_connection(socket, conn_shared, conn_shutdown).await;
                                });
                            }
                            Err(_) => break,
                        }
                    }
                    _ = accept_shutdown.changed() => break,
                }
            }
        });
        ServerHandle {
            shutdown_tx,
            join,
            shared,
        }
    }
}

/// Read frames, apply, write responses, until EOF, error, or shutdown.
async fn serve_connection(
    mut socket: TcpStream,
    shared: Arc<Shared>,
    mut shutdown: watch::Receiver<bool>,
) -> io::Result<()> {
    let mut inbound = BytesMut::with_capacity(8 * 1024);
    let mut outbound = BytesMut::with_capacity(8 * 1024);
    loop {
        // Drain any complete frames already buffered.
        loop {
            match Request::decode(&mut inbound) {
                Ok(req) => {
                    let resp = shared.apply(req);
                    outbound.clear();
                    resp.encode(&mut outbound);
                    socket.write_all(&outbound).await?;
                }
                Err(CodecError::Incomplete) => break,
                Err(e) => {
                    // Protocol violation: answer once, then hang up.
                    outbound.clear();
                    Response::Error {
                        message: e.to_string(),
                    }
                    .encode(&mut outbound);
                    let _ = socket.write_all(&outbound).await;
                    return Ok(());
                }
            }
        }
        tokio::select! {
            read = socket.read_buf(&mut inbound) => {
                if read? == 0 {
                    return Ok(()); // clean EOF
                }
            }
            _ = shutdown.changed() => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_set_get_del_version() {
        let shared = Shared::new(1 << 20);
        let v1 = match shared.apply(Request::Set {
            key: b"k".to_vec(),
            value: b"hello".to_vec(),
            ttl_ms: None,
        }) {
            Response::Stored { version } => version,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            shared.apply(Request::Get { key: b"k".to_vec() }),
            Response::Value {
                value: b"hello".to_vec(),
                version: v1
            }
        );
        assert_eq!(
            shared.apply(Request::Version { key: b"k".to_vec() }),
            Response::VersionIs { version: v1 }
        );
        // Overwrite bumps the version.
        let v2 = match shared.apply(Request::Set {
            key: b"k".to_vec(),
            value: b"world".to_vec(),
            ttl_ms: None,
        }) {
            Response::Stored { version } => version,
            other => panic!("{other:?}"),
        };
        assert!(v2 > v1);
        assert_eq!(shared.apply(Request::Del { key: b"k".to_vec() }), Response::Deleted);
        assert_eq!(
            shared.apply(Request::Get { key: b"k".to_vec() }),
            Response::NotFound
        );
        assert_eq!(
            shared.apply(Request::Del { key: b"k".to_vec() }),
            Response::NotFound
        );
    }

    #[test]
    fn stats_track_traffic() {
        let shared = Shared::new(1 << 20);
        shared.apply(Request::Set {
            key: b"a".to_vec(),
            value: vec![0; 100],
            ttl_ms: None,
        });
        shared.apply(Request::Get { key: b"a".to_vec() });
        shared.apply(Request::Get { key: b"nope".to_vec() });
        match shared.apply(Request::Stats) {
            Response::Stats {
                hits,
                misses,
                entries,
                used_bytes,
            } => {
                assert_eq!(hits, 1);
                assert_eq!(misses, 1);
                assert_eq!(entries, 1);
                assert!(used_bytes >= 100);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ping_pongs() {
        let shared = Shared::new(1024);
        assert_eq!(shared.apply(Request::Ping), Response::Pong);
    }

    #[test]
    fn mset_then_mget_match_sequential_semantics() {
        let shared = Shared::new(1 << 20);
        let versions = match shared.apply(Request::MSet {
            entries: vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"b".to_vec(), b"22".to_vec()),
                (b"c".to_vec(), b"333".to_vec()),
            ],
            ttl_ms: None,
        }) {
            Response::StoredMany { versions } => versions,
            other => panic!("{other:?}"),
        };
        assert_eq!(versions.len(), 3);
        // Versions are assigned in entry order, strictly increasing — the
        // same sequence three sequential SETs would have produced.
        assert!(versions.windows(2).all(|w| w[0] < w[1]));

        match shared.apply(Request::MGet {
            keys: vec![b"b".to_vec(), b"missing".to_vec(), b"a".to_vec()],
        }) {
            Response::Values { items } => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[0], Some((b"22".to_vec(), versions[1])));
                assert_eq!(items[1], None);
                assert_eq!(items[2], Some((b"1".to_vec(), versions[0])));
            }
            other => panic!("{other:?}"),
        }

        // Empty batches are legal no-ops.
        assert_eq!(
            shared.apply(Request::MGet { keys: vec![] }),
            Response::Values { items: vec![] }
        );
        assert_eq!(
            shared.apply(Request::MSet {
                entries: vec![],
                ttl_ms: None
            }),
            Response::StoredMany { versions: vec![] }
        );
    }

    #[test]
    fn capacity_evicts_under_pressure() {
        let shared = Shared::new(1_000);
        for i in 0..100u8 {
            shared.apply(Request::Set {
                key: vec![i],
                value: vec![0; 100],
                ttl_ms: None,
            });
        }
        match shared.apply(Request::Stats) {
            Response::Stats { entries, used_bytes, .. } => {
                assert!(entries < 100);
                assert!(used_bytes <= 1_000);
            }
            other => panic!("{other:?}"),
        }
    }
}
