//! The wire format.
//!
//! Every message is one frame: a `u32` little-endian length prefix followed
//! by `length` payload bytes. The payload starts with a one-byte tag, then
//! tag-specific fields; variable-length fields are `u32`-length-prefixed.
//! Frames are capped at 16 MiB — a malicious or corrupt length prefix must
//! not make the server allocate unbounded memory.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Upper bound on one frame's payload (16 MiB).
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Fetch a value (and its version).
    Get { key: Vec<u8> },
    /// Store a value; optional TTL in milliseconds.
    Set {
        key: Vec<u8>,
        value: Vec<u8>,
        ttl_ms: Option<u64>,
    },
    /// Remove a key.
    Del { key: Vec<u8> },
    /// Read only the key's version — the §5.5 version check on the wire.
    Version { key: Vec<u8> },
    /// Server statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Batched GET: fetch many keys in one frame, amortizing the per-frame
    /// cost (syscalls, framing, scheduling) over the whole batch.
    MGet { keys: Vec<Vec<u8>> },
    /// Batched SET: store many entries in one frame. One optional TTL
    /// applies to every entry in the batch.
    MSet {
        entries: Vec<(Vec<u8>, Vec<u8>)>,
        ttl_ms: Option<u64>,
    },
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// GET hit: the value and its version.
    Value { value: Vec<u8>, version: u64 },
    /// GET/VERSION miss or DEL of an absent key.
    NotFound,
    /// SET acknowledged with the assigned version.
    Stored { version: u64 },
    /// DEL removed the key.
    Deleted,
    /// VERSION hit.
    VersionIs { version: u64 },
    /// Aggregate statistics.
    Stats {
        hits: u64,
        misses: u64,
        entries: u64,
        used_bytes: u64,
    },
    Pong,
    /// Protocol or server error, with a human-readable reason.
    Error { message: String },
    /// MGET reply: one entry per requested key, in request order.
    /// `None` marks a miss.
    Values {
        items: Vec<Option<(Vec<u8>, u64)>>,
    },
    /// MSET acknowledged: the assigned versions, in request order.
    StoredMany { versions: Vec<u64> },
}

/// Errors surfaced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Not enough bytes yet — keep reading (not a failure).
    Incomplete,
    /// Frame advertises a payload beyond [`MAX_FRAME_BYTES`].
    FrameTooLarge(usize),
    /// Payload malformed at the given description.
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Incomplete => write!(f, "frame incomplete"),
            CodecError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds cap"),
            CodecError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn put_bytes(buf: &mut BytesMut, bytes: &[u8]) {
    buf.put_u32_le(bytes.len() as u32);
    buf.put_slice(bytes);
}

fn take_bytes(buf: &mut Bytes) -> Result<Vec<u8>, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Corrupt("missing length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(CodecError::Corrupt("truncated field"));
    }
    Ok(buf.copy_to_bytes(len).to_vec())
}

fn take_u64(buf: &mut Bytes) -> Result<u64, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::Corrupt("missing u64"));
    }
    Ok(buf.get_u64_le())
}

/// Read a batch element count. Guards against corrupt counts before any
/// allocation: each element occupies at least `min_elem_bytes` of payload,
/// so a larger count cannot be honest.
fn take_count(buf: &mut Bytes, min_elem_bytes: usize) -> Result<usize, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Corrupt("missing count"));
    }
    let count = buf.get_u32_le() as usize;
    if count > buf.remaining() / min_elem_bytes.max(1) {
        return Err(CodecError::Corrupt("batch count exceeds payload"));
    }
    Ok(count)
}

impl Request {
    /// Append this request as one frame (length prefix included).
    pub fn encode(&self, buf: &mut BytesMut) {
        let mut payload = BytesMut::new();
        match self {
            Request::Get { key } => {
                payload.put_u8(0);
                put_bytes(&mut payload, key);
            }
            Request::Set { key, value, ttl_ms } => {
                payload.put_u8(1);
                put_bytes(&mut payload, key);
                put_bytes(&mut payload, value);
                match ttl_ms {
                    None => payload.put_u8(0),
                    Some(t) => {
                        payload.put_u8(1);
                        payload.put_u64_le(*t);
                    }
                }
            }
            Request::Del { key } => {
                payload.put_u8(2);
                put_bytes(&mut payload, key);
            }
            Request::Version { key } => {
                payload.put_u8(3);
                put_bytes(&mut payload, key);
            }
            Request::Stats => payload.put_u8(4),
            Request::Ping => payload.put_u8(5),
            Request::MGet { keys } => {
                payload.put_u8(6);
                payload.put_u32_le(keys.len() as u32);
                for key in keys {
                    put_bytes(&mut payload, key);
                }
            }
            Request::MSet { entries, ttl_ms } => {
                payload.put_u8(7);
                payload.put_u32_le(entries.len() as u32);
                for (key, value) in entries {
                    put_bytes(&mut payload, key);
                    put_bytes(&mut payload, value);
                }
                match ttl_ms {
                    None => payload.put_u8(0),
                    Some(t) => {
                        payload.put_u8(1);
                        payload.put_u64_le(*t);
                    }
                }
            }
        }
        buf.put_u32_le(payload.len() as u32);
        buf.extend_from_slice(&payload);
    }

    /// Try to decode one frame from the front of `buf`. On success the
    /// frame's bytes are consumed; on [`CodecError::Incomplete`] nothing is.
    pub fn decode(buf: &mut BytesMut) -> Result<Request, CodecError> {
        let mut payload = split_frame(buf)?;
        let tag = payload.get_u8();
        let req = match tag {
            0 => Request::Get {
                key: take_bytes(&mut payload)?,
            },
            1 => {
                let key = take_bytes(&mut payload)?;
                let value = take_bytes(&mut payload)?;
                if payload.remaining() < 1 {
                    return Err(CodecError::Corrupt("missing ttl flag"));
                }
                let ttl_ms = match payload.get_u8() {
                    0 => None,
                    1 => Some(take_u64(&mut payload)?),
                    _ => return Err(CodecError::Corrupt("bad ttl flag")),
                };
                Request::Set { key, value, ttl_ms }
            }
            2 => Request::Del {
                key: take_bytes(&mut payload)?,
            },
            3 => Request::Version {
                key: take_bytes(&mut payload)?,
            },
            4 => Request::Stats,
            5 => Request::Ping,
            6 => {
                let count = take_count(&mut payload, 4)?;
                let mut keys = Vec::with_capacity(count);
                for _ in 0..count {
                    keys.push(take_bytes(&mut payload)?);
                }
                Request::MGet { keys }
            }
            7 => {
                let count = take_count(&mut payload, 8)?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let key = take_bytes(&mut payload)?;
                    let value = take_bytes(&mut payload)?;
                    entries.push((key, value));
                }
                if payload.remaining() < 1 {
                    return Err(CodecError::Corrupt("missing ttl flag"));
                }
                let ttl_ms = match payload.get_u8() {
                    0 => None,
                    1 => Some(take_u64(&mut payload)?),
                    _ => return Err(CodecError::Corrupt("bad ttl flag")),
                };
                Request::MSet { entries, ttl_ms }
            }
            _ => return Err(CodecError::Corrupt("unknown request tag")),
        };
        if payload.has_remaining() {
            return Err(CodecError::Corrupt("trailing bytes"));
        }
        Ok(req)
    }
}

impl Response {
    pub fn encode(&self, buf: &mut BytesMut) {
        let mut payload = BytesMut::new();
        match self {
            Response::Value { value, version } => {
                payload.put_u8(0);
                put_bytes(&mut payload, value);
                payload.put_u64_le(*version);
            }
            Response::NotFound => payload.put_u8(1),
            Response::Stored { version } => {
                payload.put_u8(2);
                payload.put_u64_le(*version);
            }
            Response::Deleted => payload.put_u8(3),
            Response::VersionIs { version } => {
                payload.put_u8(4);
                payload.put_u64_le(*version);
            }
            Response::Stats {
                hits,
                misses,
                entries,
                used_bytes,
            } => {
                payload.put_u8(5);
                payload.put_u64_le(*hits);
                payload.put_u64_le(*misses);
                payload.put_u64_le(*entries);
                payload.put_u64_le(*used_bytes);
            }
            Response::Pong => payload.put_u8(6),
            Response::Error { message } => {
                payload.put_u8(7);
                put_bytes(&mut payload, message.as_bytes());
            }
            Response::Values { items } => {
                payload.put_u8(8);
                payload.put_u32_le(items.len() as u32);
                for item in items {
                    match item {
                        None => payload.put_u8(0),
                        Some((value, version)) => {
                            payload.put_u8(1);
                            put_bytes(&mut payload, value);
                            payload.put_u64_le(*version);
                        }
                    }
                }
            }
            Response::StoredMany { versions } => {
                payload.put_u8(9);
                payload.put_u32_le(versions.len() as u32);
                for v in versions {
                    payload.put_u64_le(*v);
                }
            }
        }
        buf.put_u32_le(payload.len() as u32);
        buf.extend_from_slice(&payload);
    }

    pub fn decode(buf: &mut BytesMut) -> Result<Response, CodecError> {
        let mut payload = split_frame(buf)?;
        let tag = payload.get_u8();
        let resp = match tag {
            0 => Response::Value {
                value: take_bytes(&mut payload)?,
                version: take_u64(&mut payload)?,
            },
            1 => Response::NotFound,
            2 => Response::Stored {
                version: take_u64(&mut payload)?,
            },
            3 => Response::Deleted,
            4 => Response::VersionIs {
                version: take_u64(&mut payload)?,
            },
            5 => Response::Stats {
                hits: take_u64(&mut payload)?,
                misses: take_u64(&mut payload)?,
                entries: take_u64(&mut payload)?,
                used_bytes: take_u64(&mut payload)?,
            },
            6 => Response::Pong,
            7 => Response::Error {
                message: String::from_utf8(take_bytes(&mut payload)?)
                    .map_err(|_| CodecError::Corrupt("error message not utf8"))?,
            },
            8 => {
                let count = take_count(&mut payload, 1)?;
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    if payload.remaining() < 1 {
                        return Err(CodecError::Corrupt("missing hit flag"));
                    }
                    match payload.get_u8() {
                        0 => items.push(None),
                        1 => {
                            let value = take_bytes(&mut payload)?;
                            let version = take_u64(&mut payload)?;
                            items.push(Some((value, version)));
                        }
                        _ => return Err(CodecError::Corrupt("bad hit flag")),
                    }
                }
                Response::Values { items }
            }
            9 => {
                let count = take_count(&mut payload, 8)?;
                let mut versions = Vec::with_capacity(count);
                for _ in 0..count {
                    versions.push(take_u64(&mut payload)?);
                }
                Response::StoredMany { versions }
            }
            _ => return Err(CodecError::Corrupt("unknown response tag")),
        };
        if payload.has_remaining() {
            return Err(CodecError::Corrupt("trailing bytes"));
        }
        Ok(resp)
    }
}

/// Split one complete frame's payload off the front of `buf`.
fn split_frame(buf: &mut BytesMut) -> Result<Bytes, CodecError> {
    if buf.len() < 4 {
        return Err(CodecError::Incomplete);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(CodecError::FrameTooLarge(len));
    }
    if len == 0 {
        return Err(CodecError::Corrupt("empty frame"));
    }
    if buf.len() < 4 + len {
        return Err(CodecError::Incomplete);
    }
    buf.advance(4);
    Ok(buf.split_to(len).freeze())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let mut buf = BytesMut::new();
        req.encode(&mut buf);
        let decoded = Request::decode(&mut buf).unwrap();
        assert_eq!(decoded, req);
        assert!(buf.is_empty(), "frame fully consumed");
    }

    fn round_trip_response(resp: Response) {
        let mut buf = BytesMut::new();
        resp.encode(&mut buf);
        let decoded = Response::decode(&mut buf).unwrap();
        assert_eq!(decoded, resp);
        assert!(buf.is_empty());
    }

    #[test]
    fn all_request_variants_round_trip() {
        round_trip_request(Request::Get { key: b"k".to_vec() });
        round_trip_request(Request::Set {
            key: b"key".to_vec(),
            value: vec![0; 1000],
            ttl_ms: None,
        });
        round_trip_request(Request::Set {
            key: vec![],
            value: vec![],
            ttl_ms: Some(30_000),
        });
        round_trip_request(Request::Del { key: b"gone".to_vec() });
        round_trip_request(Request::Version { key: b"v".to_vec() });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Ping);
        round_trip_request(Request::MGet { keys: vec![] });
        round_trip_request(Request::MGet {
            keys: vec![b"a".to_vec(), vec![], vec![7; 300]],
        });
        round_trip_request(Request::MSet {
            entries: vec![],
            ttl_ms: None,
        });
        round_trip_request(Request::MSet {
            entries: vec![
                (b"k1".to_vec(), vec![1; 100]),
                (vec![], vec![]),
                (b"k3".to_vec(), vec![3; 4096]),
            ],
            ttl_ms: Some(12_345),
        });
    }

    #[test]
    fn all_response_variants_round_trip() {
        round_trip_response(Response::Value {
            value: vec![9; 123],
            version: 42,
        });
        round_trip_response(Response::NotFound);
        round_trip_response(Response::Stored { version: 7 });
        round_trip_response(Response::Deleted);
        round_trip_response(Response::VersionIs { version: u64::MAX });
        round_trip_response(Response::Stats {
            hits: 1,
            misses: 2,
            entries: 3,
            used_bytes: 4,
        });
        round_trip_response(Response::Pong);
        round_trip_response(Response::Error {
            message: "nope".into(),
        });
        round_trip_response(Response::Values { items: vec![] });
        round_trip_response(Response::Values {
            items: vec![
                Some((vec![1; 64], 9)),
                None,
                Some((vec![], u64::MAX)),
                None,
            ],
        });
        round_trip_response(Response::StoredMany { versions: vec![] });
        round_trip_response(Response::StoredMany {
            versions: vec![1, 2, u64::MAX],
        });
    }

    #[test]
    fn dishonest_batch_counts_are_rejected_before_allocation() {
        // An MGET frame claiming u32::MAX keys in a 16-byte payload must be
        // rejected by the count guard, not by a giant Vec::with_capacity.
        let mut buf = BytesMut::new();
        let mut payload = BytesMut::new();
        payload.put_u8(6);
        payload.put_u32_le(u32::MAX);
        payload.put_slice(&[0; 16]);
        buf.put_u32_le(payload.len() as u32);
        buf.extend_from_slice(&payload);
        assert_eq!(
            Request::decode(&mut buf),
            Err(CodecError::Corrupt("batch count exceeds payload"))
        );

        // Same for a Values response claiming more items than bytes.
        let mut buf = BytesMut::new();
        let mut payload = BytesMut::new();
        payload.put_u8(8);
        payload.put_u32_le(1_000);
        payload.put_slice(&[0; 8]);
        buf.put_u32_le(payload.len() as u32);
        buf.extend_from_slice(&payload);
        assert_eq!(
            Response::decode(&mut buf),
            Err(CodecError::Corrupt("batch count exceeds payload"))
        );
    }

    #[test]
    fn batch_frames_with_trailing_bytes_are_rejected() {
        // An MGET payload with one key plus a stray trailing byte.
        let mut payload = BytesMut::new();
        payload.put_u8(6);
        payload.put_u32_le(1);
        put_bytes(&mut payload, b"k");
        payload.put_u8(0xAB);
        let mut buf = BytesMut::new();
        buf.put_u32_le(payload.len() as u32);
        buf.extend_from_slice(&payload);
        assert_eq!(
            Request::decode(&mut buf),
            Err(CodecError::Corrupt("trailing bytes"))
        );
    }

    #[test]
    fn partial_frames_report_incomplete_and_consume_nothing() {
        let mut buf = BytesMut::new();
        Request::Get { key: b"abcdef".to_vec() }.encode(&mut buf);
        let full = buf.clone();
        for cut in 0..full.len() {
            let mut partial = BytesMut::from(&full[..cut]);
            let before = partial.len();
            assert_eq!(Request::decode(&mut partial), Err(CodecError::Incomplete));
            assert_eq!(partial.len(), before, "incomplete must not consume");
        }
    }

    #[test]
    fn two_frames_decode_in_order() {
        let mut buf = BytesMut::new();
        Request::Ping.encode(&mut buf);
        Request::Stats.encode(&mut buf);
        assert_eq!(Request::decode(&mut buf).unwrap(), Request::Ping);
        assert_eq!(Request::decode(&mut buf).unwrap(), Request::Stats);
        assert_eq!(Request::decode(&mut buf), Err(CodecError::Incomplete));
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut buf = BytesMut::new();
        buf.put_u32_le((MAX_FRAME_BYTES + 1) as u32);
        buf.put_slice(&[0; 16]);
        assert!(matches!(
            Request::decode(&mut buf),
            Err(CodecError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn corrupt_tags_and_trailing_bytes_are_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_u8(99);
        assert!(matches!(
            Request::decode(&mut buf),
            Err(CodecError::Corrupt(_))
        ));

        // A Ping with a trailing byte.
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        buf.put_u8(5);
        buf.put_u8(0xAA);
        assert!(matches!(
            Request::decode(&mut buf),
            Err(CodecError::Corrupt("trailing bytes"))
        ));
    }

    #[test]
    fn empty_frame_is_corrupt() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        assert!(matches!(
            Request::decode(&mut buf),
            Err(CodecError::Corrupt("empty frame"))
        ));
    }
}
