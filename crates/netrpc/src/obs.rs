//! Wall-clock tracing for the real network path.
//!
//! The simulator records spans in virtual nanoseconds; this module is the
//! live-system twin. A [`SharedTraceSink`] is a `telemetry::TraceSink`
//! behind `Arc<Mutex<…>>` so the server's connection tasks and a client on
//! another thread can append to the same ring buffer. Timestamps are
//! wall-clock nanoseconds since the Unix epoch — not deterministic (this is
//! a real network), but the span *structure* (names, attempts, statuses)
//! is, and that is what the tests assert.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};
use telemetry::{SpanRecord, SpanStatus, TraceSink};

/// A trace sink shareable across tasks and threads.
pub type SharedTraceSink = Arc<Mutex<TraceSink>>;

/// Build a shared sink with the given ring capacity.
pub fn shared_sink(capacity: usize) -> SharedTraceSink {
    Arc::new(Mutex::new(TraceSink::with_capacity(capacity)))
}

/// Wall-clock nanoseconds since the Unix epoch (0 if the clock is broken).
pub fn wall_nanos() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Append one span if a sink is attached; no-op (and no lock) otherwise.
#[allow(clippy::too_many_arguments)]
pub(crate) fn record_span(
    sink: &Option<SharedTraceSink>,
    trace_id: u64,
    name: &'static str,
    tier: &'static str,
    start_ns: u64,
    end_ns: u64,
    attempt: u32,
    status: SpanStatus,
) {
    if let Some(sink) = sink {
        sink.lock().record(SpanRecord {
            trace_id,
            name,
            tier,
            start_ns,
            end_ns,
            attempt,
            status,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_span_is_noop_without_sink() {
        record_span(&None, 1, "x", "client", 0, 1, 0, SpanStatus::Ok);
    }

    #[test]
    fn record_span_appends_to_shared_sink() {
        let sink = shared_sink(16);
        record_span(
            &Some(sink.clone()),
            7,
            "net.get",
            "client",
            10,
            25,
            0,
            SpanStatus::Ok,
        );
        record_span(
            &Some(sink.clone()),
            7,
            "net.get",
            "client",
            30,
            45,
            1,
            SpanStatus::Failed,
        );
        let guard = sink.lock();
        let spans = guard.spans_for(7);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].attempt, 0);
        assert_eq!(spans[1].status, SpanStatus::Failed);
    }

    #[test]
    fn wall_clock_is_monotonic_enough() {
        let a = wall_nanos();
        let b = wall_nanos();
        assert!(b >= a);
    }
}
