//! Standalone remote-cache server.
//!
//! ```sh
//! cargo run --release -p netrpc --bin cache_server -- 127.0.0.1:7600 256
//! #                                                    [addr]        [capacity MiB]
//! ```
//!
//! Speaks the `netrpc` length-prefixed protocol (GET/SET/DEL/VERSION/STATS/
//! PING). Shuts down cleanly on ctrl-c. Pair it with
//! `examples/live_remote_cache.rs` or the `netrpc::CacheClient` API.

use netrpc::CacheServer;

#[tokio::main]
async fn main() -> std::io::Result<()> {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:7600".to_string());
    let capacity_mib: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);

    let server = CacheServer::bind(&addr, capacity_mib << 20).await?;
    println!(
        "cache_server listening on {} (capacity {} MiB); ctrl-c to stop",
        server.local_addr(),
        capacity_mib
    );
    let handle = server.spawn();

    tokio::signal::ctrl_c().await?;
    println!("shutting down");
    handle.shutdown().await;
    Ok(())
}
