//! # netrpc — a real remote cache over real sockets
//!
//! The simulator charges *modeled* CPU for RPC and cache operations; this
//! crate is the grounding for those constants and the live demonstration of
//! the paper's **Remote** architecture (Figure 1b): a Memcached/Redis-style
//! versioned cache server speaking a length-prefixed binary protocol over
//! TCP, built on tokio per the project's networking guides.
//!
//! * [`codec`] — the wire format: `u32` length prefix + tagged payload,
//!   encoded/decoded with `bytes`. Every message round-trips bit-exactly
//!   (property-tested). Includes the batched `MGET`/`MSET` operations,
//!   which carry many keys/entries per frame so the fixed per-RPC cost
//!   (syscalls, framing, scheduling) is paid once per batch.
//! * [`server`] — the cache server: one tokio task per connection, a
//!   sharded in-memory store built on [`cachekit::Cache`], per-key MVCC
//!   versions (`SET` returns the new version; `VERSION` reads it — the
//!   §5.5 "version check" as a real network operation), whole-batch
//!   `MGET`/`MSET` application under a single lock acquisition, and
//!   graceful shutdown via a watch channel.
//! * [`client`] — a straightforward request/response client, including
//!   `mget`/`mset` batch helpers.
//! * [`resilient`] — the fault-tolerant client: per-request deadlines,
//!   automatic reconnect with jittered backoff, bounded retries on
//!   idempotent operations (GET / VERSION / STATS / PING / MGET — a
//!   batched read is still safe to replay; MSET, like SET, is attempted
//!   once), and an open/half-open circuit breaker.
//! * [`obs`] — wall-clock tracing: attach a [`obs::SharedTraceSink`] to
//!   the resilient client and/or the server's [`server::Shared`] and every
//!   RPC attempt / server apply records a `telemetry` span.
//!
//! ```no_run
//! # async fn demo() -> std::io::Result<()> {
//! use netrpc::{client::CacheClient, server::CacheServer};
//!
//! let server = CacheServer::bind("127.0.0.1:0", 64 << 20).await?;
//! let addr = server.local_addr();
//! let handle = server.spawn();
//!
//! let mut client = CacheClient::connect(addr).await?;
//! let version = client.set(b"k", b"v", None).await?;
//! assert_eq!(client.get(b"k").await?, Some((b"v".to_vec(), version)));
//! handle.shutdown().await;
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod codec;
pub mod obs;
pub mod resilient;
pub mod server;

pub use client::CacheClient;
pub use obs::{shared_sink, SharedTraceSink};
pub use codec::{Request, Response};
pub use resilient::{ResilienceStats, ResilientClient, ResilientConfig, RetryPolicy};
pub use server::{CacheServer, ServerHandle};
