//! A fault-tolerant wrapper over [`CacheClient`]: per-request deadlines,
//! automatic reconnect with jittered exponential backoff, bounded retries
//! on idempotent operations, and an open/half-open circuit breaker.
//!
//! The plain client assumes a healthy server; this one assumes the opposite.
//! Every call carries a deadline (`tokio::time::timeout`), so a server that
//! dies mid-response produces a prompt error instead of a hang. Failed
//! connections are dropped and transparently re-dialed on the next call.
//! Read-only operations (GET / VERSION / STATS / PING) are retried up to
//! [`RetryPolicy::max_retries`] times; mutations (SET / DEL) are attempted
//! once, because a timed-out SET may or may not have been applied and
//! blind replay would widen the ambiguity window.
//!
//! The breaker trips after [`ResilientConfig::failure_threshold`]
//! consecutive failures: while open, calls fail fast without touching the
//! socket; after [`ResilientConfig::open_for`], one half-open probe is let
//! through — success closes the breaker, failure re-opens it with an
//! exponentially widened window (`open_for · 2^streak`, capped), so a
//! server that keeps failing its probes is bothered less and less often.
//!
//! Backoff jitter comes from a small splitmix/LCG seeded at construction,
//! so the crate stays free of heavyweight RNG dependencies and two clients
//! built with the same seed behave identically.

use crate::client::CacheClient;
use crate::codec::{Request, Response};
use crate::obs::{record_span, wall_nanos, SharedTraceSink};
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};
use telemetry::SpanStatus;
use tokio::time::timeout;

/// Retry schedule for idempotent calls: exponential backoff from
/// `base_backoff` doubling per attempt, capped at `max_backoff`, stretched
/// by up to `jitter` (fraction of the computed delay).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Extra attempts after the first (0 = no retry).
    pub max_retries: u32,
    pub base_backoff: Duration,
    pub max_backoff: Duration,
    /// 0.0–1.0: max fractional stretch added to each delay.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// Delay before retry number `attempt` (0-based), with `unit` ∈ [0, 1)
    /// supplying the jitter draw. `max_backoff` bounds the *jittered* delay:
    /// clamping before stretching let the result exceed the configured
    /// maximum by up to `1 + jitter`×.
    pub fn backoff(&self, attempt: u32, unit: f64) -> Duration {
        let exp = self.base_backoff.saturating_mul(1u32 << attempt.min(16));
        let jittered = exp.mul_f64(1.0 + self.jitter.clamp(0.0, 1.0) * unit.clamp(0.0, 1.0));
        jittered.min(self.max_backoff)
    }
}

/// Knobs for [`ResilientClient`].
#[derive(Debug, Clone)]
pub struct ResilientConfig {
    /// Deadline for a single attempt (dial excluded — see
    /// `connect_timeout`). A hit turns into `ErrorKind::TimedOut` and drops
    /// the connection.
    pub request_timeout: Duration,
    pub connect_timeout: Duration,
    pub retry: RetryPolicy,
    /// Consecutive failures before the breaker opens.
    pub failure_threshold: u32,
    /// How long the breaker stays open before a half-open probe.
    pub open_for: Duration,
    /// Seed for the jitter RNG (fixed default keeps tests reproducible).
    pub jitter_seed: u64,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            request_timeout: Duration::from_secs(1),
            connect_timeout: Duration::from_secs(1),
            retry: RetryPolicy::default(),
            failure_threshold: 3,
            open_for: Duration::from_millis(500),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// Observable resilience counters (monotonic since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Successful (re)dials, including the first.
    pub connects: u64,
    /// Idempotent-call retries performed.
    pub retries: u64,
    /// Attempts that hit the request deadline.
    pub timeouts: u64,
    /// Closed/half-open → open transitions.
    pub breaker_opens: u64,
    /// Calls rejected without touching the socket (breaker open).
    pub fast_failures: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    Closed,
    Open,
    HalfOpen,
}

/// Minimal 64-bit LCG (Knuth's MMIX constants); top bits → unit interval.
#[derive(Debug)]
struct Lcg(u64);

impl Lcg {
    fn next_unit(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The fault-tolerant client. Like [`CacheClient`], one in-flight request
/// at a time; unlike it, survives server crashes and restarts.
pub struct ResilientClient {
    addr: SocketAddr,
    cfg: ResilientConfig,
    conn: Option<CacheClient>,
    breaker: Breaker,
    opened_at: Option<Instant>,
    consecutive_failures: u32,
    /// Consecutive failed half-open probes since the breaker first
    /// tripped; each one doubles the open window (capped). Reset on any
    /// success.
    reopen_streak: u32,
    rng: Lcg,
    stats: ResilienceStats,
    trace_sink: Option<SharedTraceSink>,
    trace_id: u64,
}

fn protocol_err(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl ResilientClient {
    /// Build without dialing; the first call connects lazily.
    pub fn new(addr: SocketAddr, cfg: ResilientConfig) -> Self {
        let seed = cfg.jitter_seed;
        ResilientClient {
            addr,
            cfg,
            conn: None,
            breaker: Breaker::Closed,
            opened_at: None,
            consecutive_failures: 0,
            reopen_streak: 0,
            rng: Lcg(seed),
            stats: ResilienceStats::default(),
            trace_sink: None,
            trace_id: 0,
        }
    }

    /// Attach a shared trace sink: every subsequent attempt records one
    /// wall-clock span (`net.rpc_attempt`, tier `client`) under the current
    /// trace id.
    pub fn attach_trace_sink(&mut self, sink: SharedTraceSink) {
        self.trace_sink = Some(sink);
    }

    /// Set the trace id stamped on subsequent spans (e.g. from
    /// `telemetry::trace_id`). Stays in effect until changed.
    pub fn set_trace_id(&mut self, trace_id: u64) {
        self.trace_id = trace_id;
    }

    pub fn stats(&self) -> ResilienceStats {
        self.stats
    }

    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// True while the breaker rejects calls without touching the socket.
    pub fn circuit_open(&self) -> bool {
        self.breaker == Breaker::Open
            && self
                .opened_at
                .map(|t| t.elapsed() < self.open_window())
                .unwrap_or(false)
    }

    /// How long the breaker stays open before the next half-open probe:
    /// `open_for` doubled per failed probe, capped at 2^10 ≈ 1000×.
    fn open_window(&self) -> Duration {
        self.cfg.open_for.saturating_mul(1u32 << self.reopen_streak.min(10))
    }

    fn breaker_admit(&mut self) -> io::Result<()> {
        if self.breaker == Breaker::Open {
            let cooled = self
                .opened_at
                .map(|t| t.elapsed() >= self.open_window())
                .unwrap_or(true);
            if cooled {
                self.breaker = Breaker::HalfOpen;
            } else {
                self.stats.fast_failures += 1;
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "circuit breaker open",
                ));
            }
        }
        Ok(())
    }

    fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.reopen_streak = 0;
        self.breaker = Breaker::Closed;
        self.opened_at = None;
    }

    fn record_failure(&mut self) {
        self.consecutive_failures += 1;
        let probe_failed = self.breaker == Breaker::HalfOpen;
        let trip = probe_failed || self.consecutive_failures >= self.cfg.failure_threshold;
        if probe_failed {
            // A failed probe re-opens with a widened window rather than
            // forgetting the history: the server just proved it is still
            // down, so back off before bothering it again.
            self.reopen_streak += 1;
        }
        if trip && self.breaker != Breaker::Open {
            self.breaker = Breaker::Open;
            self.opened_at = Some(Instant::now());
            self.stats.breaker_opens += 1;
        } else if trip {
            self.opened_at = Some(Instant::now());
        }
    }

    async fn ensure_conn(&mut self) -> io::Result<()> {
        if self.conn.is_none() {
            let dial = CacheClient::connect(self.addr);
            let client = timeout(self.cfg.connect_timeout, dial)
                .await
                .map_err(|_| io::Error::new(io::ErrorKind::TimedOut, "connect timed out"))??;
            self.stats.connects += 1;
            self.conn = Some(client);
        }
        Ok(())
    }

    /// One attempt under the request deadline. Any failure (dial, I/O,
    /// deadline) poisons the connection: a timed-out call may have left
    /// half a frame on the wire, so the socket cannot be reused.
    async fn attempt(&mut self, req: &Request) -> io::Result<Response> {
        self.ensure_conn().await?;
        let deadline = self.cfg.request_timeout;
        let conn = self.conn.as_mut().expect("ensured above");
        match timeout(deadline, conn.call(req.clone())).await {
            Ok(Ok(resp)) => Ok(resp),
            Ok(Err(e)) => {
                self.conn = None;
                Err(e)
            }
            Err(_) => {
                self.conn = None;
                self.stats.timeouts += 1;
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "request deadline exceeded",
                ))
            }
        }
    }

    /// One attempt bracketed by a wall-clock trace span.
    async fn traced_attempt(&mut self, req: &Request, attempt: u32) -> io::Result<Response> {
        let start = wall_nanos();
        let result = self.attempt(req).await;
        let status = if result.is_ok() {
            SpanStatus::Ok
        } else {
            SpanStatus::Failed
        };
        record_span(
            &self.trace_sink,
            self.trace_id,
            "net.rpc_attempt",
            "client",
            start,
            wall_nanos(),
            attempt,
            status,
        );
        result
    }

    /// Call with retries — only for requests safe to replay.
    pub async fn call_idempotent(&mut self, req: Request) -> io::Result<Response> {
        self.breaker_admit()?;
        let mut attempt = 0u32;
        loop {
            match self.traced_attempt(&req, attempt).await {
                Ok(resp) => {
                    self.record_success();
                    return Ok(resp);
                }
                Err(e) => {
                    self.record_failure();
                    let tripped = self.breaker == Breaker::Open;
                    if tripped || attempt >= self.cfg.retry.max_retries {
                        return Err(e);
                    }
                    let unit = self.rng.next_unit();
                    tokio::time::sleep(self.cfg.retry.backoff(attempt, unit)).await;
                    attempt += 1;
                    self.stats.retries += 1;
                }
            }
        }
    }

    /// Single attempt — for mutations, where blind replay after an
    /// ambiguous timeout could double-apply.
    pub async fn call_once(&mut self, req: Request) -> io::Result<Response> {
        self.breaker_admit()?;
        match self.traced_attempt(&req, 0).await {
            Ok(resp) => {
                self.record_success();
                Ok(resp)
            }
            Err(e) => {
                self.record_failure();
                Err(e)
            }
        }
    }

    /// GET with deadline + retries: `Some((value, version))` on hit.
    pub async fn get(&mut self, key: &[u8]) -> io::Result<Option<(Vec<u8>, u64)>> {
        match self
            .call_idempotent(Request::Get { key: key.to_vec() })
            .await?
        {
            Response::Value { value, version } => Ok(Some((value, version))),
            Response::NotFound => Ok(None),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// VERSION with deadline + retries.
    pub async fn version(&mut self, key: &[u8]) -> io::Result<Option<u64>> {
        match self
            .call_idempotent(Request::Version { key: key.to_vec() })
            .await?
        {
            Response::VersionIs { version } => Ok(Some(version)),
            Response::NotFound => Ok(None),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// STATS with deadline + retries: `(hits, misses, entries, used_bytes)`.
    pub async fn stats_remote(&mut self) -> io::Result<(u64, u64, u64, u64)> {
        match self.call_idempotent(Request::Stats).await? {
            Response::Stats {
                hits,
                misses,
                entries,
                used_bytes,
            } => Ok((hits, misses, entries, used_bytes)),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// PING with deadline + retries.
    pub async fn ping(&mut self) -> io::Result<()> {
        match self.call_idempotent(Request::Ping).await? {
            Response::Pong => Ok(()),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// SET with deadline, single attempt: returns the assigned version.
    pub async fn set(&mut self, key: &[u8], value: &[u8], ttl_ms: Option<u64>) -> io::Result<u64> {
        match self
            .call_once(Request::Set {
                key: key.to_vec(),
                value: value.to_vec(),
                ttl_ms,
            })
            .await?
        {
            Response::Stored { version } => Ok(version),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// DEL with deadline, single attempt: true if the key existed.
    pub async fn del(&mut self, key: &[u8]) -> io::Result<bool> {
        match self.call_once(Request::Del { key: key.to_vec() }).await? {
            Response::Deleted => Ok(true),
            Response::NotFound => Ok(false),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// MGET with deadline + retries. A batched read is still a read:
    /// replaying it cannot double-apply anything, so the whole frame is
    /// retried under [`RetryPolicy`] like a single GET.
    pub async fn mget(&mut self, keys: &[&[u8]]) -> io::Result<Vec<Option<(Vec<u8>, u64)>>> {
        let req = Request::MGet {
            keys: keys.iter().map(|k| k.to_vec()).collect(),
        };
        match self.call_idempotent(req).await? {
            Response::Values { items } => {
                if items.len() != keys.len() {
                    return Err(protocol_err(format!(
                        "mget returned {} items for {} keys",
                        items.len(),
                        keys.len()
                    )));
                }
                Ok(items)
            }
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// MSET with deadline, single attempt: a timed-out batch may have been
    /// applied in part or in full on the server, so — like SET — it is
    /// never blindly replayed.
    pub async fn mset(
        &mut self,
        entries: &[(&[u8], &[u8])],
        ttl_ms: Option<u64>,
    ) -> io::Result<Vec<u64>> {
        let req = Request::MSet {
            entries: entries
                .iter()
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect(),
            ttl_ms,
        };
        match self.call_once(req).await? {
            Response::StoredMany { versions } => {
                if versions.len() != entries.len() {
                    return Err(protocol_err(format!(
                        "mset returned {} versions for {} entries",
                        versions.len(),
                        entries.len()
                    )));
                }
                Ok(versions)
            }
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_caps_and_jitters() {
        let p = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(60),
            jitter: 0.5,
        };
        assert_eq!(p.backoff(0, 0.0), Duration::from_millis(10));
        assert_eq!(p.backoff(1, 0.0), Duration::from_millis(20));
        assert_eq!(p.backoff(2, 0.0), Duration::from_millis(40));
        assert_eq!(p.backoff(3, 0.0), Duration::from_millis(60), "capped");
        assert_eq!(p.backoff(0, 1.0), Duration::from_millis(15), "max jitter");
    }

    #[test]
    fn jittered_backoff_never_exceeds_max() {
        // Regression: jitter used to be applied after the clamp, so a
        // capped delay could come out up to (1 + jitter)× the configured
        // maximum. The cap must bound the final, jittered delay.
        let p = RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(60),
            jitter: 0.5,
        };
        for attempt in 0..10 {
            for unit in [0.0, 0.25, 0.5, 0.75, 0.999, 1.0] {
                let b = p.backoff(attempt, unit);
                assert!(
                    b <= p.max_backoff,
                    "attempt {attempt} unit {unit}: {b:?} exceeds max {:?}",
                    p.max_backoff
                );
            }
        }
        // At the cap, jitter has nothing left to stretch.
        assert_eq!(p.backoff(3, 1.0), Duration::from_millis(60));
        // Below the cap, jitter still applies in full.
        assert_eq!(p.backoff(1, 1.0), Duration::from_millis(30));
    }

    fn test_client() -> ResilientClient {
        ResilientClient::new("127.0.0.1:1".parse().unwrap(), ResilientConfig::default())
    }

    #[test]
    fn failed_probes_reopen_with_widening_windows() {
        let mut c = test_client();
        for _ in 0..c.cfg.failure_threshold {
            c.record_failure();
        }
        assert_eq!(c.breaker, Breaker::Open);
        assert_eq!(c.stats.breaker_opens, 1);
        assert_eq!(c.open_window(), c.cfg.open_for);
        // Still hot: calls fail fast.
        assert!(c.breaker_admit().is_err());
        assert_eq!(c.stats.fast_failures, 1);
        // Cooled (rewind the clock instead of sleeping): one probe passes.
        c.opened_at = Some(Instant::now() - c.open_window());
        assert!(c.breaker_admit().is_ok());
        assert_eq!(c.breaker, Breaker::HalfOpen);
        // The probe fails → re-open with a doubled window.
        c.record_failure();
        assert_eq!(c.breaker, Breaker::Open);
        assert_eq!(c.stats.breaker_opens, 2);
        assert_eq!(c.open_window(), c.cfg.open_for * 2);
        // Another failed probe doubles it again.
        c.opened_at = Some(Instant::now() - c.open_window());
        assert!(c.breaker_admit().is_ok());
        c.record_failure();
        assert_eq!(c.open_window(), c.cfg.open_for * 4);
        // The old cool-down no longer admits: the window widened.
        c.opened_at = Some(Instant::now() - c.cfg.open_for * 2);
        assert!(c.breaker_admit().is_err(), "must respect the backed-off window");
        assert!(c.circuit_open());
    }

    #[test]
    fn successful_probe_closes_and_resets_the_backoff() {
        let mut c = test_client();
        for _ in 0..c.cfg.failure_threshold {
            c.record_failure();
        }
        c.opened_at = Some(Instant::now() - c.open_window());
        assert!(c.breaker_admit().is_ok());
        c.record_failure(); // failed probe: streak 1
        c.opened_at = Some(Instant::now() - c.open_window());
        assert!(c.breaker_admit().is_ok());
        c.record_success(); // probe lands: closed, history forgotten
        assert_eq!(c.breaker, Breaker::Closed);
        assert_eq!(c.consecutive_failures, 0);
        assert_eq!(c.open_window(), c.cfg.open_for, "backoff reset");
        // A fresh outage needs a full threshold again, and starts over at
        // the base window.
        c.record_failure();
        c.record_failure();
        assert_eq!(c.breaker, Breaker::Closed);
        c.record_failure();
        assert_eq!(c.breaker, Breaker::Open);
        assert_eq!(c.stats.breaker_opens, 3);
        assert_eq!(c.open_window(), c.cfg.open_for);
    }

    #[test]
    fn lcg_is_deterministic_and_in_unit_interval() {
        let mut a = Lcg(42);
        let mut b = Lcg(42);
        for _ in 0..1000 {
            let x = a.next_unit();
            assert_eq!(x, b.next_unit());
            assert!((0.0..1.0).contains(&x));
        }
    }
}
