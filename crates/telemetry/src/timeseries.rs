//! Windowed time-series recorder: a flight recorder over *simulated* time.
//!
//! End-of-run means erase every transient the simulator now produces —
//! diurnal resizes, crash-recovery stalls, fault windows, retry storms. The
//! [`TimeSeries`] captures one [`Sample`] per heartbeat of simulated time
//! (hit ratio, busy cores, cache bytes, window p99, ...) into a bounded
//! ring, plus interval [`Annotation`]s for fault windows and elastic resize
//! events. Like everything in this crate it is deterministic: samples carry
//! their own timestamps and a series tag, so recorders produced by parallel
//! sweep workers merge into the same bytes regardless of merge order.
//!
//! Exports: JSONL (one object per sample, then one per annotation) and a
//! self-contained HTML dashboard with inline SVG sparklines — no external
//! assets, viewable from a CI artifact tarball.

use crate::json::{fmt_f64, push_json_str};
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::fmt::Write;

/// One snapshot of named values at one instant of simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Simulated time of the snapshot, nanoseconds since run start.
    pub t_ns: u64,
    /// Which logical series this sample belongs to (e.g. the architecture
    /// label). Orders samples with equal timestamps during merges.
    pub series: String,
    /// `(metric name, value)`, sorted by name.
    pub values: Vec<(String, f64)>,
}

impl Sample {
    pub fn value(&self, name: &str) -> Option<f64> {
        self.values.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\"t_ns\":");
        let _ = write!(out, "{}", self.t_ns);
        out.push_str(",\"series\":");
        push_json_str(&mut out, &self.series);
        out.push_str(",\"values\":{");
        for (i, (name, v)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            out.push_str(&fmt_f64(*v));
        }
        out.push_str("}}");
        out
    }
}

/// An interval event painted onto the timeline: a fault window, an elastic
/// resize, a crash-recovery stall.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    pub start_ns: u64,
    pub end_ns: u64,
    /// Event class (`fault`, `resize`, `recovery`, ...) — used for dashboard
    /// coloring and for grouping in analysis.
    pub kind: String,
    /// Which logical series the event belongs to (matches [`Sample::series`]).
    pub series: String,
    /// Human-readable detail (`crash shard 2`, `cache 4.0→2.5 MiB`, ...).
    pub label: String,
}

impl Annotation {
    fn to_json(&self) -> String {
        let mut out = String::from("{\"annotation\":");
        push_json_str(&mut out, &self.kind);
        out.push_str(",\"series\":");
        push_json_str(&mut out, &self.series);
        let _ = write!(
            out,
            ",\"start_ns\":{},\"end_ns\":{}",
            self.start_ns, self.end_ns
        );
        out.push_str(",\"label\":");
        push_json_str(&mut out, &self.label);
        out.push('}');
        out
    }

    fn sort_key(&self) -> (u64, u64, &str, &str, &str) {
        (
            self.start_ns,
            self.end_ns,
            self.series.as_str(),
            self.kind.as_str(),
            self.label.as_str(),
        )
    }
}

/// Bounded flight recorder of [`Sample`]s plus timeline [`Annotation`]s.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    capacity: usize,
    samples: VecDeque<Sample>,
    annotations: Vec<Annotation>,
    dropped: u64,
}

impl TimeSeries {
    /// A recorder that keeps the most recent `capacity` samples
    /// (flight-recorder semantics: old samples fall off the front and are
    /// counted in [`TimeSeries::dropped`]).
    pub fn with_capacity(capacity: usize) -> Self {
        TimeSeries {
            capacity: capacity.max(1),
            samples: VecDeque::new(),
            annotations: Vec::new(),
            dropped: 0,
        }
    }

    /// Record a snapshot. `values` may arrive in any order; they are stored
    /// sorted by name so exports are byte-stable.
    pub fn record(&mut self, t_ns: u64, series: &str, values: &[(&str, f64)]) {
        let mut values: Vec<(String, f64)> =
            values.iter().map(|(n, v)| (n.to_string(), *v)).collect();
        values.sort_by(|a, b| a.0.cmp(&b.0));
        self.push(Sample {
            t_ns,
            series: series.to_string(),
            values,
        });
    }

    /// Append an already-built sample, evicting the oldest when full.
    pub fn push(&mut self, sample: Sample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
    }

    /// Paint an interval annotation onto the timeline.
    pub fn annotate(&mut self, ann: Annotation) {
        self.annotations.push(ann);
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn samples(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    pub fn annotations(&self) -> &[Annotation] {
        &self.annotations
    }

    /// The `(t_ns, value)` trajectory of one metric within one series.
    pub fn metric(&self, series: &str, name: &str) -> Vec<(u64, f64)> {
        self.samples
            .iter()
            .filter(|s| s.series == series)
            .filter_map(|s| s.value(name).map(|v| (s.t_ns, v)))
            .collect()
    }

    /// Sorted set of series tags present.
    pub fn series_names(&self) -> Vec<String> {
        let set: BTreeSet<&str> = self.samples.iter().map(|s| s.series.as_str()).collect();
        set.into_iter().map(str::to_string).collect()
    }

    /// Sorted union of metric names across all samples.
    pub fn metric_names(&self) -> Vec<String> {
        let set: BTreeSet<&str> = self
            .samples
            .iter()
            .flat_map(|s| s.values.iter().map(|(n, _)| n.as_str()))
            .collect();
        set.into_iter().map(str::to_string).collect()
    }

    /// Fold another recorder into this one — the post-hoc merge step of a
    /// parallel sweep. Samples are re-sorted by `(t_ns, series)` and
    /// annotations by `(start, end, series, kind, label)`, so any merge
    /// order over disjoint series tags yields identical bytes. The ring
    /// bound still applies: the merged view keeps the *latest* `capacity`
    /// samples in timeline order.
    pub fn merge(&mut self, other: &TimeSeries) {
        let mut all: Vec<Sample> = self.samples.iter().cloned().collect();
        all.extend(other.samples.iter().cloned());
        all.sort_by(|a, b| a.t_ns.cmp(&b.t_ns).then_with(|| a.series.cmp(&b.series)));
        self.dropped += other.dropped;
        if all.len() > self.capacity {
            self.dropped += (all.len() - self.capacity) as u64;
            all.drain(..all.len() - self.capacity);
        }
        self.samples = all.into();
        self.annotations.extend(other.annotations.iter().cloned());
        self.annotations
            .sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    }

    /// One JSON object per line: every sample in timeline order, then every
    /// annotation. Byte-deterministic for identical contents.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        let mut anns: Vec<&Annotation> = self.annotations.iter().collect();
        anns.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        for a in anns {
            out.push_str(&a.to_json());
            out.push('\n');
        }
        out
    }

    /// Self-contained HTML dashboard: one SVG sparkline per metric with all
    /// series overlaid, annotations painted as shaded bands. No external
    /// assets; byte-deterministic.
    pub fn to_dashboard_html(&self, title: &str) -> String {
        const W: f64 = 640.0;
        const H: f64 = 90.0;
        const PAD: f64 = 4.0;
        const COLORS: [&str; 4] = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd"];
        const BAND_COLORS: [(&str, &str); 3] = [
            ("fault", "#d6272822"),
            ("recovery", "#ff7f0e22"),
            ("resize", "#2ca02c22"),
        ];

        let (t_min, t_max) = self.samples.iter().fold((u64::MAX, 0u64), |(lo, hi), s| {
            (lo.min(s.t_ns), hi.max(s.t_ns))
        });
        let span = if t_max > t_min {
            (t_max - t_min) as f64
        } else {
            1.0
        };
        let x_of =
            |t: u64| -> f64 { PAD + (W - 2.0 * PAD) * (t.saturating_sub(t_min)) as f64 / span };

        let mut out = String::new();
        out.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>");
        out.push_str(&html_escape(title));
        out.push_str(
            "</title>\n<style>body{font-family:monospace;background:#fff;color:#111;\
             max-width:720px;margin:2em auto}h1{font-size:1.2em}h2{font-size:1em;\
             margin:1.2em 0 0.2em}svg{border:1px solid #ddd}.legend span{margin-right:1em}\
             .ann{font-size:0.8em;color:#666}</style></head>\n<body>\n<h1>",
        );
        out.push_str(&html_escape(title));
        out.push_str("</h1>\n<div class=\"legend\">");
        let series = self.series_names();
        for (i, s) in series.iter().enumerate() {
            let _ = write!(
                out,
                "<span style=\"color:{}\">&#9632; {}</span>",
                COLORS[i % COLORS.len()],
                html_escape(s)
            );
        }
        out.push_str("</div>\n");

        for name in self.metric_names() {
            let _ = writeln!(out, "<h2>{}</h2>", html_escape(&name));
            let _ = writeln!(
                out,
                "<svg width=\"{W}\" height=\"{H}\" viewBox=\"0 0 {W} {H}\">"
            );
            // Shaded annotation bands behind the lines.
            for ann in &self.annotations {
                let fill = BAND_COLORS
                    .iter()
                    .find(|(k, _)| *k == ann.kind)
                    .map(|(_, c)| *c)
                    .unwrap_or("#88888822");
                let x0 = x_of(ann.start_ns);
                let x1 = x_of(ann.end_ns.max(ann.start_ns));
                let _ = writeln!(
                    out,
                    "<rect x=\"{:.2}\" y=\"0\" width=\"{:.2}\" height=\"{H}\" fill=\"{}\"><title>{}</title></rect>",
                    x0,
                    (x1 - x0).max(1.0),
                    fill,
                    html_escape(&format!("[{}] {}: {}", ann.series, ann.kind, ann.label)),
                );
            }
            // Scale over all series so the lines are comparable.
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for s in &self.samples {
                if let Some(v) = s.value(&name) {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            let range = if hi > lo { hi - lo } else { 1.0 };
            let y_of = |v: f64| -> f64 { H - PAD - (H - 2.0 * PAD) * (v - lo) / range };
            for (i, sname) in series.iter().enumerate() {
                let pts = self.metric(sname, &name);
                if pts.is_empty() {
                    continue;
                }
                let mut path = String::new();
                for (t, v) in &pts {
                    let _ = write!(path, "{:.2},{:.2} ", x_of(*t), y_of(*v));
                }
                let _ = writeln!(
                    out,
                    "<polyline fill=\"none\" stroke=\"{}\" stroke-width=\"1.2\" points=\"{}\"/>",
                    COLORS[i % COLORS.len()],
                    path.trim_end(),
                );
            }
            let _ = writeln!(
                out,
                "<text x=\"{:.0}\" y=\"12\" font-size=\"10\" fill=\"#666\">max {}</text>\
                 <text x=\"{:.0}\" y=\"{:.0}\" font-size=\"10\" fill=\"#666\">min {}</text>",
                PAD,
                fmt_f64(round_sig(hi)),
                PAD,
                H - 2.0,
                fmt_f64(round_sig(lo)),
            );
            out.push_str("</svg>\n");
        }

        if !self.annotations.is_empty() {
            out.push_str("<h2>timeline events</h2>\n<ul class=\"ann\">\n");
            let mut anns: Vec<&Annotation> = self.annotations.iter().collect();
            anns.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
            for a in anns {
                let _ = writeln!(
                    out,
                    "<li>t={}s..{}s [{}] {}: {}</li>",
                    fmt_f64(round_sig(a.start_ns as f64 / 1e9)),
                    fmt_f64(round_sig(a.end_ns as f64 / 1e9)),
                    html_escape(&a.series),
                    html_escape(&a.kind),
                    html_escape(&a.label),
                );
            }
            out.push_str("</ul>\n");
        }
        out.push_str("</body></html>\n");
        out
    }
}

/// Round to 4 significant digits for axis labels (keeps them short and
/// deterministic without dragging full float precision into the HTML).
fn round_sig(v: f64) -> f64 {
    if v == 0.0 || !v.is_finite() {
        return v;
    }
    let mag = v.abs().log10().floor();
    let scale = 10f64.powf(3.0 - mag);
    (v * scale).round() / scale
}

fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(series: &str, base: u64) -> TimeSeries {
        let mut ts = TimeSeries::with_capacity(64);
        for i in 0..4u64 {
            ts.record(
                base + i * 1_000,
                series,
                &[("hit_ratio", 0.9 + i as f64 * 0.01), ("cores", 2.0)],
            );
        }
        ts
    }

    #[test]
    fn ring_bound_drops_oldest() {
        let mut ts = TimeSeries::with_capacity(2);
        for i in 0..5u64 {
            ts.record(i, "x", &[("v", i as f64)]);
        }
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.dropped(), 3);
        let times: Vec<u64> = ts.samples().map(|s| s.t_ns).collect();
        assert_eq!(times, vec![3, 4]);
    }

    #[test]
    fn values_are_sorted_and_jsonl_is_deterministic() {
        let mut ts = TimeSeries::with_capacity(8);
        ts.record(5, "a", &[("z", 1.0), ("a", 2.0)]);
        let line = ts.to_jsonl();
        assert_eq!(
            line,
            "{\"t_ns\":5,\"series\":\"a\",\"values\":{\"a\":2,\"z\":1}}\n"
        );
    }

    #[test]
    fn merge_is_order_insensitive() {
        let a = rec("linked", 0);
        let b = rec("remote", 500);
        let mut ab = TimeSeries::with_capacity(64);
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = TimeSeries::with_capacity(64);
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.to_jsonl(), ba.to_jsonl());
        assert_eq!(ab.len(), 8);
        // Interleaved by time.
        let t: Vec<u64> = ab.samples().map(|s| s.t_ns).collect();
        let mut sorted = t.clone();
        sorted.sort();
        assert_eq!(t, sorted);
    }

    #[test]
    fn annotations_export_and_sort() {
        let mut ts = rec("remote", 0);
        ts.annotate(Annotation {
            start_ns: 2_000,
            end_ns: 3_000,
            kind: "fault".into(),
            series: "remote".into(),
            label: "crash shard 0".into(),
        });
        ts.annotate(Annotation {
            start_ns: 1_000,
            end_ns: 1_500,
            kind: "resize".into(),
            series: "remote".into(),
            label: "cache shrink".into(),
        });
        let jsonl = ts.to_jsonl();
        let ann_lines: Vec<&str> = jsonl
            .lines()
            .filter(|l| l.contains("\"annotation\""))
            .collect();
        assert_eq!(ann_lines.len(), 2);
        assert!(
            ann_lines[0].contains("resize"),
            "sorted by start: {ann_lines:?}"
        );
        let html = ts.to_dashboard_html("test run");
        assert!(html.contains("<svg"));
        assert!(html.contains("hit_ratio"));
        assert!(html.contains("crash shard 0"));
        assert_eq!(html, ts.to_dashboard_html("test run"));
    }
}
