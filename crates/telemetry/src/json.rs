//! Minimal JSON string escaping for the hand-rolled JSONL exporters.
//!
//! The telemetry crate is dependency-free by design, and everything it
//! serializes is flat (strings, integers, floats), so a full JSON library
//! would be overkill. Escaping covers the mandatory set from RFC 8259.

use std::fmt::Write;

/// Append `s` as a JSON string (with surrounding quotes) to `out`.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format an `f64` deterministically for JSON/Prometheus output. Uses Rust's
/// shortest-roundtrip `Display`, with non-finite values mapped to the
/// Prometheus spellings.
pub fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_control_chars() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_format_deterministically() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "+Inf");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
    }
}
