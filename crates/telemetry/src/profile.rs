//! Collapsed-stack CPU attribution.
//!
//! The simulator already charges every nanosecond of modeled CPU to a
//! `CpuCategory` per tier; this module folds those charges into the
//! collapsed-stack text format that `flamegraph.pl` / `inferno` consume:
//! one `frame;frame;frame value` line per stack, values in nanoseconds.
//! Stacks are kept in a `BTreeMap`, so output ordering is deterministic.

use std::collections::BTreeMap;
use std::fmt::Write;

/// A CPU profile as a multiset of semicolon-joined stacks with nanosecond
/// weights.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CpuProfile {
    folded: BTreeMap<String, u64>,
}

impl CpuProfile {
    pub fn new() -> Self {
        CpuProfile::default()
    }

    /// Add `nanos` under the stack `frames[0];frames[1];…`. Zero-weight
    /// samples are skipped so empty categories don't clutter the output.
    pub fn add(&mut self, frames: &[&str], nanos: u64) {
        if nanos == 0 || frames.is_empty() {
            return;
        }
        let stack = frames.join(";");
        *self.folded.entry(stack).or_insert(0) += nanos;
    }

    /// Merge another profile into this one.
    pub fn merge(&mut self, other: &CpuProfile) {
        for (stack, nanos) in &other.folded {
            *self.folded.entry(stack.clone()).or_insert(0) += nanos;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.folded.is_empty()
    }

    /// Total nanoseconds across all stacks.
    pub fn total(&self) -> u64 {
        self.folded.values().sum()
    }

    /// Total nanoseconds of stacks whose collapsed form starts with
    /// `prefix` (use `"arch;tier"` to slice one tier of one architecture).
    pub fn total_matching(&self, prefix: &str) -> u64 {
        self.folded
            .iter()
            .filter(|(stack, _)| stack.starts_with(prefix))
            .map(|(_, nanos)| nanos)
            .sum()
    }

    /// Iterate `(collapsed stack, nanos)` in deterministic (sorted) order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, u64)> {
        self.folded.iter().map(|(s, n)| (s.as_str(), *n))
    }

    /// The collapsed-stack text: `stack value\n` per entry, sorted by
    /// stack, ready for `flamegraph.pl`.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::with_capacity(self.folded.len() * 48);
        for (stack, nanos) in &self.folded {
            let _ = writeln!(out, "{stack} {nanos}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_and_accumulates() {
        let mut p = CpuProfile::new();
        p.add(&["linked", "app", "cache_op"], 100);
        p.add(&["linked", "app", "cache_op"], 50);
        p.add(&["linked", "cache", "kv_exec"], 25);
        p.add(&["linked", "app", "idle"], 0); // skipped
        assert_eq!(p.total(), 175);
        assert_eq!(p.total_matching("linked;app"), 150);
        assert_eq!(
            p.to_collapsed(),
            "linked;app;cache_op 150\nlinked;cache;kv_exec 25\n"
        );
    }

    #[test]
    fn merge_sums_overlapping_stacks() {
        let mut a = CpuProfile::new();
        a.add(&["x", "y"], 10);
        let mut b = CpuProfile::new();
        b.add(&["x", "y"], 5);
        b.add(&["x", "z"], 7);
        a.merge(&b);
        assert_eq!(a.total(), 22);
        assert_eq!(a.total_matching("x;y"), 15);
    }

    #[test]
    fn output_is_deterministic() {
        let build = || {
            let mut p = CpuProfile::new();
            p.add(&["b"], 2);
            p.add(&["a"], 1);
            p.add(&["c"], 3);
            p
        };
        assert_eq!(build().to_collapsed(), "a 1\nb 2\nc 3\n");
        assert_eq!(build().to_collapsed(), build().to_collapsed());
    }
}
