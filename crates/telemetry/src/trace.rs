//! Structured span tracing with a bounded, deterministic sink.
//!
//! The model is deliberately simpler than OpenTelemetry: the simulator is
//! single-threaded and synchronous, so a span is just a finished record —
//! no guards, no context propagation machinery. The [`Tracer`] holds the
//! currently traced request's id; serve-path hops call [`Tracer::span`]
//! and the record lands in the ring-buffered [`TraceSink`]. Requests that
//! are not sampled leave the tracer disarmed and every span call is a
//! no-op, so tracing never perturbs an untraced run.

use crate::json::push_json_str;
use std::collections::VecDeque;
use std::fmt::Write;

/// Terminal state of one span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanStatus {
    /// The hop completed normally.
    Ok,
    /// The hop failed (e.g. a cache RPC attempt that the fabric dropped).
    Failed,
    /// The hop was served by the degraded path (cache shard down).
    Degraded,
    /// The hop coalesced onto an identical in-flight operation.
    Coalesced,
}

impl SpanStatus {
    pub const fn label(self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::Failed => "failed",
            SpanStatus::Degraded => "degraded",
            SpanStatus::Coalesced => "coalesced",
        }
    }
}

/// One finished hop of a traced request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Deterministic request identity (see [`crate::trace_id`]).
    pub trace_id: u64,
    /// Operation name, e.g. `"cache.rpc_attempt"` or `"storage.fill"`.
    pub name: &'static str,
    /// The tier that did the work: `"app"`, `"cache"`, `"storage"`, …
    pub tier: &'static str,
    /// Span start on the clock the recorder runs on (virtual nanos in the
    /// simulator, wall nanos since client start in netrpc).
    pub start_ns: u64,
    /// Span end on the same clock; `end_ns >= start_ns`.
    pub end_ns: u64,
    /// 0 for the first attempt; retries of the same logical hop count up.
    pub attempt: u32,
    pub status: SpanStatus,
}

impl SpanRecord {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// One JSON object, no trailing newline. Field order is fixed.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(s, "{{\"trace_id\":\"{:016x}\",\"name\":", self.trace_id);
        push_json_str(&mut s, self.name);
        s.push_str(",\"tier\":");
        push_json_str(&mut s, self.tier);
        let _ = write!(
            s,
            ",\"start_ns\":{},\"duration_ns\":{},\"attempt\":{},\"status\":\"{}\"}}",
            self.start_ns,
            self.duration_ns(),
            self.attempt,
            self.status.label()
        );
        s
    }
}

/// Bounded span store: a ring buffer that keeps the most recent spans and
/// counts what it sheds, so a long run cannot grow without bound but the
/// tail of the run is always inspectable.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    spans: VecDeque<SpanRecord>,
    capacity: usize,
    /// Spans ever recorded (including ones the ring has since shed).
    recorded: u64,
    /// Spans shed by the ring.
    dropped: u64,
}

impl TraceSink {
    pub fn with_capacity(capacity: usize) -> Self {
        TraceSink {
            spans: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            recorded: 0,
            dropped: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn record(&mut self, span: SpanRecord) {
        if self.capacity == 0 {
            return;
        }
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
        self.recorded += 1;
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans ever recorded, including ones the ring has since shed.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Spans shed by the ring buffer.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn iter(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter()
    }

    /// All retained spans of one trace, in recording order.
    pub fn spans_for(&self, trace_id: u64) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .collect()
    }

    /// Distinct trace ids currently retained.
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.spans.iter().map(|s| s.trace_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    pub fn clear(&mut self) {
        self.spans.clear();
        self.recorded = 0;
        self.dropped = 0;
    }

    /// One JSON object per line, trailing newline after each.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.spans.len() * 128);
        for span in &self.spans {
            out.push_str(&span.to_json());
            out.push('\n');
        }
        out
    }
}

/// The per-run span recorder: a sink plus the identity of the request being
/// traced right now (if any). Hops call [`Tracer::span`] unconditionally;
/// the call is a no-op unless a request is active, so instrumented code
/// pays nothing on unsampled requests.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    sink: TraceSink,
    current: Option<u64>,
}

impl Tracer {
    /// A tracer that records nothing (capacity-0 sink, never armed).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            sink: TraceSink::with_capacity(capacity),
            current: None,
        }
    }

    /// Whether this tracer can record at all.
    pub fn enabled(&self) -> bool {
        self.sink.capacity() > 0
    }

    /// The trace id of the request currently being recorded, if any.
    pub fn active(&self) -> Option<u64> {
        self.current
    }

    /// Arm the tracer for one request. Until [`Tracer::end_request`], every
    /// [`Tracer::span`] call records under `trace_id`.
    pub fn start_request(&mut self, trace_id: u64) {
        if self.enabled() {
            self.current = Some(trace_id);
        }
    }

    pub fn end_request(&mut self) {
        self.current = None;
    }

    /// Record one hop of the active request; no-op when disarmed.
    pub fn span(
        &mut self,
        name: &'static str,
        tier: &'static str,
        start_ns: u64,
        end_ns: u64,
        attempt: u32,
        status: SpanStatus,
    ) {
        if let Some(trace_id) = self.current {
            self.sink.record(SpanRecord {
                trace_id,
                name,
                tier,
                start_ns,
                end_ns,
                attempt,
                status,
            });
        }
    }

    pub fn sink(&self) -> &TraceSink {
        &self.sink
    }

    pub fn sink_mut(&mut self) -> &mut TraceSink {
        &mut self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace_id: u64, attempt: u32) -> SpanRecord {
        SpanRecord {
            trace_id,
            name: "cache.rpc_attempt",
            tier: "app",
            start_ns: 100,
            end_ns: 350,
            attempt,
            status: SpanStatus::Failed,
        }
    }

    #[test]
    fn ring_sheds_oldest_and_counts() {
        let mut sink = TraceSink::with_capacity(2);
        sink.record(span(1, 0));
        sink.record(span(2, 0));
        sink.record(span(3, 0));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.recorded(), 3);
        assert_eq!(sink.dropped(), 1);
        assert_eq!(sink.trace_ids(), vec![2, 3]);
    }

    #[test]
    fn zero_capacity_sink_records_nothing() {
        let mut sink = TraceSink::with_capacity(0);
        sink.record(span(1, 0));
        assert!(sink.is_empty());
        assert_eq!(sink.recorded(), 0);
    }

    #[test]
    fn disarmed_tracer_is_a_noop() {
        let mut t = Tracer::with_capacity(16);
        t.span("x", "app", 0, 1, 0, SpanStatus::Ok);
        assert!(t.sink().is_empty());
        t.start_request(9);
        t.span("x", "app", 0, 1, 0, SpanStatus::Ok);
        t.end_request();
        t.span("y", "app", 1, 2, 0, SpanStatus::Ok);
        assert_eq!(t.sink().len(), 1);
        assert_eq!(t.sink().spans_for(9).len(), 1);
    }

    #[test]
    fn disabled_tracer_never_arms() {
        let mut t = Tracer::disabled();
        t.start_request(1);
        assert_eq!(t.active(), None);
        t.span("x", "app", 0, 1, 0, SpanStatus::Ok);
        assert!(t.sink().is_empty());
    }

    #[test]
    fn json_shape_is_stable() {
        let s = span(0xabc, 2);
        assert_eq!(
            s.to_json(),
            "{\"trace_id\":\"0000000000000abc\",\"name\":\"cache.rpc_attempt\",\
             \"tier\":\"app\",\"start_ns\":100,\"duration_ns\":250,\
             \"attempt\":2,\"status\":\"failed\"}"
        );
    }

    #[test]
    fn jsonl_is_one_line_per_span() {
        let mut sink = TraceSink::with_capacity(8);
        sink.record(span(1, 0));
        sink.record(span(1, 1));
        let jsonl = sink.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.ends_with('\n'));
    }
}
