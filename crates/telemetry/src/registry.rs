//! A metrics registry: named, labeled instruments behind deterministic
//! Prometheus-text and JSONL exporters.
//!
//! The registry is a snapshot store, not a hot-path concurrency structure:
//! producers (the experiment runner, `simnet::MetricSet`, cache stats)
//! export their already-accumulated state into it at report time, then one
//! of the exporters renders the whole thing. Keys are `(name, sorted
//! labels)`; all iteration is over `BTreeMap`s, so output ordering — and
//! therefore the bytes — is deterministic for identical inputs.

use crate::json::{fmt_f64, push_json_str};
use std::collections::BTreeMap;
use std::fmt::Write;

/// What kind of instrument a name is registered as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrumentKind {
    Counter,
    Gauge,
    Summary,
}

impl InstrumentKind {
    const fn prom_type(self) -> &'static str {
        match self {
            InstrumentKind::Counter => "counter",
            InstrumentKind::Gauge => "gauge",
            InstrumentKind::Summary => "summary",
        }
    }
}

/// Pre-aggregated distribution snapshot (what a log-bucketed histogram can
/// answer at export time).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    /// `(quantile, value)` pairs, ascending by quantile.
    pub quantiles: Vec<(f64, f64)>,
}

impl Summary {
    /// Combine another snapshot of the *same* distribution into this one:
    /// counts and sums add, min/max widen, and each quantile estimate is
    /// merged as the count-weighted average of the two snapshots' values —
    /// exact for identical distributions and a standard mergeable-summary
    /// approximation otherwise. Quantiles present in only one snapshot are
    /// kept as-is. Symmetric in its inputs, so merge order cannot change
    /// the result (the property `Registry::merge` relies on).
    pub fn combine(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let (wa, wb) = (self.count as f64, other.count as f64);
        let mut merged: Vec<(f64, f64)> = Vec::new();
        for (q, v) in &self.quantiles {
            match other.quantiles.iter().find(|(oq, _)| oq == q) {
                Some((_, ov)) => merged.push((*q, (v * wa + ov * wb) / (wa + wb))),
                None => merged.push((*q, *v)),
            }
        }
        for (q, v) in &other.quantiles {
            if !self.quantiles.iter().any(|(sq, _)| sq == q) {
                merged.push((*q, *v));
            }
        }
        merged.sort_by(|a, b| a.0.total_cmp(&b.0));
        self.quantiles = merged;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// `(name, sorted labels)` — the identity of one time series.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesKey {
            name: sanitize_name(name),
            labels,
        }
    }

    /// `{k="v",...}` or the empty string; `extra` is appended last (used
    /// for the `quantile` label on summaries).
    fn prom_labels(&self, extra: Option<(&str, &str)>) -> String {
        if self.labels.is_empty() && extra.is_none() {
            return String::new();
        }
        let mut out = String::from("{");
        let mut first = true;
        for (k, v) in self
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra)
        {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}=", k);
            // Prometheus label values use the same escaping as JSON strings.
            push_json_str(&mut out, v);
        }
        out.push('}');
        out
    }

    fn json_labels(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push(':');
            push_json_str(&mut out, v);
        }
        out.push('}');
        out
    }
}

/// Replace characters Prometheus metric names reject with `_`.
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The registry itself. See module docs.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// name → (kind, help), filled by [`Registry::describe`] or on first use.
    descriptors: BTreeMap<String, (InstrumentKind, String)>,
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, f64>,
    summaries: BTreeMap<SeriesKey, Summary>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register help text for `name`. Optional — instruments self-register
    /// with empty help on first use — but exported `# HELP` lines only
    /// appear for described names.
    pub fn describe(&mut self, name: &str, kind: InstrumentKind, help: &str) {
        self.descriptors
            .insert(sanitize_name(name), (kind, help.to_string()));
    }

    fn ensure_described(&mut self, name: &str, kind: InstrumentKind) {
        self.descriptors
            .entry(sanitize_name(name))
            .or_insert((kind, String::new()));
    }

    /// Set a counter series to an absolute (already-accumulated) value.
    pub fn set_counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.ensure_described(name, InstrumentKind::Counter);
        self.counters.insert(SeriesKey::new(name, labels), value);
    }

    /// Add to a counter series (creates it at 0).
    pub fn add_counter(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.ensure_described(name, InstrumentKind::Counter);
        *self
            .counters
            .entry(SeriesKey::new(name, labels))
            .or_insert(0) += delta;
    }

    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.ensure_described(name, InstrumentKind::Gauge);
        self.gauges.insert(SeriesKey::new(name, labels), value);
    }

    pub fn set_summary(&mut self, name: &str, labels: &[(&str, &str)], summary: Summary) {
        self.ensure_described(name, InstrumentKind::Summary);
        self.summaries.insert(SeriesKey::new(name, labels), summary);
    }

    /// Read a counter series back (exact name + labels), mostly for tests.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters.get(&SeriesKey::new(name, labels)).copied()
    }

    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&SeriesKey::new(name, labels)).copied()
    }

    pub fn summary_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Summary> {
        self.summaries.get(&SeriesKey::new(name, labels))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.summaries.is_empty()
    }

    /// Number of distinct series across all instrument kinds.
    pub fn series_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.summaries.len()
    }

    /// Fold another registry into this one: the post-hoc merge step of a
    /// parallel sweep, where each experiment exports into its own registry
    /// and the combined view is assembled after all workers join.
    ///
    /// Counters sum; summaries combine via [`Summary::combine`] (counts and
    /// sums add, min/max widen, quantile estimates merge count-weighted), so
    /// two workers observing halves of the same distribution merge to the
    /// whole regardless of order. Gauges take `other`'s value on key
    /// collision (they are point-in-time snapshots, and sweep series are
    /// disambiguated by labels — e.g. `arch`). Descriptors keep the
    /// existing help text unless it is empty.
    pub fn merge(&mut self, other: &Registry) {
        for (name, (kind, help)) in &other.descriptors {
            match self.descriptors.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert((*kind, help.clone()));
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    if e.get().1.is_empty() && !help.is_empty() {
                        e.get_mut().1 = help.clone();
                    }
                }
            }
        }
        for (key, value) in &other.counters {
            *self.counters.entry(key.clone()).or_insert(0) += value;
        }
        for (key, value) in &other.gauges {
            self.gauges.insert(key.clone(), *value);
        }
        for (key, summary) in &other.summaries {
            match self.summaries.entry(key.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(summary.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    e.get_mut().combine(summary);
                }
            }
        }
    }

    /// Prometheus text exposition format, deterministically ordered:
    /// counters, then gauges, then summaries; within a kind, by
    /// `(name, labels)`. `# HELP`/`# TYPE` precede each name's first series.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_name = String::new();
        let header = |out: &mut String, name: &str, kind: InstrumentKind, last: &mut String| {
            if *last != name {
                if let Some((_, help)) = self.descriptors.get(name) {
                    if !help.is_empty() {
                        let _ = writeln!(out, "# HELP {name} {help}");
                    }
                }
                let _ = writeln!(out, "# TYPE {name} {}", kind.prom_type());
                *last = name.to_string();
            }
        };
        for (key, value) in &self.counters {
            header(&mut out, &key.name, InstrumentKind::Counter, &mut last_name);
            let _ = writeln!(out, "{}{} {}", key.name, key.prom_labels(None), value);
        }
        for (key, value) in &self.gauges {
            header(&mut out, &key.name, InstrumentKind::Gauge, &mut last_name);
            let _ = writeln!(
                out,
                "{}{} {}",
                key.name,
                key.prom_labels(None),
                fmt_f64(*value)
            );
        }
        for (key, s) in &self.summaries {
            header(&mut out, &key.name, InstrumentKind::Summary, &mut last_name);
            for (q, v) in &s.quantiles {
                let q = fmt_f64(*q);
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    key.name,
                    key.prom_labels(Some(("quantile", &q))),
                    fmt_f64(*v)
                );
            }
            let labels = key.prom_labels(None);
            let _ = writeln!(out, "{}_sum{} {}", key.name, labels, fmt_f64(s.sum));
            let _ = writeln!(out, "{}_count{} {}", key.name, labels, s.count);
            let _ = writeln!(out, "{}_min{} {}", key.name, labels, fmt_f64(s.min));
            let _ = writeln!(out, "{}_max{} {}", key.name, labels, fmt_f64(s.max));
        }
        out
    }

    /// One JSON object per series per line, in the same order as the
    /// Prometheus exporter.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (key, value) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            push_json_str(&mut out, &key.name);
            let _ = writeln!(
                out,
                ",\"labels\":{},\"value\":{}}}",
                key.json_labels(),
                value
            );
        }
        for (key, value) in &self.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            push_json_str(&mut out, &key.name);
            let _ = writeln!(
                out,
                ",\"labels\":{},\"value\":{}}}",
                key.json_labels(),
                fmt_f64(*value)
            );
        }
        for (key, s) in &self.summaries {
            out.push_str("{\"type\":\"summary\",\"name\":");
            push_json_str(&mut out, &key.name);
            let _ = write!(
                out,
                ",\"labels\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"quantiles\":{{",
                key.json_labels(),
                s.count,
                fmt_f64(s.sum),
                fmt_f64(s.min),
                fmt_f64(s.max)
            );
            for (i, (q, v)) in s.quantiles.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", fmt_f64(*q), fmt_f64(*v));
            }
            out.push_str("}}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.describe(
            "requests_total",
            InstrumentKind::Counter,
            "Requests served.",
        );
        r.set_counter("requests_total", &[("arch", "linked")], 42);
        r.set_counter("requests_total", &[("arch", "remote")], 40);
        r.set_gauge("cores", &[("tier", "app")], 1.25);
        r.set_summary(
            "read_latency_ns",
            &[("arch", "linked")],
            Summary {
                count: 100,
                sum: 5_000.0,
                min: 10.0,
                max: 200.0,
                quantiles: vec![(0.5, 45.0), (0.99, 190.0)],
            },
        );
        r
    }

    #[test]
    fn prometheus_text_is_deterministic_and_complete() {
        let a = sample().to_prometheus_text();
        let b = sample().to_prometheus_text();
        assert_eq!(a, b);
        assert!(a.contains("# HELP requests_total Requests served."));
        assert!(a.contains("# TYPE requests_total counter"));
        assert!(a.contains("requests_total{arch=\"linked\"} 42"));
        assert!(a.contains("cores{tier=\"app\"} 1.25"));
        assert!(a.contains("read_latency_ns{arch=\"linked\",quantile=\"0.5\"} 45"));
        assert!(a.contains("read_latency_ns_count{arch=\"linked\"} 100"));
        assert!(a.contains("read_latency_ns_min{arch=\"linked\"} 10"));
    }

    #[test]
    fn jsonl_has_one_series_per_line() {
        let out = sample().to_jsonl();
        assert_eq!(out.lines().count(), 4);
        assert!(out.contains("{\"type\":\"counter\",\"name\":\"requests_total\",\"labels\":{\"arch\":\"linked\"},\"value\":42}"));
        assert!(out.contains("\"quantiles\":{\"0.5\":45,\"0.99\":190}"));
    }

    #[test]
    fn labels_are_sorted_and_names_sanitized() {
        let mut r = Registry::new();
        r.set_counter("weird.name-x", &[("b", "2"), ("a", "1")], 1);
        let text = r.to_prometheus_text();
        assert!(text.contains("weird_name_x{a=\"1\",b=\"2\"} 1"), "{text}");
        assert_eq!(
            r.counter_value("weird.name-x", &[("a", "1"), ("b", "2")]),
            Some(1)
        );
    }

    #[test]
    fn add_counter_accumulates() {
        let mut r = Registry::new();
        r.add_counter("hits", &[], 2);
        r.add_counter("hits", &[], 3);
        assert_eq!(r.counter_value("hits", &[]), Some(5));
        assert_eq!(r.series_count(), 1);
    }

    #[test]
    fn merge_combines_disjoint_series_deterministically() {
        let mut linked = Registry::new();
        linked.set_counter("requests_total", &[("arch", "linked")], 42);
        linked.set_gauge("cores", &[("arch", "linked")], 1.25);
        let mut remote = Registry::new();
        remote.set_counter("requests_total", &[("arch", "remote")], 40);
        remote.set_gauge("cores", &[("arch", "remote")], 2.5);

        // Merging per-experiment registries in either grouping yields the
        // same bytes as building one registry sequentially.
        let mut merged = Registry::new();
        merged.merge(&linked);
        merged.merge(&remote);
        let mut reversed = Registry::new();
        reversed.merge(&remote);
        reversed.merge(&linked);
        assert_eq!(merged.to_prometheus_text(), reversed.to_prometheus_text());
        assert_eq!(merged.to_jsonl(), reversed.to_jsonl());
        assert_eq!(merged.series_count(), 4);
        assert_eq!(
            merged.counter_value("requests_total", &[("arch", "linked")]),
            Some(42)
        );
    }

    #[test]
    fn merge_sums_counters_and_keeps_help() {
        let mut a = Registry::new();
        a.describe("hits", InstrumentKind::Counter, "Cache hits.");
        a.set_counter("hits", &[], 2);
        let mut b = Registry::new();
        b.set_counter("hits", &[], 3);
        b.set_summary(
            "lat",
            &[],
            Summary {
                count: 1,
                sum: 7.0,
                min: 7.0,
                max: 7.0,
                quantiles: vec![],
            },
        );
        a.merge(&b);
        assert_eq!(a.counter_value("hits", &[]), Some(5));
        assert!(a.to_prometheus_text().contains("# HELP hits Cache hits."));
        assert_eq!(a.summary_value("lat", &[]).unwrap().count, 1);
    }

    #[test]
    fn merge_combines_colliding_summaries_order_insensitively() {
        // Two workers snapshot halves of the same latency distribution under
        // the *same* series key: the merged summary must be the combined
        // distribution, not last-write-wins, and must not depend on order.
        let part = |count: u64, sum: f64, min: f64, max: f64, p50: f64| {
            let mut r = Registry::new();
            r.set_summary(
                "lat_us",
                &[("arch", "remote")],
                Summary {
                    count,
                    sum,
                    min,
                    max,
                    quantiles: vec![(0.5, p50), (0.99, max)],
                },
            );
            r
        };
        let a = part(30, 900.0, 5.0, 80.0, 25.0);
        let b = part(10, 700.0, 20.0, 200.0, 65.0);

        let mut ab = Registry::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = Registry::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.to_prometheus_text(), ba.to_prometheus_text());
        assert_eq!(ab.to_jsonl(), ba.to_jsonl());

        let s = ab.summary_value("lat_us", &[("arch", "remote")]).unwrap();
        assert_eq!(s.count, 40, "counts must sum, not overwrite");
        assert!((s.sum - 1_600.0).abs() < 1e-9);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 200.0);
        // Count-weighted p50: (25*30 + 65*10) / 40 = 35.
        let p50 = s.quantiles.iter().find(|(q, _)| *q == 0.5).unwrap().1;
        assert!((p50 - 35.0).abs() < 1e-9, "p50 = {p50}");
    }

    #[test]
    fn empty_registry_exports_empty() {
        let r = Registry::new();
        assert!(r.is_empty());
        assert_eq!(r.to_prometheus_text(), "");
        assert_eq!(r.to_jsonl(), "");
    }
}
