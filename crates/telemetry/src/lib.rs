//! Observability substrate for the simulator and the real netrpc tier.
//!
//! Three pieces, deliberately dependency-free so every consumer (the
//! deterministic simulator, the tokio TCP cache, the bench binaries) can
//! use them without pulling anything into the build graph:
//!
//! * [`trace`] — structured spans. Each simulated request carries a
//!   deterministic trace id (derived from the run seed and request index,
//!   see [`trace_id`]) and records one span per hop — app routing, cache
//!   RPC attempts, storage fills, Raft-backed version checks, client
//!   replies — into a ring-buffered [`TraceSink`]. Retries show up as one
//!   trace with N attempt spans, which is the invariant the fault tooling
//!   asserts on.
//! * [`registry`] — named, labeled instruments (counter / gauge /
//!   summary) with deterministic Prometheus-text and JSONL exporters.
//!   `simnet::MetricSet`, cache statistics, and experiment reports all
//!   export into it, replacing the per-binary hand-rolled printing.
//! * [`profile`] — a collapsed-stack (flamegraph-compatible) CPU profile
//!   folded from the simulator's per-category CPU meters, so "where do
//!   the cores go under Remote vs Linked" is one `flamegraph.pl` away.
//!
//! Everything here is deterministic: same inputs produce byte-identical
//! exporter output, which the bench harness relies on (two runs with the
//! same seed must diff clean).

pub mod json;
pub mod profile;
pub mod registry;
pub mod slo;
pub mod timeseries;
pub mod trace;

pub use profile::CpuProfile;
pub use registry::{InstrumentKind, Registry, Summary};
pub use slo::{AlertEvent, SloRule};
pub use timeseries::{Sample, TimeSeries};
pub use trace::{SpanRecord, SpanStatus, TraceSink, Tracer};

/// splitmix64 — the statelessly seedable mixer used for trace ids.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic trace id for request `index` of a run seeded with `seed`.
///
/// Same `(seed, index)` always yields the same id, so two runs of the same
/// experiment produce byte-identical trace output; different seeds decorrelate
/// (a property the determinism tests pin down).
pub fn trace_id(seed: u64, index: u64) -> u64 {
    // Mix the seed first so index 0 of different seeds never collides with
    // a plain splitmix of the other seed's indices.
    splitmix64(splitmix64(seed) ^ index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        assert_eq!(trace_id(7, 0), trace_id(7, 0));
        assert_ne!(trace_id(7, 0), trace_id(7, 1));
        assert_ne!(trace_id(7, 0), trace_id(8, 0));
        // A run's id sequence must not collide within any realistic window.
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(trace_id(42, i)), "collision at {i}");
        }
    }

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference: splitmix64 of 0 per Vigna's public-domain code.
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
    }
}
