//! Deterministic SLO engine: multi-window burn-rate alerting over a time
//! series of simulated time.
//!
//! The rules follow the SRE-workbook shape: an SLO gives an error *budget*
//! (1 − objective); the *burn rate* over a window is the observed error
//! ratio divided by the budget (burn 1.0 = spending exactly the budget).
//! An alert fires when **both** a long and a short window exceed the
//! threshold — the long window gives significance, the short window makes
//! the alert resolve quickly once the incident ends. Everything is
//! evaluated over explicit `(t_ns, bad, total)` points in simulated time,
//! so two runs of the same experiment produce byte-identical alert logs.

use crate::json::{fmt_f64, push_json_str};
use std::fmt::Write;

/// One windowed burn-rate rule.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Rule name (e.g. `availability`, `latency_p99`).
    pub name: String,
    /// Fraction of events allowed to be bad, e.g. `0.001` for a 99.9% SLO.
    pub error_budget: f64,
    /// Long (significance) window, nanoseconds of simulated time.
    pub long_window_ns: u64,
    /// Short (fast-resolve) window, nanoseconds of simulated time.
    pub short_window_ns: u64,
    /// Fire when both windows' burn rates reach this multiple of budget.
    pub burn_threshold: f64,
}

impl SloRule {
    /// Evaluate the rule over `(t_ns, bad, total)` points sorted by time,
    /// returning fire/resolve events. Points outside a window no longer
    /// contribute to it; an alert still active after the last point is
    /// returned unresolved.
    pub fn evaluate(&self, points: &[BurnPoint]) -> Vec<AlertEvent> {
        debug_assert!(points.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        let budget = self.error_budget.max(1e-12);
        let mut events = Vec::new();
        let mut active: Option<AlertEvent> = None;
        // Sliding sums with explicit window starts — O(n) over points.
        let mut long = WindowSum::default();
        let mut short = WindowSum::default();
        let mut long_start = 0usize;
        let mut short_start = 0usize;
        for (i, p) in points.iter().enumerate() {
            long.add(p);
            short.add(p);
            while points[long_start].t_ns + self.long_window_ns < p.t_ns {
                long.remove(&points[long_start]);
                long_start += 1;
            }
            while points[short_start].t_ns + self.short_window_ns < p.t_ns {
                short.remove(&points[short_start]);
                short_start += 1;
            }
            let burn_long = long.error_ratio() / budget;
            let burn_short = short.error_ratio() / budget;
            let firing = burn_long >= self.burn_threshold && burn_short >= self.burn_threshold;
            match (&mut active, firing) {
                (None, true) => {
                    active = Some(AlertEvent {
                        rule: self.name.clone(),
                        fired_at_ns: p.t_ns,
                        resolved_at_ns: None,
                        peak_burn: burn_short.max(burn_long.min(burn_short)),
                    });
                }
                (Some(ev), true) => {
                    // Track the worst sustained burn (the min of the two
                    // windows is the defensible "at least this bad" figure).
                    ev.peak_burn = ev.peak_burn.max(burn_long.min(burn_short));
                }
                (Some(_), false) => {
                    let mut ev = active.take().unwrap();
                    ev.resolved_at_ns = Some(p.t_ns);
                    events.push(ev);
                }
                (None, false) => {}
            }
            let _ = i;
        }
        if let Some(ev) = active {
            events.push(ev);
        }
        events
    }
}

/// One observation bucket: `bad` of `total` events went wrong in the
/// heartbeat ending at `t_ns`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnPoint {
    pub t_ns: u64,
    pub bad: f64,
    pub total: f64,
}

#[derive(Debug, Default)]
struct WindowSum {
    bad: f64,
    total: f64,
}

impl WindowSum {
    fn add(&mut self, p: &BurnPoint) {
        self.bad += p.bad;
        self.total += p.total;
    }
    fn remove(&mut self, p: &BurnPoint) {
        self.bad -= p.bad;
        self.total -= p.total;
    }
    fn error_ratio(&self) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            (self.bad / self.total).clamp(0.0, 1.0)
        }
    }
}

/// A fired alert with its (simulated-time) lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    pub rule: String,
    pub fired_at_ns: u64,
    /// `None` if still firing at the end of the run.
    pub resolved_at_ns: Option<u64>,
    /// Worst burn rate sustained across both windows while firing.
    pub peak_burn: f64,
}

impl AlertEvent {
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"rule\":");
        push_json_str(&mut out, &self.rule);
        let _ = write!(out, ",\"fired_at_ns\":{}", self.fired_at_ns);
        match self.resolved_at_ns {
            Some(t) => {
                let _ = write!(out, ",\"resolved_at_ns\":{t}");
            }
            None => out.push_str(",\"resolved_at_ns\":null"),
        }
        let _ = write!(out, ",\"peak_burn\":{}}}", fmt_f64(self.peak_burn));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule() -> SloRule {
        SloRule {
            name: "availability".into(),
            error_budget: 0.001,
            long_window_ns: 4_000,
            short_window_ns: 1_000,
            burn_threshold: 10.0,
        }
    }

    fn pt(t_ns: u64, bad: f64) -> BurnPoint {
        BurnPoint {
            t_ns,
            bad,
            total: 100.0,
        }
    }

    #[test]
    fn clean_series_never_fires() {
        let points: Vec<BurnPoint> = (0..20).map(|i| pt(i * 500, 0.0)).collect();
        assert!(rule().evaluate(&points).is_empty());
    }

    #[test]
    fn outage_fires_and_resolves() {
        // 5% errors from t=2µs..4µs: burn 50 (short) / 22 (long) against a
        // 0.1% budget — both windows clear the ×10 threshold.
        let points: Vec<BurnPoint> = (0..20)
            .map(|i| {
                let t = i * 500;
                pt(
                    t,
                    if (2_000..4_000).contains(&t) {
                        5.0
                    } else {
                        0.0
                    },
                )
            })
            .collect();
        let events = rule().evaluate(&points);
        assert_eq!(events.len(), 1, "{events:?}");
        let ev = &events[0];
        assert_eq!(ev.fired_at_ns, 2_000);
        assert!(ev.resolved_at_ns.unwrap() > 4_000);
        assert!(ev.peak_burn >= 10.0);
        // Deterministic: same input, same events and bytes.
        let again = rule().evaluate(&points);
        assert_eq!(events, again);
        assert_eq!(ev.to_json(), again[0].to_json());
    }

    #[test]
    fn unresolved_alert_survives_to_end() {
        let points: Vec<BurnPoint> = (0..10).map(|i| pt(i * 500, 5.0)).collect();
        let events = rule().evaluate(&points);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].resolved_at_ns, None);
    }

    #[test]
    fn short_window_gates_resolution() {
        // A single bad burst shorter than the long window: the short window
        // must clear the alert soon after the burst ends even though the
        // long window still carries the errors.
        let points: Vec<BurnPoint> = (0..20)
            .map(|i| {
                let t = i * 500;
                pt(t, if t == 2_000 { 50.0 } else { 0.0 })
            })
            .collect();
        let events = rule().evaluate(&points);
        assert_eq!(events.len(), 1);
        let resolved = events[0].resolved_at_ns.unwrap();
        assert!(
            resolved <= 2_000 + 2_000,
            "short window should resolve quickly, got {resolved}"
        );
    }
}
