//! Parallel deterministic sweep runner.
//!
//! The paper's evaluation is a grid of architectures × workloads × cost
//! sweeps, and every cell is an independent simulation: each experiment
//! owns its seed, builds its own deployment (simnet engine, caches,
//! telemetry sink) and shares no mutable state with its neighbours. That
//! makes the sweep embarrassingly parallel — *if* the merge preserves the
//! sequential order. [`SweepRunner`] executes jobs on a scoped pool of std
//! threads (no extra dependencies) and returns results **in spec order**,
//! regardless of completion order, so a parallel sweep's output is
//! bit-for-bit identical to a sequential run's.
//!
//! Worker count comes from `--jobs N` (or `--jobs=N`) on the command line,
//! else the `BENCH_JOBS` environment variable, else
//! `std::thread::available_parallelism()`. `--jobs 1` degenerates to a
//! plain in-order loop on the calling thread.
//!
//! Nothing here touches the simulated CPU model: parallelism is purely a
//! wall-clock concern of the harness, and the virtual-time accounting
//! inside each experiment is unchanged.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A job taking no input and producing the result for one sweep cell.
pub type Job<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Parse `--jobs N` / `--jobs=N` from the process arguments, falling back
/// to the `BENCH_JOBS` environment variable, then to the machine's
/// available parallelism. Invalid values fall through to the next source.
pub fn jobs_from_env() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--jobs=") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        if a == "--jobs" {
            if let Some(Ok(n)) = args.get(i + 1).map(|v| v.parse::<usize>()) {
                return n.max(1);
            }
        }
    }
    if let Ok(v) = std::env::var("BENCH_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Executes a list of independent jobs on a scoped thread pool and merges
/// the results in submission order. See module docs.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    jobs: usize,
}

impl SweepRunner {
    /// A runner with an explicit worker count (clamped to ≥ 1).
    pub fn new(jobs: usize) -> Self {
        SweepRunner { jobs: jobs.max(1) }
    }

    /// A single-worker runner: runs jobs in order on the calling thread.
    pub fn sequential() -> Self {
        SweepRunner::new(1)
    }

    /// Worker count from `--jobs` / `BENCH_JOBS` / available parallelism.
    pub fn from_env() -> Self {
        SweepRunner::new(jobs_from_env())
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run every job and return the results in the order the jobs were
    /// given. Workers claim jobs through a shared cursor (so long jobs
    /// don't serialize behind short ones); each result is tagged with its
    /// spec index and the merge sorts by that index, making the output
    /// independent of completion order. A panicking job propagates after
    /// the scope joins, like the sequential loop would.
    pub fn run<'a, T: Send>(&self, jobs: Vec<Job<'a, T>>) -> Vec<T> {
        let n = jobs.len();
        if self.jobs == 1 || n <= 1 {
            return jobs.into_iter().map(|j| j()).collect();
        }
        let slots: Vec<Mutex<Option<Job<'a, T>>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let cursor = AtomicUsize::new(0);
        let workers = self.jobs.min(n);
        let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let slots = &slots;
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            let idx = cursor.fetch_add(1, Ordering::Relaxed);
                            if idx >= slots.len() {
                                return local;
                            }
                            let job = slots[idx]
                                .lock()
                                .expect("sweep job slot poisoned")
                                .take()
                                .expect("sweep job claimed twice");
                            local.push((idx, job()));
                        }
                    })
                })
                .collect();
            for h in handles {
                tagged.extend(h.join().expect("sweep worker panicked"));
            }
        });
        tagged.sort_by_key(|&(idx, _)| idx);
        debug_assert_eq!(tagged.len(), n);
        tagged.into_iter().map(|(_, r)| r).collect()
    }

    /// Map `f` over `specs` in parallel, returning results in spec order.
    /// `f` receives the spec index alongside the spec.
    pub fn run_map<S, T, F>(&self, specs: &[S], f: F) -> Vec<T>
    where
        S: Sync,
        T: Send,
        F: Fn(usize, &S) -> T + Sync,
    {
        let f = &f;
        self.run(
            specs
                .iter()
                .enumerate()
                .map(|(i, s)| Box::new(move || f(i, s)) as Job<T>)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_spec_order() {
        let runner = SweepRunner::new(4);
        // Make early jobs the slowest so completion order inverts spec order.
        let out = runner.run_map(&(0..32).collect::<Vec<u64>>(), |i, &x| {
            std::thread::sleep(std::time::Duration::from_millis((32 - i as u64) / 8));
            x * 10
        });
        assert_eq!(out, (0..32).map(|x| x * 10).collect::<Vec<u64>>());
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let work = |_: usize, &seed: &u64| -> u64 {
            // A deterministic per-spec computation (splitmix-style mix).
            let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z ^ (z >> 31)
        };
        let specs: Vec<u64> = (0..100).collect();
        let seq = SweepRunner::sequential().run_map(&specs, work);
        let par = SweepRunner::new(8).run_map(&specs, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let out = SweepRunner::new(64).run_map(&[1, 2, 3], |_, &x: &i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_sweep_returns_empty() {
        let out: Vec<i32> = SweepRunner::new(4).run(Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_are_actually_distributed_across_threads() {
        use std::collections::HashSet;
        let ids = SweepRunner::new(4).run_map(&[(); 64], |_, _| {
            // Encourage overlap so several workers participate.
            std::thread::sleep(std::time::Duration::from_millis(1));
            format!("{:?}", std::thread::current().id())
        });
        let distinct: HashSet<&String> = ids.iter().collect();
        assert!(
            distinct.len() > 1,
            "expected multiple worker threads, saw {distinct:?}"
        );
    }

    #[test]
    fn runner_worker_count_is_clamped() {
        assert_eq!(SweepRunner::new(0).jobs(), 1);
        assert_eq!(SweepRunner::sequential().jobs(), 1);
    }
}
