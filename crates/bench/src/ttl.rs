//! Shared builder for the TTL-control-plane ablation.
//!
//! One sweep definition, three consumers: the `ablation_ttl` bin (full
//! budget, tables + JSON + the TTL-vs-MRC-vs-static headline), the golden
//! suite (small fixed-seed snapshot), and the determinism/acceptance tests
//! (jobs=1 vs jobs=N byte-equality, the ISSUE's non-vacuity bounds).
//! Keeping the config construction here guarantees they all measure the
//! same thing.
//!
//! The grid is {Remote, Linked} × {diurnal, churn, storm} × three control
//! planes:
//!
//! * **static** — fixed capacity, fixed (infinite) TTL: the baseline that
//!   pays for its peak window and its full configured DRAM all day;
//! * **mrc** — the PR-5 elastic controller: SHARDS miss-ratio curves drive
//!   *capacity* resizes, memory billed at the time-averaged configured
//!   size;
//! * **ttl** — the adaptive TTL plane: a streaming age histogram drives
//!   *expiry*, memory billed at time-averaged resident bytes.
//!
//! Every cell routes its workload through a single-tenant [`TenantMix`] so
//! all three schedules (and both planes) share the tenant machinery the
//! isolation cells use; the churn and storm stressors are the tenant
//! schedules from `workloads::tenants`. The isolation pair runs two
//! tenants — a quiet victim and a storm-prone aggressor — with per-tenant
//! TTL controllers, toggling only the aggressor's storm.

use crate::golden::small_kv;
use crate::sweep::SweepRunner;
use dcache::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache::{ArchKind, ExperimentReport};
use workloads::{DiurnalSchedule, KvWorkloadConfig, SizeDist, TenantMix, TenantSpec};

/// Architectures with a TTL-manageable cache tier (see
/// `ArchKind::supports_ttl_plane`).
pub const ARCHS: &[ArchKind] = &[ArchKind::Remote, ArchKind::Linked];

/// Workload footprint for the sweep: large enough that cache DRAM is a
/// real line item next to compute. 20K keys × 4 KB ≈ 83 MB of entries.
pub const KEYS: u64 = 20_000;
pub const VALUE_BYTES: u64 = 4_096;

/// Cache capacity per node/server: comfortably holds the whole footprint,
/// so what the control planes *reclaim* (not LRU pressure) decides the
/// memory bill.
pub const CACHE_BYTES: u64 = 64 << 20;

/// DRAM price multiplier for the sweep (the fig2 sensitivity axis; also
/// Carra et al.'s premise — TTL tuning pays when memory is dear). Applied
/// uniformly to every cell, so the three planes stay comparable.
pub const MEM_PRICE_MULT: f64 = 8.0;

/// Peak request rate: one heartbeat (≈ one virtual second) per `qps`
/// requests, so sweeps and decisions land many times per run.
pub const PEAK_QPS: f64 = 2_000.0;

/// One compressed diurnal "day" of simulated load.
pub const DAY_SECS: f64 = 8.0;

/// Demand at the quietest point, as a fraction of peak.
pub const TROUGH: f64 = 0.25;

/// Virtual seconds between control-plane decisions (both planes).
pub const DECISION_INTERVAL_SECS: f64 = 2.0;

/// Candidate-TTL ceiling: a few decision intervals, so the candidate grid
/// is meaningful at simulated timescales (the production default is 7
/// days — longer than any run here).
pub const MAX_TTL_SECS: f64 = 16.0;

/// Working-set rotation period for the churn schedule.
pub const CHURN_PERIOD_SECS: f64 = 2.5;

/// Invalidation-storm cadence: a write-heavy burst every period.
pub const STORM_PERIOD_SECS: f64 = 3.0;
pub const STORM_BURST_SECS: f64 = 1.0;
pub const STORM_READ_RATIO: f64 = 0.2;

/// The three stress schedules of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Sinusoidal arrival-rate day, steady working set.
    Diurnal,
    /// Flat arrivals, the hot set rotates every [`CHURN_PERIOD_SECS`].
    Churn,
    /// Flat arrivals, periodic write-heavy invalidation bursts.
    Storm,
}

impl Schedule {
    pub const ALL: [Schedule; 3] = [Schedule::Diurnal, Schedule::Churn, Schedule::Storm];

    pub fn label(&self) -> &'static str {
        match self {
            Schedule::Diurnal => "diurnal",
            Schedule::Churn => "churn",
            Schedule::Storm => "storm",
        }
    }
}

/// The control plane managing the cache tier in a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plane {
    /// No controller: static capacity, entries never expire.
    Static,
    /// The MRC capacity planner (PR 5's `ElasticController`).
    Mrc,
    /// The adaptive TTL plane (`TtlController`).
    Ttl,
}

impl Plane {
    pub const ALL: [Plane; 3] = [Plane::Static, Plane::Mrc, Plane::Ttl];

    pub fn label(&self) -> &'static str {
        match self {
            Plane::Static => "static",
            Plane::Mrc => "mrc",
            Plane::Ttl => "ttl",
        }
    }
}

/// One cell of the TTL sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TtlSpec {
    pub arch: ArchKind,
    pub schedule: Schedule,
    pub plane: Plane,
}

impl TtlSpec {
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.arch.label(),
            self.schedule.label(),
            self.plane.label()
        )
    }
}

/// The full grid in deterministic (arch, schedule, static-mrc-ttl) order.
pub fn sweep_specs() -> Vec<TtlSpec> {
    ARCHS
        .iter()
        .flat_map(|&arch| {
            Schedule::ALL.iter().flat_map(move |&schedule| {
                Plane::ALL.iter().map(move |&plane| TtlSpec {
                    arch,
                    schedule,
                    plane,
                })
            })
        })
        .collect()
}

/// An enabled TTL-plane config scaled to the sweep's timescales.
pub fn ttl_plane_config() -> elastic::TtlConfig {
    elastic::TtlConfig {
        decision_interval_secs: DECISION_INTERVAL_SECS,
        max_ttl_secs: MAX_TTL_SECS,
        ..elastic::TtlConfig::default()
    }
}

/// The MRC capacity plane scaled to the same deployment (mirrors the
/// `ablation_elastic` planner so the head-to-head is apples-to-apples).
fn mrc_plane_config(cfg: &KvExperimentConfig) -> elastic::ElasticConfig {
    elastic::ElasticConfig {
        decision_interval_secs: DECISION_INTERVAL_SECS,
        profiler: elastic::ShardsConfig::default(),
        planner: elastic::PlannerConfig {
            min_cache_bytes: 64 << 10,
            max_cache_bytes: cfg
                .deployment
                .total_linked_bytes()
                .max(cfg.deployment.total_remote_bytes())
                .max(1 << 20),
            mean_entry_bytes: VALUE_BYTES + 64,
            max_miss_ratio_delta: 0.01,
            ..elastic::PlannerConfig::default()
        },
    }
}

/// The experiment for one sweep cell: the golden small-KV base routed
/// through a single-tenant mix carrying the cell's stress schedule, with
/// the cell's control plane armed. Warmup should span several decision
/// intervals so the first adopted plan (and its churn) lands before the
/// measured window.
pub fn experiment(spec: &TtlSpec, warmup: u64, measured: u64) -> KvExperimentConfig {
    let mut cfg = small_kv(spec.arch, 0.95, VALUE_BYTES);
    cfg.workload.keys = KEYS;
    cfg.deployment.remote_cache_bytes_per_node = CACHE_BYTES;
    cfg.deployment.linked_cache_bytes_per_server = CACHE_BYTES;
    cfg.pricing = costmodel::Pricing::default().with_memory_multiplier(MEM_PRICE_MULT);
    cfg.qps = PEAK_QPS;
    cfg.warmup_requests = warmup;
    cfg.requests = measured;
    let mut svc = TenantSpec::new("svc", 1.0, cfg.workload.clone());
    match spec.schedule {
        Schedule::Diurnal => cfg.diurnal = Some(DiurnalSchedule::sinusoid(DAY_SECS, TROUGH)),
        Schedule::Churn => svc = svc.with_churn(CHURN_PERIOD_SECS),
        Schedule::Storm => {
            svc = svc.with_storm(STORM_PERIOD_SECS, STORM_BURST_SECS, STORM_READ_RATIO)
        }
    }
    cfg.tenants = Some(TenantMix::new(vec![svc], 5));
    match spec.plane {
        Plane::Static => {}
        Plane::Mrc => cfg.deployment.elastic = mrc_plane_config(&cfg),
        Plane::Ttl => cfg.deployment.ttl = ttl_plane_config(),
    }
    cfg
}

/// Run every spec through `runner` (results in spec order).
pub fn run_sweep(
    runner: &SweepRunner,
    specs: &[TtlSpec],
    warmup: u64,
    measured: u64,
) -> Vec<ExperimentReport> {
    runner.run_map(specs, |_, spec| {
        run_kv_experiment(&experiment(spec, warmup, measured)).expect("ttl sweep run")
    })
}

/// Monthly dollars for a cell. Static cells are billed at their peak
/// window (what you'd provision for); controller cells are already
/// integral-billed in the report, so the totals compare directly.
pub fn cell_dollars(plane: Plane, r: &ExperimentReport) -> f64 {
    match plane {
        Plane::Static => crate::elastic::static_peak_dollars(r),
        Plane::Mrc | Plane::Ttl => r.total_cost.total(),
    }
}

// ---------------------------------------------------------------------------
// Tenant isolation: a quiet victim next to a storm-prone aggressor.
// ---------------------------------------------------------------------------

/// The isolation pair: aggressor storm off, then on. Everything else —
/// both tenants' request streams included — is byte-identical, so any
/// movement in the victim's numbers is the storm's doing.
pub fn isolation_specs() -> Vec<bool> {
    vec![false, true]
}

pub fn isolation_label(storm: bool) -> &'static str {
    if storm {
        "isolation/storm"
    } else {
        "isolation/quiet"
    }
}

/// Two tenants on one Remote cache with per-tenant TTL controllers. The
/// victim's workload (keys, skew, seed, read mix) never changes; the
/// aggressor optionally runs periodic invalidation storms. `set_read_ratio`
/// is RNG-neutral, so toggling the storm leaves every key sequence intact.
pub fn isolation_experiment(storm: bool, warmup: u64, measured: u64) -> KvExperimentConfig {
    let mut cfg = small_kv(ArchKind::Remote, 0.95, 1_024);
    cfg.qps = PEAK_QPS;
    cfg.warmup_requests = warmup;
    cfg.requests = measured;
    let victim = TenantSpec::new(
        "victim",
        2.0,
        KvWorkloadConfig {
            keys: 1_000,
            alpha: 1.2,
            read_ratio: 0.95,
            sizes: SizeDist::Fixed(1_024),
            seed: 21,
            churn_period: None,
        },
    );
    let mut aggressor = TenantSpec::new(
        "aggressor",
        1.0,
        KvWorkloadConfig {
            keys: 1_000,
            alpha: 1.1,
            read_ratio: 0.9,
            sizes: SizeDist::Fixed(1_024),
            seed: 22,
            churn_period: None,
        },
    );
    if storm {
        aggressor = aggressor.with_storm(STORM_PERIOD_SECS, STORM_BURST_SECS, STORM_READ_RATIO);
    }
    cfg.tenants = Some(TenantMix::new(vec![victim, aggressor], 9));
    cfg.deployment.ttl = ttl_plane_config();
    cfg
}

/// A tenant's measured hit ratio from the per-tenant report.
pub fn tenant_hit(r: &ExperimentReport, label: &str) -> f64 {
    r.tenants
        .iter()
        .find(|t| t.label == label)
        .map(|t| t.hit_ratio)
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_the_grid_in_order() {
        let specs = sweep_specs();
        assert_eq!(specs.len(), ARCHS.len() * Schedule::ALL.len() * Plane::ALL.len());
        assert_eq!(
            specs[0],
            TtlSpec {
                arch: ArchKind::Remote,
                schedule: Schedule::Diurnal,
                plane: Plane::Static,
            }
        );
        // Each (arch, schedule) triplet comes static, mrc, ttl — the
        // pairing the bin's headline and the acceptance tests rely on.
        for triplet in specs.chunks(3) {
            assert_eq!(triplet[0].arch, triplet[1].arch);
            assert_eq!(triplet[0].schedule, triplet[2].schedule);
            assert_eq!(
                [triplet[0].plane, triplet[1].plane, triplet[2].plane],
                [Plane::Static, Plane::Mrc, Plane::Ttl]
            );
        }
        assert_eq!(specs, sweep_specs());
    }

    #[test]
    fn static_cell_keeps_both_planes_off() {
        let cfg = experiment(
            &TtlSpec {
                arch: ArchKind::Linked,
                schedule: Schedule::Churn,
                plane: Plane::Static,
            },
            100,
            100,
        );
        assert!(!cfg.deployment.elastic.enabled());
        assert!(!cfg.deployment.ttl.enabled());
        let mix = cfg.tenants.as_ref().expect("single-tenant mix");
        assert!(mix.tenants[0].churn.is_some(), "churn rides the tenant");
    }

    #[test]
    fn planes_are_mutually_exclusive_per_cell() {
        let spec = |plane| TtlSpec {
            arch: ArchKind::Remote,
            schedule: Schedule::Diurnal,
            plane,
        };
        let mrc = experiment(&spec(Plane::Mrc), 100, 100);
        assert!(mrc.deployment.elastic.enabled());
        assert!(!mrc.deployment.ttl.enabled());
        let ttl = experiment(&spec(Plane::Ttl), 100, 100);
        assert!(!ttl.deployment.elastic.enabled());
        assert!(ttl.deployment.ttl.enabled());
        assert_eq!(ttl.deployment.ttl.max_ttl_secs, MAX_TTL_SECS);
        assert!(ttl.diurnal.is_some(), "diurnal arrives via the rate curve");
    }

    #[test]
    fn isolation_pair_differs_only_in_the_storm() {
        let quiet = isolation_experiment(false, 100, 100);
        let stormy = isolation_experiment(true, 100, 100);
        let q = quiet.tenants.as_ref().unwrap();
        let s = stormy.tenants.as_ref().unwrap();
        assert_eq!(q.tenants[0], s.tenants[0], "victim untouched");
        assert!(q.tenants[1].storm.is_none());
        assert!(s.tenants[1].storm.is_some());
        assert_eq!(q.tenants[1].workload, s.tenants[1].workload);
        assert!(quiet.deployment.ttl.enabled(), "isolation runs the TTL plane");
    }
}
