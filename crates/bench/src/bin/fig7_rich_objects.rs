//! Figure 7 — Unity Catalog-Object: the cost of rich-object reads.
//!
//! The production read path (`getTable` → 8 SQL statements + app-side
//! assembly) across architectures, contrasted with the denormalized KV
//! flavor. §5.4's claims: caching the assembled object saves up to ~8×
//! versus reading from storage, and the *saving multiple* is larger for
//! objects than for the KV flavor (by up to ~2×) because a hit elides all
//! eight statements.

use bench::sweep::SweepRunner;
use bench::{print_table, ratio, request_budget, usd, write_json};
use dcache::unityapp::{
    run_unity_kv_experiment, run_unity_object_experiment, UnityExperimentConfig,
};
use dcache::ArchKind;
use serde::Serialize;
use workloads::unity::UnityScale;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    flavor: &'static str,
    arch: String,
    total_cost: f64,
    cores: f64,
    cache_hit_ratio: f64,
    sql_per_read: f64,
    saving_vs_base: f64,
}

fn main() {
    println!("Reproducing Figure 7: Unity Catalog-Object vs -KV");
    let (warmup, measured) = request_budget(100_000, 100_000);
    let mut points = Vec::new();

    type Runner =
        fn(&UnityExperimentConfig) -> storekit::error::StoreResult<dcache::ExperimentReport>;
    const FLAVORS: [(&str, Runner); 2] = [
        ("object", run_unity_object_experiment as Runner),
        ("kv", run_unity_kv_experiment as Runner),
    ];
    let specs: Vec<(usize, ArchKind)> = (0..FLAVORS.len())
        .flat_map(|f| ArchKind::PAPER.iter().map(move |&a| (f, a)))
        .collect();
    let reports = SweepRunner::from_env().run_map(&specs, |_, &(f, arch)| {
        let mut cfg = UnityExperimentConfig::paper(arch, UnityScale::default());
        cfg.warmup_requests = warmup;
        cfg.requests = measured;
        FLAVORS[f].1(&cfg).expect("unity run")
    });
    let mut report_iter = reports.iter();

    for (flavor, _) in FLAVORS {
        let mut rows = Vec::new();
        let mut base_cost = None;
        for arch in ArchKind::PAPER {
            let r = report_iter.next().expect("one report per spec");
            let total = r.total_cost.total();
            let saving = match base_cost {
                None => {
                    base_cost = Some(total);
                    1.0
                }
                Some(b) => b / total,
            };
            let sql_per_read = r.sql_statements as f64 / r.requests as f64;
            rows.push(vec![
                arch.label().to_string(),
                usd(total),
                format!("{:.2}", r.total_cores),
                format!("{:.3}", r.cache_hit_ratio),
                format!("{sql_per_read:.2}"),
                ratio(saving),
            ]);
            points.push(Point {
                flavor,
                arch: arch.label().to_string(),
                total_cost: total,
                cores: r.total_cores,
                cache_hit_ratio: r.cache_hit_ratio,
                sql_per_read,
                saving_vs_base: saving,
            });
        }
        print_table(
            &format!("Figure 7: Unity Catalog-{flavor} (40K QPS)"),
            &["arch", "total/mo", "cores", "hit", "sql/req", "saving"],
            &rows,
        );
    }

    write_json("fig7_rich_objects", &points);

    let saving = |flavor: &str, arch: &str| {
        points
            .iter()
            .find(|p| p.flavor == flavor && p.arch == arch)
            .map(|p| p.saving_vs_base)
            .unwrap_or(0.0)
    };
    let obj = saving("object", "linked");
    let kv = saving("kv", "linked");
    println!(
        "\nLinked saving — Object: {} (paper: up to ~8x), KV: {} => object/kv advantage {} (paper: up to ~2x)",
        ratio(obj),
        ratio(kv),
        ratio(obj / kv.max(1e-9)),
    );
}
