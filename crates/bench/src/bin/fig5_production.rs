//! Figure 5 — cost comparison on production-shaped workloads.
//!
//! (a) Unity Catalog-KV: the denormalized single-row flavor of the
//!     governance service (≈93% reads, ≈23 KB median values, 40K QPS);
//! (b) Meta: the CacheLib-style trace (70% reads, ~10 B median values).
//!
//! Both show Remote and Linked saving substantially over Base, with Linked
//! ahead of Remote (gRPC + (de)serialization CPU), cf. §5.3.

use bench::sweep::SweepRunner;
use bench::{print_table, ratio, request_budget, usd, write_json};
use dcache::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache::unityapp::{run_unity_kv_experiment, UnityExperimentConfig};
use dcache::{ArchKind, ExperimentReport};
use serde::Serialize;
use workloads::meta::meta_workload;
use workloads::unity::UnityScale;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    workload: &'static str,
    arch: String,
    total_cost: f64,
    compute_cost: f64,
    memory_cost: f64,
    cores: f64,
    cache_hit_ratio: f64,
    saving_vs_base: f64,
    memory_fraction: f64,
}

fn record(
    points: &mut Vec<Point>,
    rows: &mut Vec<Vec<String>>,
    workload: &'static str,
    arch: ArchKind,
    r: &ExperimentReport,
    base_cost: &mut Option<f64>,
) {
    let total = r.total_cost.total();
    let saving = match base_cost {
        None => {
            *base_cost = Some(total);
            1.0
        }
        Some(b) => *b / total,
    };
    rows.push(vec![
        arch.label().to_string(),
        usd(total),
        usd(r.total_cost.compute),
        usd(r.total_cost.memory),
        format!("{:.2}", r.total_cores),
        format!("{:.3}", r.cache_hit_ratio),
        ratio(saving),
        format!("{:.1}%", r.memory_cost_fraction() * 100.0),
    ]);
    points.push(Point {
        workload,
        arch: arch.label().to_string(),
        total_cost: total,
        compute_cost: r.total_cost.compute,
        memory_cost: r.total_cost.memory,
        cores: r.total_cores,
        cache_hit_ratio: r.cache_hit_ratio,
        saving_vs_base: saving,
        memory_fraction: r.memory_cost_fraction(),
    });
}

const HEADER: [&str; 8] = [
    "arch", "total/mo", "compute", "memory", "cores", "hit", "saving", "mem%",
];

fn main() {
    println!("Reproducing Figure 5: production workloads");
    let (warmup, measured) = request_budget(120_000, 120_000);
    let mut points = Vec::new();

    let runner = SweepRunner::from_env();
    let archs: Vec<ArchKind> = ArchKind::PAPER.to_vec();

    // (a) Unity Catalog-KV at 40K QPS.
    let unity_reports = runner.run_map(&archs, |_, &arch| {
        let mut cfg = UnityExperimentConfig::paper(arch, UnityScale::default());
        cfg.warmup_requests = warmup;
        cfg.requests = measured;
        run_unity_kv_experiment(&cfg).expect("unity-kv run")
    });
    let mut rows = Vec::new();
    let mut base = None;
    for (&arch, r) in archs.iter().zip(&unity_reports) {
        record(&mut points, &mut rows, "unity_kv", arch, r, &mut base);
    }
    print_table("Figure 5a: Unity Catalog-KV (40K QPS)", &HEADER, &rows);

    // (b) Meta-style trace at 100K QPS (tiny values, 30% writes).
    let meta_reports = runner.run_map(&archs, |_, &arch| {
        let mut cfg = KvExperimentConfig::paper(arch, meta_workload(11));
        cfg.warmup_requests = warmup;
        cfg.requests = measured;
        cfg.prewarm = true; // seed the tiny-value working set (74 MB total)
        run_kv_experiment(&cfg).expect("meta run")
    });
    let mut rows = Vec::new();
    let mut base = None;
    for (&arch, r) in archs.iter().zip(&meta_reports) {
        record(&mut points, &mut rows, "meta", arch, r, &mut base);
    }
    print_table("Figure 5b: Meta-style trace (100K QPS)", &HEADER, &rows);

    write_json("fig5_production", &points);

    let best = |w: &str| {
        points
            .iter()
            .filter(|p| p.workload == w)
            .map(|p| p.saving_vs_base)
            .fold(0.0f64, f64::max)
    };
    println!(
        "\nBest saving vs Base — Unity Catalog-KV: {}, Meta: {} (paper: 3-4x range)",
        ratio(best("unity_kv")),
        ratio(best("meta"))
    );
}
