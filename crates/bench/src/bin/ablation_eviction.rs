//! Ablation — eviction policy.
//!
//! The paper's deployments use LRU throughout. This ablation sweeps the
//! policies in `cachekit` (LRU, FIFO, LFU, SLRU, CLOCK) on the Linked
//! architecture with a cache deliberately smaller than the working set, to
//! show how much of the cost conclusion depends on the eviction choice
//! (answer: little — hit-ratio differences of a few points move cost by a
//! few percent, nowhere near the architecture gaps).

use bench::sweep::SweepRunner;
use bench::{print_table, ratio, request_budget, usd, write_json};
use cachekit::PolicyKind;
use dcache::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache::ArchKind;
use serde::Serialize;
use workloads::KvWorkloadConfig;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    policy: String,
    cache_hit_ratio: f64,
    total_cost: f64,
    saving_vs_base: f64,
}

fn main() {
    println!("Ablation: eviction policy on the Linked architecture");
    println!("(cache sized to ~10% of the 100KB-value working set to force eviction)");
    let (warmup, measured) = request_budget(120_000, 120_000);

    let make_cfg = |arch: ArchKind, policy: PolicyKind, admission: bool| {
        // Milder skew than the headline runs (alpha = 1.0) so eviction
        // decisions actually matter; cache ~7% of the 10 GB working set.
        let mut workload = KvWorkloadConfig::paper_synthetic(0.95, 100 << 10, 42);
        workload.alpha = 1.0;
        let mut cfg = KvExperimentConfig::paper(arch, workload);
        cfg.qps = 100_000.0;
        cfg.warmup_requests = warmup;
        cfg.requests = measured;
        cfg.deployment.linked_cache_bytes_per_server = 240 << 20;
        cfg.deployment.cache_policy = policy;
        cfg.deployment.cache_admission = admission;
        cfg
    };

    // Spec 0 is the Base reference; the rest are Linked policy variants.
    let mut specs: Vec<(String, ArchKind, PolicyKind, bool)> =
        vec![("base".to_string(), ArchKind::Base, PolicyKind::Lru, false)];
    specs.extend(
        PolicyKind::ALL
            .iter()
            .map(|&p| (p.label().to_string(), ArchKind::Linked, p, false)),
    );
    specs.push(("lru+tinylfu".to_string(), ArchKind::Linked, PolicyKind::Lru, true));
    let reports = SweepRunner::from_env().run_map(&specs, |_, (_, arch, policy, admission)| {
        run_kv_experiment(&make_cfg(*arch, *policy, *admission)).expect("run")
    });
    let base_cost = reports[0].total_cost.total();

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for ((label, _, _, _), r) in specs.iter().zip(&reports).skip(1) {
        let total = r.total_cost.total();
        rows.push(vec![
            label.clone(),
            format!("{:.3}", r.cache_hit_ratio),
            usd(total),
            ratio(base_cost / total),
        ]);
        points.push(Point {
            policy: label.clone(),
            cache_hit_ratio: r.cache_hit_ratio,
            total_cost: total,
            saving_vs_base: base_cost / total,
        });
    }
    print_table(
        &format!("Eviction ablation (Base costs {})", usd(base_cost)),
        &["policy", "hit", "total/mo", "saving"],
        &rows,
    );
    write_json("ablation_eviction", &points);

    let best = points.iter().map(|p| p.saving_vs_base).fold(0.0f64, f64::max);
    let worst = points
        .iter()
        .map(|p| p.saving_vs_base)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nPolicy choice moves the saving between {} and {} — the architecture choice dominates.",
        ratio(worst),
        ratio(best)
    );
}
