//! Ablation — elastic provisioning: what a diurnal day really costs.
//!
//! The paper prices every architecture at a fixed provisioning point, but
//! real services breathe: datacenter KV load swings 2–4x between the daily
//! peak and trough. Static provisioning sizes the fleet — VMs *and* cache
//! DRAM — for the peak window and pays for it around the clock. The
//! `elastic` control plane instead profiles the live miss-ratio curve
//! (bounded-memory SHARDS sampling), prices candidate cache sizes with the
//! cost model, and resizes the running tier online: linked caches shrink
//! and grow in place, remote shards drain and restore through the
//! consistent-hash ring with the migration CPU charged to the bill.
//!
//! This sweep runs one compressed sinusoidal day per architecture, twice —
//! static-peak vs elastic — and reports the headline dollar gap next to
//! the hit-ratio cost of running leaner. Expected shape:
//!
//! * elastic cuts the monthly bill well over 15% (the compute peak/mean
//!   ratio alone is ~1.6 at a 25% trough, and the cache memory line
//!   shrinks to its time-average);
//! * the measured hit ratio stays within 2 points of static — the planner
//!   caps predicted extra misses at 1% and hysteresis suppresses churn;
//! * every resize/drain/migration is counted, so the saving is auditable.

use bench::elastic::{
    elastic_dollars, run_sweep, saving, static_peak_dollars, sweep_specs, TROUGH,
};
use bench::sweep::SweepRunner;
use bench::{print_table, ratio, request_budget, usd, write_json};
use serde::Serialize;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    arch: String,
    elastic: bool,
    monthly_dollars: f64,
    static_peak_dollars: f64,
    cache_hit_ratio: f64,
    total_cores: f64,
    peak_window_cores: f64,
    mean_cache_bytes: f64,
    peak_cache_bytes: u64,
    decisions: u64,
    plan_changes: u64,
    resizes: u64,
    shards_drained: u64,
    shards_restored: u64,
    migrated_entries: u64,
    migrated_bytes: u64,
}

fn main() {
    println!(
        "Ablation: elastic cache provisioning over a diurnal day (trough = {TROUGH} x peak)"
    );
    let (warmup, measured) = request_budget(16_000, 32_000);

    let specs = sweep_specs();
    let reports = run_sweep(&SweepRunner::from_env(), &specs, warmup, measured);

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (spec, r) in specs.iter().zip(&reports) {
        rows.push(vec![
            spec.label(),
            usd(static_peak_dollars(r)),
            usd(elastic_dollars(r)),
            format!("{:.3}", r.cache_hit_ratio),
            format!("{:.2}", r.total_cores),
            format!("{:.2}", r.peak_window_cores),
            format!("{:.1}", r.elastic_mean_cache_bytes / 1e6),
            format!("{}", r.elastic_resizes),
            format!("{}", r.elastic_shards_drained),
            format!("{:.1}", r.elastic_migrated_bytes as f64 / 1e6),
        ]);
        points.push(Point {
            arch: spec.arch.label().to_string(),
            elastic: spec.elastic,
            monthly_dollars: elastic_dollars(r),
            static_peak_dollars: static_peak_dollars(r),
            cache_hit_ratio: r.cache_hit_ratio,
            total_cores: r.total_cores,
            peak_window_cores: r.peak_window_cores,
            mean_cache_bytes: r.elastic_mean_cache_bytes,
            peak_cache_bytes: r.elastic_peak_cache_bytes,
            decisions: r.elastic_decisions,
            plan_changes: r.elastic_plan_changes,
            resizes: r.elastic_resizes,
            shards_drained: r.elastic_shards_drained,
            shards_restored: r.elastic_shards_restored,
            migrated_entries: r.elastic_migrated_entries,
            migrated_bytes: r.elastic_migrated_bytes,
        });
    }
    print_table(
        "Elastic-provisioning ablation (diurnal day, 95% reads)",
        &[
            "cell",
            "static_peak/mo",
            "billed/mo",
            "hit",
            "cores",
            "peak_cores",
            "mean_MB",
            "resizes",
            "drained",
            "migr_MB",
        ],
        &rows,
    );
    write_json("ablation_elastic", &points);

    // The headline comparison: each arch's elastic run against its own
    // static-peak baseline (specs come in static-then-elastic pairs).
    println!("\nHeadline — elastic vs static-peak, per architecture:");
    let mut headline_rows = Vec::new();
    for (specs_pair, reports_pair) in specs.chunks(2).zip(reports.chunks(2)) {
        let s_spec = &specs_pair[0];
        debug_assert!(!s_spec.elastic && specs_pair[1].elastic);
        let (st, el) = (&reports_pair[0], &reports_pair[1]);
        let save = saving(st, el);
        headline_rows.push(vec![
            s_spec.arch.label().to_string(),
            usd(static_peak_dollars(st)),
            usd(elastic_dollars(el)),
            format!("{:.1}%", save * 100.0),
            format!("{:+.2}pt", (el.cache_hit_ratio - st.cache_hit_ratio) * 100.0),
            ratio(st.peak_window_cores / st.total_cores.max(1e-9)),
        ]);
    }
    print_table(
        "Dollar cost over the simulated day",
        &[
            "arch",
            "static_peak/mo",
            "elastic/mo",
            "saving",
            "hit_delta",
            "peak/mean_cpu",
        ],
        &headline_rows,
    );

    println!(
        "\nStatic provisioning pays the peak window all day: its compute line\n\
         scales with the hottest ~1 s of load and its DRAM line with the full\n\
         configured cache. The elastic controller tracks the live MRC, picks\n\
         the dollar-minimizing size each interval, and actually resizes the\n\
         tier — so the bill follows the demand integral instead. The saving\n\
         is the area between those two curves; the price is a sub-2-point\n\
         hit-ratio dip from resize churn plus the metered migration CPU."
    );
}
