//! Ablation — where does Linked's advantage come from?
//!
//! §5.3 attributes a large share of the saving to avoided (de)serialization
//! and RPC per-byte work. This ablation sweeps the per-byte cost constants
//! (a proxy for "how proto-heavy is your stack") and shows the Linked-vs-
//! Base saving growing with them at large values — the mechanism behind
//! Figure 4b's trend.

use bench::sweep::SweepRunner;
use bench::{print_table, ratio, request_budget, write_json};
use dcache::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache::ArchKind;
use serde::Serialize;
use workloads::KvWorkloadConfig;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    per_byte_multiplier: f64,
    value_bytes: u64,
    linked_saving: f64,
}

fn main() {
    println!("Ablation: per-byte (de)serialization/RPC cost sensitivity");
    let (warmup, measured) = request_budget(80_000, 80_000);

    let run = |arch: ArchKind, mult: f64, value_bytes: u64| {
        let workload = KvWorkloadConfig::paper_synthetic(0.95, value_bytes, 42);
        let mut cfg = KvExperimentConfig::paper(arch, workload);
        cfg.qps = 100_000.0;
        cfg.warmup_requests = warmup;
        cfg.requests = measured;
        let app = &mut cfg.deployment.app_cost;
        app.serialize_per_byte_ns *= mult;
        app.rpc_per_byte_ns *= mult;
        let st = &mut cfg.deployment.cluster.cost;
        st.rpc_per_byte_ns *= mult;
        st.kv_per_byte_ns *= mult;
        run_kv_experiment(&cfg).expect("run").total_cost.total()
    };

    let mut specs: Vec<(u64, f64, ArchKind)> = Vec::new();
    for value_bytes in [1u64 << 10, 1 << 20] {
        for mult in [0.25, 1.0, 4.0] {
            for arch in [ArchKind::Base, ArchKind::Linked] {
                specs.push((value_bytes, mult, arch));
            }
        }
    }
    let costs = SweepRunner::from_env()
        .run_map(&specs, |_, &(value_bytes, mult, arch)| run(arch, mult, value_bytes));

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (chunk, costs) in specs.chunks(2).zip(costs.chunks(2)) {
        let (value_bytes, mult, _) = chunk[0];
        let saving = costs[0] / costs[1]; // base / linked
        rows.push(vec![
            format!("{}KB", value_bytes >> 10),
            format!("{mult}x"),
            ratio(saving),
        ]);
        points.push(Point {
            per_byte_multiplier: mult,
            value_bytes,
            linked_saving: saving,
        });
    }
    print_table(
        "Linked saving vs Base under scaled per-byte costs",
        &["value", "per-byte cost", "saving"],
        &rows,
    );
    write_json("ablation_serialization", &points);

    println!(
        "\nAt 1MB values the saving is strongly increasing in per-byte cost — the\n\
         (de)serialization mechanism the paper identifies; at 1KB it barely moves."
    );
}
