//! Ablation — the price of consistency, and the §6 way out.
//!
//! Compares eventually-consistent Linked, the §5.5 per-read version check
//! (Linked+Version), and the §6 lease-owned design across value sizes.
//! The version check pays the whole SQL front-end + lease + RPC + row-fetch
//! path on every read; ownership leases amortize that to ~nothing while
//! preserving linearizability (fencing handles the Figure 8 hazard).

use bench::sweep::SweepRunner;
use bench::{print_table, ratio, request_budget, usd, write_json};
use dcache::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache::ArchKind;
use serde::Serialize;
use workloads::KvWorkloadConfig;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    arch: String,
    value_bytes: u64,
    total_cost: f64,
    saving_vs_base: f64,
    version_checks_per_read: f64,
    stale_reads: u64,
}

fn main() {
    println!("Ablation: consistency mechanisms (Linked vs +Version vs LeaseOwned)");
    let (warmup, measured) = request_budget(100_000, 100_000);
    let mut points = Vec::new();

    const VARIANTS: [ArchKind; 4] = [
        ArchKind::Base,
        ArchKind::Linked,
        ArchKind::LinkedVersion,
        ArchKind::LeaseOwned,
    ];
    let specs: Vec<(u64, ArchKind)> = [1u64 << 10, 100 << 10]
        .iter()
        .flat_map(|&v| VARIANTS.iter().map(move |&a| (v, a)))
        .collect();
    let reports = SweepRunner::from_env().run_map(&specs, |_, &(value_bytes, arch)| {
        let workload = KvWorkloadConfig::paper_synthetic(0.95, value_bytes, 42);
        let mut cfg = KvExperimentConfig::paper(arch, workload);
        cfg.qps = 100_000.0;
        cfg.warmup_requests = warmup;
        cfg.requests = measured;
        run_kv_experiment(&cfg).expect("run")
    });

    for (chunk, reports) in specs.chunks(VARIANTS.len()).zip(reports.chunks(VARIANTS.len())) {
        let value_bytes = chunk[0].0;
        let base_cost = reports[0].total_cost.total();
        let mut rows = Vec::new();
        for (&(_, arch), r) in chunk.iter().zip(reports).skip(1) {
            let total = r.total_cost.total();
            let checks = r.version_checks as f64 / (r.requests as f64 * 0.95);
            rows.push(vec![
                arch.label().to_string(),
                usd(total),
                ratio(base_cost / total),
                format!("{checks:.3}"),
                format!("{}", r.stale_reads),
                if arch.is_consistent() { "yes" } else { "no" }.to_string(),
            ]);
            points.push(Point {
                arch: arch.label().to_string(),
                value_bytes,
                total_cost: total,
                saving_vs_base: base_cost / total,
                version_checks_per_read: checks,
                stale_reads: r.stale_reads,
            });
        }
        print_table(
            &format!(
                "Consistency ablation at {}KB values (Base: {})",
                value_bytes >> 10,
                usd(base_cost)
            ),
            &["arch", "total/mo", "saving", "checks/read", "stale", "linearizable"],
            &rows,
        );
    }
    write_json("ablation_consistency", &points);

    println!(
        "\nPer-read version checks collapse the saving toward 1x (§5.5); ownership\n\
         leases recover nearly all of Linked's saving while keeping reads\n\
         linearizable (§6) — the fencing correctness argument is fig8_delayed_writes."
    );
}
