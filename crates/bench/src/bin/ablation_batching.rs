//! Ablation — amortizing the RPC tax: batched multi-get on the Remote path.
//!
//! The paper's Remote architecture pays a fixed per-RPC cost (syscalls,
//! framing, scheduling) on every cache lookup, on both sides of the wire —
//! the dominant reason a remote cache burns more CPU than a linked one at
//! small values. Batching amortizes that fixed cost over the keys sharing a
//! frame. This sweep turns the app-side coalescing window on at increasing
//! target batch sizes and watches per-request CPU fall toward the per-key
//! floor while read latency pays for the window — then checks the measured
//! curve against the §4 closed form and its Remote-vs-Linked crossover.
//!
//! Expected shape:
//!
//! * per-request app+cache CPU follows `per_key + (fixed − per_key)/B`
//!   (hyperbolic in the achieved mean batch size, not the configured cap);
//! * hit ratio and every cache outcome are unchanged — batching moves
//!   *when* frames depart, never *what* they return;
//! * p50 read latency grows roughly linearly with the window — the
//!   latency-for-CPU trade §4 prices out.

use bench::batching::{cpu_us_per_request, run_sweep, sweep_specs};
use bench::sweep::SweepRunner;
use bench::{print_table, request_budget, usd, write_json};
use costmodel::{RpcTax, TheoryModel, TheoryParams};
use serde::Serialize;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    max_batch: u32,
    value_bytes: u64,
    mean_batch_size: f64,
    rpc_batches: u64,
    batched_rpc_keys: u64,
    cpu_us_per_request: f64,
    model_cpu_us_per_request: f64,
    total_cost: f64,
    cache_hit_ratio: f64,
    read_p50_us: u64,
    read_p99_us: u64,
}

fn main() {
    println!("Ablation: batched remote-cache RPC (batch size x value size)");
    let (warmup, measured) = request_budget(20_000, 40_000);

    let specs = sweep_specs();
    let reports = run_sweep(&SweepRunner::from_env(), &specs, warmup, measured);

    // The §4 tax decomposition, calibrated to the simulator's constants.
    let tax = RpcTax::default();

    let mut rows = Vec::new();
    let mut points = Vec::new();
    let mut baseline_cpu = 0.0;
    for (spec, r) in specs.iter().zip(&reports) {
        let cpu = cpu_us_per_request(r);
        if spec.max_batch == 1 {
            baseline_cpu = cpu;
        }
        // Model prediction: the unbatched curve shifted by the amortized
        // fixed tax at the *achieved* mean batch size. One lookup per read
        // (95% of requests) rides a frame; misses add a fill RPC.
        let b = if r.mean_batch_size > 0.0 {
            r.mean_batch_size
        } else {
            1.0
        };
        let model_cpu = baseline_cpu
            - (tax.amortized_core_secs(1.0) - tax.amortized_core_secs(b)) * 1e6;
        rows.push(vec![
            format!("{}", spec.value_bytes),
            format!("{}", spec.max_batch),
            format!("{:.2}", r.mean_batch_size),
            format!("{:.2}", cpu),
            format!("{:.2}", model_cpu),
            format!("{:.3}", r.cache_hit_ratio),
            format!("{}", r.read_latency_p50_us),
            usd(r.total_cost.total()),
        ]);
        points.push(Point {
            max_batch: spec.max_batch,
            value_bytes: spec.value_bytes,
            mean_batch_size: r.mean_batch_size,
            rpc_batches: r.rpc_batches,
            batched_rpc_keys: r.batched_rpc_keys,
            cpu_us_per_request: cpu,
            model_cpu_us_per_request: model_cpu,
            total_cost: r.total_cost.total(),
            cache_hit_ratio: r.cache_hit_ratio,
            read_p50_us: r.read_latency_p50_us,
            read_p99_us: r.read_latency_p99_us,
        });
    }
    print_table(
        "Batched-RPC ablation (Remote, 95% reads)",
        &[
            "val_B",
            "max_batch",
            "mean_B",
            "cpu_us/req",
            "model_us/req",
            "hit",
            "p50_us",
            "total/mo",
        ],
        &rows,
    );
    write_json("ablation_batching", &points);

    // §4 crossover: the batch size at which Remote's amortized RPC tax fits
    // inside the budget Linked concedes (local-op CPU + the DRAM it saves
    // by not replicating the cache).
    let local_op_core_secs = 1.2e-6; // the simulator's local_cache_op_us
    println!("\n§4 Remote-vs-Linked crossover (8 GB cache, default prices):");
    for replicas in [2.0, 4.0, 8.0] {
        let m = TheoryModel::new(TheoryParams {
            replicas,
            ..TheoryParams::default()
        });
        match m.remote_crossover_batch(&tax, local_op_core_secs, 8.0) {
            Some(b) => println!("  N_r = {replicas}: Remote matches Linked at B* ≈ {b:.1}"),
            None => println!("  N_r = {replicas}: Remote never matches Linked"),
        }
    }

    println!(
        "\nBatching amortizes the fixed per-RPC cost over every key in a\n\
         frame: per-request CPU falls hyperbolically toward the per-key\n\
         floor while hit ratios do not move, and p50 latency buys the\n\
         coalescing window. At median Meta value sizes (~10 B) the fixed\n\
         tax dominates the payload, so max_batch >= 8 recovers most of the\n\
         Remote architecture's CPU premium."
    );
}
