//! Ablation — the in-process hot-key L0 tier (the "fifth architecture").
//!
//! A few MB of TinyLFU-admitted, version-invalidated cache inside each app
//! server absorbs the Zipf head at the cost of one in-process probe — no
//! RPC, no serialization, no shard routing. This sweep layers that L0 in
//! front of the Remote and Linked architectures and varies tier size ×
//! skew × value size, then compares the measured dollars against the §4
//! alternative for cutting Remote's RPC tax: batched multi-get at the
//! B* ≈ 8.8 crossover frame size.
//!
//! Expected shape:
//!
//! * L0 absorption tracks the head mass: it grows with skew and with tier
//!   bytes (more head keys resident), and saturates once the tier holds
//!   the whole head;
//! * with invalidate-first coherence, `stale_reads` stays zero — writers
//!   purge every server's L0 before acknowledging, paying invalidation
//!   CPU that shows up in the app tier;
//! * serve-stale drops the invalidation traffic and serves bounded-stale
//!   hits instead — the measured stale serves and age percentiles put
//!   numbers on that trade;
//! * at high skew and small values the L0's dollars undercut even a
//!   well-amortized batch, matching the `costmodel` crossover.

use bench::hotkey::{cpu_us_per_request, l0_absorption, run_sweep, sweep_specs};
use bench::sweep::SweepRunner;
use bench::{print_table, request_budget, usd, write_json};
use costmodel::{RpcTax, TheoryModel, TheoryParams};
use serde::Serialize;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    arch: String,
    l0_bytes: u64,
    alpha: f64,
    value_bytes: u64,
    serve_stale: bool,
    l0_hit_ratio: f64,
    l0_absorption: f64,
    l0_invalidations: u64,
    l0_stale_serves: u64,
    l0_age_p99_us: u64,
    stale_reads: u64,
    cpu_us_per_request: f64,
    total_cost: f64,
    cache_hit_ratio: f64,
    read_p50_us: u64,
    read_p99_us: u64,
}

fn main() {
    println!("Ablation: in-process hot-key L0 tier (bytes x skew x value size)");
    let (warmup, measured) = request_budget(20_000, 40_000);

    let specs = sweep_specs();
    let reports = run_sweep(&SweepRunner::from_env(), &specs, warmup, measured);

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (spec, r) in specs.iter().zip(&reports) {
        rows.push(vec![
            spec.arch.label().to_string(),
            format!("{}", spec.alpha),
            format!("{}", spec.value_bytes),
            format!("{}", spec.l0_bytes >> 10),
            if spec.serve_stale { "stale" } else { "inval" }.to_string(),
            format!("{:.3}", l0_absorption(r)),
            format!("{}", r.l0_stale_serves),
            format!("{}", r.l0_age_p99_us),
            format!("{:.2}", cpu_us_per_request(r)),
            format!("{}", r.read_latency_p50_us),
            usd(r.total_cost.total()),
        ]);
        points.push(Point {
            arch: spec.arch.label().to_string(),
            l0_bytes: spec.l0_bytes,
            alpha: spec.alpha,
            value_bytes: spec.value_bytes,
            serve_stale: spec.serve_stale,
            l0_hit_ratio: r.l0_hit_ratio,
            l0_absorption: l0_absorption(r),
            l0_invalidations: r.l0_invalidations,
            l0_stale_serves: r.l0_stale_serves,
            l0_age_p99_us: r.l0_age_p99_us,
            stale_reads: r.stale_reads,
            cpu_us_per_request: cpu_us_per_request(r),
            total_cost: r.total_cost.total(),
            cache_hit_ratio: r.cache_hit_ratio,
            read_p50_us: r.read_latency_p50_us,
            read_p99_us: r.read_latency_p99_us,
        });
    }
    print_table(
        "Hot-key L0 ablation (95% reads)",
        &[
            "arch", "alpha", "val_B", "l0_kB", "mode", "l0_abs", "stale", "age_p99_us",
            "cpu_us/req", "p50_us", "total/mo",
        ],
        &rows,
    );
    write_json("ablation_hotkey", &points);

    // The costmodel companion: at what skew does a 4 MB L0 beat batching at
    // the §4 B* ≈ 8.8 crossover frame size, and how does value size move it?
    let tax = RpcTax::default();
    let template = |entry_bytes: f64| TheoryParams {
        keys: 1_000_000,
        mean_entry_bytes: entry_bytes,
        qps: 40_000.0,
        ..TheoryParams::default()
    };
    let (l0_gb, l0_hit, servers, b_star) = (4.0e-3, 0.15e-6, 4.0, 8.8);
    println!("\nL0-vs-batching dollar crossover (4 MB/server, B* = 8.8):");
    for entry_bytes in [128.0, 1_024.0, 65_536.0] {
        match TheoryModel::l0_crossover_alpha(
            &template(entry_bytes),
            &tax,
            b_star,
            l0_gb,
            l0_hit,
            servers,
            0.5,
            1.6,
        ) {
            Some(a) => println!("  {entry_bytes:>8.0} B values: L0 wins from alpha >= {a:.2}"),
            None => println!("  {entry_bytes:>8.0} B values: batching keeps winning below alpha 1.6"),
        }
    }
    let m = TheoryModel::new(TheoryParams {
        alpha: 1.2,
        ..template(1_024.0)
    });
    println!(
        "  at alpha 1.2, 1 KB values: margin {} per month vs the batched frame",
        usd(m.l0_vs_batching_margin(&tax, b_star, l0_gb, l0_hit, servers))
    );

    println!(
        "\nThe L0 tier converts the Zipf head into in-process probes: its\n\
         absorption follows the head mass, invalidate-first keeps stale\n\
         reads at zero for invalidation CPU, and serve-stale trades a\n\
         bounded staleness window for dropping that write fan-out. At\n\
         production skew and small values a few MB per server undercuts\n\
         even a B*-sized batched frame on dollars — batching amortizes the\n\
         RPC tax, the L0 deletes it."
    );
}
