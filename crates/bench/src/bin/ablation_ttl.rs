//! Ablation — the TTL control plane: expiry as the cost knob.
//!
//! The elastic ablation resizes cache *capacity* off live miss-ratio
//! curves; Carra et al. argue TTL is the dual knob — let entries expire at
//! the cost-optimal age and the memory footprint follows, no migration
//! required. This sweep runs the two control planes head-to-head against a
//! static-peak fleet on three stress schedules × two architectures:
//!
//! * **diurnal** — sinusoidal arrival day (the regime MRC resizing was
//!   built for);
//! * **churn** — the hot set rotates every few seconds, stranding ghost
//!   entries capacity planning keeps paying for;
//! * **storm** — periodic write-heavy invalidation bursts.
//!
//! Cells run DRAM-heavy (83 MB footprint, 8× memory price — the fig2
//! sensitivity axis) so the memory line is worth fighting over. A second
//! section runs the two-tenant isolation pair: a quiet victim next to a
//! storm-prone aggressor, each with its own TTL controller — the victim's
//! hit ratio must not move. A final section keeps the PR-4 fixed-TTL
//! freshness frontier (`LinkedTtl`): what a *static* TTL trades when it is
//! a consistency contract rather than a cost knob.

use bench::sweep::SweepRunner;
use bench::ttl::{
    cell_dollars, isolation_experiment, isolation_label, isolation_specs, run_sweep, sweep_specs,
    tenant_hit, Plane, MEM_PRICE_MULT,
};
use bench::{print_table, ratio, request_budget, usd};
use dcache::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache::ArchKind;
use simnet::SimDuration;
use std::time::Instant;
use workloads::KvWorkloadConfig;

struct PlanePoint {
    cell: String,
    monthly_dollars: f64,
    memory_dollars: f64,
    cache_hit_ratio: f64,
    ttl_decisions: u64,
    ttl_changes: u64,
    expired_entries: u64,
    expiry_sweep_cpu_us: u64,
    mean_resident_bytes: f64,
    current_ttl_secs: f64,
}

struct IsolationPoint {
    cell: String,
    victim_hit: f64,
    aggressor_hit: f64,
    aggressor_write_share: f64,
    victim_dollars: f64,
    aggressor_dollars: f64,
}

struct FrontierPoint {
    label: String,
    total_cost: f64,
    stale_fraction: f64,
    cache_hit_ratio: f64,
    saving_vs_base: f64,
}

fn main() {
    println!(
        "Ablation: TTL control plane vs MRC planner vs static-peak \
         (83MB footprint, {MEM_PRICE_MULT}x DRAM price)"
    );
    // Same budget as the golden suite and `tests/ttl_acceptance.rs`, so the
    // printed cells are the blessed cells.
    let (warmup, measured) = request_budget(8_000, 12_000);
    let runner = SweepRunner::from_env();
    let wall = Instant::now();

    // ---- Section 1: the control-plane head-to-head grid. ----
    let specs = sweep_specs();
    let reports = run_sweep(&runner, &specs, warmup, measured);
    let grid_requests: u64 = reports.iter().map(|r| r.requests).sum();

    let mut rows = Vec::new();
    let mut plane_points = Vec::new();
    for (spec, r) in specs.iter().zip(&reports) {
        let ttl_now = r.ttl_current_secs.first().copied().unwrap_or(0.0);
        rows.push(vec![
            spec.label(),
            usd(cell_dollars(spec.plane, r)),
            usd(r.total_cost.memory),
            format!("{:.3}", r.cache_hit_ratio),
            format!("{}", r.ttl_changes),
            format!("{}", r.expired_entries),
            format!("{:.1}", r.ttl_mean_resident_bytes / 1e6),
            if spec.plane == Plane::Ttl {
                format!("{ttl_now:.2}s")
            } else {
                "-".into()
            },
        ]);
        plane_points.push(PlanePoint {
            cell: spec.label(),
            monthly_dollars: cell_dollars(spec.plane, r),
            memory_dollars: r.total_cost.memory,
            cache_hit_ratio: r.cache_hit_ratio,
            ttl_decisions: r.ttl_decisions,
            ttl_changes: r.ttl_changes,
            expired_entries: r.expired_entries,
            expiry_sweep_cpu_us: r.expiry_sweep_cpu_us,
            mean_resident_bytes: r.ttl_mean_resident_bytes,
            current_ttl_secs: ttl_now,
        });
    }
    print_table(
        "Control-plane head-to-head (95% reads)",
        &[
            "cell",
            "billed/mo",
            "mem/mo",
            "hit",
            "ttl_moves",
            "expired",
            "resident_MB",
            "ttl",
        ],
        &rows,
    );

    // Headline: per (arch, schedule), both controllers against the static
    // fleet (specs come in static-mrc-ttl triplets).
    println!("\nHeadline — dollars against the static-peak fleet:");
    let mut headline = Vec::new();
    for (sp, rp) in specs.chunks(3).zip(reports.chunks(3)) {
        debug_assert_eq!(
            [sp[0].plane, sp[1].plane, sp[2].plane],
            [Plane::Static, Plane::Mrc, Plane::Ttl]
        );
        let statics = cell_dollars(Plane::Static, &rp[0]);
        let mrc = cell_dollars(Plane::Mrc, &rp[1]);
        let ttl = cell_dollars(Plane::Ttl, &rp[2]);
        headline.push(vec![
            format!("{}/{}", sp[0].arch.label(), sp[0].schedule.label()),
            usd(statics),
            usd(mrc),
            usd(ttl),
            format!("{:+.1}%", (1.0 - ttl / statics) * 100.0),
            format!("{:+.1}%", (1.0 - ttl / mrc) * 100.0),
            format!(
                "{:+.2}pt",
                (rp[2].cache_hit_ratio - rp[1].cache_hit_ratio) * 100.0
            ),
        ]);
    }
    print_table(
        "TTL plane vs the alternatives",
        &[
            "arch/schedule",
            "static/mo",
            "mrc/mo",
            "ttl/mo",
            "ttl_vs_static",
            "ttl_vs_mrc",
            "hit_vs_mrc",
        ],
        &headline,
    );

    // ---- Section 2: tenant isolation. ----
    let iso_specs = isolation_specs();
    let iso = runner.run_map(&iso_specs, |_, &storm| {
        run_kv_experiment(&isolation_experiment(storm, warmup, measured)).expect("isolation run")
    });
    let iso_requests: u64 = iso.iter().map(|r| r.requests).sum();
    let mut iso_rows = Vec::new();
    let mut iso_points = Vec::new();
    for (&storm, r) in iso_specs.iter().zip(&iso) {
        let tenant = |label: &str| r.tenants.iter().find(|t| t.label == label).expect("tenant");
        let agg = tenant("aggressor");
        iso_rows.push(vec![
            isolation_label(storm).to_string(),
            format!("{:.4}", tenant_hit(r, "victim")),
            format!("{:.4}", tenant_hit(r, "aggressor")),
            format!("{:.3}", agg.writes as f64 / agg.requests as f64),
            format!("{:.2}s / {:.2}s", tenant("victim").ttl_secs, agg.ttl_secs),
        ]);
        iso_points.push(IsolationPoint {
            cell: isolation_label(storm).to_string(),
            victim_hit: tenant_hit(r, "victim"),
            aggressor_hit: tenant_hit(r, "aggressor"),
            aggressor_write_share: agg.writes as f64 / agg.requests as f64,
            victim_dollars: tenant("victim").monthly_dollars,
            aggressor_dollars: agg.monthly_dollars,
        });
    }
    print_table(
        "Tenant isolation under per-tenant TTL controllers",
        &[
            "cell",
            "victim_hit",
            "aggressor_hit",
            "agg_writes",
            "ttls (v/a)",
        ],
        &iso_rows,
    );
    let moved = (iso_points[1].victim_hit - iso_points[0].victim_hit).abs();
    println!(
        "\nThe aggressor's storm moved the victim's hit ratio by {:.4} points —\n\
         each tenant's TTL follows its own age histogram, so one tenant's\n\
         write burst re-tunes only that tenant's expiry.",
        moved * 100.0
    );

    // ---- Section 3: the legacy fixed-TTL freshness frontier. ----
    let frontier_points = frontier(&runner);

    write_ttl_json(&plane_points, &iso_points, &frontier_points);

    let wall_secs = wall.elapsed().as_secs_f64();
    write_bench_json(grid_requests + iso_requests, wall_secs, runner.jobs());

    println!(
        "\nCapacity resizing and TTL tuning reclaim the same DRAM, but expiry\n\
         needs no migration and bills at time-averaged *resident* bytes — so\n\
         the TTL plane holds the MRC planner's hit ratio on the diurnal day,\n\
         matches it under working-set churn, and wins outright when\n\
         invalidation storms strand dead entries that capacity planning\n\
         keeps paying for."
    );
}

/// The PR-4 fixed-TTL frontier: `LinkedTtl` replicas at a ladder of static
/// TTLs, with the consistent architectures for reference. Short TTLs buy
/// freshness with misses; long TTLs are cheap but stale; ownership leases
/// beat the whole frontier.
fn frontier(runner: &SweepRunner) -> Vec<FrontierPoint> {
    let (warmup, measured) = request_budget(100_000, 100_000);
    let run = |arch: ArchKind, ttl_ms: u64| {
        let workload = KvWorkloadConfig {
            keys: 20_000,
            alpha: 1.2,
            read_ratio: 0.95,
            sizes: workloads::SizeDist::Fixed(1_024),
            seed: 42,
            churn_period: None,
        };
        let mut cfg = KvExperimentConfig::paper(arch, workload);
        cfg.qps = 100_000.0;
        cfg.warmup_requests = warmup;
        cfg.requests = measured;
        cfg.deployment.linked_ttl = SimDuration::from_millis(ttl_ms);
        run_kv_experiment(&cfg).expect("frontier run")
    };

    // Spec 0 is the Base reference; the rest are the frontier points.
    let mut specs: Vec<(String, ArchKind, u64)> = vec![("base".into(), ArchKind::Base, 0)];
    for ttl_ms in [10u64, 50, 200, 1_000, 5_000, 30_000] {
        specs.push((format!("ttl={ttl_ms}ms"), ArchKind::LinkedTtl, ttl_ms));
    }
    specs.push(("linked+version".into(), ArchKind::LinkedVersion, 0));
    specs.push(("lease-owned".into(), ArchKind::LeaseOwned, 0));
    let reports = runner.run_map(&specs, |_, (_, arch, ttl_ms)| run(*arch, *ttl_ms));
    let base_cost = reports[0].total_cost.total();

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for ((label, _, _), r) in specs.iter().zip(&reports).skip(1) {
        let stale = r.stale_reads as f64 / (r.requests as f64 * 0.95);
        let total = r.total_cost.total();
        rows.push(vec![
            label.clone(),
            usd(total),
            ratio(base_cost / total),
            format!("{stale:.4}"),
            format!("{:.3}", r.cache_hit_ratio),
        ]);
        points.push(FrontierPoint {
            label: label.clone(),
            total_cost: total,
            stale_fraction: stale,
            cache_hit_ratio: r.cache_hit_ratio,
            saving_vs_base: base_cost / total,
        });
    }
    print_table(
        &format!(
            "Fixed-TTL freshness frontier (TTL as consistency contract; Base: {})",
            usd(base_cost)
        ),
        &["config", "total/mo", "saving", "stale frac", "hit"],
        &rows,
    );
    points
}

// JSON artifacts are hand-rolled: the offline serde_json stub serializes to
// the empty string (see .claude/skills/verify/SKILL.md), so derive-based
// `write_json` would leave results/*.json empty. Same approach as fig_scale.
fn write_ttl_json(planes: &[PlanePoint], iso: &[IsolationPoint], frontier: &[FrontierPoint]) {
    let mut out = String::from("{\n  \"control_plane\": [\n");
    for (i, p) in planes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cell\": \"{}\", \"monthly_dollars\": {:.2}, \"memory_dollars\": {:.2}, \
             \"cache_hit_ratio\": {:.6}, \"ttl_decisions\": {}, \"ttl_changes\": {}, \
             \"expired_entries\": {}, \"expiry_sweep_cpu_us\": {}, \
             \"mean_resident_mb\": {:.3}, \"current_ttl_secs\": {:.3}}}{}\n",
            p.cell,
            p.monthly_dollars,
            p.memory_dollars,
            p.cache_hit_ratio,
            p.ttl_decisions,
            p.ttl_changes,
            p.expired_entries,
            p.expiry_sweep_cpu_us,
            p.mean_resident_bytes / 1e6,
            p.current_ttl_secs,
            if i + 1 == planes.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"isolation\": [\n");
    for (i, p) in iso.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cell\": \"{}\", \"victim_hit\": {:.6}, \"aggressor_hit\": {:.6}, \
             \"aggressor_write_share\": {:.4}, \"victim_dollars\": {:.2}, \
             \"aggressor_dollars\": {:.2}}}{}\n",
            p.cell,
            p.victim_hit,
            p.aggressor_hit,
            p.aggressor_write_share,
            p.victim_dollars,
            p.aggressor_dollars,
            if i + 1 == iso.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"frontier\": [\n");
    for (i, p) in frontier.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"total_cost\": {:.2}, \"stale_fraction\": {:.4}, \
             \"cache_hit_ratio\": {:.6}, \"saving_vs_base\": {:.3}}}{}\n",
            p.label,
            p.total_cost,
            p.stale_fraction,
            p.cache_hit_ratio,
            p.saving_vs_base,
            if i + 1 == frontier.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = bench::results_dir().join("ablation_ttl.json");
    std::fs::write(&path, out).expect("write ablation_ttl.json");
    println!("\n[results written to {}]", path.display());
}

/// Linux peak-RSS proxy: VmHWM from /proc/self/status, in kB.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

// Hand-rolled like BENCH_pr7/pr8: the offline serde_json stub would write
// an empty file, and CI cats this artifact.
fn write_bench_json(requests: u64, wall_secs: f64, jobs: usize) {
    let sim_req_per_sec = requests as f64 / wall_secs.max(1e-9);
    let out = format!(
        "{{\n  \"description\": \"ablation_ttl engine throughput: simulated requests/sec across \
         the control-plane head-to-head and isolation cells (first two sections; the fixed-TTL \
         frontier is excluded). Dollar/hit columns in ablation_ttl.json are deterministic; \
         wall-clock, req/s and RSS here are environment-dependent by design.\",\n  \
         \"generated_by\": \"ablation_ttl{}\",\n  \
         \"requests\": {},\n  \
         \"wall_secs\": {:.3},\n  \
         \"sim_req_per_sec\": {:.0},\n  \
         \"peak_rss_kb\": {},\n  \
         \"jobs\": {}\n}}\n",
        if bench::quick_mode() { " --quick" } else { "" },
        requests,
        wall_secs,
        sim_req_per_sec,
        peak_rss_kb(),
        jobs,
    );
    let path = bench::results_dir().join("BENCH_pr10.json");
    std::fs::write(&path, out).expect("write BENCH_pr10.json");
    println!("[bench figures written to {}]", path.display());
}
