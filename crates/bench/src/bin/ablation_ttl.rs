//! Ablation — TTL freshness: the cost/staleness frontier.
//!
//! The paper's related work (§7) notes TTLs are the dominant freshness
//! mechanism for caches that cannot be invalidated. Our `LinkedTtl`
//! extension models that deployment: every app server caches its own
//! replica (no ownership), and entries expire after a TTL. Sweeping the
//! TTL traces the frontier between the two §5.5 extremes:
//!
//! * TTL → 0   degenerates to reading storage (Base's cost, fresh), and
//! * TTL → ∞   degenerates to an unsynchronized replica (cheap, stale),
//!
//! with the paper's consistent architectures (Linked+Version, LeaseOwned)
//! plotted alongside for reference.

use bench::sweep::SweepRunner;
use bench::{print_table, ratio, request_budget, usd, write_json};
use dcache::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache::ArchKind;
use serde::Serialize;
use simnet::SimDuration;
use workloads::KvWorkloadConfig;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    label: String,
    total_cost: f64,
    stale_fraction: f64,
    cache_hit_ratio: f64,
    saving_vs_base: f64,
}

fn main() {
    println!("Ablation: TTL freshness — cost vs staleness (20K keys, 1KB, r=0.95, 100K QPS)");
    let (warmup, measured) = request_budget(100_000, 100_000);

    let run = |arch: ArchKind, ttl_ms: u64| {
        let workload = KvWorkloadConfig {
            keys: 20_000,
            alpha: 1.2,
            read_ratio: 0.95,
            sizes: workloads::SizeDist::Fixed(1_024),
            seed: 42,
            churn_period: None,
        };
        let mut cfg = KvExperimentConfig::paper(arch, workload);
        cfg.qps = 100_000.0;
        cfg.warmup_requests = warmup;
        cfg.requests = measured;
        cfg.deployment.linked_ttl = SimDuration::from_millis(ttl_ms);
        run_kv_experiment(&cfg).expect("run")
    };

    // Spec 0 is the Base reference; the rest are the frontier points.
    let mut specs: Vec<(String, ArchKind, u64)> = vec![("base".into(), ArchKind::Base, 0)];
    for ttl_ms in [10u64, 50, 200, 1_000, 5_000, 30_000] {
        specs.push((format!("ttl={ttl_ms}ms"), ArchKind::LinkedTtl, ttl_ms));
    }
    specs.push(("linked+version".into(), ArchKind::LinkedVersion, 0));
    specs.push(("lease-owned".into(), ArchKind::LeaseOwned, 0));
    let reports = SweepRunner::from_env()
        .run_map(&specs, |_, (_, arch, ttl_ms)| run(*arch, *ttl_ms));
    let base_cost = reports[0].total_cost.total();

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for ((label, _, _), r) in specs.iter().zip(&reports).skip(1) {
        let stale = r.stale_reads as f64 / (r.requests as f64 * 0.95);
        let total = r.total_cost.total();
        rows.push(vec![
            label.clone(),
            usd(total),
            ratio(base_cost / total),
            format!("{:.4}", stale),
            format!("{:.3}", r.cache_hit_ratio),
        ]);
        points.push(Point {
            label: label.clone(),
            total_cost: total,
            stale_fraction: stale,
            cache_hit_ratio: r.cache_hit_ratio,
            saving_vs_base: base_cost / total,
        });
    }

    print_table(
        &format!("TTL frontier (Base: {})", usd(base_cost)),
        &["config", "total/mo", "saving", "stale frac", "hit"],
        &rows,
    );
    write_json("ablation_ttl", &points);

    println!(
        "\nShort TTLs buy freshness with misses (cost approaches Base); long TTLs\n\
         are cheap but serve stale reads. Ownership leases beat the whole\n\
         frontier: fresh AND cheap — the paper's §6 argument, quantified."
    );
}
