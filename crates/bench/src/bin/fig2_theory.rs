//! Figure 2 — the §4 theoretical model.
//!
//! (a) cost saving of Linked (s_A = 8 GB, s_D = 1 GB) over Base (1 GB of
//!     in-storage cache) as Zipf α varies;
//! (b) the same as the linked-cache replica count N_r varies, plus the
//!     memory-price sensitivity (up to 40×) with optimally-sized caches.
//!
//! Also prints the §4 gradient takeaway: |∂T/∂s_A| > |∂T/∂s_D| in the
//! growth region, and the optimal allocation rule.

use bench::{print_table, ratio, usd, write_json};
use costmodel::{HybridModel, Pricing, SsdTier, TheoryModel, TheoryParams};
use serde::Serialize;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Fig2Results {
    alpha_sweep: Vec<(f64, f64)>,
    ssd_sweep: Vec<(f64, f64, f64, f64, f64)>,
    replica_sweep: Vec<(f64, f64, f64)>,
    memory_price_sweep: Vec<(f64, f64, f64)>,
    gradient_s_a: f64,
    gradient_s_d: f64,
    optimal_s_a_gb: f64,
}

fn model(alpha: f64, replicas: f64, mem_multiplier: f64) -> TheoryModel {
    TheoryModel::new(TheoryParams {
        alpha,
        replicas,
        pricing: Pricing::default().with_memory_multiplier(mem_multiplier),
        ..TheoryParams::default()
    })
}

fn main() {
    println!("Reproducing Figure 2: the Section 4 analytical model");
    println!(
        "T = QPS*(MR(s_A)*c_A + MR(s_A+s_D)*c_D) + c_M*(s_A*N_r + s_D); defaults: {:?}",
        TheoryParams::default()
    );

    // (a) α sweep.
    let mut alpha_sweep = Vec::new();
    let mut rows = Vec::new();
    for alpha in [0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4] {
        let m = model(alpha, 1.0, 1.0);
        let saving = m.cost_saving_vs_base(8.0, 1.0, 1.0);
        alpha_sweep.push((alpha, saving));
        rows.push(vec![
            format!("{alpha:.1}"),
            ratio(saving),
            format!("{:.3}", m.miss_ratio(8.0)),
            format!("{:.3}", m.miss_ratio(1.0)),
        ]);
    }
    print_table(
        "Figure 2a: saving of Linked(8GB,1GB) over Base(1GB) vs Zipf alpha",
        &["alpha", "saving", "MR(8GB)", "MR(1GB)"],
        &rows,
    );

    // (b) replica sweep at α=1.2, fixed 8 GB and optimally sized.
    let mut replica_sweep = Vec::new();
    let mut rows = Vec::new();
    for n_r in [1.0, 2.0, 4.0, 6.0, 8.0, 10.0] {
        let m = model(1.2, n_r, 1.0);
        let fixed = m.cost_saving_vs_base(8.0, 1.0, 1.0);
        let s_a = m.optimal_s_a(1.0, 64.0);
        let optimal = m.cost_saving_vs_base(s_a, 1.0, 1.0);
        replica_sweep.push((n_r, fixed, optimal));
        rows.push(vec![
            format!("{n_r:.0}"),
            ratio(fixed),
            format!("{s_a:.2}GB"),
            ratio(optimal),
        ]);
    }
    print_table(
        "Figure 2b: saving vs replica count N_r (alpha=1.2)",
        &["N_r", "saving@8GB", "optimal s_A", "saving@opt"],
        &rows,
    );

    // Memory-price sensitivity (the "up to 40x" claim).
    let mut memory_price_sweep = Vec::new();
    let mut rows = Vec::new();
    for mult in [1.0, 5.0, 10.0, 20.0, 40.0] {
        let m = model(1.2, 1.0, mult);
        let s_a = m.optimal_s_a(1.0, 64.0);
        let saving = m.cost_saving_vs_base(s_a, 1.0, 1.0);
        memory_price_sweep.push((mult, s_a, saving));
        rows.push(vec![
            format!("{mult:.0}x"),
            format!("{s_a:.2}GB"),
            ratio(saving),
        ]);
    }
    print_table(
        "Memory price sensitivity (optimally sized linked cache)",
        &["mem price", "optimal s_A", "saving"],
        &rows,
    );

    // §7 extension: the DRAM+SSD hybrid frontier.
    let mut rows = Vec::new();
    let mut ssd_sweep = Vec::new();
    for alpha in [0.8, 1.0, 1.2] {
        let m = TheoryModel::new(TheoryParams {
            alpha,
            keys: 1_000_000,
            mean_entry_bytes: 230_000.0,
            ..TheoryParams::default()
        });
        let dram_best = m.optimal_s_a(1.0, 128.0);
        let dram_cost = m.total_cost(dram_best, 1.0);
        let hybrid = HybridModel::new(&m, SsdTier::default());
        let alloc = hybrid.optimize(1.0, 128.0, 512.0);
        ssd_sweep.push((alpha, dram_cost, alloc.dram_gb, alloc.ssd_gb, alloc.monthly_cost));
        rows.push(vec![
            format!("{alpha:.1}"),
            format!("{dram_best:.1}GB"),
            usd(dram_cost),
            format!("{:.1}GB", alloc.dram_gb),
            format!("{:.0}GB", alloc.ssd_gb),
            usd(alloc.monthly_cost),
            ratio(dram_cost / alloc.monthly_cost),
        ]);
    }
    print_table(
        "Section 7 extension: optimal DRAM-only vs DRAM+SSD hybrid (230GB dataset)",
        &["alpha", "DRAM-only s_A", "cost", "hybrid DRAM", "hybrid SSD", "cost", "gain"],
        &rows,
    );

    // Gradient takeaway.
    let m = model(1.2, 1.0, 1.0);
    let (ga, gd) = (m.d_ds_a(0.2, 1.0), m.d_ds_d(0.2, 1.0));
    let opt = m.optimal_s_a(1.0, 64.0);
    println!(
        "\nSection 4 takeaways at (s_A=0.2GB, s_D=1GB): dT/ds_A = {ga:.2} $/GB, dT/ds_D = {gd:.2} $/GB"
    );
    println!("  => |dT/ds_A| > |dT/ds_D|: {}", ga.abs() > gd.abs());
    println!("  optimal s_A (s_D=1GB): {opt:.2} GB");

    write_json(
        "fig2_theory",
        &Fig2Results {
            alpha_sweep,
            ssd_sweep,
            replica_sweep,
            memory_price_sweep,
            gradient_s_a: ga,
            gradient_s_d: gd,
            optimal_s_a_gb: opt,
        },
    );
}
