//! Figure 3 — Unity Catalog trace distributions.
//!
//! (a) value-size distribution of the rich objects (median ≈ 23 KB, heavy
//!     tail); (b) access-frequency distribution (Zipf-like rank/frequency).
//! Also prints the §5.2 aggregates: read ratio ≈ 93%, getTable dominant.

use bench::{print_table, write_json};
use serde::Serialize;
use workloads::unity::{UnityDataset, UnityOp, UnityScale, UnityWorkload};

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Fig3Results {
    size_percentiles: Vec<(String, u64)>,
    rank_frequency: Vec<(u64, u64)>,
    read_ratio: f64,
    median_object_bytes: u64,
}

fn main() {
    println!("Reproducing Figure 3: Unity Catalog trace distributions");
    let scale = UnityScale::default();
    let dataset = UnityDataset::new(scale);

    // (a) object size distribution.
    let mut sizes: Vec<u64> = (0..scale.tables).map(|t| dataset.object_logical_bytes(t)).collect();
    sizes.sort_unstable();
    let pct = |q: f64| sizes[((sizes.len() - 1) as f64 * q) as usize];
    let size_percentiles: Vec<(String, u64)> = [
        ("p10", 0.10),
        ("p25", 0.25),
        ("p50", 0.50),
        ("p75", 0.75),
        ("p90", 0.90),
        ("p99", 0.99),
        ("max", 1.0),
    ]
    .iter()
    .map(|&(name, q)| (name.to_string(), pct(q)))
    .collect();
    print_table(
        "Figure 3a: rich-object value sizes (paper: median ~23KB, heavy tail)",
        &["pct", "bytes"],
        &size_percentiles
            .iter()
            .map(|(n, v)| vec![n.clone(), format!("{v}")])
            .collect::<Vec<_>>(),
    );

    // (b) access frequency: draw a trace and rank tables by popularity.
    let draws = 400_000usize;
    let mut counts = std::collections::HashMap::new();
    let mut reads = 0u64;
    for req in UnityWorkload::new(&scale, 7).take(draws) {
        *counts.entry(req.table).or_insert(0u64) += 1;
        if req.op == UnityOp::GetTable {
            reads += 1;
        }
    }
    let mut freq: Vec<u64> = counts.values().copied().collect();
    freq.sort_unstable_by(|a, b| b.cmp(a));
    let rank_frequency: Vec<(u64, u64)> = [1usize, 2, 5, 10, 50, 100, 500, 1_000, 5_000]
        .iter()
        .filter(|&&r| r <= freq.len())
        .map(|&r| (r as u64, freq[r - 1]))
        .collect();
    print_table(
        "Figure 3b: access frequency by popularity rank (Zipf-like)",
        &["rank", "accesses"],
        &rank_frequency
            .iter()
            .map(|(r, f)| vec![format!("{r}"), format!("{f}")])
            .collect::<Vec<_>>(),
    );

    let read_ratio = reads as f64 / draws as f64;
    println!("\nread ratio: {read_ratio:.3} (paper: ~0.93)");
    println!("median object size: {} bytes (paper: ~23KB)", pct(0.5));
    println!("distinct tables touched: {} of {}", counts.len(), scale.tables);

    write_json(
        "fig3_unity_trace",
        &Fig3Results {
            size_percentiles,
            rank_frequency,
            read_ratio,
            median_object_bytes: pct(0.5),
        },
    );
}
