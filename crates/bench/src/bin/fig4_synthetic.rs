//! Figure 4 — total cost across architectures on the synthetic workload.
//!
//! (a) cost vs read ratio r ∈ {50%..99%} at 1 KB values;
//! (b) cost vs value size 1 KB–1 MB at the default read ratio.
//!
//! §5.3's headline numbers come from this experiment: Linked saves ~3.9× at
//! 1 KB and ~7.3× at 1 MB versus Base, with Remote in between.

use bench::sweep::SweepRunner;
use bench::{print_table, ratio, request_budget, usd, write_json};
use dcache::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache::ArchKind;
use serde::Serialize;
use workloads::KvWorkloadConfig;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    sweep: &'static str,
    x: f64,
    arch: String,
    total_cost: f64,
    compute_cost: f64,
    memory_cost: f64,
    cores: f64,
    cache_hit_ratio: f64,
    saving_vs_base: f64,
    read_p50_us: u64,
    read_p99_us: u64,
}

fn run_point(
    arch: ArchKind,
    read_ratio: f64,
    value_bytes: u64,
    warmup: u64,
    measured: u64,
) -> dcache::ExperimentReport {
    let workload = KvWorkloadConfig::paper_synthetic(read_ratio, value_bytes, 42);
    let mut cfg = KvExperimentConfig::paper(arch, workload);
    cfg.qps = 100_000.0;
    cfg.warmup_requests = warmup;
    cfg.requests = measured;
    run_kv_experiment(&cfg).expect("experiment must run")
}

fn sweep(
    name: &'static str,
    xs: &[(f64, f64, u64)], // (x display value, read_ratio, value_bytes)
    points: &mut Vec<Point>,
) {
    let (warmup, measured) = request_budget(120_000, 120_000);
    let specs: Vec<(f64, f64, u64, ArchKind)> = xs
        .iter()
        .flat_map(|&(x, r, v)| ArchKind::PAPER.iter().map(move |&a| (x, r, v, a)))
        .collect();
    let reports = SweepRunner::from_env().run_map(&specs, |_, &(_, read_ratio, value_bytes, arch)| {
        run_point(arch, read_ratio, value_bytes, warmup, measured)
    });

    let mut rows = Vec::new();
    let mut base_cost = None;
    for (&(x, _, _, arch), r) in specs.iter().zip(&reports) {
        if arch == ArchKind::PAPER[0] {
            base_cost = None; // new x cell: next Base report re-anchors savings
        }
        {
            let total = r.total_cost.total();
            let saving = match base_cost {
                None => {
                    base_cost = Some(total);
                    1.0
                }
                Some(b) => b / total,
            };
            rows.push(vec![
                format!("{x}"),
                arch.label().to_string(),
                usd(total),
                usd(r.total_cost.compute),
                usd(r.total_cost.memory),
                format!("{:.2}", r.total_cores),
                format!("{:.3}", r.cache_hit_ratio),
                ratio(saving),
                format!("{}", r.read_latency_p50_us),
            ]);
            points.push(Point {
                sweep: name,
                x,
                arch: arch.label().to_string(),
                total_cost: total,
                compute_cost: r.total_cost.compute,
                memory_cost: r.total_cost.memory,
                cores: r.total_cores,
                cache_hit_ratio: r.cache_hit_ratio,
                saving_vs_base: saving,
                read_p50_us: r.read_latency_p50_us,
                read_p99_us: r.read_latency_p99_us,
            });
        }
    }
    print_table(
        &format!("Figure 4{name}"),
        &[
            "x", "arch", "total/mo", "compute", "memory", "cores", "hit", "saving", "p50_us",
        ],
        &rows,
    );
}

fn main() {
    println!("Reproducing Figure 4: synthetic workload, 100K keys, Zipf(1.2), 100K QPS");
    let mut points = Vec::new();

    // (a) read-ratio sweep at 1 KB values.
    let ratios: Vec<(f64, f64, u64)> = [0.50, 0.75, 0.90, 0.95, 0.99]
        .iter()
        .map(|&r| (r, r, 1_024))
        .collect();
    sweep("a (read ratio, 1KB values)", &ratios, &mut points);

    // (b) value-size sweep at a read-heavy ratio (95%, within the paper's
    // swept range; the exact ratio the paper used is not stated).
    let sizes: Vec<(f64, f64, u64)> = [1u64 << 10, 10 << 10, 100 << 10, 1 << 20]
        .iter()
        .map(|&s| (s as f64 / 1024.0, 0.95, s))
        .collect();
    sweep("b (value KB, r=95%)", &sizes, &mut points);

    write_json("fig4_synthetic", &points);

    // Paper-shape summary: savings at the 1KB and 1MB endpoints.
    let saving_at = |x: f64, arch: &str| {
        points
            .iter()
            .find(|p| p.sweep.starts_with('b') && p.x == x && p.arch == arch)
            .map(|p| p.saving_vs_base)
            .unwrap_or(0.0)
    };
    println!(
        "\nLinked saving vs Base: {} at 1KB (paper: ~3.9x), {} at 1MB (paper: ~7.3x)",
        ratio(saving_at(1.0, "linked")),
        ratio(saving_at(1024.0, "linked")),
    );
}
