//! `fig_scale` — cost curves at 10× and 100× the paper's load, plus the
//! simulator-throughput benchmark that gates the PR-8 speed overhaul.
//!
//! The paper's dollar methodology only becomes credible at production scale:
//! "millions of users" means tens of millions of requests per deterministic
//! run. This binary (a) re-runs the §5.2 synthetic cost comparison with the
//! request budget scaled 10×/100×, sharding a *single* giant experiment
//! across cores (per-app-server partitioning, deterministic merge), and
//! (b) measures simulated requests/second of the engine on that workload,
//! writing `results/BENCH_pr8.json` so CI can assert the hot path never
//! regresses below the recorded baseline.
//!
//! Modes:
//! * default       — 10× scale point (plus 100× unless `--quick`)
//! * `--quick`     — CI budget: 10× shape at 1/10 requests
//! * `--profile`   — also write wall-clock phase profiles in collapsed-stack
//!   format to `results/telemetry/fig_scale.collapsed` (flamegraph input)

use bench::sweep::SweepRunner;
use bench::{print_table, quick_mode, ratio, usd};
use dcache::experiment::{merge_kv_shards, run_kv_experiment, run_kv_shard, KvExperimentConfig};
use dcache::ArchKind;
use std::time::Instant;
use workloads::KvWorkloadConfig;

/// Pre-PR engine throughput on this workload (simulated requests/sec),
/// measured at the PR-8 seed commit (`ad37544`, BinaryHeap engine,
/// per-request allocations on the serve path) with
/// `fig_scale --bench-baseline` on the CI reference machine. The acceptance
/// gate asserts the current engine stays ≥ this floor; the ≥10× claim in
/// `results/BENCH_pr8.json` is measured against the same number.
const PRE_PR_REQ_PER_SEC: f64 = 243_800.0;

struct ScalePoint {
    scale: u64,
    arch: String,
    requests: u64,
    shards: usize,
    total_cost: f64,
    compute_cost: f64,
    memory_cost: f64,
    cores: f64,
    cache_hit_ratio: f64,
    saving_vs_base: f64,
    read_p50_us: u64,
    read_p99_us: u64,
    sim_req_per_sec: f64,
    wall_secs: f64,
}

struct BenchReport {
    /// Total simulated requests served across every measured run.
    requests: u64,
    /// Wall-clock seconds spent inside the simulator.
    wall_secs: f64,
    /// Simulated requests per wall-clock second (the headline number).
    sim_req_per_sec: f64,
    /// Same metric measured at the pre-PR seed commit on this workload.
    baseline_req_per_sec: f64,
    /// sim_req_per_sec / baseline_req_per_sec.
    speedup_vs_baseline: f64,
    /// Peak resident set (kB) from /proc/self/status VmHWM (0 if absent).
    peak_rss_kb: u64,
    /// Worker threads the sharded experiment ran on.
    jobs: usize,
    quick: bool,
}

fn scale_cfg(arch: ArchKind, scale: u64, requests: u64) -> KvExperimentConfig {
    let workload = KvWorkloadConfig::paper_synthetic(0.95, 1_024, 42);
    let mut cfg = KvExperimentConfig::paper(arch, workload);
    // 10×/100× the paper's 100K QPS; request budget scales with it so the
    // run spans the same virtual time as the 1× figure runs.
    cfg.qps = 100_000.0 * scale as f64;
    cfg.warmup_requests = requests / 2;
    cfg.requests = requests / 2;
    cfg
}

/// Linux peak-RSS proxy: VmHWM from /proc/self/status, in kB.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

// JSON artifacts are hand-rolled: the offline serde_json stub serializes to
// the empty string (see .claude/skills/verify/SKILL.md), so derive-based
// `write_json` would leave results/*.json empty. Same approach as BENCH_pr7.
fn write_scale_json(points: &[ScalePoint]) {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"scale\": {}, \"arch\": \"{}\", \"requests\": {}, \"shards\": {}, \
             \"total_cost\": {:.2}, \"compute_cost\": {:.2}, \"memory_cost\": {:.2}, \
             \"cores\": {:.4}, \"cache_hit_ratio\": {:.6}, \"saving_vs_base\": {:.4}, \
             \"read_p50_us\": {}, \"read_p99_us\": {}, \"sim_req_per_sec\": {:.0}, \
             \"wall_secs\": {:.3}}}{}\n",
            p.scale,
            p.arch,
            p.requests,
            p.shards,
            p.total_cost,
            p.compute_cost,
            p.memory_cost,
            p.cores,
            p.cache_hit_ratio,
            p.saving_vs_base,
            p.read_p50_us,
            p.read_p99_us,
            p.sim_req_per_sec,
            p.wall_secs,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    let path = bench::results_dir().join("fig_scale.json");
    std::fs::write(&path, out).expect("write fig_scale.json");
    println!("\n[results written to {}]", path.display());
}

fn write_bench_json(b: &BenchReport) {
    let out = format!(
        "{{\n  \"description\": \"fig_scale engine throughput: simulated requests/sec across \
         the sharded 10x/100x cost runs. Cost columns in fig_scale.json are deterministic; \
         wall-clock, req/s and RSS here are environment-dependent by design.\",\n  \
         \"generated_by\": \"fig_scale{}\",\n  \
         \"requests\": {},\n  \
         \"wall_secs\": {:.3},\n  \
         \"sim_req_per_sec\": {:.0},\n  \
         \"baseline_req_per_sec\": {:.0},\n  \
         \"speedup_vs_baseline\": {:.3},\n  \
         \"peak_rss_kb\": {},\n  \
         \"jobs\": {}\n}}\n",
        if b.quick { " --quick" } else { "" },
        b.requests,
        b.wall_secs,
        b.sim_req_per_sec,
        b.baseline_req_per_sec,
        b.speedup_vs_baseline,
        b.peak_rss_kb,
        b.jobs,
    );
    let path = bench::results_dir().join("BENCH_pr8.json");
    std::fs::write(&path, out).expect("write BENCH_pr8.json");
    println!("[bench figures written to {}]", path.display());
}

struct WallProfile {
    frames: Vec<(String, u128)>,
}

impl WallProfile {
    fn new() -> Self {
        WallProfile { frames: Vec::new() }
    }

    fn record(&mut self, stack: &str, nanos: u128) {
        self.frames.push((stack.to_string(), nanos));
    }

    /// Write collapsed-stack lines for `flamegraph.pl` / speedscope: coarse
    /// per-phase wall-clock frames (`fig_scale;<phase> nanos`) followed by
    /// the sampling profiler's serve-path stacks (sample counts).
    fn write(&self, name: &str, sampled: &str) {
        let dir = bench::results_dir().join("telemetry");
        std::fs::create_dir_all(&dir).expect("create telemetry dir");
        let mut out = String::new();
        for (stack, nanos) in &self.frames {
            out.push_str(&format!("fig_scale;{stack} {nanos}\n"));
        }
        if !sampled.is_empty() {
            out.push_str(sampled);
            out.push('\n');
        }
        let path = dir.join(format!("{name}.collapsed"));
        std::fs::write(&path, out).expect("write collapsed profile");
        println!("[wall profile written to {}]", path.display());
    }
}

/// `--bench-baseline`: time the *unsharded* sequential runner (all the
/// pre-PR engine had) on the quick workload and print its req/s — the
/// number `PRE_PR_REQ_PER_SEC` records.
fn bench_baseline() {
    let mut requests = 0u64;
    let mut wall = 0.0f64;
    for &arch in &ArchKind::PAPER {
        let cfg = scale_cfg(arch, 10, 300_000);
        let t0 = Instant::now();
        let report = run_kv_experiment(&cfg).expect("baseline run");
        let secs = t0.elapsed().as_secs_f64();
        let total = cfg.warmup_requests + cfg.requests;
        requests += total;
        wall += secs;
        println!(
            "baseline {:>16}: {:>10.0} req/s ({:.1}s wall, ${:.2}/mo)",
            arch.label(),
            total as f64 / secs.max(1e-9),
            secs,
            report.total_cost.total()
        );
    }
    println!(
        "baseline aggregate: {:.0} req/s over {} requests",
        requests as f64 / wall.max(1e-9),
        requests
    );
}

fn main() {
    let quick = quick_mode();
    let profile = std::env::args().any(|a| a == "--profile");
    if std::env::args().any(|a| a == "--bench-baseline") {
        bench_baseline();
        return;
    }
    let runner = SweepRunner::from_env();
    println!(
        "fig_scale: synthetic cost curves at 10x/100x the paper's load ({} jobs)",
        runner.jobs()
    );

    // Scale points: (scale factor, total requests). The 100× point only
    // runs in full mode — CI gets the 10× shape at a tenth the budget.
    let scales: Vec<(u64, u64)> = if quick {
        vec![(10, 300_000)]
    } else {
        vec![(10, 3_000_000), (100, 30_000_000)]
    };

    let mut points: Vec<ScalePoint> = Vec::new();
    let mut wall = WallProfile::new();
    let mut bench_requests = 0u64;
    let mut bench_wall = 0.0f64;
    // `--profile`: sample every thread's prof_span stack at 250 µs while the
    // experiments run. Telemetry only — spans stay disabled otherwise, and
    // profiled runs are NOT the ones quoted for throughput.
    let sampler =
        profile.then(|| simnet::prof::start_sampler(std::time::Duration::from_micros(250)));

    for &(scale, requests) in &scales {
        let mut base_cost = None;
        for &arch in &ArchKind::PAPER {
            let cfg = scale_cfg(arch, scale, requests);
            // Shard the single experiment per app server; the shard count is
            // fixed by the config (never by the worker count), so jobs=1 and
            // jobs=N execute the same shard set and merge byte-identically.
            let shards = cfg.deployment.app_servers;
            let t0 = Instant::now();
            let shard_ids: Vec<usize> = (0..shards).collect();
            let outs = runner.run_map(&shard_ids, |_, &s| {
                run_kv_shard(&cfg, s, shards).expect("shard must run")
            });
            let report = merge_kv_shards(&cfg, outs).expect("merge must succeed");
            let secs = t0.elapsed().as_secs_f64();
            let total_requests = cfg.warmup_requests + cfg.requests;
            bench_requests += total_requests;
            bench_wall += secs;
            wall.record(
                &format!("scale_{scale}x;{}", arch.label()),
                t0.elapsed().as_nanos(),
            );

            let total = report.total_cost.total();
            let saving = match base_cost {
                None => {
                    base_cost = Some(total);
                    1.0
                }
                Some(b) => b / total,
            };
            points.push(ScalePoint {
                scale,
                arch: arch.label().to_string(),
                requests: total_requests,
                shards,
                total_cost: total,
                compute_cost: report.total_cost.compute,
                memory_cost: report.total_cost.memory,
                cores: report.total_cores,
                cache_hit_ratio: report.cache_hit_ratio,
                saving_vs_base: saving,
                read_p50_us: report.read_latency_p50_us,
                read_p99_us: report.read_latency_p99_us,
                sim_req_per_sec: total_requests as f64 / secs.max(1e-9),
                wall_secs: secs,
            });
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}x", p.scale),
                p.arch.clone(),
                usd(p.total_cost),
                usd(p.compute_cost),
                usd(p.memory_cost),
                format!("{:.2}", p.cores),
                format!("{:.3}", p.cache_hit_ratio),
                ratio(p.saving_vs_base),
                format!("{}", p.read_p50_us),
                format!("{:.0}", p.sim_req_per_sec),
            ]
        })
        .collect();
    print_table(
        "fig_scale: cost at 10x/100x paper load",
        &[
            "scale", "arch", "total/mo", "compute", "memory", "cores", "hit", "saving", "p50_us",
            "req/s",
        ],
        &rows,
    );
    write_scale_json(&points);

    let req_per_sec = bench_requests as f64 / bench_wall.max(1e-9);
    let bench = BenchReport {
        requests: bench_requests,
        wall_secs: bench_wall,
        sim_req_per_sec: req_per_sec,
        baseline_req_per_sec: PRE_PR_REQ_PER_SEC,
        speedup_vs_baseline: req_per_sec / PRE_PR_REQ_PER_SEC,
        peak_rss_kb: peak_rss_kb(),
        jobs: runner.jobs(),
        quick,
    };
    println!(
        "\nsim throughput: {:.0} req/s over {} requests ({:.1}s wall, {:.2}x the pre-PR baseline)",
        bench.sim_req_per_sec, bench.requests, bench.wall_secs, bench.speedup_vs_baseline
    );
    write_bench_json(&bench);
    if let Some(sampler) = sampler {
        let samples = sampler.stop();
        println!(
            "[profiler: {} samples @ {:?} interval]",
            samples.samples, samples.interval
        );
        wall.write("fig_scale", &samples.collapsed());
    }

    // CI regression floor: the engine must never fall back below the seed
    // baseline. FIG_SCALE_NO_GATE=1 skips the assert (used when measuring
    // the baseline itself).
    if std::env::var("FIG_SCALE_NO_GATE").is_err() && req_per_sec < PRE_PR_REQ_PER_SEC {
        eprintln!(
            "FAIL: {req_per_sec:.0} req/s is below the recorded pre-PR baseline {PRE_PR_REQ_PER_SEC:.0}"
        );
        std::process::exit(1);
    }
}
