//! Figure 8 — the delayed-writes problem, reproduced end to end.
//!
//! Runs the §6 scenario twice on the real substrate (Raft storage, linked
//! cache, auto-sharder): once without write fencing — showing the silent
//! cache/storage divergence and the linearizability violation — and once
//! with epoch fencing, showing the fix.

use bench::{print_table, write_json};
use dcache::consistency::delayed_write_scenario;
use serde::Serialize;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Fig8Results {
    unfenced_admitted: bool,
    unfenced_cache: Option<u64>,
    unfenced_storage: Option<u64>,
    unfenced_linearizable: bool,
    fenced_admitted: bool,
    fenced_cache: Option<u64>,
    fenced_storage: Option<u64>,
    fenced_linearizable: bool,
}

fn fmt(v: Option<u64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "-".to_string())
}

fn main() {
    println!("Reproducing Figure 8: delayed writes under ownership transfer");

    let unfenced = delayed_write_scenario(false).expect("scenario runs");
    let fenced = delayed_write_scenario(true).expect("scenario runs");

    print_table(
        "Delayed-write scenario outcomes",
        &["variant", "write admitted", "cache", "storage", "linearizable"],
        &[
            vec![
                "no fencing".into(),
                unfenced.delayed_write_admitted.to_string(),
                fmt(unfenced.final_cache_value),
                fmt(unfenced.final_storage_value),
                unfenced.linearizable.to_string(),
            ],
            vec![
                "epoch fencing".into(),
                fenced.delayed_write_admitted.to_string(),
                fmt(fenced.final_cache_value),
                fmt(fenced.final_storage_value),
                fenced.linearizable.to_string(),
            ],
        ],
    );

    println!("\nWithout fencing: the delayed write of 2 lands after ownership moved;");
    println!("the new owner cached the old value (1) and keeps serving it — cache and");
    println!("storage silently diverge, and the client-visible history is not");
    println!("linearizable. With epoch fencing, the stale-epoch write is rejected,");
    println!("the client retries through the new owner, and consistency holds.");

    for (name, o) in [("unfenced", &unfenced), ("fenced", &fenced)] {
        println!("\n{name} history:");
        for op in &o.history {
            println!(
                "  {:?} value={:?} [{} .. {}]",
                op.kind, op.value, op.invoked, op.completed
            );
        }
    }

    write_json(
        "fig8_delayed_writes",
        &Fig8Results {
            unfenced_admitted: unfenced.delayed_write_admitted,
            unfenced_cache: unfenced.final_cache_value,
            unfenced_storage: unfenced.final_storage_value,
            unfenced_linearizable: unfenced.linearizable,
            fenced_admitted: fenced.delayed_write_admitted,
            fenced_cache: fenced.final_cache_value,
            fenced_storage: fenced.final_storage_value,
            fenced_linearizable: fenced.linearizable,
        },
    );

    assert!(!unfenced.linearizable, "hazard must reproduce");
    assert!(fenced.linearizable, "fix must hold");
    println!("\nOK: hazard reproduced and fix verified.");
}
