//! Observability report — time series, SLO alerts and tail forensics.
//!
//! Runs the "everything at once" scenario from [`bench::obs`] (diurnal
//! day, elastic controller, durable storage, a cache-tier outage and a
//! storage-pod crash) through the **Remote** and **Linked** architectures
//! with the observability layer armed, then writes artifacts under
//! `results/obs/`:
//!
//! * `{arch}_timeseries.jsonl` — one heartbeat sample per line (hit
//!   ratio, window cores, cache bytes, window p99, SLO counters) plus
//!   fault/resize annotations,
//! * `alerts.json` — SLO burn-rate alert events with fire/resolve
//!   timestamps in simulated time,
//! * `tail_attribution.json` — every slowest-1% request attributed to
//!   exactly one primary cause, with per-cause excess-µs totals,
//! * `dashboard.html` — a self-contained SVG sparkline dashboard of both
//!   architectures' timelines,
//!
//! plus `results/BENCH_pr7.json` — wall-clock, simulated-throughput and
//! peak-RSS figures in the `BENCH_baseline.json` shape.
//!
//! Two invariants are checked on every run: ≥ 1 alert must fire per
//! architecture (the scenario's outage is designed to burn the p99
//! budget), and a second run must reproduce every artifact byte-for-byte.

use bench::obs::{run_sweep, GOLDEN_MEASURED, GOLDEN_WARMUP};
use bench::sweep::SweepRunner;
use bench::{print_table, quick_mode, results_dir};
use std::fmt::Write as _;
use std::time::Instant;
use telemetry::json::fmt_f64;

/// Peak resident-set size of this process in bytes (Linux `VmHWM`), or 0
/// where /proc is unavailable — a proxy, not a benchmark-grade figure.
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|kb| kb.parse::<u64>().ok())
                    .map(|kb| kb * 1024)
            })
        })
        .unwrap_or(0)
}

fn main() {
    println!("Observability report: time series + SLO alerts + tail attribution");
    let (warmup, measured) = if quick_mode() {
        (GOLDEN_WARMUP, GOLDEN_MEASURED)
    } else {
        (GOLDEN_WARMUP * 4, GOLDEN_MEASURED * 4)
    };
    let out_dir = results_dir().join("obs");
    std::fs::create_dir_all(&out_dir).expect("create results/obs");
    let runner = SweepRunner::from_env();

    // First pass (timed per architecture for BENCH_pr7), second pass for
    // the determinism invariant.
    let wall = Instant::now();
    let runs = run_sweep(&runner, warmup, measured);
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let again = run_sweep(&runner, warmup, measured);

    let mut alerts_json = String::from("{");
    let mut tail_json = String::from("{");
    let mut dashboard = telemetry::TimeSeries::with_capacity(
        runs.iter()
            .map(|(_, b)| b.obs.as_ref().map_or(0, |o| o.timeseries.len()))
            .sum::<usize>()
            .max(1),
    );
    let mut perf = String::new();
    let mut cause_rows = Vec::new();

    for (i, ((report, bundle), (_, bundle2))) in runs.iter().zip(&again).enumerate() {
        let label = report.arch.label();
        let obs = bundle.obs.as_ref().expect("observability enabled");
        let obs2 = bundle2.obs.as_ref().expect("observability enabled");

        // Invariant 1: the scenario's outages must burn the SLO budget.
        assert!(
            !obs.alerts.is_empty(),
            "{label}: the cache-tier outage must fire at least one alert"
        );
        // Invariant 2: same seed ⇒ byte-identical artifacts.
        assert_eq!(
            obs.timeseries.to_jsonl(),
            obs2.timeseries.to_jsonl(),
            "{label}: timeseries must be reproducible"
        );
        assert_eq!(obs.alerts_json(), obs2.alerts_json());
        assert_eq!(obs.tail.to_json(), obs2.tail.to_json());

        std::fs::write(
            out_dir.join(format!("{label}_timeseries.jsonl")),
            obs.timeseries.to_jsonl(),
        )
        .expect("write timeseries");
        if i > 0 {
            alerts_json.push(',');
            tail_json.push(',');
            perf.push(',');
        }
        let _ = write!(alerts_json, "\"{label}\":{}", obs.alerts_json());
        let _ = write!(tail_json, "\"{label}\":{}", obs.tail.to_json());
        dashboard.merge(&obs.timeseries);

        let sim_secs = report.duration_secs;
        let _ = write!(
            perf,
            "\n    \"{label}\": {{\"simulated_requests\": {}, \"sim_duration_secs\": {}, \"simulated_req_per_s\": {}}}",
            report.requests,
            fmt_f64(sim_secs),
            fmt_f64(report.requests as f64 / sim_secs.max(1e-9))
        );

        for c in &obs.tail.causes {
            if c.count > 0 {
                cause_rows.push(vec![
                    label.to_string(),
                    c.cause.label().to_string(),
                    c.count.to_string(),
                    c.excess_us.to_string(),
                    format!("{:016x}", c.example_trace_id),
                ]);
            }
        }
        println!(
            "{label}: {} heartbeats, {} alerts, tail p99 threshold {} µs, {} tail requests ({} µs excess)",
            obs.timeseries.len(),
            obs.alerts.len(),
            obs.tail.threshold_us,
            obs.tail.tail_requests.len(),
            obs.tail.total_excess_us
        );
    }
    alerts_json.push('}');
    tail_json.push('}');

    print_table(
        "Slowest-1% attribution (per primary cause)",
        &["arch", "cause", "requests", "excess µs", "worst trace"],
        &cause_rows,
    );

    std::fs::write(out_dir.join("alerts.json"), &alerts_json).expect("write alerts");
    std::fs::write(out_dir.join("tail_attribution.json"), &tail_json).expect("write tail");
    std::fs::write(
        out_dir.join("dashboard.html"),
        dashboard.to_dashboard_html("dcache observability — Remote vs Linked"),
    )
    .expect("write dashboard");

    // BENCH_pr7.json: hand-rolled (offline serde stubs), BENCH_baseline
    // shape. Wall-clock and RSS are environment-dependent by design — the
    // deterministic artifacts live under results/obs/.
    let mode = if quick_mode() { " --quick" } else { "" };
    let bench = format!(
        "{{\n  \"description\": \"obs_report run cost: wall-clock for the two-architecture observability sweep (first pass, {} worker threads), simulated throughput, and peak RSS as a memory proxy. Deterministic artifacts live in results/obs/.\",\n  \"generated_by\": \"obs_report{mode}\",\n  \"workload\": {{\n    \"warmup_requests\": {warmup},\n    \"measured_requests\": {measured},\n    \"trace_sample_every\": {},\n    \"p99_budget_us\": {}\n  }},\n  \"perf\": {{{perf}\n  }},\n  \"wall_clock_ms_first_pass\": {},\n  \"peak_rss_bytes\": {}\n}}\n",
        runner.jobs(),
        bench::obs::SAMPLE_EVERY,
        bench::obs::P99_BUDGET_US,
        fmt_f64(wall_ms),
        peak_rss_bytes()
    );
    std::fs::write(results_dir().join("BENCH_pr7.json"), bench).expect("write BENCH_pr7");

    println!(
        "\n[observability artifacts written to {}]",
        out_dir.display()
    );
    println!(
        "[bench figures written to {}]",
        results_dir().join("BENCH_pr7.json").display()
    );
}
