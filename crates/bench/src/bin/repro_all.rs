//! Run every figure reproduction in sequence.
//!
//! `cargo run -p bench --release --bin repro_all [-- --quick]`
//!
//! Prints each figure's tables and leaves the raw series under `results/`.
//! This is the one-command path to regenerate everything EXPERIMENTS.md
//! reports.

use std::process::Command;

const BINS: &[&str] = &[
    "fig2_theory",
    "fig3_unity_trace",
    "fig4_synthetic",
    "fig5_production",
    "fig6_cpu_breakdown",
    "fig7_rich_objects",
    "fig8_delayed_writes",
    "ablation_eviction",
    "ablation_serialization",
    "ablation_consistency",
    "ablation_ttl",
    "ablation_churn",
    "ablation_failover",
    "exp_sessions",
    "telemetry_report",
];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");

    let mut failed = Vec::new();
    for bin in BINS {
        println!("\n################ {bin} ################");
        let mut cmd = Command::new(bin_dir.join(bin));
        if quick {
            cmd.arg("--quick");
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("{bin} exited with {status}");
                failed.push(*bin);
            }
            Err(e) => {
                eprintln!("{bin} failed to start: {e} (build with `cargo build --release -p bench` first)");
                failed.push(*bin);
            }
        }
    }
    if failed.is_empty() {
        println!("\nAll reproductions completed; series written to results/.");
    } else {
        eprintln!("\nFailed: {failed:?}");
        std::process::exit(1);
    }
}
