//! Run every figure reproduction.
//!
//! `cargo run -p bench --release --bin repro_all [-- --quick] [--jobs N]`
//!
//! Prints each figure's tables and leaves the raw series under `results/`.
//! This is the one-command path to regenerate everything EXPERIMENTS.md
//! reports.
//!
//! With `--jobs N > 1` (default: available parallelism) the figure binaries
//! run as N concurrent child processes, each pinned to `--jobs 1`
//! internally so the machine isn't oversubscribed. Output is captured and
//! printed in the fixed `BINS` order, so stdout — and every file under
//! `results/` — is byte-identical to a sequential `--jobs 1` run; only the
//! wall clock changes.

use bench::sweep::SweepRunner;
use std::process::Command;

const BINS: &[&str] = &[
    "fig2_theory",
    "fig3_unity_trace",
    "fig4_synthetic",
    "fig5_production",
    "fig6_cpu_breakdown",
    "fig7_rich_objects",
    "fig8_delayed_writes",
    "ablation_eviction",
    "ablation_serialization",
    "ablation_consistency",
    "ablation_ttl",
    "ablation_churn",
    "ablation_failover",
    "ablation_faults",
    "ablation_batching",
    "ablation_hotkey",
    "ablation_elastic",
    "ablation_recovery",
    "exp_sessions",
    "telemetry_report",
    "obs_report",
];

struct BinResult {
    bin: &'static str,
    output: std::io::Result<std::process::Output>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir").to_path_buf();
    let runner = SweepRunner::from_env();
    if runner.jobs() > 1 {
        // stderr, so stdout stays byte-identical to a --jobs 1 run.
        eprintln!(
            "[repro_all: {} figure binaries across {} workers]",
            BINS.len(),
            runner.jobs()
        );
    }

    let results = runner.run_map(BINS, |_, &bin| {
        let mut cmd = Command::new(bin_dir.join(bin));
        if quick {
            cmd.arg("--quick");
        }
        // Child sweeps stay sequential: parallelism lives at the bin level
        // here, and each bin writes its own results/ files, so per-bin
        // output bytes can't depend on the worker count either way.
        cmd.arg("--jobs").arg("1");
        cmd.env_remove("BENCH_JOBS");
        BinResult {
            bin,
            output: cmd.output(),
        }
    });

    let mut failed = Vec::new();
    for r in results {
        println!("\n################ {} ################", r.bin);
        match r.output {
            Ok(out) => {
                print!("{}", String::from_utf8_lossy(&out.stdout));
                eprint!("{}", String::from_utf8_lossy(&out.stderr));
                if !out.status.success() {
                    eprintln!("{} exited with {}", r.bin, out.status);
                    failed.push(r.bin);
                }
            }
            Err(e) => {
                eprintln!(
                    "{} failed to start: {e} (build with `cargo build --release -p bench` first)",
                    r.bin
                );
                failed.push(r.bin);
            }
        }
    }
    if failed.is_empty() {
        println!("\nAll reproductions completed; series written to results/.");
    } else {
        eprintln!("\nFailed: {failed:?}");
        std::process::exit(1);
    }
}
