//! Ablation — popularity churn.
//!
//! The paper's §2.2 motivates rich-object workloads with parameterized,
//! time-varying requests ("top-N user-relevant logs in the past T minutes").
//! This ablation stresses the static-popularity assumption behind the cost
//! results: the workload's hot set rotates completely every `period`
//! requests, and we measure how much of the Linked saving survives.
//!
//! Expected shape: rapid churn (period ≪ cache fill time) collapses the hit
//! ratio toward the cold-miss floor and the saving toward 1×; slow churn
//! costs only the transient refill after each rotation.

use bench::sweep::SweepRunner;
use bench::{print_table, ratio, request_budget, usd, write_json};
use dcache::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache::ArchKind;
use serde::Serialize;
use workloads::KvWorkloadConfig;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    churn_period: Option<u64>,
    cache_hit_ratio: f64,
    total_cost: f64,
    saving_vs_base: f64,
}

fn main() {
    println!("Ablation: popularity churn (100K keys, 1KB, r=0.95, 100K QPS, cache ~5% of keyspace)");
    let (warmup, measured) = request_budget(120_000, 120_000);

    let run = |arch: ArchKind, churn: Option<u64>| {
        let mut workload = KvWorkloadConfig::paper_synthetic(0.95, 1_024, 42);
        workload.churn_period = churn;
        let mut cfg = KvExperimentConfig::paper(arch, workload);
        cfg.qps = 100_000.0;
        cfg.warmup_requests = warmup;
        cfg.requests = measured;
        // Size the cache well below the keyspace (~5K of 100K entries) so
        // hot-set rotation actually forces refills.
        cfg.deployment.linked_cache_bytes_per_server = 2 << 20;
        run_kv_experiment(&cfg).expect("run")
    };

    // Spec 0 is the Base reference; the rest are Linked under churn.
    let mut specs: Vec<(String, ArchKind, Option<u64>)> =
        vec![("base".into(), ArchKind::Base, None)];
    specs.push(("static".into(), ArchKind::Linked, None));
    for period in [200_000u64, 60_000, 20_000, 5_000] {
        specs.push((format!("churn every {period}"), ArchKind::Linked, Some(period)));
    }
    let reports = SweepRunner::from_env()
        .run_map(&specs, |_, (_, arch, churn)| run(*arch, *churn));
    let base_cost = reports[0].total_cost.total();

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for ((label, _, churn), r) in specs.iter().zip(&reports).skip(1) {
        let total = r.total_cost.total();
        rows.push(vec![
            label.clone(),
            format!("{:.3}", r.cache_hit_ratio),
            usd(total),
            ratio(base_cost / total),
        ]);
        points.push(Point {
            churn_period: *churn,
            cache_hit_ratio: r.cache_hit_ratio,
            total_cost: total,
            saving_vs_base: base_cost / total,
        });
    }

    print_table(
        &format!("Churn ablation (Base: {})", usd(base_cost)),
        &["popularity", "hit", "total/mo", "saving"],
        &rows,
    );
    write_json("ablation_churn", &points);

    println!(
        "\nCaches pay for popularity stability: every hot-set rotation forces a\n\
         refill (cold misses through the full storage path). The cost advantage\n\
         degrades smoothly with churn rate rather than cliffing — but workloads\n\
         that rotate faster than the cache can fill keep little of it."
    );
}
