//! The §2.3 session-state service: the cost of *required* consistency.
//!
//! The paper motivates consistent caches with a Databricks service whose
//! session state must be strongly consistent — "any inconsistency can yield
//! incorrect query behavior" — yet needs low latency. This experiment runs
//! that service shape across every architecture and reports cost *and*
//! correctness: incorrect session reads per million Gets.
//!
//! The punchline quantifies §6: today's options are "read storage" (Base,
//! expensive), "check every read" (Linked+Version, just as expensive), or
//! "accept incorrectness" (TTL replicas). Ownership leases get both.

use bench::sweep::SweepRunner;
use bench::{print_table, ratio, request_budget, usd, write_json};
use dcache::sessionapp::{run_session_experiment, SessionExperimentConfig};
use dcache::ArchKind;
use serde::Serialize;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    arch: String,
    total_cost: f64,
    saving_vs_base: f64,
    incorrect_reads_per_million: f64,
    read_p50_us: u64,
    consistent: bool,
}

fn main() {
    println!("Session-state service (Section 2.3): 10K live sessions, 40K QPS,");
    println!("88% Get / 10% Advance / 2% lifecycle churn, ~4KB states\n");
    let (warmup, measured) = request_budget(80_000, 80_000);

    let archs: Vec<ArchKind> = ArchKind::ALL.to_vec();
    let reports = SweepRunner::from_env().run_map(&archs, |_, &arch| {
        let mut cfg = SessionExperimentConfig::paper(arch);
        cfg.warmup_requests = warmup;
        cfg.requests = measured;
        run_session_experiment(&cfg).expect("session run")
    });

    let mut rows = Vec::new();
    let mut points = Vec::new();
    let mut base_cost = None;
    for (&arch, r) in archs.iter().zip(&reports) {
        let total = r.total_cost.total();
        let saving = match base_cost {
            None => {
                base_cost = Some(total);
                1.0
            }
            Some(b) => b / total,
        };
        let reads = (measured as f64) * 0.88;
        let incorrect = r.stale_reads as f64 / reads * 1e6;
        rows.push(vec![
            arch.label().to_string(),
            usd(total),
            ratio(saving),
            format!("{incorrect:.0}"),
            format!("{}", r.read_latency_p50_us),
            if arch.is_consistent() { "yes" } else { "no" }.to_string(),
        ]);
        points.push(Point {
            arch: arch.label().to_string(),
            total_cost: total,
            saving_vs_base: saving,
            incorrect_reads_per_million: incorrect,
            read_p50_us: r.read_latency_p50_us,
            consistent: arch.is_consistent(),
        });
    }
    print_table(
        "Session service: cost vs correctness",
        &["arch", "total/mo", "saving", "bad reads/M", "p50_us", "linearizable"],
        &rows,
    );
    write_json("exp_sessions", &points);

    println!(
        "\nOnly lease-owned delivers the paper's asked-for combination: the cost\n\
         and latency of an eventually-consistent linked cache, with zero\n\
         incorrect session reads (§6's research direction, implemented)."
    );
}
