//! Ablation — availability: what a storage-leader failure costs.
//!
//! Crashes every region's Raft leader at the midpoint of the measured run
//! and lets the runner recover through elections. Two observations the
//! paper's steady-state methodology abstracts away:
//!
//! * the blip is a *latency* event (p99 explodes, steady-state cost barely
//!   moves), and
//! * architectures that touch storage less often trip over the failure
//!   less: Linked's cached reads sail through the outage window, while
//!   Base and Linked+Version pay the election penalty on every read.

use bench::sweep::SweepRunner;
use bench::{print_table, request_budget, usd, write_json};
use dcache::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache::ArchKind;
use serde::Serialize;
use workloads::KvWorkloadConfig;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    arch: String,
    crashed: bool,
    total_cost: f64,
    failovers: u64,
    read_p50_us: u64,
    read_p99_us: u64,
}

fn main() {
    println!("Ablation: storage leader failure mid-run (elections recover; 20K keys, 1KB)");
    let (warmup, measured) = request_budget(80_000, 80_000);

    let run = |arch: ArchKind, crash: bool| {
        let mut workload = KvWorkloadConfig::paper_synthetic(0.95, 1_024, 42);
        workload.keys = 20_000;
        let mut cfg = KvExperimentConfig::paper(arch, workload);
        cfg.qps = 100_000.0;
        cfg.warmup_requests = warmup;
        cfg.requests = measured;
        cfg.crash_leaders_at_request = crash.then_some(measured / 2);
        run_kv_experiment(&cfg).expect("run")
    };

    let specs: Vec<(ArchKind, bool)> = [ArchKind::Base, ArchKind::Linked, ArchKind::LinkedVersion]
        .iter()
        .flat_map(|&a| [false, true].map(|crash| (a, crash)))
        .collect();
    let reports =
        SweepRunner::from_env().run_map(&specs, |_, &(arch, crash)| run(arch, crash));

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (&(arch, crash), r) in specs.iter().zip(&reports) {
        {
            rows.push(vec![
                arch.label().to_string(),
                if crash { "leader crash" } else { "healthy" }.to_string(),
                usd(r.total_cost.total()),
                format!("{}", r.failovers),
                format!("{}", r.read_latency_p50_us),
                format!("{}", r.read_latency_p99_us),
            ]);
            points.push(Point {
                arch: arch.label().to_string(),
                crashed: crash,
                total_cost: r.total_cost.total(),
                failovers: r.failovers,
                read_p50_us: r.read_latency_p50_us,
                read_p99_us: r.read_latency_p99_us,
            });
        }
    }
    print_table(
        "Failover ablation",
        &["arch", "condition", "total/mo", "elections", "p50_us", "p99_us"],
        &rows,
    );
    write_json("ablation_failover", &points);

    println!(
        "\nSteady-state cost is insensitive to the crash (it is a latency event);\n\
         Linked's cached reads shrug the outage off, while storage-bound\n\
         architectures pay the election penalty across the whole tail."
    );
}
