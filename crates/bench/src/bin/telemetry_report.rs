//! Telemetry drill-down — the observability layer end to end.
//!
//! Runs the paper's synthetic workload through the **Remote** and
//! **Linked** architectures with tracing armed, then writes per-arch
//! artifacts under `results/telemetry/`:
//!
//! * `{arch}.prom` — every report field, fault counter and latency
//!   distribution as Prometheus text exposition,
//! * `{arch}_traces.jsonl` — the retained trace spans, one JSON object per
//!   line (deterministic ids derived from the workload seed),
//! * `{arch}.collapsed` — collapsed-stack CPU attribution, ready for
//!   `flamegraph.pl` / `inferno-flamegraph`.
//!
//! Two invariants are checked on every run and reported in the summary:
//!
//! 1. **Accounting agreement** — per tier, cores implied by the collapsed
//!    profile (`Σ nanos / window`) must match the report's cost accounting
//!    within 0.1% (they are folded from the same meters; disagreement
//!    means double-counting).
//! 2. **Determinism** — a second run with the same seed must reproduce the
//!    Prometheus text, the trace JSONL and the collapsed profile
//!    byte-for-byte.

use bench::sweep::SweepRunner;
use bench::{print_table, request_budget, results_dir, write_json};
use dcache::experiment::{run_kv_experiment_with_telemetry, KvExperimentConfig, TelemetryBundle};
use dcache::{ArchKind, ExperimentReport};
use serde::Serialize;
use workloads::KvWorkloadConfig;

/// Sample every k-th measured request (prime, so sampling doesn't alias
/// against read/write mix periodicity).
const SAMPLE_EVERY: u64 = 97;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct TierAgreement {
    tier: String,
    report_cores: f64,
    profile_cores: f64,
    rel_err: f64,
}

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct ArchSummary {
    arch: String,
    traces_retained: usize,
    spans_retained: usize,
    profile_total_ms: f64,
    agreement: Vec<TierAgreement>,
    deterministic: bool,
}

fn run_arch(arch: ArchKind, warmup: u64, measured: u64) -> (ExperimentReport, TelemetryBundle) {
    let workload = KvWorkloadConfig::paper_synthetic(0.95, 1 << 10, 42);
    let mut cfg = KvExperimentConfig::paper(arch, workload);
    cfg.qps = 100_000.0;
    cfg.warmup_requests = warmup;
    cfg.requests = measured;
    cfg.trace_sample_every = Some(SAMPLE_EVERY);
    run_kv_experiment_with_telemetry(&cfg).expect("run")
}

fn main() {
    println!("Telemetry report: tracing + metrics + CPU attribution for Remote and Linked");
    let (warmup, measured) = request_budget(30_000, 30_000);
    let out_dir = results_dir().join("telemetry");
    std::fs::create_dir_all(&out_dir).expect("create results/telemetry");

    // Each arch runs twice (the determinism invariant needs an independent
    // replay); all four simulations are independent, so sweep them.
    let specs: Vec<ArchKind> = [ArchKind::Remote, ArchKind::Linked]
        .iter()
        .flat_map(|&a| [a, a])
        .collect();
    let mut runs = SweepRunner::from_env()
        .run_map(&specs, |_, &arch| run_arch(arch, warmup, measured));

    let mut summaries = Vec::new();
    let mut combined = telemetry::Registry::new();
    for arch in [ArchKind::Remote, ArchKind::Linked] {
        let label = arch.label();
        let (report, bundle) = runs.remove(0);
        let (_, second) = runs.remove(0);
        let prom = bundle.registry.to_prometheus_text();
        let collapsed = bundle.profile.to_collapsed();

        // Invariant 1: profile cores vs report cores, per tier, within 0.1%.
        let window_ns = report.duration_secs * 1e9;
        let mut agreement = Vec::new();
        let mut rows = Vec::new();
        for tier in &report.tiers {
            let stack_prefix = format!("{label};{};", tier.name);
            let profile_cores = bundle.profile.total_matching(&stack_prefix) as f64 / window_ns;
            let rel_err = if tier.cores > 0.0 {
                (profile_cores - tier.cores).abs() / tier.cores
            } else {
                profile_cores.abs()
            };
            assert!(
                rel_err < 0.001,
                "{label}/{}: profile says {profile_cores:.4} cores, report says {:.4} ({:.3}% off)",
                tier.name,
                tier.cores,
                rel_err * 100.0
            );
            rows.push(vec![
                tier.name.clone(),
                format!("{:.3}", tier.cores),
                format!("{profile_cores:.3}"),
                format!("{:.4}%", rel_err * 100.0),
            ]);
            agreement.push(TierAgreement {
                tier: tier.name.clone(),
                report_cores: tier.cores,
                profile_cores,
                rel_err,
            });
        }
        print_table(
            &format!("CPU accounting agreement ({label})"),
            &["tier", "report cores", "profile cores", "rel err"],
            &rows,
        );

        // Invariant 2: same seed ⇒ byte-identical artifacts.
        let deterministic = second.registry.to_prometheus_text() == prom
            && second.traces_jsonl == bundle.traces_jsonl
            && second.profile.to_collapsed() == collapsed;
        assert!(deterministic, "{label}: telemetry must be reproducible");

        std::fs::write(out_dir.join(format!("{label}.prom")), &prom).expect("write prom");
        std::fs::write(
            out_dir.join(format!("{label}_traces.jsonl")),
            &bundle.traces_jsonl,
        )
        .expect("write traces");
        std::fs::write(out_dir.join(format!("{label}.collapsed")), &collapsed)
            .expect("write collapsed");

        let sink = {
            // Count distinct traces in the retained window.
            let mut ids: Vec<u64> = bundle
                .traces_jsonl
                .lines()
                .filter_map(|l| {
                    l.split("\"trace_id\":\"")
                        .nth(1)?
                        .split('"')
                        .next()
                        .map(|h| u64::from_str_radix(h, 16).unwrap_or(0))
                })
                .collect();
            let spans = ids.len();
            ids.sort_unstable();
            ids.dedup();
            (ids.len(), spans)
        };
        println!(
            "{label}: {} traces / {} spans retained, profile total {:.1} ms CPU, deterministic: {deterministic}",
            sink.0,
            sink.1,
            bundle.profile.total() as f64 / 1e6
        );
        summaries.push(ArchSummary {
            arch: label.to_string(),
            traces_retained: sink.0,
            spans_retained: sink.1,
            profile_total_ms: bundle.profile.total() as f64 / 1e6,
            agreement,
            deterministic,
        });
        combined.merge(&bundle.registry);
    }

    // Post-hoc merge of the per-experiment registries: one exposition with
    // both architectures' series (disjoint by the `arch` label).
    std::fs::write(out_dir.join("combined.prom"), combined.to_prometheus_text())
        .expect("write combined prom");

    write_json("telemetry_report", &summaries);
    println!("\n[telemetry artifacts written to {}]", out_dir.display());
}
