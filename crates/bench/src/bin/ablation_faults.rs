//! Ablation — fault tolerance: what cache-shard crashes cost.
//!
//! Sweeps a schedule of periodic cache-shard crashes (rotating through the
//! shards) over crash interval × recovery time, for the two cache-bearing
//! architectures with degraded fallback and single-flight coalescing
//! enabled. The question the steady-state methodology abstracts away: when
//! the cache tier is *unreliable*, how much of the paper's saving survives?
//!
//! Expected shape:
//!
//! * steady-state cost barely moves — outages are latency/availability
//!   events, not sustained CPU;
//! * p99 and degraded reads grow as crashes come faster or recovery takes
//!   longer, and single-flight keeps the post-restart refill from turning
//!   into a storage stampede;
//! * Remote degrades more gracefully per-shard (1/N of the ring per crash)
//!   but pays retries on the wire; Linked loses a whole app server's shard.

use bench::sweep::SweepRunner;
use bench::{print_table, request_budget, usd, write_json};
use dcache::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache::ArchKind;
use serde::Serialize;
use simnet::{FaultSchedule, NodeId, SimDuration, SimTime};
use workloads::KvWorkloadConfig;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    arch: String,
    crash_interval_ms: u64,
    recovery_ms: u64,
    total_cost: f64,
    availability: f64,
    degraded_reads: u64,
    cache_retries: u64,
    stampede_suppressed: u64,
    cache_crashes: u64,
    read_p99_us: u64,
    net_dropped: u64,
}

fn main() {
    println!("Ablation: periodic cache-shard crashes (rotating shards; 20K keys, 1KB)");
    let (warmup, measured) = request_budget(60_000, 60_000);

    let run = |arch: ArchKind, interval: Option<SimDuration>, recovery: SimDuration| {
        let mut workload = KvWorkloadConfig::paper_synthetic(0.95, 1_024, 42);
        workload.keys = 20_000;
        let mut cfg = KvExperimentConfig::paper(arch, workload);
        cfg.qps = 100_000.0;
        cfg.warmup_requests = warmup;
        cfg.requests = measured;
        cfg.deployment.fault_tolerance.single_flight = true;

        if let Some(interval) = interval {
            let shards = match arch {
                ArchKind::Remote => cfg.deployment.remote_cache_nodes,
                _ => cfg.deployment.app_servers,
            };
            let dt = SimDuration::from_secs_f64(1.0 / cfg.qps);
            let t_warm = SimTime::ZERO + dt.saturating_mul(warmup);
            let t_end = SimTime::ZERO + dt.saturating_mul(warmup + measured);
            let mut schedule = FaultSchedule::new();
            let mut at = t_warm + interval;
            let mut k = 0usize;
            while at < t_end {
                schedule.crash_for(at, NodeId((k % shards) as u32), recovery);
                at += interval;
                k += 1;
            }
            cfg.cache_fault_schedule = Some(schedule);
        }
        run_kv_experiment(&cfg).expect("run")
    };

    // (crash interval, recovery) sweep; the measured window is
    // `measured / qps` seconds long (0.6 s at the default budget).
    let sweep: &[(Option<u64>, u64)] = &[
        (None, 0),        // healthy baseline
        (Some(200), 5),   // rare crashes, fast recovery
        (Some(200), 50),  // rare crashes, slow recovery
        (Some(50), 5),    // frequent crashes, fast recovery
        (Some(50), 50),   // frequent crashes, slow recovery
    ];

    let specs: Vec<(ArchKind, Option<u64>, u64)> = [ArchKind::Remote, ArchKind::Linked]
        .iter()
        .flat_map(|&a| sweep.iter().map(move |&(i, rec)| (a, i, rec)))
        .collect();
    let reports = SweepRunner::from_env().run_map(&specs, |_, &(arch, interval_ms, recovery_ms)| {
        run(
            arch,
            interval_ms.map(SimDuration::from_millis),
            SimDuration::from_millis(recovery_ms),
        )
    });

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (&(arch, interval_ms, recovery_ms), r) in specs.iter().zip(&reports) {
        {
            let condition = match interval_ms {
                None => "healthy".to_string(),
                Some(i) => format!("every {i}ms, {recovery_ms}ms down"),
            };
            rows.push(vec![
                arch.label().to_string(),
                condition,
                usd(r.total_cost.total()),
                format!("{:.4}", r.availability()),
                format!("{}", r.degraded_reads),
                format!("{}", r.stampede_suppressed),
                format!("{}", r.read_latency_p99_us),
            ]);
            points.push(Point {
                arch: arch.label().to_string(),
                crash_interval_ms: interval_ms.unwrap_or(0),
                recovery_ms,
                total_cost: r.total_cost.total(),
                availability: r.availability(),
                degraded_reads: r.degraded_reads,
                cache_retries: r.cache_retries,
                stampede_suppressed: r.stampede_suppressed,
                cache_crashes: r.cache_crashes,
                read_p99_us: r.read_latency_p99_us,
                net_dropped: r.net_dropped,
            });
        }
    }
    print_table(
        "Cache-shard crash ablation",
        &[
            "arch",
            "condition",
            "total/mo",
            "availability",
            "degraded",
            "coalesced",
            "p99_us",
        ],
        &rows,
    );
    write_json("ablation_faults", &points);

    println!(
        "\nCrashes are availability events, not cost events: the bill barely\n\
         moves while degraded reads and tail latency track the fraction of\n\
         the run spent with a shard down. Degraded fallback keeps every\n\
         request answered; single-flight keeps the post-restart refill from\n\
         stampeding the database."
    );
}
