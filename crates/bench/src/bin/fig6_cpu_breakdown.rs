//! Figure 6 — CPU usage breakdown at app server, remote cache and storage,
//! by value size and architecture.
//!
//! The paper's panels (a)–(d) show, per architecture, how total compute
//! splits across tiers as value size grows, with §5.3's in-text numbers:
//! 40–65% of database CPU on connection/query processing/planning, and the
//! version check (panel d) dramatically inflating the storage share.

use bench::sweep::SweepRunner;
use bench::{print_table, request_budget, write_json};
use dcache::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache::ArchKind;
use serde::Serialize;
use workloads::KvWorkloadConfig;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Breakdown {
    arch: String,
    value_bytes: u64,
    /// (tier, cores) pairs.
    tier_cores: Vec<(String, f64)>,
    /// Fraction of DB (frontend) CPU in conn/parse/plan + lease.
    frontend_fixed_fraction: f64,
    /// Fraction of app CPU on client communication.
    app_client_fraction: f64,
    /// Fraction of app CPU on preparing/issuing storage+cache requests.
    app_storage_fraction: f64,
    memory_fraction: f64,
}

fn main() {
    println!("Reproducing Figure 6: CPU breakdown by tier, per architecture");
    let (warmup, measured) = request_budget(100_000, 100_000);
    let mut out = Vec::new();

    const SIZES: [u64; 3] = [1u64 << 10, 100 << 10, 1 << 20];
    let specs: Vec<(ArchKind, u64)> = ArchKind::PAPER
        .iter()
        .flat_map(|&a| SIZES.iter().map(move |&v| (a, v)))
        .collect();
    let reports = SweepRunner::from_env().run_map(&specs, |_, &(arch, value_bytes)| {
        let workload = KvWorkloadConfig::paper_synthetic(0.95, value_bytes, 42);
        let mut cfg = KvExperimentConfig::paper(arch, workload);
        cfg.qps = 100_000.0;
        cfg.warmup_requests = warmup;
        cfg.requests = measured;
        run_kv_experiment(&cfg).expect("run")
    });
    let mut report_iter = specs.iter().zip(&reports);

    for arch in ArchKind::PAPER {
        let mut rows = Vec::new();
        for value_bytes in SIZES {
            let (_, r) = report_iter.next().expect("one report per spec");

            let tier_cores: Vec<(String, f64)> =
                r.tiers.iter().map(|t| (t.name.clone(), t.cores)).collect();
            let frac = |tier: &str, cats: &[&str]| -> f64 {
                r.tier(tier)
                    .map(|t| {
                        t.cpu_fractions
                            .iter()
                            .filter(|(n, _)| cats.contains(&n.as_str()))
                            .map(|(_, f)| f)
                            .sum()
                    })
                    .unwrap_or(0.0)
            };
            let b = Breakdown {
                arch: arch.label().to_string(),
                value_bytes,
                frontend_fixed_fraction: frac("sql_frontend", &["sql_frontend", "txn_lease"]),
                app_client_fraction: frac("app", &["client_comm"]),
                app_storage_fraction: frac(
                    "app",
                    &["rpc_stack", "serialization", "app_logic"],
                ),
                memory_fraction: r.memory_cost_fraction(),
                tier_cores,
            };
            let cores_of = |name: &str| {
                b.tier_cores
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, c)| *c)
                    .unwrap_or(0.0)
            };
            rows.push(vec![
                format!("{}KB", value_bytes >> 10),
                format!("{:.1}", cores_of("app")),
                format!("{:.1}", cores_of("remote_cache")),
                format!("{:.1}", cores_of("sql_frontend")),
                format!("{:.1}", cores_of("storage")),
                format!("{:.0}%", b.frontend_fixed_fraction * 100.0),
                format!("{:.0}%", b.app_client_fraction * 100.0),
                format!("{:.0}%", b.app_storage_fraction * 100.0),
                format!("{:.1}%", b.memory_fraction * 100.0),
            ]);
            out.push(b);
        }
        print_table(
            &format!("Figure 6 ({arch})"),
            &[
                "size",
                "app",
                "cache",
                "frontend",
                "storage",
                "db-fixed%",
                "app-client%",
                "app-storage%",
                "mem-cost%",
            ],
            &rows,
        );
    }

    write_json("fig6_cpu_breakdown", &out);

    // §5.3 in-text claims.
    let base_db: Vec<f64> = out
        .iter()
        .filter(|b| b.arch == "base")
        .map(|b| b.frontend_fixed_fraction)
        .collect();
    println!(
        "\nDB fixed-overhead (conn/parse/plan/lease) share of frontend CPU for Base: {:?}",
        base_db.iter().map(|f| format!("{:.0}%", f * 100.0)).collect::<Vec<_>>()
    );
    let linked_mem: Vec<f64> = out
        .iter()
        .filter(|b| b.arch == "linked")
        .map(|b| b.memory_fraction)
        .collect();
    println!(
        "Memory share of total cost for Linked: {:?} (paper: 6-22%); Base: {:?} (paper: 1-5%)",
        linked_mem.iter().map(|f| format!("{:.1}%", f * 100.0)).collect::<Vec<_>>(),
        out.iter()
            .filter(|b| b.arch == "base")
            .map(|b| format!("{:.1}%", b.memory_fraction * 100.0))
            .collect::<Vec<_>>()
    );
}
