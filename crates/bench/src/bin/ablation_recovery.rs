//! Ablation — what crash consistency actually costs.
//!
//! The paper prices every architecture as if storage nodes never die: no
//! WAL on the write path, no fsync stalls, and a crash that magically
//! preserves state. Real deployments pay for durability twice — once per
//! write (append + group fsync + periodic snapshots) and once per crash
//! (snapshot load + WAL replay + a cold block cache refilled at miss-CPU
//! rates, plus the SSD the log and snapshots live on at $/GB·month).
//!
//! This sweep runs the same write-heavy day under the same periodic pod
//! crashes, once with durability off (the legacy optimistic baseline) and
//! across fsync-policy × snapshot-cadence × crash-rate cells, per
//! architecture. Expected shape:
//!
//! * the durability tax is single-digit percent of the monthly bill —
//!   dominated by WAL CPU, with the SSD line itself nearly free;
//! * fsync-every-entry pays measurably more CPU than group commit for the
//!   same recovery guarantee on acked writes;
//! * tighter snapshot cadence trades steady-state snapshot bytes for
//!   shorter WAL replay — recovery time falls as cadence tightens;
//! * no acked write is ever lost: stale reads stay zero in every cell.

use bench::recovery::{
    cold_refill_cores, durability_tax, mean_recovery_ms, run_sweep, sweep_specs, READ_RATIO,
};
use bench::sweep::SweepRunner;
use bench::{print_table, request_budget, usd, write_json};
use serde::Serialize;

// Fields are read via `Serialize`; the offline serde stub derive is a no-op.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    cell: String,
    arch: String,
    durable: bool,
    crashes: u32,
    monthly_dollars: f64,
    ssd_dollars: f64,
    cache_hit_ratio: f64,
    wal_appends: u64,
    wal_fsync_batches: u64,
    snapshot_bytes: u64,
    recoveries: u64,
    mean_recovery_ms: f64,
    replayed_entries: u64,
    lost_tail_entries: u64,
    cold_refill_cpu_us: u64,
    ssd_resident_bytes: u64,
    stale_reads: u64,
}

fn main() {
    println!(
        "Ablation: crash-consistent storage under periodic pod failures ({}% writes)",
        ((1.0 - READ_RATIO) * 100.0) as u32
    );
    let (warmup, measured) = request_budget(16_000, 32_000);

    let specs = sweep_specs();
    let reports = run_sweep(&SweepRunner::from_env(), &specs, warmup, measured);

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (spec, r) in specs.iter().zip(&reports) {
        rows.push(vec![
            spec.label(),
            usd(r.total_cost.total()),
            usd(r.total_cost.ssd),
            format!("{:.3}", r.cache_hit_ratio),
            format!("{}", r.wal_appends),
            format!("{}", r.wal_fsync_batches),
            format!("{}", r.recoveries),
            format!("{:.2}", mean_recovery_ms(r)),
            format!("{}", r.replayed_entries),
            format!("{}", r.lost_tail_entries),
            format!("{:.1}", r.cold_refill_cpu_us as f64 / 1e3),
        ]);
        points.push(Point {
            cell: spec.label(),
            arch: spec.arch.label().to_string(),
            durable: spec.durability.is_some(),
            crashes: spec.crashes,
            monthly_dollars: r.total_cost.total(),
            ssd_dollars: r.total_cost.ssd,
            cache_hit_ratio: r.cache_hit_ratio,
            wal_appends: r.wal_appends,
            wal_fsync_batches: r.wal_fsync_batches,
            snapshot_bytes: r.snapshot_bytes,
            recoveries: r.recoveries,
            mean_recovery_ms: mean_recovery_ms(r),
            replayed_entries: r.replayed_entries,
            lost_tail_entries: r.lost_tail_entries,
            cold_refill_cpu_us: r.cold_refill_cpu_us,
            ssd_resident_bytes: r.ssd_resident_bytes,
            stale_reads: r.stale_reads,
        });
    }
    print_table(
        "Crash-recovery ablation (periodic pod crashes, durable vs optimistic)",
        &[
            "cell",
            "billed/mo",
            "ssd/mo",
            "hit",
            "wal",
            "fsyncs",
            "recov",
            "recov_ms",
            "replayed",
            "lost_tail",
            "refill_ms",
        ],
        &rows,
    );
    write_json("ablation_recovery", &points);

    // The headline: each durable cell against its arch's off baseline
    // (specs come in per-arch blocks led by the baseline).
    println!("\nHeadline — the durability tax, per cell vs the optimistic baseline:");
    let mut headline_rows = Vec::new();
    let measured_secs = measured as f64 / 50_000.0; // small_kv qps
    for (spec_block, report_block) in specs.chunks(5).zip(reports.chunks(5)) {
        debug_assert!(spec_block[0].durability.is_none());
        let off = &report_block[0];
        for (spec, r) in spec_block[1..].iter().zip(&report_block[1..]) {
            let tax = durability_tax(off, r);
            headline_rows.push(vec![
                spec.label(),
                usd(tax),
                format!("{:.2}%", tax / off.total_cost.total().max(1e-9) * 100.0),
                format!("{:.2}", mean_recovery_ms(r)),
                format!("{:.3}", cold_refill_cores(r, measured_secs)),
                format!("{}", r.stale_reads),
            ]);
        }
    }
    print_table(
        "Durability tax over the simulated day",
        &[
            "cell",
            "tax/mo",
            "tax_%",
            "recov_ms",
            "refill_cores",
            "stale_reads",
        ],
        &headline_rows,
    );

    println!(
        "\nThe off baseline recovers by re-election with state magically intact\n\
         — the optimistic fiction a crash-free cost model assumes. Durable\n\
         cells append every replicated write to a WAL, group-fsync it, roll\n\
         snapshots, and rebuild crashed pods from the SSD image: snapshot\n\
         load + replay + cold-cache refill, all charged to the same CPU and\n\
         dollar meters as the serving path. Acked writes survive in every\n\
         cell (stale_reads = 0); only the un-fsynced tail is re-replicated\n\
         from the surviving quorum."
    );
}
