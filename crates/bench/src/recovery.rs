//! Shared builder for the crash-recovery ablation.
//!
//! One sweep definition, three consumers: the `ablation_recovery` bin
//! (full budget, table + JSON + the headline durability-tax comparison),
//! the golden suite (small fixed-seed snapshot), and the determinism tests
//! (jobs=1 vs jobs=N byte-equality). Keeping the config construction here
//! guarantees they all measure the same thing.
//!
//! Every cell runs the same write-heavy day under the same periodic
//! crash schedule — a storage pod goes down `crashes` times during the
//! measured window and comes back a quarter-period later. Cells differ
//! only in the durability configuration: the `off` baseline recovers the
//! legacy way (re-election, volatile state magically intact — the
//! optimistic fiction every crash-free cost model quietly assumes), while
//! durable cells pay for WAL appends, fsync batches and snapshots on the
//! write path, then rebuild the pod from its SSD image at restart:
//! snapshot load + WAL replay + a cold block cache refilled at miss CPU
//! rates. The figure is what crash-consistency actually costs, in dollars
//! and in recovery seconds, as fsync policy and snapshot cadence move.

use crate::golden::small_kv;
use crate::sweep::SweepRunner;
use dcache::experiment::{run_kv_experiment, KvExperimentConfig, STORAGE_FAULT_NODE_BASE};
use dcache::{ArchKind, ExperimentReport};
use simnet::{FaultSchedule, NodeId, SimDuration, SimTime};
use storekit::{DurabilityConfig, FsyncPolicy};

/// Architectures in the sweep: the remote-cache and linked-cache designs
/// (storage durability is arch-independent; two archs pin both read paths).
pub const ARCHS: &[ArchKind] = &[ArchKind::Remote, ArchKind::Linked];

/// Write share of the workload — recovery is about the write path, so the
/// sweep runs a heavier mix than the 95%-read figures.
pub const READ_RATIO: f64 = 0.90;

/// One cell of the recovery sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoverySpec {
    pub arch: ArchKind,
    /// `None` = durability off: the legacy baseline (same crash schedule,
    /// recovery by re-election with state intact and nothing billed).
    pub durability: Option<DurabilityKnobs>,
    /// Crash/recover cycles inside the measured window.
    pub crashes: u32,
}

/// The durable knobs one cell sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityKnobs {
    /// WAL fsync group size (1 = fsync every entry).
    pub fsync_group: u32,
    /// Snapshot after this many WAL entries per pod.
    pub snapshot_every: u64,
}

impl RecoverySpec {
    pub fn label(&self) -> String {
        match self.durability {
            None => format!("{}/off_c{}", self.arch.label(), self.crashes),
            Some(k) => format!(
                "{}/f{}_s{}_c{}",
                self.arch.label(),
                k.fsync_group,
                k.snapshot_every,
                self.crashes
            ),
        }
    }
}

/// The full grid in deterministic order: per arch, the durability-off
/// baseline, then fsync policy × snapshot cadence at the base crash
/// interval, then the doubled crash rate at the default durable config.
pub fn sweep_specs() -> Vec<RecoverySpec> {
    let mut specs = Vec::new();
    for &arch in ARCHS {
        specs.push(RecoverySpec {
            arch,
            durability: None,
            crashes: 2,
        });
        for knobs in [
            DurabilityKnobs { fsync_group: 1, snapshot_every: 1_024 },
            DurabilityKnobs { fsync_group: 8, snapshot_every: 1_024 },
            DurabilityKnobs { fsync_group: 8, snapshot_every: 256 },
        ] {
            specs.push(RecoverySpec {
                arch,
                durability: Some(knobs),
                crashes: 2,
            });
        }
        specs.push(RecoverySpec {
            arch,
            durability: Some(DurabilityKnobs { fsync_group: 8, snapshot_every: 1_024 }),
            crashes: 4,
        });
    }
    specs
}

/// The experiment for one sweep cell: the golden small-KV base at a
/// write-heavy mix, with region 0's hosting pod crashed periodically
/// through the measured window. Crash period = `measured / crashes`
/// requests, downtime a quarter period, first outage half a period into
/// the measured window — so every cycle completes (crash, recover, refill)
/// before the run ends, at any budget.
pub fn experiment(spec: &RecoverySpec, warmup: u64, measured: u64) -> KvExperimentConfig {
    let mut cfg = small_kv(spec.arch, READ_RATIO, 1_024);
    cfg.warmup_requests = warmup;
    cfg.requests = measured;
    if let Some(knobs) = spec.durability {
        cfg.deployment.cluster.durability = DurabilityConfig {
            enabled: true,
            fsync: if knobs.fsync_group <= 1 {
                FsyncPolicy::EveryEntry
            } else {
                FsyncPolicy::Group(knobs.fsync_group)
            },
            snapshot_every_entries: knobs.snapshot_every,
        };
    }
    let dt = SimDuration::from_secs_f64(1.0 / cfg.qps);
    let period_reqs = (measured / spec.crashes.max(1) as u64).max(4);
    let regions = cfg.deployment.cluster.regions.max(1);
    let mut schedule = FaultSchedule::new();
    // Each cycle takes out a *different* region's leader (round-robin), so
    // the off baseline — whose Restart only re-elects, it never revives
    // the dead replica — keeps quorum everywhere.
    for i in 0..spec.crashes {
        let region = i % regions as u32;
        schedule.crash_for(
            SimTime::ZERO + dt.saturating_mul(warmup + period_reqs / 2 + i as u64 * period_reqs),
            NodeId(STORAGE_FAULT_NODE_BASE + region),
            dt.saturating_mul(period_reqs / 4),
        );
    }
    cfg.cache_fault_schedule = Some(schedule);
    cfg
}

/// Run every spec through `runner` (results in spec order).
pub fn run_sweep(
    runner: &SweepRunner,
    specs: &[RecoverySpec],
    warmup: u64,
    measured: u64,
) -> Vec<ExperimentReport> {
    runner.run_map(specs, |_, spec| {
        run_kv_experiment(&experiment(spec, warmup, measured)).expect("recovery sweep run")
    })
}

/// Mean time to rebuild a crashed pod (snapshot load + WAL replay), in
/// milliseconds. 0 when nothing recovered (the off baseline).
pub fn mean_recovery_ms(r: &ExperimentReport) -> f64 {
    if r.recoveries == 0 {
        0.0
    } else {
        r.recovery_time_us as f64 / 1e3 / r.recoveries as f64
    }
}

/// Cores spent refilling cold block caches after recoveries, amortized
/// over the measured window.
pub fn cold_refill_cores(r: &ExperimentReport, measured_secs: f64) -> f64 {
    r.cold_refill_cpu_us as f64 * 1e-6 / measured_secs.max(1e-9)
}

/// Extra monthly dollars a durable cell pays over its off baseline — the
/// durability tax: WAL/fsync/snapshot CPU, SSD residency and replay/refill
/// work, all already metered into the bill.
pub fn durability_tax(off: &ExperimentReport, durable: &ExperimentReport) -> f64 {
    durable.total_cost.total() - off.total_cost.total()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_the_grid_in_order() {
        let specs = sweep_specs();
        assert_eq!(specs.len(), 5 * ARCHS.len());
        // Each arch's block starts with its off baseline — the pairing the
        // bin's headline table relies on.
        for block in specs.chunks(5) {
            assert!(block[0].durability.is_none());
            assert!(block.iter().all(|s| s.arch == block[0].arch));
            assert!(block[1..].iter().all(|s| s.durability.is_some()));
        }
        assert_eq!(specs, sweep_specs());
    }

    #[test]
    fn off_cell_keeps_durability_disabled_but_schedules_crashes() {
        let spec = RecoverySpec {
            arch: ArchKind::Remote,
            durability: None,
            crashes: 2,
        };
        let cfg = experiment(&spec, 1_000, 2_000);
        assert!(!cfg.deployment.cluster.durability.enabled());
        let schedule = cfg.cache_fault_schedule.expect("crash schedule");
        // 2 cycles × (crash + restart).
        assert_eq!(schedule.events().len(), 4);
    }

    #[test]
    fn durable_cell_maps_knobs_onto_the_config() {
        let spec = RecoverySpec {
            arch: ArchKind::Linked,
            durability: Some(DurabilityKnobs { fsync_group: 1, snapshot_every: 256 }),
            crashes: 4,
        };
        let cfg = experiment(&spec, 1_000, 2_000);
        let d = cfg.deployment.cluster.durability;
        assert!(d.enabled());
        assert_eq!(d.fsync, FsyncPolicy::EveryEntry);
        assert_eq!(d.snapshot_every_entries, 256);
        assert_eq!(cfg.cache_fault_schedule.expect("schedule").events().len(), 8);
    }

    #[test]
    fn labels_are_unique() {
        let specs = sweep_specs();
        let mut labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), specs.len());
    }

    #[test]
    fn durable_run_pays_and_recovers_where_the_baseline_does_not() {
        let runner = SweepRunner::sequential();
        let arch_block: Vec<RecoverySpec> = sweep_specs()
            .into_iter()
            .filter(|s| s.arch == ArchKind::Remote)
            .take(2) // off + fsync-every-entry
            .collect();
        let reports = run_sweep(&runner, &arch_block, 500, 1_000);
        let (off, durable) = (&reports[0], &reports[1]);
        assert_eq!(off.recoveries, 0);
        assert_eq!(off.wal_appends, 0);
        assert_eq!(off.total_cost.ssd, 0.0);
        assert!(durable.recoveries >= 1, "pod must crash and recover");
        assert!(durable.wal_appends > 0);
        assert!(durable.total_cost.ssd > 0.0);
        assert!(mean_recovery_ms(durable) > 0.0);
        assert!(
            durability_tax(off, durable) > 0.0,
            "crash consistency is not free: {} vs {}",
            durable.total_cost.total(),
            off.total_cost.total()
        );
    }
}
