//! Shared builder for the elastic-provisioning ablation.
//!
//! One sweep definition, three consumers: the `ablation_elastic` bin (full
//! budget, table + JSON + the headline elastic-vs-static-peak dollar
//! comparison), the golden suite (small fixed-seed snapshot), and the
//! determinism tests (jobs=1 vs jobs=N byte-equality). Keeping the config
//! construction here guarantees they all measure the same thing.
//!
//! Every cell runs the same diurnal day — a sinusoidal swing between peak
//! and a 25% trough, compressed onto the virtual clock — once with the
//! cache tier statically provisioned for peak and once with the elastic
//! controller live (online SHARDS MRC profiling + cost planner + actual
//! cache resizing and shard draining). Static provisioning pays for its
//! *peak* window all day; elastic pays the time-integral. The figure is
//! the dollar gap between the two, per architecture, next to the hit-ratio
//! cost of running leaner.

use crate::golden::small_kv;
use crate::sweep::SweepRunner;
use dcache::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache::{ArchKind, ExperimentReport};
use workloads::DiurnalSchedule;

/// Architectures with an elastic-manageable cache tier (Base has none).
pub const ARCHS: &[ArchKind] = &[ArchKind::Remote, ArchKind::Linked, ArchKind::LinkedVersion];

/// Peak request rate. Low enough that heartbeats (one per `qps` requests ≈
/// one virtual second) land many times per diurnal cycle.
pub const PEAK_QPS: f64 = 2_000.0;

/// One compressed "day" of simulated load.
pub const DAY_SECS: f64 = 8.0;

/// Demand at the quietest point, as a fraction of peak (Meta/Twitter cache
/// traces both show daily swings in the 2–4x range).
pub const TROUGH: f64 = 0.25;

/// Virtual seconds between provisioning decisions: 4 per cycle.
pub const DECISION_INTERVAL_SECS: f64 = DAY_SECS / 4.0;

/// One cell of the elastic sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElasticSpec {
    pub arch: ArchKind,
    /// false = static provisioning (controller off), the baseline.
    pub elastic: bool,
}

impl ElasticSpec {
    pub fn label(&self) -> String {
        format!(
            "{}/{}",
            self.arch.label(),
            if self.elastic { "elastic" } else { "static" }
        )
    }
}

/// The full grid in deterministic (arch major, static-then-elastic) order.
pub fn sweep_specs() -> Vec<ElasticSpec> {
    ARCHS
        .iter()
        .flat_map(|&arch| {
            [false, true]
                .iter()
                .map(move |&elastic| ElasticSpec { arch, elastic })
        })
        .collect()
}

/// The experiment for one sweep cell: the golden small-KV base on a
/// diurnal day, with the controller on or off. Warmup should span several
/// decision intervals (`warmup / PEAK_QPS > 2 · DECISION_INTERVAL_SECS`)
/// so the controller's first convergence step — and its refill churn —
/// lands before the measured window.
pub fn experiment(spec: &ElasticSpec, warmup: u64, measured: u64) -> KvExperimentConfig {
    let mut cfg = small_kv(spec.arch, 0.95, 1_024);
    cfg.qps = PEAK_QPS;
    cfg.warmup_requests = warmup;
    cfg.requests = measured;
    cfg.diurnal = Some(DiurnalSchedule::sinusoid(DAY_SECS, TROUGH));
    if spec.elastic {
        cfg.deployment.elastic = elastic::ElasticConfig {
            decision_interval_secs: DECISION_INTERVAL_SECS,
            profiler: elastic::ShardsConfig::default(),
            planner: elastic::PlannerConfig {
                min_cache_bytes: 64 << 10,
                max_cache_bytes: cfg
                    .deployment
                    .total_linked_bytes()
                    .max(cfg.deployment.total_remote_bytes())
                    .max(1 << 20),
                mean_entry_bytes: 1_024 + 64,
                // Half the hit budget on predicted misses, half on churn.
                max_miss_ratio_delta: 0.01,
                ..elastic::PlannerConfig::default()
            },
        };
    }
    cfg
}

/// Run every spec through `runner` (results in spec order).
pub fn run_sweep(
    runner: &SweepRunner,
    specs: &[ElasticSpec],
    warmup: u64,
    measured: u64,
) -> Vec<ExperimentReport> {
    runner.run_map(specs, |_, spec| {
        run_kv_experiment(&experiment(spec, warmup, measured)).expect("elastic sweep run")
    })
}

/// Monthly dollars under static-peak provisioning: the fleet is sized for
/// the hottest ~1-second load window and the full configured cache, all
/// day. Compute scales from the measured average up to the peak window;
/// memory is already billed at full configured capacity.
pub fn static_peak_dollars(r: &ExperimentReport) -> f64 {
    let scale = if r.total_cores > 0.0 && r.peak_window_cores > r.total_cores {
        r.peak_window_cores / r.total_cores
    } else {
        1.0
    };
    r.total_cost.total() - r.total_cost.compute + r.total_cost.compute * scale
}

/// Monthly dollars under elastic provisioning: the report's total is
/// already integral-billed (average cores; time-averaged cache capacity).
pub fn elastic_dollars(r: &ExperimentReport) -> f64 {
    r.total_cost.total()
}

/// Fractional saving of the elastic run against the static-peak baseline.
pub fn saving(static_run: &ExperimentReport, elastic_run: &ExperimentReport) -> f64 {
    1.0 - elastic_dollars(elastic_run) / static_peak_dollars(static_run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_the_grid_in_order() {
        let specs = sweep_specs();
        assert_eq!(specs.len(), 2 * ARCHS.len());
        assert_eq!(
            specs[0],
            ElasticSpec {
                arch: ArchKind::Remote,
                elastic: false
            }
        );
        // Each arch's static cell immediately precedes its elastic cell —
        // the pairing the bin and golden rely on.
        for pair in specs.chunks(2) {
            assert_eq!(pair[0].arch, pair[1].arch);
            assert!(!pair[0].elastic && pair[1].elastic);
        }
        assert_eq!(specs, sweep_specs());
    }

    #[test]
    fn static_cell_keeps_the_controller_off() {
        let spec = ElasticSpec {
            arch: ArchKind::Linked,
            elastic: false,
        };
        let cfg = experiment(&spec, 100, 100);
        assert!(!cfg.deployment.elastic.enabled());
        assert!(cfg.diurnal.is_some(), "static still rides the diurnal day");
    }

    #[test]
    fn elastic_cell_enables_the_controller_with_bounded_sizes() {
        let spec = ElasticSpec {
            arch: ArchKind::Remote,
            elastic: true,
        };
        let cfg = experiment(&spec, 100, 100);
        assert!(cfg.deployment.elastic.enabled());
        let p = &cfg.deployment.elastic.planner;
        assert!(p.min_cache_bytes < p.max_cache_bytes);
        assert_eq!(p.max_cache_bytes, cfg.deployment.total_remote_bytes());
    }

    #[test]
    fn static_peak_billing_never_undercuts_the_report() {
        // With no window tracked (peak = 0), billing falls back to the
        // plain report total instead of crediting a bogus discount.
        let spec = ElasticSpec {
            arch: ArchKind::Linked,
            elastic: false,
        };
        let mut cfg = experiment(&spec, 200, 400);
        cfg.diurnal = None;
        let r = run_kv_experiment(&cfg).expect("run");
        assert_eq!(r.peak_window_cores, 0.0);
        assert_eq!(static_peak_dollars(&r), r.total_cost.total());
    }
}
