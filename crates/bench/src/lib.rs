//! Shared plumbing for the figure-reproduction binaries.
//!
//! Every `fig*` binary prints a human-readable table of the series the
//! paper plots and writes the raw numbers as JSON under `results/` so
//! EXPERIMENTS.md can cite them. Binaries accept `--quick` to run a reduced
//! request budget (useful in CI; the shapes survive, the noise grows).

use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;

pub mod batching;
pub mod elastic;
pub mod golden;
pub mod hotkey;
pub mod obs;
pub mod recovery;
pub mod sweep;
pub mod ttl;

/// Parse the common CLI convention: `--quick` shrinks the run.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Request budget scaling: (warmup, measured) for a full or quick run.
pub fn request_budget(full_warmup: u64, full_measured: u64) -> (u64, u64) {
    if quick_mode() {
        (full_warmup / 10, full_measured / 10)
    } else {
        (full_warmup, full_measured)
    }
}

/// Where result JSON lands (repo-root `results/`, created on demand).
pub fn results_dir() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    // Walk up until we find the workspace root (Cargo.toml with [workspace]).
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    break;
                }
            }
        }
        if !dir.pop() {
            dir = std::env::current_dir().expect("cwd");
            break;
        }
    }
    let results = dir.join("results");
    std::fs::create_dir_all(&results).expect("create results dir");
    results
}

/// Serialize `value` to `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let file = std::fs::File::create(&path).expect("create results file");
    let mut w = std::io::BufWriter::new(file);
    serde_json::to_writer_pretty(&mut w, value).expect("serialize results");
    w.flush().expect("flush results");
    println!("\n[results written to {}]", path.display());
}

/// Print a fixed-width table: header row then data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format a dollar amount.
pub fn usd(x: f64) -> String {
    format!("${x:.2}")
}

/// Format a ratio as `N.NNx`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_created() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
        assert!(dir.exists());
    }

    #[test]
    fn budget_scales_in_quick_mode() {
        // Not in quick mode during tests (no --quick arg).
        assert_eq!(request_budget(100, 200), (100, 200));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(usd(3.456), "$3.46");
        assert_eq!(ratio(2.0), "2.00x");
    }
}
