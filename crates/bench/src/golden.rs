//! Golden-figure summaries: small, fixed-seed reductions of the fig2–fig8
//! experiments, snapshotted under `tests/golden/*.json` and re-checked by
//! `tests/golden_figures.rs` so a refactor can't silently shift the
//! paper's reproduced numbers.
//!
//! Each summary runs the same code paths as the corresponding `fig*` bin
//! but at test-sized budgets (test_small deployments, a few thousand
//! requests, fixed seeds), through the [`crate::sweep::SweepRunner`] — so
//! the golden suite also exercises the parallel path every run.
//!
//! Serialization is hand-rolled (encode **and** parse): the offline build
//! environment stubs out `serde_json`, and golden comparisons need real
//! bytes on disk. The format is plain JSON restricted to what
//! [`GoldenFigure`] needs.
//!
//! Metric names carry their tolerance class as a prefix (see
//! [`tolerance_for`]): `count_`/`flag_` exact, `model_` near-exact
//! analytics, `frac_`/`hit_` absolute, `cost_`/`cores_` relative,
//! `lat_` loose relative (integer-microsecond percentiles at small
//! budgets are the noisiest thing we snapshot).

use crate::sweep::SweepRunner;
use dcache::consistency::delayed_write_scenario;
use dcache::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache::unityapp::{
    run_unity_kv_experiment, run_unity_object_experiment, UnityExperimentConfig,
};
use dcache::{ArchKind, DeploymentConfig, ExperimentReport};
use std::fmt::Write as _;
use workloads::meta::meta_workload;
use workloads::unity::{UnityDataset, UnityOp, UnityScale, UnityWorkload};
use workloads::{KvWorkloadConfig, SizeDist};

/// One labeled point of a figure: `(metric name, value)` pairs, sorted by
/// name so the serialized form is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenPoint {
    pub label: String,
    pub metrics: Vec<(String, f64)>,
}

impl GoldenPoint {
    pub fn new(label: impl Into<String>, mut metrics: Vec<(String, f64)>) -> Self {
        metrics.sort_by(|a, b| a.0.cmp(&b.0));
        GoldenPoint {
            label: label.into(),
            metrics,
        }
    }

    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// A whole figure's golden summary.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenFigure {
    pub name: String,
    pub points: Vec<GoldenPoint>,
}

impl GoldenFigure {
    pub fn point(&self, label: &str) -> Option<&GoldenPoint> {
        self.points.iter().find(|p| p.label == label)
    }

    /// Deterministic pretty JSON; `parse` reads it back exactly.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"name\": ");
        push_json_str(&mut out, &self.name);
        out.push_str(",\n  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n      \"label\": ");
            push_json_str(&mut out, &p.label);
            out.push_str(",\n      \"metrics\": {");
            for (j, (k, v)) in p.metrics.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        ");
                push_json_str(&mut out, k);
                let _ = write!(out, ": {}", fmt_f64(*v));
            }
            out.push_str("\n      }\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse the JSON produced by [`GoldenFigure::to_json`] (any JSON with
    /// that shape, actually — whitespace and key order are free).
    pub fn parse(text: &str) -> Result<GoldenFigure, String> {
        let value = JsonParser::new(text).parse_document()?;
        let obj = value.as_object("top level")?;
        let name = obj
            .get("name")
            .ok_or("missing \"name\"")?
            .as_str("name")?
            .to_string();
        let mut points = Vec::new();
        for (i, p) in obj
            .get("points")
            .ok_or("missing \"points\"")?
            .as_array("points")?
            .iter()
            .enumerate()
        {
            let p = p.as_object(&format!("points[{i}]"))?;
            let label = p
                .get("label")
                .ok_or_else(|| format!("points[{i}] missing \"label\""))?
                .as_str("label")?
                .to_string();
            let metrics_obj = p
                .get("metrics")
                .ok_or_else(|| format!("points[{i}] missing \"metrics\""))?
                .as_object("metrics")?;
            let mut metrics = Vec::new();
            for (k, v) in &metrics_obj.entries {
                metrics.push((k.clone(), v.as_number(k)?));
            }
            points.push(GoldenPoint::new(label, metrics));
        }
        Ok(GoldenFigure { name, points })
    }
}

/// Absolute and relative tolerance for a metric, chosen by name prefix.
/// A comparison passes when `|actual - expected| <= abs + rel * |expected|`.
pub fn tolerance_for(metric: &str) -> (f64, f64) {
    if metric.starts_with("count_") || metric.starts_with("flag_") {
        (0.0, 0.0)
    } else if metric.starts_with("model_") {
        // Pure analytics: only float-op reassociation in a refactor should
        // ever move these, and then only in the last bits.
        (1e-9, 1e-9)
    } else if metric.starts_with("frac_") || metric.starts_with("hit_") {
        (0.02, 0.0)
    } else if metric.starts_with("cost_") || metric.starts_with("cores_") {
        (0.0, 0.03)
    } else if metric.starts_with("saving_") {
        (0.0, 0.05)
    } else if metric.starts_with("lat_") {
        (2.0, 0.30)
    } else {
        (0.0, 0.05)
    }
}

/// Compare `actual` against the blessed `expected`, returning one line per
/// violation (empty = pass). Labels must match exactly and in order; every
/// expected metric must be present within [`tolerance_for`]; extra metrics
/// in `actual` are violations too (they belong in a re-blessed golden).
pub fn compare(expected: &GoldenFigure, actual: &GoldenFigure) -> Vec<String> {
    let mut violations = Vec::new();
    if expected.name != actual.name {
        violations.push(format!(
            "figure name: expected {:?}, got {:?}",
            expected.name, actual.name
        ));
        return violations;
    }
    let exp_labels: Vec<&str> = expected.points.iter().map(|p| p.label.as_str()).collect();
    let act_labels: Vec<&str> = actual.points.iter().map(|p| p.label.as_str()).collect();
    if exp_labels != act_labels {
        violations.push(format!(
            "{}: point labels changed: expected {exp_labels:?}, got {act_labels:?}",
            expected.name
        ));
        return violations;
    }
    for (ep, ap) in expected.points.iter().zip(&actual.points) {
        for (key, evalue) in &ep.metrics {
            let Some(avalue) = ap.metric(key) else {
                violations.push(format!(
                    "{}/{}: metric {key} missing",
                    expected.name, ep.label
                ));
                continue;
            };
            let (abs, rel) = tolerance_for(key);
            let budget = abs + rel * evalue.abs();
            if (avalue - evalue).abs() > budget {
                violations.push(format!(
                    "{}/{}: {key} = {avalue} vs golden {evalue} (tolerance {budget})",
                    expected.name, ep.label
                ));
            }
        }
        for (key, _) in &ap.metrics {
            if ep.metric(key).is_none() {
                violations.push(format!(
                    "{}/{}: new metric {key} not in golden (re-bless with UPDATE_GOLDEN=1)",
                    expected.name, ep.label
                ));
            }
        }
    }
    violations
}

// ---------------------------------------------------------------------------
// Figure summaries.
// ---------------------------------------------------------------------------

/// Every golden figure, computed through `runner`.
pub fn all_figures(runner: &SweepRunner) -> Vec<GoldenFigure> {
    vec![
        fig2_theory(),
        fig3_unity_trace(),
        fig4_synthetic(runner),
        fig5_production(runner),
        fig6_cpu_breakdown(runner),
        fig7_rich_objects(runner),
        fig8_delayed_writes(),
        ablation_batching(runner),
        ablation_hotkey(runner),
        ablation_elastic(runner),
        ablation_recovery(runner),
        ablation_ttl(runner),
        obs_report(runner),
    ]
}

/// The §4 analytical model: savings vs α, replica count, memory price.
pub fn fig2_theory() -> GoldenFigure {
    use costmodel::{Pricing, TheoryModel, TheoryParams};
    let model = |alpha: f64, replicas: f64, mult: f64| {
        TheoryModel::new(TheoryParams {
            alpha,
            replicas,
            pricing: Pricing::default().with_memory_multiplier(mult),
            ..TheoryParams::default()
        })
    };
    let mut points = Vec::new();
    for alpha in [0.8, 1.0, 1.2] {
        let m = model(alpha, 1.0, 1.0);
        points.push(GoldenPoint::new(
            format!("alpha_{alpha}"),
            vec![
                ("model_saving".into(), m.cost_saving_vs_base(8.0, 1.0, 1.0)),
                ("model_miss_ratio_8gb".into(), m.miss_ratio(8.0)),
            ],
        ));
    }
    for n_r in [1.0, 4.0, 8.0] {
        let m = model(1.2, n_r, 1.0);
        let s_a = m.optimal_s_a(1.0, 64.0);
        points.push(GoldenPoint::new(
            format!("replicas_{n_r}"),
            vec![
                (
                    "model_saving_fixed".into(),
                    m.cost_saving_vs_base(8.0, 1.0, 1.0),
                ),
                ("model_optimal_s_a_gb".into(), s_a),
                (
                    "model_saving_optimal".into(),
                    m.cost_saving_vs_base(s_a, 1.0, 1.0),
                ),
            ],
        ));
    }
    for mult in [1.0, 10.0, 40.0] {
        let m = model(1.2, 1.0, mult);
        let s_a = m.optimal_s_a(1.0, 64.0);
        points.push(GoldenPoint::new(
            format!("mem_price_{mult}x"),
            vec![
                ("model_optimal_s_a_gb".into(), s_a),
                (
                    "model_saving_optimal".into(),
                    m.cost_saving_vs_base(s_a, 1.0, 1.0),
                ),
            ],
        ));
    }
    let m = model(1.2, 1.0, 1.0);
    points.push(GoldenPoint::new(
        "gradients",
        vec![
            ("model_d_ds_a".into(), m.d_ds_a(0.2, 1.0)),
            ("model_d_ds_d".into(), m.d_ds_d(0.2, 1.0)),
            ("model_optimal_s_a_gb".into(), m.optimal_s_a(1.0, 64.0)),
        ],
    ));
    GoldenFigure {
        name: "fig2_theory".into(),
        points,
    }
}

/// Unity trace shape: object-size percentiles and access skew.
pub fn fig3_unity_trace() -> GoldenFigure {
    let scale = UnityScale::default();
    let dataset = UnityDataset::new(scale);
    let mut sizes: Vec<u64> = (0..scale.tables)
        .map(|t| dataset.object_logical_bytes(t))
        .collect();
    sizes.sort_unstable();
    let pct = |q: f64| sizes[((sizes.len() - 1) as f64 * q) as usize] as f64;

    let draws = 50_000usize;
    let mut counts = std::collections::HashMap::new();
    let mut reads = 0u64;
    for req in UnityWorkload::new(&scale, 7).take(draws) {
        *counts.entry(req.table).or_insert(0u64) += 1;
        if req.op == UnityOp::GetTable {
            reads += 1;
        }
    }
    let mut freq: Vec<u64> = counts.values().copied().collect();
    freq.sort_unstable_by(|a, b| b.cmp(a));

    GoldenFigure {
        name: "fig3_unity_trace".into(),
        points: vec![
            GoldenPoint::new(
                "object_sizes",
                vec![
                    ("count_p50_bytes".into(), pct(0.50)),
                    ("count_p99_bytes".into(), pct(0.99)),
                    ("count_max_bytes".into(), pct(1.0)),
                ],
            ),
            GoldenPoint::new(
                "access_skew",
                vec![
                    ("hit_read_ratio".into(), reads as f64 / draws as f64),
                    ("count_rank1_accesses".into(), freq[0] as f64),
                    (
                        "count_rank10_accesses".into(),
                        freq.get(9).copied().unwrap_or(0) as f64,
                    ),
                    ("count_distinct_tables".into(), counts.len() as f64),
                ],
            ),
        ],
    }
}

/// Build the small fixed-seed KV config the sim-backed goldens share.
/// A deterministic, test-sized KV experiment (2K keys, small request
/// budget, `test_small` deployment) — the building block for the golden
/// figures and the sequential-vs-parallel determinism suite.
pub fn small_kv(arch: ArchKind, read_ratio: f64, value_bytes: u64) -> KvExperimentConfig {
    let workload = KvWorkloadConfig {
        keys: 2_000,
        alpha: 1.2,
        read_ratio,
        sizes: SizeDist::Fixed(value_bytes),
        seed: 42,
        churn_period: None,
    };
    let mut cfg = KvExperimentConfig::paper(arch, workload);
    cfg.deployment = DeploymentConfig::test_small(arch);
    cfg.qps = 50_000.0;
    cfg.warmup_requests = 2_000;
    cfg.requests = 4_000;
    cfg.prewarm = false;
    cfg
}

fn cost_point(label: String, r: &ExperimentReport, base_cost: f64) -> GoldenPoint {
    GoldenPoint::new(
        label,
        vec![
            ("cost_total".into(), r.total_cost.total()),
            ("cost_compute".into(), r.total_cost.compute),
            ("cost_memory".into(), r.total_cost.memory),
            ("cores_total".into(), r.total_cores),
            ("hit_cache".into(), r.cache_hit_ratio),
            ("saving_vs_base".into(), base_cost / r.total_cost.total()),
            ("lat_read_p50_us".into(), r.read_latency_p50_us as f64),
            ("lat_read_p99_us".into(), r.read_latency_p99_us as f64),
        ],
    )
}

/// Fold per-arch reports (spec order: PAPER archs) into cost points where
/// `saving_vs_base` is relative to the first (Base) report.
fn cost_points(prefix: &str, reports: &[ExperimentReport]) -> Vec<GoldenPoint> {
    let base = reports[0].total_cost.total();
    ArchKind::PAPER
        .iter()
        .zip(reports)
        .map(|(arch, r)| cost_point(format!("{prefix}/{}", arch.label()), r, base))
        .collect()
}

/// Synthetic-workload cost grid: read-ratio and value-size endpoints.
pub fn fig4_synthetic(runner: &SweepRunner) -> GoldenFigure {
    let cells: Vec<(&str, f64, u64)> = vec![
        ("r50_1kb", 0.50, 1 << 10),
        ("r95_1kb", 0.95, 1 << 10),
        ("r95_64kb", 0.95, 64 << 10),
    ];
    let specs: Vec<(usize, ArchKind)> = (0..cells.len())
        .flat_map(|c| ArchKind::PAPER.iter().map(move |&a| (c, a)))
        .collect();
    let reports = runner.run_map(&specs, |_, &(c, arch)| {
        let (_, read_ratio, value_bytes) = cells[c];
        run_kv_experiment(&small_kv(arch, read_ratio, value_bytes)).expect("fig4 golden run")
    });
    let mut points = Vec::new();
    for (c, chunk) in reports.chunks(ArchKind::PAPER.len()).enumerate() {
        points.extend(cost_points(cells[c].0, chunk));
    }
    GoldenFigure {
        name: "fig4_synthetic".into(),
        points,
    }
}

/// Production-shaped workloads: Unity-KV and the Meta-style trace.
pub fn fig5_production(runner: &SweepRunner) -> GoldenFigure {
    let archs: Vec<ArchKind> = ArchKind::PAPER.to_vec();
    let unity = runner.run_map(&archs, |_, &arch| {
        run_unity_kv_experiment(&UnityExperimentConfig::test_small(arch)).expect("unity golden")
    });
    let meta = runner.run_map(&archs, |_, &arch| {
        let mut cfg = KvExperimentConfig::paper(arch, meta_workload(11));
        cfg.deployment = DeploymentConfig::test_small(arch);
        cfg.qps = 50_000.0;
        cfg.warmup_requests = 2_000;
        cfg.requests = 4_000;
        run_kv_experiment(&cfg).expect("meta golden")
    });
    let mut points = cost_points("unity_kv", &unity);
    points.extend(cost_points("meta", &meta));
    GoldenFigure {
        name: "fig5_production".into(),
        points,
    }
}

/// Per-tier CPU split at a mid value size.
pub fn fig6_cpu_breakdown(runner: &SweepRunner) -> GoldenFigure {
    let archs: Vec<ArchKind> = ArchKind::PAPER.to_vec();
    let reports = runner.run_map(&archs, |_, &arch| {
        run_kv_experiment(&small_kv(arch, 0.95, 64 << 10)).expect("fig6 golden run")
    });
    let frac = |r: &ExperimentReport, tier: &str, cats: &[&str]| -> f64 {
        r.tier(tier)
            .map(|t| {
                t.cpu_fractions
                    .iter()
                    .filter(|(n, _)| cats.contains(&n.as_str()))
                    .map(|(_, f)| f)
                    .sum()
            })
            .unwrap_or(0.0)
    };
    let cores_of = |r: &ExperimentReport, tier: &str| r.tier(tier).map(|t| t.cores).unwrap_or(0.0);
    let points = archs
        .iter()
        .zip(&reports)
        .map(|(arch, r)| {
            GoldenPoint::new(
                arch.label(),
                vec![
                    ("cores_app".into(), cores_of(r, "app")),
                    ("cores_storage".into(), cores_of(r, "storage")),
                    (
                        "frac_frontend_fixed".into(),
                        frac(r, "sql_frontend", &["sql_frontend", "txn_lease"]),
                    ),
                    ("frac_memory_cost".into(), r.memory_cost_fraction()),
                ],
            )
        })
        .collect();
    GoldenFigure {
        name: "fig6_cpu_breakdown".into(),
        points,
    }
}

/// Rich-object vs denormalized-KV Unity flavors.
pub fn fig7_rich_objects(runner: &SweepRunner) -> GoldenFigure {
    type Run = fn(&UnityExperimentConfig) -> storekit::error::StoreResult<ExperimentReport>;
    let flavors: [(&str, Run); 2] = [
        ("object", run_unity_object_experiment as Run),
        ("kv", run_unity_kv_experiment as Run),
    ];
    let specs: Vec<(usize, ArchKind)> = (0..flavors.len())
        .flat_map(|f| ArchKind::PAPER.iter().map(move |&a| (f, a)))
        .collect();
    let reports = runner.run_map(&specs, |_, &(f, arch)| {
        flavors[f].1(&UnityExperimentConfig::test_small(arch)).expect("fig7 golden run")
    });
    let mut points = Vec::new();
    for (f, chunk) in reports.chunks(ArchKind::PAPER.len()).enumerate() {
        let base = chunk[0].total_cost.total();
        for (arch, r) in ArchKind::PAPER.iter().zip(chunk) {
            points.push(GoldenPoint::new(
                format!("{}/{}", flavors[f].0, arch.label()),
                vec![
                    ("cost_total".into(), r.total_cost.total()),
                    ("hit_cache".into(), r.cache_hit_ratio),
                    (
                        "frac_sql_per_read".into(),
                        r.sql_statements as f64 / r.requests as f64,
                    ),
                    ("saving_vs_base".into(), base / r.total_cost.total()),
                ],
            ));
        }
    }
    GoldenFigure {
        name: "fig7_rich_objects".into(),
        points,
    }
}

/// The batched-RPC ablation at golden budget: a reduced cut of the
/// `ablation_batching` sweep (batch caps 1/8/32, both value-size
/// endpoints). `max_batch = 1` pins the unbatched baseline — its counters
/// must stay exactly zero, which is also what keeps fig4–fig7 byte-stable:
/// batching off is the default everywhere else.
pub fn ablation_batching(runner: &SweepRunner) -> GoldenFigure {
    use crate::batching::{cpu_us_per_request, run_sweep, BatchSpec};
    let specs: Vec<BatchSpec> = [(10u64, 1u32), (10, 8), (1024, 1), (1024, 8), (1024, 32)]
        .iter()
        .map(|&(value_bytes, max_batch)| BatchSpec {
            max_batch,
            value_bytes,
        })
        .collect();
    let reports = run_sweep(runner, &specs, 2_000, 4_000);
    let points = specs
        .iter()
        .zip(&reports)
        .map(|(spec, r)| {
            GoldenPoint::new(
                format!("v{}_b{}", spec.value_bytes, spec.max_batch),
                vec![
                    ("cores_cpu_us_per_request".into(), cpu_us_per_request(r)),
                    ("cost_total".into(), r.total_cost.total()),
                    ("hit_cache".into(), r.cache_hit_ratio),
                    ("count_rpc_batches".into(), r.rpc_batches as f64),
                    ("mean_batch_size".into(), r.mean_batch_size),
                    ("lat_read_p50_us".into(), r.read_latency_p50_us as f64),
                ],
            )
        })
        .collect();
    GoldenFigure {
        name: "ablation_batching".into(),
        points,
    }
}

/// The hot-key L0 ablation at golden budget: a reduced cut of the
/// `ablation_hotkey` sweep (per arch: tier off, the 4 MB production
/// corner, and — for Remote — the low-skew and serve-stale variants). The
/// off cells pin the defaults-off invariant — every `l0_*` counter must
/// stay exactly zero, which is also what keeps fig4–fig7 byte-stable: the
/// L0 tier off is the default everywhere else.
pub fn ablation_hotkey(runner: &SweepRunner) -> GoldenFigure {
    use crate::hotkey::{cpu_us_per_request, l0_absorption, run_sweep, HotkeySpec};
    let cell = |arch, l0_bytes, alpha, serve_stale| HotkeySpec {
        arch,
        l0_bytes,
        alpha,
        value_bytes: 1024,
        serve_stale,
    };
    let specs: Vec<HotkeySpec> = vec![
        cell(ArchKind::Remote, 0, 1.2, false),
        cell(ArchKind::Remote, 4 << 20, 1.2, false),
        cell(ArchKind::Remote, 4 << 20, 0.8, false),
        cell(ArchKind::Remote, 4 << 20, 1.2, true),
        cell(ArchKind::Linked, 0, 1.2, false),
        cell(ArchKind::Linked, 4 << 20, 1.2, false),
    ];
    let reports = run_sweep(runner, &specs, 2_000, 4_000);
    let points = specs
        .iter()
        .zip(&reports)
        .map(|(spec, r)| {
            GoldenPoint::new(
                spec.label(),
                vec![
                    ("cost_total".into(), r.total_cost.total()),
                    ("cores_cpu_us_per_request".into(), cpu_us_per_request(r)),
                    ("hit_cache".into(), r.cache_hit_ratio),
                    ("hit_l0".into(), r.l0_hit_ratio),
                    ("frac_l0_absorption".into(), l0_absorption(r)),
                    ("count_l0_admitted".into(), r.l0_admitted as f64),
                    ("count_l0_invalidations".into(), r.l0_invalidations as f64),
                    ("count_l0_stale_serves".into(), r.l0_stale_serves as f64),
                    ("count_stale_reads".into(), r.stale_reads as f64),
                    ("lat_read_p50_us".into(), r.read_latency_p50_us as f64),
                    ("lat_l0_age_p99_us".into(), r.l0_age_p99_us as f64),
                ],
            )
        })
        .collect();
    GoldenFigure {
        name: "ablation_hotkey".into(),
        points,
    }
}

/// The elastic-provisioning ablation at golden budget: a reduced cut of
/// the `ablation_elastic` day (Remote + Linked, static vs elastic). The
/// static cells also pin the diurnal clock itself — their elastic counters
/// must stay exactly zero, which is what keeps fig4–fig7 byte-stable: the
/// controller off is the default everywhere else. Warmup spans four
/// decision intervals so the controller's convergence churn lands before
/// the measured window.
pub fn ablation_elastic(runner: &SweepRunner) -> GoldenFigure {
    use crate::elastic::{run_sweep, saving, static_peak_dollars, ElasticSpec};
    let specs: Vec<ElasticSpec> = [ArchKind::Remote, ArchKind::Linked]
        .iter()
        .flat_map(|&arch| {
            [false, true]
                .iter()
                .map(move |&elastic| ElasticSpec { arch, elastic })
        })
        .collect();
    let reports = run_sweep(runner, &specs, 8_000, 12_000);
    let points = specs
        .iter()
        .zip(&reports)
        .enumerate()
        .map(|(i, (spec, r))| {
            let mut metrics = vec![
                ("cost_total".into(), r.total_cost.total()),
                ("cost_memory".into(), r.total_cost.memory),
                ("cost_static_peak".into(), static_peak_dollars(r)),
                ("hit_cache".into(), r.cache_hit_ratio),
                ("cores_total".into(), r.total_cores),
                ("cores_peak_window".into(), r.peak_window_cores),
                ("count_decisions".into(), r.elastic_decisions as f64),
                ("count_resizes".into(), r.elastic_resizes as f64),
                (
                    "count_shards_drained".into(),
                    r.elastic_shards_drained as f64,
                ),
                ("mean_cache_mb".into(), r.elastic_mean_cache_bytes / 1e6),
            ];
            if spec.elastic {
                // Each elastic cell is preceded by its static baseline.
                metrics.push(("saving_vs_static".into(), saving(&reports[i - 1], r)));
            }
            GoldenPoint::new(spec.label(), metrics)
        })
        .collect();
    GoldenFigure {
        name: "ablation_elastic".into(),
        points,
    }
}

/// The crash-recovery ablation at golden budget: a reduced cut of the
/// `ablation_recovery` sweep (per arch: the durability-off baseline, the
/// fsync-every-entry cell, and the group-commit default). The off cells
/// pin the durability-off invariant — every WAL/recovery counter must stay
/// exactly zero even with crashes scheduled, which is also what keeps
/// fig4–fig7 byte-stable: durability off is the default everywhere else.
pub fn ablation_recovery(runner: &SweepRunner) -> GoldenFigure {
    use crate::recovery::{mean_recovery_ms, run_sweep, DurabilityKnobs, RecoverySpec};
    let specs: Vec<RecoverySpec> = [ArchKind::Remote, ArchKind::Linked]
        .iter()
        .flat_map(|&arch| {
            [
                None,
                Some(DurabilityKnobs {
                    fsync_group: 1,
                    snapshot_every: 1_024,
                }),
                Some(DurabilityKnobs {
                    fsync_group: 8,
                    snapshot_every: 256,
                }),
            ]
            .into_iter()
            .map(move |durability| RecoverySpec {
                arch,
                durability,
                crashes: 2,
            })
        })
        .collect();
    let reports = run_sweep(runner, &specs, 2_000, 4_000);
    let points = specs
        .iter()
        .zip(&reports)
        .map(|(spec, r)| {
            GoldenPoint::new(
                spec.label(),
                vec![
                    ("cost_total".into(), r.total_cost.total()),
                    ("cost_ssd".into(), r.total_cost.ssd),
                    ("hit_cache".into(), r.cache_hit_ratio),
                    ("count_wal_appends".into(), r.wal_appends as f64),
                    ("count_fsync_batches".into(), r.wal_fsync_batches as f64),
                    ("count_recoveries".into(), r.recoveries as f64),
                    ("count_replayed_entries".into(), r.replayed_entries as f64),
                    ("count_lost_tail_entries".into(), r.lost_tail_entries as f64),
                    ("count_stale_reads".into(), r.stale_reads as f64),
                    ("lat_recovery_ms".into(), mean_recovery_ms(r)),
                ],
            )
        })
        .collect();
    GoldenFigure {
        name: "ablation_recovery".into(),
        points,
    }
}

/// The TTL-control-plane ablation at golden budget: a reduced cut of the
/// `ablation_ttl` sweep (the Remote diurnal triplet pins all three planes
/// side by side; single TTL cells cover churn, storms and the Linked
/// push-down; the isolation pair pins the two-tenant machinery). The
/// static cell's TTL counters must stay exactly zero — the same
/// default-off invariant that keeps every other figure byte-stable.
/// Warmup spans four decision intervals so the first adopted TTL (and its
/// expiry churn) lands before the measured window.
pub fn ablation_ttl(runner: &SweepRunner) -> GoldenFigure {
    use crate::ttl::{
        isolation_experiment, isolation_label, run_sweep, tenant_hit, Plane, Schedule, TtlSpec,
    };
    let cell = |arch, schedule, plane| TtlSpec {
        arch,
        schedule,
        plane,
    };
    let grid: Vec<TtlSpec> = vec![
        cell(ArchKind::Remote, Schedule::Diurnal, Plane::Static),
        cell(ArchKind::Remote, Schedule::Diurnal, Plane::Mrc),
        cell(ArchKind::Remote, Schedule::Diurnal, Plane::Ttl),
        cell(ArchKind::Remote, Schedule::Churn, Plane::Ttl),
        cell(ArchKind::Remote, Schedule::Storm, Plane::Ttl),
        cell(ArchKind::Linked, Schedule::Diurnal, Plane::Ttl),
    ];
    let reports = run_sweep(runner, &grid, 8_000, 12_000);
    let mut points: Vec<GoldenPoint> = grid
        .iter()
        .zip(&reports)
        .map(|(spec, r)| {
            GoldenPoint::new(
                spec.label(),
                vec![
                    ("cost_total".into(), r.total_cost.total()),
                    ("cost_memory".into(), r.total_cost.memory),
                    ("hit_cache".into(), r.cache_hit_ratio),
                    ("count_ttl_decisions".into(), r.ttl_decisions as f64),
                    ("count_ttl_changes".into(), r.ttl_changes as f64),
                    ("count_expired".into(), r.expired_entries as f64),
                    (
                        "mean_resident_mb".into(),
                        r.ttl_mean_resident_bytes / 1e6,
                    ),
                ],
            )
        })
        .collect();
    let iso_specs = [false, true];
    let iso = runner.run_map(&iso_specs, |_, &storm| {
        run_kv_experiment(&isolation_experiment(storm, 8_000, 12_000)).expect("isolation run")
    });
    for (&storm, r) in iso_specs.iter().zip(&iso) {
        let agg = r
            .tenants
            .iter()
            .find(|t| t.label == "aggressor")
            .expect("aggressor tenant");
        points.push(GoldenPoint::new(
            isolation_label(storm),
            vec![
                ("hit_victim".into(), tenant_hit(r, "victim")),
                ("hit_aggressor".into(), tenant_hit(r, "aggressor")),
                (
                    "frac_aggressor_writes".into(),
                    agg.writes as f64 / agg.requests as f64,
                ),
                ("count_ttl_decisions".into(), r.ttl_decisions as f64),
                ("count_expired".into(), r.expired_entries as f64),
            ],
        ));
    }
    GoldenFigure {
        name: "ablation_ttl".into(),
        points,
    }
}

/// The observability report: heartbeat count, SLO alerts and the per-cause
/// tail attribution for both architectures under the incident day. Counts
/// are exact — the whole pipeline (virtual clock, burn-rate engine, tail
/// classifier) is deterministic, so any drift is a real behavior change.
pub fn obs_report(runner: &SweepRunner) -> GoldenFigure {
    use crate::obs::{run_sweep, GOLDEN_MEASURED, GOLDEN_WARMUP};
    use dcache::obs::TailCause;
    let runs = run_sweep(runner, GOLDEN_WARMUP, GOLDEN_MEASURED);
    let points = runs
        .iter()
        .map(|(report, bundle)| {
            let obs = bundle.obs.as_ref().expect("observability enabled");
            let mut metrics = vec![
                ("count_heartbeats".into(), obs.timeseries.len() as f64),
                (
                    "count_annotations".into(),
                    obs.timeseries.annotations().len() as f64,
                ),
                ("count_alerts".into(), obs.alerts.len() as f64),
                (
                    "count_tail_requests".into(),
                    obs.tail.tail_requests.len() as f64,
                ),
                ("lat_tail_threshold_us".into(), obs.tail.threshold_us as f64),
                ("lat_tail_excess_us".into(), obs.tail.total_excess_us as f64),
            ];
            for cause in TailCause::ALL {
                let row = obs
                    .tail
                    .causes
                    .iter()
                    .find(|c| c.cause == cause)
                    .expect("attribution covers every cause");
                metrics.push((format!("count_cause_{}", cause.label()), row.count as f64));
            }
            GoldenPoint::new(report.arch.label(), metrics)
        })
        .collect();
    GoldenFigure {
        name: "obs_report".into(),
        points,
    }
}

/// The delayed-write hazard and its fencing fix — all-boolean, exact.
pub fn fig8_delayed_writes() -> GoldenFigure {
    let flag = |b: bool| if b { 1.0 } else { 0.0 };
    let opt = |v: Option<u64>| v.map(|x| x as f64).unwrap_or(-1.0);
    let points = [false, true]
        .iter()
        .map(|&fenced| {
            let o = delayed_write_scenario(fenced).expect("scenario runs");
            GoldenPoint::new(
                if fenced {
                    "epoch_fencing"
                } else {
                    "no_fencing"
                },
                vec![
                    ("flag_write_admitted".into(), flag(o.delayed_write_admitted)),
                    ("flag_linearizable".into(), flag(o.linearizable)),
                    ("count_final_cache_value".into(), opt(o.final_cache_value)),
                    (
                        "count_final_storage_value".into(),
                        opt(o.final_storage_value),
                    ),
                ],
            )
        })
        .collect();
    GoldenFigure {
        name: "fig8_delayed_writes".into(),
        points,
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON (see module docs for why this is hand-rolled).
// ---------------------------------------------------------------------------

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Shortest-roundtrip float formatting (always re-parses to the same bits).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}") // keep a ".0" so the value reads as a float
    } else {
        format!("{v}")
    }
}

struct JsonObject {
    entries: Vec<(String, JsonValue)>,
}

impl JsonObject {
    fn get(&self, key: &str) -> Option<&JsonValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

enum JsonValue {
    Object(JsonObject),
    Array(Vec<JsonValue>),
    String(String),
    Number(f64),
}

impl JsonValue {
    fn as_object(&self, what: &str) -> Result<&JsonObject, String> {
        match self {
            JsonValue::Object(o) => Ok(o),
            _ => Err(format!("{what}: expected object")),
        }
    }
    fn as_array(&self, what: &str) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Array(a) => Ok(a),
            _ => Err(format!("{what}: expected array")),
        }
    }
    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            JsonValue::String(s) => Ok(s),
            _ => Err(format!("{what}: expected string")),
        }
    }
    fn as_number(&self, what: &str) -> Result<f64, String> {
        match self {
            JsonValue::Number(n) => Ok(*n),
            _ => Err(format!("{what}: expected number")),
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<JsonValue, String> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing content at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                c as char,
                self.pos,
                self.bytes.get(self.pos).map(|&b| b as char)
            ))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|&b| b as char),
                self.pos
            )),
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(JsonObject { entries }));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(JsonObject { entries }));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|&b| b as char)
                    ))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|&b| b as char)
                    ))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|&b| b as char))),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 sequences pass through unmodified.
                    let start = self.pos;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos += len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GoldenFigure {
        GoldenFigure {
            name: "fig_test".into(),
            points: vec![
                GoldenPoint::new(
                    "a/base",
                    vec![
                        ("cost_total".into(), 1234.5678),
                        ("hit_cache".into(), 0.0),
                        ("count_requests".into(), 4000.0),
                    ],
                ),
                GoldenPoint::new("b \"quoted\"", vec![("model_x".into(), -1.25e-3)]),
            ],
        }
    }

    #[test]
    fn json_roundtrips_exactly() {
        let fig = sample();
        let text = fig.to_json();
        let parsed = GoldenFigure::parse(&text).expect("parse");
        assert_eq!(fig, parsed);
        // And the re-encoding is byte-identical (stable bless files).
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn compare_accepts_identical_and_within_tolerance() {
        let fig = sample();
        assert!(compare(&fig, &fig).is_empty());
        let mut close = fig.clone();
        close.points[0].metrics[0] = ("cost_total".into(), 1234.5678 * 1.01);
        assert!(
            compare(&fig, &close).is_empty(),
            "{:?}",
            compare(&fig, &close)
        );
    }

    #[test]
    fn compare_rejects_out_of_tolerance_and_exact_mismatches() {
        let fig = sample();
        let mut off = fig.clone();
        off.points[0].metrics[0] = ("cost_total".into(), 1234.5678 * 1.5);
        assert_eq!(compare(&fig, &off).len(), 1);
        let mut count_off = fig.clone();
        count_off.points[0].metrics[1] = ("count_requests".into(), 4001.0);
        assert_eq!(compare(&fig, &count_off).len(), 1, "counts are exact");
    }

    #[test]
    fn compare_flags_missing_and_extra_metrics() {
        let fig = sample();
        let mut renamed = fig.clone();
        renamed.points[1].metrics[0] = ("model_y".into(), -1.25e-3);
        let v = compare(&fig, &renamed);
        assert_eq!(v.len(), 2, "one missing + one extra: {v:?}");
    }

    #[test]
    fn tolerances_follow_prefixes() {
        assert_eq!(tolerance_for("count_anything"), (0.0, 0.0));
        assert_eq!(tolerance_for("flag_linearizable"), (0.0, 0.0));
        assert_eq!(tolerance_for("cost_total"), (0.0, 0.03));
        assert_eq!(tolerance_for("hit_cache"), (0.02, 0.0));
        assert_eq!(tolerance_for("lat_read_p99_us"), (2.0, 0.30));
    }

    #[test]
    fn fig2_and_fig8_are_reproducible() {
        // Pure analytics and the consistency scenario: same bytes each time.
        assert_eq!(fig2_theory().to_json(), fig2_theory().to_json());
        assert_eq!(
            fig8_delayed_writes().to_json(),
            fig8_delayed_writes().to_json()
        );
    }
}
