//! Shared builder for the observability report (`obs_report`).
//!
//! One scenario definition, three consumers: the `obs_report` bin (full
//! budget, artifacts under `results/obs/`), the golden suite (small
//! fixed-seed snapshot), and the determinism tests (double-run and
//! jobs=1-vs-N byte-equality). Keeping the config construction here
//! guarantees they all measure the same thing.
//!
//! The scenario is the project's "everything at once" day: the golden
//! small-KV workload on the compressed diurnal cycle with the elastic
//! controller live, durable storage (group-commit WAL + snapshots),
//! single-flight coalescing, trace sampling — plus two scheduled
//! incidents inside the measured window:
//!
//! 1. a full cache-tier outage (every shard crashes, restarts ~1 virtual
//!    second later) — reads degrade to storage and the p99-budget SLO
//!    burns through its threshold, and
//! 2. a durable storage-pod crash — requests trip over the dead leader,
//!    pay failover + recovery, and the tail gets charged to WAL/recovery.
//!
//! Everything is keyed off fixed seeds and the virtual clock, so the
//! timeline JSONL, alert log and tail attribution are byte-reproducible.

use crate::elastic::ElasticSpec;
use crate::sweep::SweepRunner;
use dcache::experiment::{
    run_kv_experiment_with_telemetry, ExperimentReport, KvExperimentConfig, TelemetryBundle,
    STORAGE_FAULT_NODE_BASE,
};
use dcache::obs::ObsConfig;
use dcache::ArchKind;
use simnet::{FaultSchedule, NodeId, SimDuration, SimTime};
use storekit::{DurabilityConfig, FsyncPolicy};

/// Architectures in the report: the paper's two cache designs.
pub const ARCHS: &[ArchKind] = &[ArchKind::Remote, ArchKind::Linked];

/// Trace every 7th measured request — dense enough that most slowest-1%
/// requests carry a span tree for critical-path reconstruction.
pub const SAMPLE_EVERY: u64 = 7;

/// Latency SLO budget: at most 1% of requests may exceed this. Sits above
/// every steady-state path (remote misses land ~1.4 ms, linked misses and
/// group-commit writes ~1 ms) so quiet windows never burn, and below the
/// remote architecture's degraded-read + retry path (~9 ms) so the cache
/// outage does. Linked reads barely move when its cache dies — that is
/// exactly why the `degraded_reads` SLO rule exists alongside this one.
pub const P99_BUDGET_US: u64 = 2_500;

/// The observability layer every cell runs with.
pub fn obs_config() -> ObsConfig {
    ObsConfig {
        p99_budget_us: P99_BUDGET_US,
        ..ObsConfig::default()
    }
}

/// Reproduce the runner's virtual clock: arrival time of request `index`
/// under the scenario's diurnal schedule. Used to aim scheduled faults at
/// request counts (budget-proportional) while `FaultSchedule` wants
/// absolute virtual time.
fn arrival_time(cfg: &KvExperimentConfig, index: u64) -> SimTime {
    let base_dt = SimDuration::from_secs_f64(1.0 / cfg.qps.max(1.0));
    let schedule = cfg.diurnal.as_ref().expect("scenario is diurnal");
    let mut now = SimTime::ZERO;
    for _ in 0..index {
        now += SimDuration::from_secs_f64(
            base_dt.as_secs_f64() / schedule.multiplier(now.as_secs_f64()).max(1e-6),
        );
    }
    now
}

/// The experiment for one architecture. `warmup`/`measured` follow the
/// usual budget convention; faults are scheduled at fixed *fractions* of
/// the measured window so every budget sees both incidents.
pub fn experiment(arch: ArchKind, warmup: u64, measured: u64) -> KvExperimentConfig {
    let mut cfg = crate::elastic::experiment(
        &ElasticSpec {
            arch,
            elastic: true,
        },
        warmup,
        measured,
    );
    cfg.deployment.fault_tolerance.single_flight = true;
    cfg.deployment.cluster.durability = DurabilityConfig {
        enabled: true,
        fsync: FsyncPolicy::Group(8),
        snapshot_every_entries: 256,
    };
    cfg.trace_sample_every = Some(SAMPLE_EVERY);
    cfg.observability = Some(obs_config());

    // Incident 1: the whole cache tier goes down a quarter into the
    // measured window, for an eighth of it (~1 virtual second at the
    // golden budget).
    let cache_down_at = warmup + measured / 4;
    let cache_down_for = (measured / 8).max(2);
    // Incident 2: region 0's durable storage pod crashes at five eighths,
    // for a sixteenth of the window.
    let storage_down_at = warmup + measured * 5 / 8;
    let storage_down_for = (measured / 16).max(2);

    let mut schedule = FaultSchedule::new();
    let at = arrival_time(&cfg, cache_down_at);
    let downtime = arrival_time(&cfg, cache_down_at + cache_down_for).since(at);
    let shards = match arch {
        ArchKind::Remote => cfg.deployment.remote_cache_nodes,
        _ => cfg.deployment.app_servers,
    };
    for shard in 0..shards {
        schedule.crash_for(at, NodeId(shard as u32), downtime);
    }
    let at = arrival_time(&cfg, storage_down_at);
    let downtime = arrival_time(&cfg, storage_down_at + storage_down_for).since(at);
    schedule.crash_for(at, NodeId(STORAGE_FAULT_NODE_BASE), downtime);
    cfg.cache_fault_schedule = Some(schedule);
    cfg
}

/// Run every architecture through `runner` (results in [`ARCHS`] order).
pub fn run_sweep(
    runner: &SweepRunner,
    warmup: u64,
    measured: u64,
) -> Vec<(ExperimentReport, TelemetryBundle)> {
    runner.run_map(ARCHS, |_, &arch| {
        run_kv_experiment_with_telemetry(&experiment(arch, warmup, measured))
            .expect("obs sweep run")
    })
}

/// The golden/CI budget: one full diurnal day measured after a warmup
/// spanning several elastic decision intervals.
pub const GOLDEN_WARMUP: u64 = 8_000;
pub const GOLDEN_MEASURED: u64 = 16_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_schedules_both_incidents_inside_the_measured_window() {
        let cfg = experiment(ArchKind::Remote, GOLDEN_WARMUP, GOLDEN_MEASURED);
        assert!(cfg.deployment.elastic.enabled());
        assert!(cfg.deployment.cluster.durability.enabled);
        assert!(cfg.observability.is_some());
        let schedule = cfg.cache_fault_schedule.as_ref().unwrap();
        let measure_start = arrival_time(&cfg, GOLDEN_WARMUP);
        let measure_end = arrival_time(&cfg, GOLDEN_WARMUP + GOLDEN_MEASURED);
        let events = schedule.events();
        // 2 cache shards + 1 storage pod, each crash+restart.
        assert_eq!(events.len(), 6);
        for ev in events {
            assert!(
                ev.at > measure_start && ev.at < measure_end,
                "event at {:?} outside measured [{:?}, {:?}]",
                ev.at,
                measure_start,
                measure_end
            );
        }
    }

    #[test]
    fn arrival_time_is_monotone_and_stretched() {
        let cfg = experiment(ArchKind::Linked, 1_000, 1_000);
        let a = arrival_time(&cfg, 500);
        let b = arrival_time(&cfg, 1_000);
        assert!(b > a);
        // Sub-peak multipliers stretch gaps beyond the peak-rate spacing.
        let peak_spacing = SimDuration::from_secs_f64(1_000.0 / cfg.qps);
        assert!(b.since(SimTime::ZERO) > peak_spacing);
    }
}
