//! Shared builder for the hot-key L0-tier ablation.
//!
//! One sweep definition, three consumers: the `ablation_hotkey` bin (full
//! budget, table + JSON + L0-vs-batching crossover narrative), the golden
//! suite (small fixed-seed snapshot), and the determinism tests (jobs=1 vs
//! jobs=N byte-equality). Keeping the config construction here guarantees
//! they all measure the same thing.
//!
//! The sweep layers the in-process L0 tier in front of the two
//! architectures that support it (Remote and Linked) and varies L0 bytes ×
//! Zipf skew × value size. `l0_bytes = 0` disables the tier — the baseline
//! every other cell is compared against, and the cell that pins the
//! defaults-off invariant: with the L0 off, every `l0_*` counter must stay
//! exactly zero. A pair of serve-stale cells at the production corner
//! measures what relaxing coherence to a bounded-staleness window buys and
//! what staleness it actually serves.

use crate::golden::small_kv;
use crate::sweep::SweepRunner;
use dcache::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache::{ArchKind, ExperimentReport, L0Config, L0Consistency};

/// Architectures that can host an in-process L0 (see
/// `ArchKind::supports_l0`).
pub const ARCHS: &[ArchKind] = &[ArchKind::Remote, ArchKind::Linked];

/// L0 byte budget per app server; 0 = tier off (the baseline).
pub const L0_BYTES: &[u64] = &[0, 1 << 20, 4 << 20, 16 << 20];

/// Zipf skew axis: a flat-ish tail and the production head the paper
/// measures.
pub const ALPHAS: &[f64] = &[0.8, 1.2];

/// Value-size axis: small values where the per-op tax dominates, and the
/// 1 KB synthetic default the fig4 grid uses.
pub const VALUE_SIZES: &[u64] = &[128, 1024];

/// The (alpha, value size, l0 bytes) corner the serve-stale cells probe.
pub const STALE_CORNER: (f64, u64, u64) = (1.2, 1024, 4 << 20);

/// One cell of the hot-key sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotkeySpec {
    pub arch: ArchKind,
    pub l0_bytes: u64,
    pub alpha: f64,
    pub value_bytes: u64,
    pub serve_stale: bool,
}

impl HotkeySpec {
    pub fn label(&self) -> String {
        let mode = if self.serve_stale { "_stale" } else { "" };
        format!(
            "{}/a{}_v{}_l0_{}kb{}",
            self.arch.label(),
            self.alpha,
            self.value_bytes,
            self.l0_bytes >> 10,
            mode
        )
    }
}

/// The full grid in deterministic (arch major, alpha, value size, L0 bytes
/// minor) order, followed by one serve-stale cell per arch at the
/// production corner.
pub fn sweep_specs() -> Vec<HotkeySpec> {
    let mut specs: Vec<HotkeySpec> = ARCHS
        .iter()
        .flat_map(|&arch| {
            ALPHAS.iter().flat_map(move |&alpha| {
                VALUE_SIZES.iter().flat_map(move |&value_bytes| {
                    L0_BYTES.iter().map(move |&l0_bytes| HotkeySpec {
                        arch,
                        l0_bytes,
                        alpha,
                        value_bytes,
                        serve_stale: false,
                    })
                })
            })
        })
        .collect();
    let (alpha, value_bytes, l0_bytes) = STALE_CORNER;
    specs.extend(ARCHS.iter().map(|&arch| HotkeySpec {
        arch,
        l0_bytes,
        alpha,
        value_bytes,
        serve_stale: true,
    }));
    specs
}

/// The experiment for one sweep cell at the given request budget, built on
/// the same fixed-seed small-KV base the golden figures use.
pub fn experiment(spec: &HotkeySpec, warmup: u64, measured: u64) -> KvExperimentConfig {
    let mut cfg = small_kv(spec.arch, 0.95, spec.value_bytes);
    cfg.workload.alpha = spec.alpha;
    cfg.warmup_requests = warmup;
    cfg.requests = measured;
    if spec.l0_bytes > 0 {
        cfg.deployment.l0 = Some(L0Config {
            bytes_per_server: spec.l0_bytes,
            consistency: if spec.serve_stale {
                L0Consistency::ServeStale
            } else {
                L0Consistency::InvalidateFirst
            },
            mean_entry_bytes: spec.value_bytes.max(64),
            ..L0Config::default()
        });
    }
    cfg
}

/// Run every spec through `runner` (results in spec order).
pub fn run_sweep(
    runner: &SweepRunner,
    specs: &[HotkeySpec],
    warmup: u64,
    measured: u64,
) -> Vec<ExperimentReport> {
    runner.run_map(specs, |_, spec| {
        run_kv_experiment(&experiment(spec, warmup, measured)).expect("hotkey sweep run")
    })
}

/// Core·µs of app + remote-cache CPU per request — the lookup-path figure
/// the ablation tracks against L0 size (the storage tier is identical
/// across cells at a fixed hit ratio).
pub fn cpu_us_per_request(r: &ExperimentReport) -> f64 {
    let cores: f64 = ["app", "remote_cache"]
        .iter()
        .filter_map(|t| r.tier(t))
        .map(|t| t.cores)
        .sum();
    cores / r.qps * 1e6
}

/// Fraction of measured requests the L0 absorbed.
pub fn l0_absorption(r: &ExperimentReport) -> f64 {
    r.l0_hits as f64 / r.requests.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_the_grid_in_order() {
        let specs = sweep_specs();
        assert_eq!(
            specs.len(),
            ARCHS.len() * ALPHAS.len() * VALUE_SIZES.len() * L0_BYTES.len() + ARCHS.len()
        );
        assert_eq!(
            specs[0],
            HotkeySpec {
                arch: ArchKind::Remote,
                l0_bytes: 0,
                alpha: ALPHAS[0],
                value_bytes: VALUE_SIZES[0],
                serve_stale: false,
            }
        );
        // Deterministic order is what the golden + determinism suites key on.
        assert_eq!(specs, sweep_specs());
        // Exactly one serve-stale cell per arch, at the production corner.
        let stale: Vec<&HotkeySpec> = specs.iter().filter(|s| s.serve_stale).collect();
        assert_eq!(stale.len(), ARCHS.len());
        for s in stale {
            assert_eq!((s.alpha, s.value_bytes, s.l0_bytes), STALE_CORNER);
        }
    }

    #[test]
    fn baseline_cell_disables_the_tier() {
        let cfg = experiment(
            &HotkeySpec {
                arch: ArchKind::Remote,
                l0_bytes: 0,
                alpha: 1.2,
                value_bytes: 1024,
                serve_stale: false,
            },
            100,
            100,
        );
        assert!(cfg.deployment.l0.is_none());
    }

    #[test]
    fn cells_carry_their_knobs() {
        let cfg = experiment(
            &HotkeySpec {
                arch: ArchKind::Linked,
                l0_bytes: 4 << 20,
                alpha: 0.8,
                value_bytes: 128,
                serve_stale: true,
            },
            100,
            100,
        );
        let l0 = cfg.deployment.l0.expect("tier on");
        assert_eq!(l0.bytes_per_server, 4 << 20);
        assert!(l0.serve_stale());
        assert_eq!(l0.mean_entry_bytes, 128);
        assert_eq!(cfg.workload.alpha, 0.8);
    }

    #[test]
    fn labels_are_unique() {
        let specs = sweep_specs();
        let mut labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), specs.len());
    }
}
