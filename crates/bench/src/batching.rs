//! Shared builder for the batched-RPC ablation.
//!
//! One sweep definition, three consumers: the `ablation_batching` bin (full
//! budget, table + JSON + §4 crossover narrative), the golden suite (small
//! fixed-seed snapshot), and the determinism tests (jobs=1 vs jobs=N
//! byte-equality). Keeping the config construction here guarantees they all
//! measure the same thing.
//!
//! The sweep holds the workload fixed (Remote architecture, 95% reads) and
//! varies `max_batch` × value size. `max_batch = 1` disables batching — the
//! baseline every other cell is compared against. The coalescing window
//! scales with the target batch size (see [`window_us`]) so frames actually
//! fill at the configured arrival rate; what the sweep shows is the
//! latency-for-CPU trade the paper's §4 batching analysis prices out.

use crate::golden::small_kv;
use crate::sweep::SweepRunner;
use dcache::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache::{ArchKind, BatchingConfig, ExperimentReport};

/// Batch-size axis; 1 = batching off (the baseline).
pub const BATCH_SIZES: &[u32] = &[1, 2, 4, 8, 16, 32];

/// Value-size axis: ~10 B is the median Meta value size the paper cites;
/// 1 KB is the synthetic default the fig4 grid uses.
pub const VALUE_SIZES: &[u64] = &[10, 1024];

/// One cell of the batching sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSpec {
    pub max_batch: u32,
    pub value_bytes: u64,
}

/// The full grid in deterministic (value size major, batch size minor) order.
pub fn sweep_specs() -> Vec<BatchSpec> {
    VALUE_SIZES
        .iter()
        .flat_map(|&value_bytes| {
            BATCH_SIZES.iter().map(move |&max_batch| BatchSpec {
                max_batch,
                value_bytes,
            })
        })
        .collect()
}

/// A coalescing window long enough for a frame to reach `max_batch` keys.
///
/// Frames are keyed by (app server, cache node), so a deployment spreads
/// arrivals over `app_servers × remote_cache_nodes` slots; at `qps` the
/// per-slot inter-arrival is `slots / qps`. Doubling `max_batch` arrivals'
/// worth of that gap gives frames comfortable headroom to fill before they
/// depart.
pub fn window_us(cfg: &KvExperimentConfig, max_batch: u32) -> f64 {
    if max_batch <= 1 {
        return 0.0;
    }
    let d = &cfg.deployment;
    let slots = (d.app_servers * d.remote_cache_nodes.max(1)) as f64;
    2.0 * slots * (1e6 / cfg.qps) * max_batch as f64
}

/// The experiment for one sweep cell at the given request budget, built on
/// the same fixed-seed small-KV base the golden figures use.
pub fn experiment(spec: &BatchSpec, warmup: u64, measured: u64) -> KvExperimentConfig {
    let mut cfg = small_kv(ArchKind::Remote, 0.95, spec.value_bytes);
    cfg.warmup_requests = warmup;
    cfg.requests = measured;
    cfg.deployment.batching = BatchingConfig {
        batch_window_us: window_us(&cfg, spec.max_batch),
        max_batch: spec.max_batch,
    };
    cfg
}

/// Run every spec through `runner` (results in spec order).
pub fn run_sweep(
    runner: &SweepRunner,
    specs: &[BatchSpec],
    warmup: u64,
    measured: u64,
) -> Vec<ExperimentReport> {
    runner.run_map(specs, |_, spec| {
        run_kv_experiment(&experiment(spec, warmup, measured)).expect("batching sweep run")
    })
}

/// Core·µs of app + remote-cache CPU per request — the per-request "RPC
/// tax plus cache work" figure the ablation tracks against batch size.
pub fn cpu_us_per_request(r: &ExperimentReport) -> f64 {
    let cores: f64 = ["app", "remote_cache"]
        .iter()
        .filter_map(|t| r.tier(t))
        .map(|t| t.cores)
        .sum();
    cores / r.qps * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_the_grid_in_order() {
        let specs = sweep_specs();
        assert_eq!(specs.len(), BATCH_SIZES.len() * VALUE_SIZES.len());
        assert_eq!(
            specs[0],
            BatchSpec {
                max_batch: 1,
                value_bytes: VALUE_SIZES[0]
            }
        );
        // Deterministic order is what the golden + determinism suites key on.
        assert_eq!(specs, sweep_specs());
    }

    #[test]
    fn baseline_cell_disables_batching() {
        let cfg = experiment(
            &BatchSpec {
                max_batch: 1,
                value_bytes: 1024,
            },
            100,
            100,
        );
        assert!(!cfg.deployment.batching.enabled());
        assert_eq!(cfg.deployment.batching.batch_window_us, 0.0);
    }

    #[test]
    fn window_scales_with_batch_size_and_slots() {
        let b8 = experiment(
            &BatchSpec {
                max_batch: 8,
                value_bytes: 1024,
            },
            100,
            100,
        );
        let b32 = experiment(
            &BatchSpec {
                max_batch: 32,
                value_bytes: 1024,
            },
            100,
            100,
        );
        assert!(b8.deployment.batching.windowed());
        let w8 = b8.deployment.batching.batch_window_us;
        let w32 = b32.deployment.batching.batch_window_us;
        assert!((w32 / w8 - 4.0).abs() < 1e-12, "window ∝ max_batch");
        // Long enough for a slot to see max_batch arrivals.
        let slots = (b8.deployment.app_servers * b8.deployment.remote_cache_nodes) as f64;
        assert!(w8 >= slots * (1e6 / b8.qps) * 8.0);
    }
}
