//! Criterion micro-benchmarks of the substrates.
//!
//! These measure *host* performance of the building blocks (not simulated
//! cost): cache operations per policy, Zipf sampling, SQL parse/plan/
//! execute, row codec, wire codec, MVCC reads, and a whole simulated
//! request through each architecture. Useful for keeping the experiment
//! harness fast and for spotting regressions in the hot paths.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcache::deployment::{kv_catalog, Deployment};
use dcache::{ArchKind, DeploymentConfig};
use simnet::SimTime;
use storekit::row::Row;
use storekit::sql::exec::MemStore;
use storekit::sql::{parse, plan};
use storekit::value::Datum;
use workloads::ZipfSampler;

fn bench_cache_ops(c: &mut Criterion) {
    use cachekit::{Cache, PolicyKind};
    let mut group = c.benchmark_group("cache_ops");
    for policy in PolicyKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("get_hit", policy.label()),
            &policy,
            |b, &policy| {
                let mut cache: Cache<u64, u64> = Cache::new(1 << 20, policy);
                for k in 0..1_000u64 {
                    cache.insert(k, k, 100, 0);
                }
                let mut k = 0u64;
                b.iter(|| {
                    k = (k + 7) % 1_000;
                    black_box(cache.get(&k, 0));
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("insert_evict", policy.label()),
            &policy,
            |b, &policy| {
                let mut cache: Cache<u64, u64> = Cache::new(64 << 10, policy);
                let mut k = 0u64;
                b.iter(|| {
                    k += 1;
                    cache.insert(black_box(k), k, 100, 0);
                });
            },
        );
    }
    group.finish();
}

fn bench_zipf(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let z = ZipfSampler::new(100_000, 1.2);
    let mut rng = StdRng::seed_from_u64(7);
    c.bench_function("zipf_sample_100k_keys", |b| {
        b.iter(|| black_box(z.sample_key(&mut rng)))
    });
}

fn bench_sql(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql");
    let sql = "SELECT v, _version FROM kv WHERE k = ?";
    group.bench_function("parse", |b| b.iter(|| black_box(parse(sql).unwrap())));

    let mut store = MemStore::new(kv_catalog("kv"));
    for k in 0..1_000i64 {
        store
            .run(
                "INSERT INTO kv VALUES (?, ?)",
                &[k.into(), Datum::Bytes(vec![0; 64])],
            )
            .unwrap();
    }
    let stmt = parse(sql).unwrap();
    let catalog = store.catalog.clone();
    group.bench_function("plan", |b| b.iter(|| black_box(plan(&catalog, &stmt).unwrap())));
    group.bench_function("point_select_end_to_end", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 1) % 1_000;
            black_box(store.run(sql, &[k.into()]).unwrap());
        })
    });
    group.finish();
}

fn bench_row_codec(c: &mut Criterion) {
    let row = Row(vec![
        Datum::Int(42),
        Datum::Text("catalog_7.schema_3.table_99".into()),
        Datum::Bytes(vec![7; 256]),
        Datum::Payload { len: 1 << 20, seed: 9 },
    ]);
    let encoded = row.encode();
    let mut group = c.benchmark_group("row_codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode", |b| b.iter(|| black_box(row.encode())));
    group.bench_function("decode", |b| b.iter(|| black_box(Row::decode(&encoded).unwrap())));
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    use bytes::BytesMut;
    use netrpc::Request;
    let req = Request::Set {
        key: b"user:12345".to_vec(),
        value: vec![0xAB; 1024],
        ttl_ms: Some(30_000),
    };
    let mut group = c.benchmark_group("wire_codec");
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("encode_decode_set_1k", |b| {
        b.iter(|| {
            let mut buf = BytesMut::new();
            req.encode(&mut buf);
            black_box(Request::decode(&mut buf).unwrap());
        })
    });
    group.finish();
}

fn bench_mvcc(c: &mut Criterion) {
    use storekit::kv::KvEngine;
    let mut kv = KvEngine::new();
    for k in 0..10_000u64 {
        for _ in 0..4 {
            kv.put(k.to_be_bytes().to_vec(), vec![0; 64]);
        }
    }
    c.bench_function("mvcc_get_latest_10k_keys_4_versions", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 13) % 10_000;
            black_box(kv.get_latest(&k.to_be_bytes()));
        })
    });
}

fn bench_serve_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_request");
    group.sample_size(20);
    for arch in [ArchKind::Base, ArchKind::Linked, ArchKind::LinkedVersion] {
        group.bench_with_input(BenchmarkId::new("read", arch.label()), &arch, |b, &arch| {
            let mut d = Deployment::new(DeploymentConfig::test_small(arch), kv_catalog("kv"));
            d.cluster
                .bulk_load(
                    "kv",
                    (0..1_000i64).map(|k| {
                        vec![Datum::Int(k), Datum::Payload { len: 1_024, seed: 0 }]
                    }),
                )
                .unwrap();
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let key = (i % 1_000) as i64;
                black_box(
                    d.serve_kv_read("kv", key, SimTime::from_nanos(i * 1_000))
                        .unwrap(),
                );
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cache_ops,
    bench_zipf,
    bench_sql,
    bench_row_codec,
    bench_wire_codec,
    bench_mvcc,
    bench_serve_paths
);
criterion_main!(benches);
