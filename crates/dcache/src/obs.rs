//! Run-time observability: heartbeat time series, tail-latency forensics,
//! and SLO burn-rate evaluation for KV experiment runs.
//!
//! The experiment runner owns an optional [`ObsState`]: every measured
//! request flows through [`ObsState::observe`], every heartbeat snapshots a
//! windowed [`telemetry::TimeSeries`] sample (hit ratio, cores, cache
//! bytes, window p99), fault events and elastic resizes annotate the
//! timeline, and at run end [`ObsState::finish`] evaluates the SLO rules
//! and attributes every slowest-1% request to exactly one primary cause.
//!
//! Everything is driven by *simulated* time and deterministic inputs, so
//! double runs (and jobs=1 vs jobs=N sweeps) produce byte-identical JSONL,
//! alert logs, and attribution tables — the property
//! `tests/obs_determinism.rs` pins.

use crate::experiment::STORAGE_FAULT_NODE_BASE;
use simnet::{FaultEvent, FaultKind, Histogram};
use std::collections::BTreeMap;
use std::fmt::Write;
use telemetry::json::push_json_str;
use telemetry::slo::{AlertEvent, BurnPoint, SloRule};
use telemetry::timeseries::{Annotation, TimeSeries};
use telemetry::SpanRecord;

/// Configuration of the observability layer (off unless
/// `KvExperimentConfig::observability` is `Some`).
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Flight-recorder bound on retained heartbeat samples.
    pub timeseries_capacity: usize,
    /// Availability SLO objective (fraction of requests meeting their
    /// deadline), e.g. `0.999`.
    pub availability_objective: f64,
    /// Latency SLO: at most 1% of requests may exceed this budget.
    pub p99_budget_us: u64,
    /// Long (significance) burn window, virtual seconds.
    pub long_window_secs: f64,
    /// Short (fast-resolve) burn window, virtual seconds.
    pub short_window_secs: f64,
    /// Burn-rate multiple of budget at which alerts fire.
    pub burn_threshold: f64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            timeseries_capacity: 4_096,
            availability_objective: 0.999,
            p99_budget_us: 2_000,
            long_window_secs: 4.0,
            short_window_secs: 1.0,
            burn_threshold: 10.0,
        }
    }
}

/// The single primary cause assigned to each slowest-1% request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TailCause {
    /// WAL fsync stall, crash recovery, or election of a durable pod.
    WalFsyncRecovery,
    /// Served inside a fault/partition window, degraded to storage, or
    /// paid a (non-durable) leader failover.
    FaultWindow,
    /// Cache-RPC retries with backoff.
    RetryBackoff,
    /// Served during an elastic drain/migration window.
    ElasticResize,
    /// Waited on single-flight / batch coalescing.
    BatchCoalescing,
    /// Plain cache miss filling from storage.
    StorageFill,
    /// None of the above — intrinsic service-time tail.
    Other,
}

impl TailCause {
    pub const ALL: [TailCause; 7] = [
        TailCause::WalFsyncRecovery,
        TailCause::FaultWindow,
        TailCause::RetryBackoff,
        TailCause::ElasticResize,
        TailCause::BatchCoalescing,
        TailCause::StorageFill,
        TailCause::Other,
    ];

    pub fn label(self) -> &'static str {
        match self {
            TailCause::WalFsyncRecovery => "wal_fsync_recovery",
            TailCause::FaultWindow => "fault_window",
            TailCause::RetryBackoff => "retry_backoff",
            TailCause::ElasticResize => "elastic_resize",
            TailCause::BatchCoalescing => "batch_coalescing",
            TailCause::StorageFill => "storage_fill",
            TailCause::Other => "other",
        }
    }
}

/// Per-request observation the runner hands to [`ObsState::observe`].
/// Window-membership flags are stamped by the state itself.
#[derive(Debug, Clone, Copy)]
pub struct RequestSample {
    pub trace_id: u64,
    /// Virtual arrival time (nanoseconds from run start).
    pub t_ns: u64,
    pub latency_ns: u64,
    pub is_read: bool,
    pub cache_hit: bool,
    pub degraded: bool,
    pub coalesced: bool,
    pub retries: u64,
    /// Paid the leader-failover (detection + election) penalty.
    pub failover: bool,
    /// Blew the request deadline (stamped by the runner's budget check).
    pub over_deadline: bool,
    /// Stamped by `observe`: a fault/partition window was active.
    pub in_fault_window: bool,
    /// Stamped by `observe`: within the settle window of an elastic resize.
    pub in_resize_window: bool,
    /// The tracer recorded spans for this request.
    pub traced: bool,
}

/// Classify a tail request to its single primary cause. The priority chain
/// guarantees exactly one cause per request, so per-cause excess sums equal
/// the total tail excess identically.
pub fn classify(s: &RequestSample, durability_on: bool) -> TailCause {
    if durability_on && s.failover {
        // The request tripped over a dead durable pod and waited out
        // leader election plus WAL replay. A fault window is usually open
        // around the crash, but the recovery machinery is the mechanism
        // that actually spent the time, so it wins the attribution.
        return TailCause::WalFsyncRecovery;
    }
    if s.in_fault_window || s.degraded || s.failover {
        return TailCause::FaultWindow;
    }
    if s.retries > 0 {
        return TailCause::RetryBackoff;
    }
    if durability_on && !s.is_read {
        // A write outside any incident: the excess is the WAL append and
        // its share of the group-commit fsync wait.
        return TailCause::WalFsyncRecovery;
    }
    if s.in_resize_window {
        return TailCause::ElasticResize;
    }
    if s.coalesced {
        return TailCause::BatchCoalescing;
    }
    if s.is_read && !s.cache_hit {
        return TailCause::StorageFill;
    }
    TailCause::Other
}

/// Reconstruct the span tree of one trace (intervals nest: a parent
/// encloses its children) and return the critical path — root to leaf,
/// always descending into the longest child.
pub fn critical_path(spans: &[&SpanRecord]) -> Vec<&'static str> {
    if spans.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..spans.len()).collect();
    // Parents sort before children: earlier start first, longer span first
    // on equal starts; recording order breaks exact ties.
    order.sort_by(|&a, &b| {
        spans[a]
            .start_ns
            .cmp(&spans[b].start_ns)
            .then(spans[b].end_ns.cmp(&spans[a].end_ns))
            .then(a.cmp(&b))
    });
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    for &i in &order {
        while let Some(&top) = stack.last() {
            if spans[i].start_ns >= spans[top].start_ns && spans[i].end_ns <= spans[top].end_ns {
                break;
            }
            stack.pop();
        }
        match stack.last() {
            Some(&p) => children[p].push(i),
            None => roots.push(i),
        }
        stack.push(i);
    }
    let longest = |candidates: &[usize]| -> usize {
        let mut best = candidates[0];
        for &c in &candidates[1..] {
            if spans[c].duration_ns() > spans[best].duration_ns() {
                best = c;
            }
        }
        best
    };
    let mut path = Vec::new();
    let mut cur = longest(&roots);
    loop {
        path.push(spans[cur].name);
        if children[cur].is_empty() {
            break;
        }
        cur = longest(&children[cur]);
    }
    path
}

/// One slowest-1% request with its attribution.
#[derive(Debug, Clone)]
pub struct TailRequest {
    pub trace_id: u64,
    pub t_ns: u64,
    pub latency_us: u64,
    pub excess_us: u64,
    pub cause: TailCause,
    /// Span names along the critical path (empty if untraced).
    pub critical_path: Vec<&'static str>,
}

/// Per-cause rollup of the tail.
#[derive(Debug, Clone, Copy)]
pub struct CauseSummary {
    pub cause: TailCause,
    pub count: u64,
    pub excess_us: u64,
    /// Trace id of the worst request with this cause (0 if none).
    pub example_trace_id: u64,
}

/// The headline artifact: where the p99 excess comes from.
#[derive(Debug, Clone, Default)]
pub struct TailAttribution {
    /// Exact p99 (nearest-rank over every measured latency), microseconds.
    pub threshold_us: u64,
    pub measured_requests: u64,
    pub tail_requests: Vec<TailRequest>,
    /// Fixed [`TailCause::ALL`] order, zero rows included.
    pub causes: Vec<CauseSummary>,
    /// Σ excess over the tail, microseconds (equals the cause sums).
    pub total_excess_us: u64,
}

impl TailAttribution {
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"threshold_us\":{},\"measured_requests\":{},\"tail_request_count\":{},\"total_excess_us\":{}",
            self.threshold_us,
            self.measured_requests,
            self.tail_requests.len(),
            self.total_excess_us
        );
        out.push_str(",\"causes\":[");
        for (i, c) in self.causes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"cause\":\"{}\",\"count\":{},\"excess_us\":{},\"example_trace_id\":\"{:016x}\"}}",
                c.cause.label(),
                c.count,
                c.excess_us,
                c.example_trace_id
            );
        }
        out.push_str("],\"requests\":[");
        for (i, r) in self.tail_requests.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"trace_id\":\"{:016x}\",\"t_ns\":{},\"latency_us\":{},\"excess_us\":{},\"cause\":\"{}\",\"critical_path\":",
                r.trace_id,
                r.t_ns,
                r.latency_us,
                r.excess_us,
                r.cause.label()
            );
            push_json_str(&mut out, &r.critical_path.join(";"));
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Attribute the slowest-1% requests: threshold is the exact nearest-rank
/// p99 over every measured latency; each strictly-above-threshold request
/// gets one cause from [`classify`]; excess sums are computed in
/// nanoseconds so cause totals equal the tail total identically.
pub fn attribute_tail(
    samples: &[RequestSample],
    spans: &[SpanRecord],
    durability_on: bool,
) -> TailAttribution {
    if samples.is_empty() {
        return TailAttribution::default();
    }
    let mut latencies: Vec<u64> = samples.iter().map(|s| s.latency_ns).collect();
    latencies.sort_unstable();
    let n = latencies.len();
    let rank = ((0.99 * n as f64).ceil().max(1.0) as usize).min(n);
    let threshold_ns = latencies[rank - 1];

    let mut by_trace: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        by_trace.entry(s.trace_id).or_default().push(s);
    }

    let mut tail = Vec::new();
    let mut agg: BTreeMap<TailCause, (u64, u64, u64, u64)> = BTreeMap::new(); // count, excess_ns, worst_excess, worst_trace
    let mut total_excess_ns = 0u64;
    for s in samples {
        if s.latency_ns <= threshold_ns {
            continue;
        }
        let excess_ns = s.latency_ns - threshold_ns;
        total_excess_ns += excess_ns;
        let cause = classify(s, durability_on);
        let path = if s.traced {
            by_trace
                .get(&s.trace_id)
                .map(|sp| critical_path(sp))
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        tail.push(TailRequest {
            trace_id: s.trace_id,
            t_ns: s.t_ns,
            latency_us: s.latency_ns / 1_000,
            excess_us: excess_ns / 1_000,
            cause,
            critical_path: path,
        });
        let e = agg.entry(cause).or_insert((0, 0, 0, 0));
        e.0 += 1;
        e.1 += excess_ns;
        if excess_ns > e.2 {
            e.2 = excess_ns;
            e.3 = s.trace_id;
        }
    }
    let causes = TailCause::ALL
        .iter()
        .map(|&cause| {
            let (count, excess_ns, _, worst) = agg.get(&cause).copied().unwrap_or((0, 0, 0, 0));
            CauseSummary {
                cause,
                count,
                excess_us: excess_ns / 1_000,
                example_trace_id: worst,
            }
        })
        .collect();
    TailAttribution {
        threshold_us: threshold_ns / 1_000,
        measured_requests: samples.len() as u64,
        tail_requests: tail,
        causes,
        total_excess_us: total_excess_ns / 1_000,
    }
}

/// What [`ObsState::finish`] hands back, carried on the telemetry bundle
/// and written out by the `obs_report` bench.
#[derive(Debug, Clone)]
pub struct ObsArtifacts {
    pub timeseries: TimeSeries,
    pub alerts: Vec<AlertEvent>,
    pub tail: TailAttribution,
}

impl ObsArtifacts {
    pub fn alerts_json(&self) -> String {
        let mut out = String::from("[");
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&a.to_json());
        }
        out.push(']');
        out
    }
}

/// Runner-side observability state for one KV experiment.
#[derive(Debug)]
pub struct ObsState {
    cfg: ObsConfig,
    arch: String,
    durability_on: bool,
    ts: TimeSeries,
    samples: Vec<RequestSample>,
    avail_points: Vec<BurnPoint>,
    lat_points: Vec<BurnPoint>,
    deg_points: Vec<BurnPoint>,
    // Measured-phase running counters.
    requests: u64,
    reads: u64,
    hits: u64,
    over_budget: u64,
    deadline_exceeded: u64,
    degraded: u64,
    retried: u64,
    // Heartbeat anchors (previous snapshot of the counters above).
    hb: HeartbeatAnchor,
    prev_read_hist: Histogram,
    /// Open fault windows: stable key → start time.
    open_faults: BTreeMap<String, u64>,
    last_resize_ns: Option<u64>,
    /// Settle window after a resize during which tail latency is charged
    /// to the resize (one nominal heartbeat of virtual time).
    resize_window_ns: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct HeartbeatAnchor {
    requests: u64,
    reads: u64,
    hits: u64,
    over_budget: u64,
    deadline_exceeded: u64,
    degraded: u64,
    retried: u64,
}

impl ObsState {
    pub fn new(cfg: ObsConfig, arch: &str, durability_on: bool) -> Self {
        let capacity = cfg.timeseries_capacity;
        ObsState {
            cfg,
            arch: arch.to_string(),
            durability_on,
            ts: TimeSeries::with_capacity(capacity),
            samples: Vec::new(),
            avail_points: Vec::new(),
            lat_points: Vec::new(),
            deg_points: Vec::new(),
            requests: 0,
            reads: 0,
            hits: 0,
            over_budget: 0,
            deadline_exceeded: 0,
            degraded: 0,
            retried: 0,
            hb: HeartbeatAnchor::default(),
            prev_read_hist: Histogram::new(),
            open_faults: BTreeMap::new(),
            last_resize_ns: None,
            resize_window_ns: 1_000_000_000, // one nominal 1s heartbeat
        }
    }

    /// Reset measured-phase accumulators at the warmup boundary (fault
    /// windows opened during warmup stay open — they are wall-time state).
    pub fn on_measure_start(&mut self) {
        self.samples.clear();
        self.avail_points.clear();
        self.lat_points.clear();
        self.deg_points.clear();
        self.requests = 0;
        self.reads = 0;
        self.hits = 0;
        self.over_budget = 0;
        self.deadline_exceeded = 0;
        self.degraded = 0;
        self.retried = 0;
        self.hb = HeartbeatAnchor::default();
        self.prev_read_hist = Histogram::new();
    }

    /// Whether a fault/partition window is currently open.
    pub fn fault_window_active(&self) -> bool {
        !self.open_faults.is_empty()
    }

    /// Ingest one measured request. Stamps window membership from the
    /// state's own fault/resize bookkeeping.
    pub fn observe(&mut self, mut s: RequestSample) {
        s.in_fault_window = !self.open_faults.is_empty();
        s.in_resize_window = self
            .last_resize_ns
            .is_some_and(|r| s.t_ns.saturating_sub(r) <= self.resize_window_ns);
        self.requests += 1;
        if s.is_read {
            self.reads += 1;
            if s.cache_hit {
                self.hits += 1;
            }
        }
        if s.latency_ns > self.cfg.p99_budget_us.saturating_mul(1_000) {
            self.over_budget += 1;
        }
        if s.over_deadline {
            self.deadline_exceeded += 1;
        }
        if s.degraded {
            self.degraded += 1;
        }
        if s.retries > 0 {
            self.retried += 1;
        }
        self.samples.push(s);
    }

    /// Snapshot one heartbeat of the measured run into the time series and
    /// the burn-point streams. `window_cores` and `cache_bytes` come from
    /// the runner's existing load-window tracking.
    pub fn heartbeat(
        &mut self,
        t_ns: u64,
        window_cores: f64,
        cache_bytes: u64,
        read_latency: &Histogram,
    ) {
        let d_requests = self.requests - self.hb.requests;
        let d_reads = self.reads - self.hb.reads;
        let d_hits = self.hits - self.hb.hits;
        let d_over = self.over_budget - self.hb.over_budget;
        let d_deadline = self.deadline_exceeded - self.hb.deadline_exceeded;
        let d_degraded = self.degraded - self.hb.degraded;
        let d_retried = self.retried - self.hb.retried;
        let window = read_latency.since(&self.prev_read_hist);
        let hit_ratio = if d_reads == 0 {
            0.0
        } else {
            d_hits as f64 / d_reads as f64
        };
        self.ts.record(
            t_ns,
            &self.arch,
            &[
                ("hit_ratio", hit_ratio),
                ("cores", window_cores),
                ("cache_bytes", cache_bytes as f64),
                ("read_p99_us", (window.p99() / 1_000) as f64),
                ("requests", d_requests as f64),
                ("deadline_exceeded", d_deadline as f64),
                ("over_latency_budget", d_over as f64),
                ("degraded_reads", d_degraded as f64),
                ("retried_requests", d_retried as f64),
            ],
        );
        self.avail_points.push(BurnPoint {
            t_ns,
            bad: d_deadline as f64,
            total: d_requests as f64,
        });
        self.lat_points.push(BurnPoint {
            t_ns,
            bad: d_over as f64,
            total: d_requests as f64,
        });
        self.deg_points.push(BurnPoint {
            t_ns,
            bad: d_degraded as f64,
            total: d_requests as f64,
        });
        self.hb = HeartbeatAnchor {
            requests: self.requests,
            reads: self.reads,
            hits: self.hits,
            over_budget: self.over_budget,
            deadline_exceeded: self.deadline_exceeded,
            degraded: self.degraded,
            retried: self.retried,
        };
        self.prev_read_hist = read_latency.clone();
    }

    /// Track a scheduled fault transition: start events open a timeline
    /// window, their paired end events close it and emit the annotation.
    pub fn on_fault(&mut self, ev: &FaultEvent) {
        let t = ev.at.as_nanos();
        match ev.kind {
            FaultKind::Crash { node } => {
                self.open_faults.insert(fault_key_node(node.0), t);
            }
            FaultKind::Restart { node } => {
                self.close_fault(&fault_key_node(node.0), fault_label_node(node.0), t);
            }
            FaultKind::PartitionStart { a, b } => {
                self.open_faults
                    .insert(format!("partition:{}:{}", a.0, b.0), t);
            }
            FaultKind::PartitionHeal { a, b } => {
                let label = format!("partition {}~{}", a.0, b.0);
                self.close_fault(&format!("partition:{}:{}", a.0, b.0), label, t);
            }
            FaultKind::LatencySpikeStart { .. } => {
                self.open_faults.insert("latency_spike".to_string(), t);
            }
            FaultKind::LatencySpikeEnd => {
                self.close_fault("latency_spike", "latency spike".to_string(), t);
            }
            FaultKind::DropWindowStart { .. } => {
                self.open_faults.insert("drop_window".to_string(), t);
            }
            FaultKind::DropWindowEnd => {
                self.close_fault("drop_window", "loss window".to_string(), t);
            }
        }
    }

    fn close_fault(&mut self, key: &str, label: String, end_ns: u64) {
        if let Some(start) = self.open_faults.remove(key) {
            self.ts.annotate(Annotation {
                start_ns: start,
                end_ns,
                kind: "fault".to_string(),
                series: self.arch.clone(),
                label,
            });
        }
    }

    /// Track an applied elastic resize: annotate the settle window and arm
    /// the resize-membership test for tail attribution.
    pub fn on_resize(&mut self, t_ns: u64, old_bytes: u64, new_bytes: u64) {
        self.last_resize_ns = Some(t_ns);
        self.ts.annotate(Annotation {
            start_ns: t_ns,
            end_ns: t_ns + self.resize_window_ns,
            kind: "resize".to_string(),
            series: self.arch.clone(),
            label: format!("cache {old_bytes}→{new_bytes} B"),
        });
    }

    /// Close the run: flush open fault windows, evaluate the SLO rules,
    /// and attribute the tail. `spans` is the tracer's retained sample.
    pub fn finish(mut self, end_ns: u64, spans: &[SpanRecord]) -> ObsArtifacts {
        let open: Vec<(String, u64)> = self
            .open_faults
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        for (key, start) in open {
            self.open_faults.remove(&key);
            self.ts.annotate(Annotation {
                start_ns: start,
                end_ns,
                kind: "fault".to_string(),
                series: self.arch.clone(),
                label: format!("{key} (unresolved)"),
            });
        }
        let long_ns = (self.cfg.long_window_secs * 1e9) as u64;
        let short_ns = (self.cfg.short_window_secs * 1e9) as u64;
        let rules = [
            SloRule {
                name: "availability".to_string(),
                error_budget: (1.0 - self.cfg.availability_objective).max(1e-12),
                long_window_ns: long_ns,
                short_window_ns: short_ns,
                burn_threshold: self.cfg.burn_threshold,
            },
            SloRule {
                name: "latency_p99_budget".to_string(),
                error_budget: 0.01,
                long_window_ns: long_ns,
                short_window_ns: short_ns,
                burn_threshold: self.cfg.burn_threshold,
            },
            // Degraded serving burns the same budget as unavailability: a
            // read answered from storage because its cache shard is down
            // is a papered-over failure, and it is the signal that moves
            // for architectures whose p99 barely shifts when the cache
            // dies (linked caches already pay ~storage latency on a miss).
            SloRule {
                name: "degraded_reads".to_string(),
                error_budget: (1.0 - self.cfg.availability_objective).max(1e-12),
                long_window_ns: long_ns,
                short_window_ns: short_ns,
                burn_threshold: self.cfg.burn_threshold,
            },
        ];
        let mut alerts = rules[0].evaluate(&self.avail_points);
        alerts.extend(rules[1].evaluate(&self.lat_points));
        alerts.extend(rules[2].evaluate(&self.deg_points));
        let tail = attribute_tail(&self.samples, spans, self.durability_on);
        ObsArtifacts {
            timeseries: self.ts,
            alerts,
            tail,
        }
    }
}

fn fault_key_node(id: u32) -> String {
    format!("crash:{id}")
}

fn fault_label_node(id: u32) -> String {
    if id >= STORAGE_FAULT_NODE_BASE {
        format!("storage region {} crash", id - STORAGE_FAULT_NODE_BASE)
    } else {
        format!("cache shard {id} crash")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::SpanStatus;

    fn sample(latency_ns: u64) -> RequestSample {
        RequestSample {
            trace_id: latency_ns, // distinct, deterministic
            t_ns: latency_ns,
            latency_ns,
            is_read: true,
            cache_hit: true,
            degraded: false,
            coalesced: false,
            retries: 0,
            failover: false,
            over_deadline: false,
            in_fault_window: false,
            in_resize_window: false,
            traced: false,
        }
    }

    #[test]
    fn classify_priority_chain_is_exclusive() {
        let mut s = sample(100);
        assert_eq!(classify(&s, false), TailCause::Other);
        s.cache_hit = false;
        assert_eq!(classify(&s, false), TailCause::StorageFill);
        s.coalesced = true;
        assert_eq!(classify(&s, false), TailCause::BatchCoalescing);
        s.in_resize_window = true;
        assert_eq!(classify(&s, false), TailCause::ElasticResize);
        s.retries = 2;
        assert_eq!(classify(&s, false), TailCause::RetryBackoff);
        s.in_fault_window = true;
        assert_eq!(classify(&s, false), TailCause::FaultWindow);
        // Durable failover outranks everything, even an open fault
        // window: the recovery wait is the time sink.
        let mut f = sample(100);
        f.failover = true;
        assert_eq!(classify(&f, false), TailCause::FaultWindow);
        assert_eq!(classify(&f, true), TailCause::WalFsyncRecovery);
        f.in_fault_window = true;
        assert_eq!(classify(&f, true), TailCause::WalFsyncRecovery);
        // A durable write's excess is fsync wait — unless an incident is
        // a better explanation.
        let mut w = sample(100);
        w.is_read = false;
        assert_eq!(classify(&w, false), TailCause::Other);
        assert_eq!(classify(&w, true), TailCause::WalFsyncRecovery);
        w.in_fault_window = true;
        assert_eq!(classify(&w, true), TailCause::FaultWindow);
    }

    #[test]
    fn attribution_sums_exactly_and_each_request_has_one_cause() {
        // 990 fast requests + 10 slow with mixed causes.
        let mut samples: Vec<RequestSample> = (0..990).map(|i| sample(1_000 + i % 7)).collect();
        for i in 0..10u64 {
            let mut s = sample(1_000_000 + i * 100_000);
            match i % 3 {
                0 => s.retries = 1,
                1 => s.cache_hit = false,
                _ => {}
            }
            samples.push(s);
        }
        let a = attribute_tail(&samples, &[], false);
        assert!(!a.tail_requests.is_empty());
        assert!(a.tail_requests.len() <= 10 + 1);
        let cause_total: u64 = a.causes.iter().map(|c| c.excess_us).sum();
        let cause_count: u64 = a.causes.iter().map(|c| c.count).sum();
        assert_eq!(cause_count, a.tail_requests.len() as u64);
        // Summed in nanoseconds before the µs conversion, so the rollup
        // matches the total within integer-division slack only.
        assert!(
            (cause_total as i64 - a.total_excess_us as i64).abs() <= a.causes.len() as i64,
            "cause sum {cause_total} vs total {}",
            a.total_excess_us
        );
        assert_eq!(a.causes.len(), TailCause::ALL.len());
        // Deterministic bytes.
        let b = attribute_tail(&samples, &[], false);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn critical_path_descends_longest_children() {
        let span = |name: &'static str, start: u64, end: u64| SpanRecord {
            trace_id: 1,
            name,
            tier: "t",
            start_ns: start,
            end_ns: end,
            attempt: 0,
            status: SpanStatus::Ok,
        };
        let spans = [
            span("cache.lookup", 10, 30),
            span("storage.fill", 30, 90),
            span("storage.seek", 35, 80),
            span("request.read", 0, 100),
        ];
        let refs: Vec<&SpanRecord> = spans.iter().collect();
        let path = critical_path(&refs);
        assert_eq!(path, vec!["request.read", "storage.fill", "storage.seek"]);
        assert!(critical_path(&[]).is_empty());
    }

    #[test]
    fn fault_windows_annotate_and_stamp_requests() {
        use simnet::{NodeId, SimTime};
        let mut obs = ObsState::new(ObsConfig::default(), "remote", false);
        obs.on_fault(&FaultEvent {
            at: SimTime::ZERO + simnet::SimDuration::from_secs_f64(1.0),
            kind: FaultKind::Crash { node: NodeId(0) },
        });
        assert!(obs.fault_window_active());
        let mut s = sample(500);
        s.t_ns = 1_500_000_000;
        obs.observe(s);
        obs.on_fault(&FaultEvent {
            at: SimTime::ZERO + simnet::SimDuration::from_secs_f64(2.0),
            kind: FaultKind::Restart { node: NodeId(0) },
        });
        assert!(!obs.fault_window_active());
        let art = obs.finish(3_000_000_000, &[]);
        assert_eq!(art.timeseries.annotations().len(), 1);
        let ann = &art.timeseries.annotations()[0];
        assert_eq!(ann.kind, "fault");
        assert_eq!(ann.start_ns, 1_000_000_000);
        assert_eq!(ann.end_ns, 2_000_000_000);
        assert!(ann.label.contains("cache shard 0"));
    }
}
