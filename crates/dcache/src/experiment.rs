//! Drive a workload through a deployment and report what it cost.
//!
//! The runner is an open-loop generator: requests arrive at a fixed QPS on
//! the virtual clock, each is served synchronously (the simulation charges
//! CPU and computes per-request latency), and at the end the accumulated
//! busy-time per tier divided by the run duration gives steady-state cores —
//! the paper's measured quantity (§5.1). Costs come from
//! [`costmodel::Pricing`].
//!
//! Every run has a warmup phase (caches fill, block caches heat) after which
//! all meters reset; only the measurement phase is billed, matching how the
//! paper measures steady state.

use crate::config::{ArchKind, DeploymentConfig};
use crate::deployment::{
    batch_counters, elastic_counters, fault_counters, kv_catalog, l0_counters, ttl_counters,
    Deployment,
};
use costmodel::{CostBreakdown, Pricing, ResourceUsage};
use serde::Serialize;
use simnet::{
    CpuCategory, CpuMeter, FaultDriver, FaultEvent, FaultKind, FaultSchedule, Histogram,
    SimDuration, SimTime,
};
use storekit::error::{StoreError, StoreResult};
use storekit::value::Datum;
use workloads::tenants::namespaced_key;
use workloads::{KvOp, KvWorkload, KvWorkloadConfig};

/// vCPUs per VM used when translating steady-state cores into concrete
/// machine counts (§5.1 notes platforms provision to peak CPU; GCP's
/// common shape for this class of service is 8 vCPU).
pub const VCPUS_PER_NODE: f64 = 8.0;

/// Target peak utilization when sizing VMs (provisioning headroom).
pub const TARGET_UTILIZATION: f64 = 0.7;

/// One tier's resources and dollars.
#[derive(Debug, Clone, Serialize)]
pub struct TierReport {
    pub name: String,
    pub nodes: usize,
    pub cores: f64,
    pub mem_gb: f64,
    pub disk_gb: f64,
    pub cost: CostBreakdown,
    /// 8-vCPU VMs needed to serve `cores` at 70% peak utilization — what an
    /// autoscaler would actually provision (§5.1's "smaller VM shapes or
    /// fewer replicas" translation).
    pub vms_at_target_util: u64,
    /// Expected M/M/c queueing wait at that provisioning, as a multiple of
    /// the mean service time (Erlang C) — the latency headroom the 70%
    /// utilization target buys. ~0.02–0.1 is healthy; near 1.0 means the
    /// tier is under-provisioned.
    pub expected_queue_wait: f64,
    /// CPU fraction by category, largest first (only non-zero entries).
    pub cpu_fractions: Vec<(String, f64)>,
}

impl TierReport {
    fn from_meter(
        name: &str,
        nodes: usize,
        meter: &CpuMeter,
        duration: SimDuration,
        mem_bytes: u64,
        disk_bytes: u64,
        pricing: &Pricing,
    ) -> TierReport {
        let cores = meter.cores_used(duration);
        let mem_gb = mem_bytes as f64 / 1e9;
        let disk_gb = disk_bytes as f64 / 1e9;
        let cost = pricing.monthly(&ResourceUsage::new(cores, mem_gb, disk_gb));
        let mut cpu_fractions: Vec<(String, f64)> = meter
            .breakdown()
            .map(|(c, _)| (c.label().to_string(), meter.fraction(c)))
            .collect();
        cpu_fractions.sort_by(|a, b| b.1.total_cmp(&a.1));
        let vms_at_target_util = (cores / TARGET_UTILIZATION / VCPUS_PER_NODE)
            .ceil()
            .max(0.0) as u64;
        let provisioned_cores = (vms_at_target_util as f64 * VCPUS_PER_NODE) as u32;
        let expected_queue_wait = if provisioned_cores == 0 {
            0.0
        } else {
            simnet::queueing::mmc_wait_time(provisioned_cores, cores)
        };
        TierReport {
            name: name.to_string(),
            nodes,
            cores,
            mem_gb,
            disk_gb,
            cost,
            vms_at_target_util,
            expected_queue_wait,
            cpu_fractions,
        }
    }
}

/// Per-tenant slice of a multi-tenant run's accounting.
#[derive(Debug, Clone, Serialize)]
pub struct TenantReport {
    pub label: String,
    /// Measured requests attributed to this tenant.
    pub requests: u64,
    pub reads: u64,
    pub writes: u64,
    pub cache_hits: u64,
    /// External-cache hit ratio over this tenant's measured reads.
    pub hit_ratio: f64,
    pub stale_reads: u64,
    /// Adopted TTL at run end, seconds (0.0 = no decision yet / plane off).
    pub ttl_secs: f64,
    /// TTL planning rounds this tenant's controller ran.
    pub ttl_decisions: u64,
    /// Decisions that changed this tenant's adopted TTL.
    pub ttl_changes: u64,
    /// This tenant's share of the monthly bill, apportioned by request
    /// share — a simple deterministic showback split.
    pub monthly_dollars: f64,
}

/// Everything a run produced.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentReport {
    pub arch: ArchKind,
    pub qps: f64,
    pub requests: u64,
    pub duration_secs: f64,
    pub tiers: Vec<TierReport>,
    pub total_cost: CostBreakdown,
    pub total_cores: f64,
    pub total_mem_gb: f64,
    /// External-cache hit ratio over reads (0 for Base).
    pub cache_hit_ratio: f64,
    pub block_cache_hit_ratio: f64,
    pub read_latency_p50_us: u64,
    pub read_latency_p99_us: u64,
    /// Extreme-tail read latency (99.9th percentile).
    pub read_latency_p999_us: u64,
    pub write_latency_p50_us: u64,
    pub write_latency_p99_us: u64,
    pub write_latency_p999_us: u64,
    /// Reads that returned a value older than the latest committed write.
    pub stale_reads: u64,
    pub version_checks: u64,
    pub sql_statements: u64,
    /// Raft leader elections triggered by requests hitting dead leaders.
    pub failovers: u64,
    /// Reads served from storage because the owning cache shard was down.
    pub degraded_reads: u64,
    /// Cache-RPC retries performed against unresponsive shards.
    pub cache_retries: u64,
    /// Storage fills elided by single-flight coalescing.
    pub stampede_suppressed: u64,
    /// Measured requests whose end-to-end latency blew the request deadline.
    pub deadline_exceeded: u64,
    /// Cache shards crashed / restarted during the measured window.
    pub cache_crashes: u64,
    pub cache_restarts: u64,
    /// Fault-fabric messages delivered / dropped during the measured window.
    pub net_delivered: u64,
    pub net_dropped: u64,
    /// Remote-RPC frames issued while batching was enabled (0 otherwise).
    pub rpc_batches: u64,
    /// Keys that traveled in those frames (openers + followers).
    pub batched_rpc_keys: u64,
    /// Mean keys per frame; 0.0 when no frames were issued.
    pub mean_batch_size: f64,
    /// Frame-size histogram: `(size, frames)`, sorted by size ascending.
    pub batch_size_counts: Vec<(u32, u64)>,
    /// Elastic-provisioning activity (all zero when the controller is off).
    pub elastic_decisions: u64,
    pub elastic_plan_changes: u64,
    pub elastic_resizes: u64,
    pub elastic_shards_drained: u64,
    pub elastic_shards_restored: u64,
    pub elastic_migrated_entries: u64,
    pub elastic_migrated_bytes: u64,
    /// Peak ~1-virtual-second-window cores over the measured run. 0.0 unless
    /// the run tracked load windows (diurnal load or elastic enabled) — it's
    /// what static provisioning must pay for all day.
    pub peak_window_cores: f64,
    /// Time-averaged configured cache capacity over the measured run (0.0
    /// unless windows were tracked) — what elastic billing charges for.
    pub elastic_mean_cache_bytes: f64,
    /// Largest configured cache capacity seen during the measured run.
    pub elastic_peak_cache_bytes: u64,
    /// Durability/recovery activity (all zero when durability is off).
    pub wal_appends: u64,
    pub wal_fsync_batches: u64,
    /// Bytes written by snapshots during the measured window.
    pub snapshot_bytes: u64,
    /// Pod recoveries (snapshot load + WAL replay) in the measured window.
    pub recoveries: u64,
    /// Summed simulated recovery wall time across those recoveries.
    pub recovery_time_us: u64,
    /// WAL records replayed during recoveries.
    pub replayed_entries: u64,
    /// Un-fsynced WAL records discarded by crashes (re-replicated from the
    /// quorum, never acked-and-lost).
    pub lost_tail_entries: u64,
    /// Estimated CPU to re-heat block-cache blocks lost to crashes.
    pub cold_refill_cpu_us: u64,
    /// Bytes resident on the storage SSD tier (snapshots + WALs) at run
    /// end — the $/GB billing basis.
    pub ssd_resident_bytes: u64,
    /// SLO burn-rate alerts fired during the measured run (0 unless
    /// `observability` is enabled).
    pub slo_alerts_fired: u64,
    /// Exact nearest-rank p99 over every measured latency, microseconds
    /// (0 unless `observability` is enabled) — the tail-attribution cut.
    pub tail_p99_threshold_us: u64,
    /// Per-cause tail attribution `(cause, requests, excess_µs)` for the
    /// slowest-1% requests; empty unless `observability` is enabled. Every
    /// tail request carries exactly one cause, so the excess columns sum to
    /// the total measured tail excess.
    pub tail_causes: Vec<(String, u64, u64)>,
    /// In-process L0 hot-key tier activity (all zero unless
    /// [`crate::config::L0Config`] is enabled on the deployment).
    pub l0_hits: u64,
    pub l0_misses: u64,
    /// Fraction of measured reads served straight from the L0 tier.
    pub l0_hit_ratio: f64,
    /// Values accepted / refused by the L0's TinyLFU admission gate.
    pub l0_admitted: u64,
    pub l0_rejected: u64,
    /// Write-path invalidations that removed an older resident entry.
    pub l0_invalidations: u64,
    /// Refills dropped because the resident entry was already newer.
    pub l0_stale_admits_dropped: u64,
    /// L0-served reads whose value was older than the latest committed
    /// write. Invalidate-first keeps this at zero by construction;
    /// serve-stale trades these for invalidation CPU.
    pub l0_stale_serves: u64,
    /// Age of L0-served entries at serve time, microseconds. Under
    /// serve-stale the p99 is (within expiry granularity) the measured
    /// staleness bound.
    pub l0_age_p50_us: u64,
    pub l0_age_p99_us: u64,
    /// TTL control-plane activity (all zero while the plane is off).
    pub ttl_decisions: u64,
    /// Decisions that changed some tenant's adopted TTL.
    pub ttl_changes: u64,
    /// Entries reclaimed by heartbeat expiry sweeps.
    pub expired_entries: u64,
    /// CPU charged for those sweeps, microseconds.
    pub expiry_sweep_cpu_us: u64,
    /// Adopted TTL per tenant at run end, seconds (0.0 = no decision yet);
    /// empty while the plane is off.
    pub ttl_current_secs: Vec<f64>,
    /// Time-averaged TTL-aware resident cache bytes over the measured run
    /// (0.0 unless the plane tracked windows) — the memory basis TTL
    /// billing charges for.
    pub ttl_mean_resident_bytes: f64,
    /// Per-tenant accounting (empty unless the run had a
    /// [`workloads::TenantMix`]).
    pub tenants: Vec<TenantReport>,
}

impl ExperimentReport {
    /// Total 8-vCPU VMs the deployment needs at 70% peak utilization.
    pub fn total_vms(&self) -> u64 {
        self.tiers.iter().map(|t| t.vms_at_target_util).sum()
    }

    /// Dollars per million requests (normalizes across QPS).
    pub fn cost_per_million_requests(&self) -> f64 {
        let monthly_requests = self.qps * 30.0 * 24.0 * 3600.0;
        if monthly_requests == 0.0 {
            return 0.0;
        }
        self.total_cost.total() / monthly_requests * 1e6
    }

    /// `other.total / self.total` — how many times cheaper `self` is.
    pub fn saving_vs(&self, other: &ExperimentReport) -> f64 {
        other.total_cost.total() / self.total_cost.total()
    }

    pub fn tier(&self, name: &str) -> Option<&TierReport> {
        self.tiers.iter().find(|t| t.name == name)
    }

    /// Memory's share of total cost (§5.3 reports 6–22% for Linked).
    pub fn memory_cost_fraction(&self) -> f64 {
        self.total_cost.memory_fraction()
    }

    /// Fraction of measured requests that met their deadline — the
    /// availability figure the fault ablation sweeps. 1.0 when no deadline
    /// pressure was observed.
    pub fn availability(&self) -> f64 {
        if self.requests == 0 {
            return 1.0;
        }
        1.0 - self.deadline_exceeded as f64 / self.requests as f64
    }
}

/// Configuration of one KV cost run.
#[derive(Debug, Clone)]
pub struct KvExperimentConfig {
    pub deployment: DeploymentConfig,
    pub workload: KvWorkloadConfig,
    /// Request arrival rate (drives the virtual clock).
    pub qps: f64,
    /// Requests served before meters reset.
    pub warmup_requests: u64,
    /// Requests measured.
    pub requests: u64,
    /// Serve one read per key before warmup so caches start resident —
    /// approximating the long steady state the paper measures without
    /// simulating millions of warmup requests.
    pub prewarm: bool,
    /// Fault injection: crash every region's Raft leader after this many
    /// measured requests. The runner recovers via elections (each failed
    /// request pays a detection+election latency penalty), modeling the
    /// availability blip of a storage-node failure.
    pub crash_leaders_at_request: Option<u64>,
    /// Time-scheduled fault injection, in absolute virtual time from run
    /// start (warmup included; requests arrive every `1/qps` seconds).
    /// Node ids below [`STORAGE_FAULT_NODE_BASE`] are cache shards; ids at
    /// or above it select storage region `id - STORAGE_FAULT_NODE_BASE`
    /// (crash = kill its Raft leader, restart = re-elect).
    pub cache_fault_schedule: Option<FaultSchedule>,
    /// Trace every Nth measured request (`Some(1)` = every request). Each
    /// sampled request gets a deterministic trace id derived from the
    /// workload seed and its measured index, and every hop it takes records
    /// a span. `None` disables tracing entirely (the default everywhere),
    /// leaving the serve paths byte-identical to an uninstrumented run.
    pub trace_sample_every: Option<u64>,
    /// Diurnal load modulation: scales the instantaneous arrival rate by
    /// `schedule.multiplier(t)` (requests arrive every `1/(qps·m)` seconds),
    /// so `cfg.qps` becomes the *peak* rate. `None` (the default) keeps the
    /// classic fixed-interval clock byte-for-byte.
    pub diurnal: Option<workloads::DiurnalSchedule>,
    /// Run-time observability (heartbeat time series, SLO burn-rate alerts,
    /// slowest-1% cause attribution). `None` (the default everywhere) keeps
    /// the runner and every artifact byte-identical to an uninstrumented
    /// run; `Some` additionally captures per-bucket latency exemplars for
    /// traced requests and fills the report's `slo_*`/`tail_*` fields.
    pub observability: Option<crate::obs::ObsConfig>,
    /// Multi-tenant request mix: each tenant drives its own workload over a
    /// namespaced slice of the key space, with optional churn/storm stress
    /// schedules, and the TTL plane (when on) tunes each tenant separately.
    /// `None` (the default everywhere) keeps the classic single-workload
    /// request stream byte-for-byte; `cfg.workload` is ignored when set.
    pub tenants: Option<workloads::TenantMix>,
    pub pricing: Pricing,
}

/// Detection + election latency a request observes when it trips over a
/// dead leader (lease expiry + campaign; TiKV-like deployments see hundreds
/// of milliseconds).
pub const FAILOVER_PENALTY: SimDuration = SimDuration::from_millis(300);

impl KvExperimentConfig {
    /// A paper-shaped configuration with a sensible default request budget.
    pub fn paper(arch: ArchKind, workload: KvWorkloadConfig) -> Self {
        KvExperimentConfig {
            deployment: DeploymentConfig::paper(arch),
            workload,
            qps: 100_000.0,
            warmup_requests: 150_000,
            requests: 150_000,
            prewarm: true,
            crash_leaders_at_request: None,
            cache_fault_schedule: None,
            trace_sample_every: None,
            diurnal: None,
            observability: None,
            tenants: None,
            pricing: Pricing::default(),
        }
    }
}

/// `FaultSchedule` node ids at or above this base address storage regions
/// (`id - base` = region index); below it they address cache shards.
pub const STORAGE_FAULT_NODE_BASE: u32 = 1 << 16;

/// Apply one scheduled fault event to the deployment: cache-shard ids are
/// handled by the deployment (crash wipes the shard), storage ids crash the
/// region's Raft leader (recovery happens through the runner's failover
/// path or an explicit `Restart` event), and everything else (partitions,
/// latency spikes, loss windows) acts on the app↔cache fault fabric.
pub(crate) fn apply_fault(dep: &mut Deployment, ev: &FaultEvent, now: SimTime) {
    match ev.kind {
        FaultKind::Crash { node } if node.0 < STORAGE_FAULT_NODE_BASE => {
            dep.crash_cache_shard(node.0 as usize);
        }
        FaultKind::Restart { node } if node.0 < STORAGE_FAULT_NODE_BASE => {
            dep.restart_cache_shard(node.0 as usize);
        }
        FaultKind::Crash { node } => {
            let r = (node.0 - STORAGE_FAULT_NODE_BASE) as usize;
            if r < dep.cluster.region_count() {
                if let Some(slot) = dep.cluster.region(r).leader_slot() {
                    if dep.cluster.durability_enabled() {
                        // With durable storage the crash takes down the whole
                        // pod hosting the leader: memtables, block cache and
                        // the un-fsynced WAL tail are lost, and every region
                        // replica on that pod goes down with it. The paired
                        // Restart event replays snapshot+WAL and rejoins.
                        let pod = dep.cluster.region(r).replicas[slot];
                        dep.cluster.crash_pod(pod);
                        dep.crashed_storage_pods.insert(r, pod);
                    } else {
                        dep.cluster.region_mut(r).crash(slot);
                    }
                }
            }
        }
        FaultKind::Restart { node } => {
            let r = (node.0 - STORAGE_FAULT_NODE_BASE) as usize;
            if r < dep.cluster.region_count() {
                if let Some(pod) = dep.crashed_storage_pods.remove(&r) {
                    dep.cluster.recover_pod(pod, now);
                } else {
                    let _ = dep.cluster.region_mut(r).elect(now);
                }
            }
        }
        _ => ev.apply_to(&mut dep.net),
    }
}

/// Shared state of a run in progress (also used by the Unity runner).
#[derive(Debug)]
pub(crate) struct RunMetrics {
    pub read_latency: Histogram,
    pub write_latency: Histogram,
    pub reads: u64,
    pub writes: u64,
    pub cache_hits: u64,
    pub stale_reads: u64,
    pub version_checks: u64,
    pub sql_statements: u64,
    pub failovers: u64,
    pub deadline_exceeded: u64,
    /// Measured reads served by the L0 tier (0 unless the tier is on).
    pub l0_hits: u64,
    /// L0-served reads that returned a stale value (serve-stale mode).
    pub l0_stale_serves: u64,
    /// Age of L0-served entries at serve time, nanoseconds.
    pub l0_age: Histogram,
}

impl RunMetrics {
    pub fn new() -> Self {
        RunMetrics {
            read_latency: Histogram::new(),
            write_latency: Histogram::new(),
            reads: 0,
            writes: 0,
            cache_hits: 0,
            stale_reads: 0,
            version_checks: 0,
            sql_statements: 0,
            failovers: 0,
            deadline_exceeded: 0,
            l0_hits: 0,
            l0_stale_serves: 0,
            l0_age: Histogram::new(),
        }
    }

    /// Count `latency` against the per-request deadline budget.
    pub fn check_deadline(&mut self, latency: SimDuration, deadline: SimDuration) {
        if latency > deadline {
            self.deadline_exceeded += 1;
        }
    }
}

/// Assemble the report from a finished deployment + metrics.
pub(crate) fn build_report(
    dep: &Deployment,
    metrics: &RunMetrics,
    qps: f64,
    requests: u64,
    duration: SimDuration,
    pricing: &Pricing,
) -> ExperimentReport {
    let cfg = &dep.config;
    let mut tiers = Vec::new();

    let app_mem = cfg.app_servers as u64
        * (cfg.app_base_mem_bytes
            + if cfg.arch.has_linked_cache() {
                cfg.linked_cache_bytes_per_server
            } else {
                0
            }
            // The L0 duplicates its few MB in every app server; bill them.
            + if cfg.arch.supports_l0() {
                cfg.l0.as_ref().map_or(0, |c| c.bytes_per_server)
            } else {
                0
            });
    tiers.push(TierReport::from_meter(
        "app",
        cfg.app_servers,
        &dep.app_cpu_total(),
        duration,
        app_mem,
        0,
        pricing,
    ));

    if cfg.arch == ArchKind::Remote {
        let mem = cfg.remote_cache_nodes as u64 * (cfg.remote_cache_bytes_per_node + (1 << 30));
        tiers.push(TierReport::from_meter(
            "remote_cache",
            cfg.remote_cache_nodes,
            &dep.cache_cpu_total(),
            duration,
            mem,
            0,
            pricing,
        ));
    }

    tiers.push(TierReport::from_meter(
        "sql_frontend",
        cfg.cluster.frontends,
        &dep.cluster.frontend_cpu_total(),
        duration,
        cfg.cluster.frontends as u64 * cfg.cluster.frontend_mem_bytes,
        0,
        pricing,
    ));

    let storage_disk = dep.cluster.primary_data_bytes() * cfg.cluster.replicas as u64;
    let mut storage_tier = TierReport::from_meter(
        "storage",
        cfg.cluster.storage_nodes,
        &dep.cluster.storage_cpu_total(),
        duration,
        cfg.cluster.storage_nodes as u64 * dep.cluster.storage_mem_bytes_per_node(),
        storage_disk,
        pricing,
    );
    if dep.cluster.durability_enabled() {
        // The WAL + snapshots live on a log-structured SSD tier billed at
        // $/GB between DRAM and cold disk.
        let ssd_gb = dep.cluster.ssd_resident_bytes() as f64 / 1e9;
        storage_tier.cost = pricing.monthly(
            &ResourceUsage::new(
                storage_tier.cores,
                storage_tier.mem_gb,
                storage_tier.disk_gb,
            )
            .with_ssd(ssd_gb),
        );
    }
    tiers.push(storage_tier);

    let total_cost: CostBreakdown = tiers.iter().map(|t| t.cost).sum();
    let total_cores: f64 = tiers.iter().map(|t| t.cores).sum();
    let total_mem_gb: f64 = tiers.iter().map(|t| t.mem_gb).sum();

    let durability = dep.cluster.durability_stats();
    let l0 = dep.l0_stats_total();
    let rpc_batches = dep.metrics.counter_value(batch_counters::RPC_BATCHES);
    let batched_rpc_keys = dep.metrics.counter_value(batch_counters::BATCHED_RPC_KEYS);
    let mut batch_size_counts: Vec<(u32, u64)> = dep
        .batch_size_counts
        .iter()
        .map(|(&s, &c)| (s, c))
        .collect();
    batch_size_counts.sort_unstable();

    ExperimentReport {
        arch: cfg.arch,
        qps,
        requests,
        duration_secs: duration.as_secs_f64(),
        tiers,
        total_cost,
        total_cores,
        total_mem_gb,
        cache_hit_ratio: if metrics.reads == 0 {
            0.0
        } else {
            metrics.cache_hits as f64 / metrics.reads as f64
        },
        block_cache_hit_ratio: dep.cluster.block_cache_hit_ratio(),
        read_latency_p50_us: metrics.read_latency.p50() / 1_000,
        read_latency_p99_us: metrics.read_latency.p99() / 1_000,
        read_latency_p999_us: metrics.read_latency.p999() / 1_000,
        write_latency_p50_us: metrics.write_latency.p50() / 1_000,
        write_latency_p99_us: metrics.write_latency.p99() / 1_000,
        write_latency_p999_us: metrics.write_latency.p999() / 1_000,
        stale_reads: metrics.stale_reads,
        version_checks: metrics.version_checks,
        sql_statements: metrics.sql_statements,
        failovers: metrics.failovers,
        degraded_reads: dep.metrics.counter_value(fault_counters::DEGRADED_READS),
        cache_retries: dep.metrics.counter_value(fault_counters::RETRIES),
        stampede_suppressed: dep
            .metrics
            .counter_value(fault_counters::STAMPEDE_SUPPRESSED),
        deadline_exceeded: metrics.deadline_exceeded,
        cache_crashes: dep.metrics.counter_value(fault_counters::CACHE_CRASHES),
        cache_restarts: dep.metrics.counter_value(fault_counters::CACHE_RESTARTS),
        net_delivered: dep.net.delivered,
        net_dropped: dep.net.dropped,
        rpc_batches,
        batched_rpc_keys,
        mean_batch_size: if rpc_batches == 0 {
            0.0
        } else {
            batched_rpc_keys as f64 / rpc_batches as f64
        },
        batch_size_counts,
        elastic_decisions: dep.elastic.decisions(),
        elastic_plan_changes: dep.elastic.plan_changes(),
        elastic_resizes: dep.metrics.counter_value(elastic_counters::RESIZES),
        elastic_shards_drained: dep.metrics.counter_value(elastic_counters::SHARDS_DRAINED),
        elastic_shards_restored: dep.metrics.counter_value(elastic_counters::SHARDS_RESTORED),
        elastic_migrated_entries: dep
            .metrics
            .counter_value(elastic_counters::MIGRATED_ENTRIES),
        elastic_migrated_bytes: dep.metrics.counter_value(elastic_counters::MIGRATED_BYTES),
        // Window-derived figures are filled post-hoc by the KV runner; other
        // runners (Unity/session/trace) don't track load windows.
        peak_window_cores: 0.0,
        elastic_mean_cache_bytes: 0.0,
        elastic_peak_cache_bytes: 0,
        wal_appends: durability.wal_appends,
        wal_fsync_batches: durability.fsync_batches,
        snapshot_bytes: durability.snapshot_bytes,
        recoveries: durability.recoveries,
        recovery_time_us: durability.recovery_time_us,
        replayed_entries: durability.replayed_entries,
        lost_tail_entries: durability.lost_tail_entries,
        cold_refill_cpu_us: durability.cold_refill_cpu_us,
        ssd_resident_bytes: dep.cluster.ssd_resident_bytes(),
        // Observability figures are filled post-hoc by the KV runner when
        // `cfg.observability` is enabled.
        slo_alerts_fired: 0,
        tail_p99_threshold_us: 0,
        tail_causes: Vec::new(),
        l0_hits: l0.hits,
        l0_misses: l0.misses,
        l0_hit_ratio: if l0.hits + l0.misses == 0 {
            0.0
        } else {
            l0.hits as f64 / (l0.hits + l0.misses) as f64
        },
        l0_admitted: l0.admitted,
        l0_rejected: l0.rejected,
        l0_invalidations: l0.invalidations,
        l0_stale_admits_dropped: l0.stale_admits_dropped,
        l0_stale_serves: metrics.l0_stale_serves,
        l0_age_p50_us: metrics.l0_age.p50() / 1_000,
        l0_age_p99_us: metrics.l0_age.p99() / 1_000,
        ttl_decisions: dep.metrics.counter_value(ttl_counters::DECISIONS),
        ttl_changes: dep.metrics.counter_value(ttl_counters::TTL_CHANGES),
        expired_entries: dep.metrics.counter_value(ttl_counters::EXPIRED_ENTRIES),
        expiry_sweep_cpu_us: dep.metrics.counter_value(ttl_counters::SWEEP_CPU_NANOS) / 1_000,
        ttl_current_secs: if dep.ttl_enabled() {
            dep.ttl
                .iter()
                .map(|c| c.current_plan().map_or(0.0, |p| p.ttl_secs))
                .collect()
        } else {
            Vec::new()
        },
        // Window-derived; filled post-hoc by the KV runner, like the
        // elastic figures above.
        ttl_mean_resident_bytes: 0.0,
        // Filled post-hoc by the KV runner when the run had a tenant mix.
        tenants: Vec::new(),
    }
}

/// Re-bill the cache tier's memory at its *time-averaged* configured
/// capacity instead of the static configured maximum — the dollars an
/// elastic deployment actually pays. Compute costs already track the
/// measured busy time, so only the memory line moves.
fn apply_elastic_billing(
    report: &mut ExperimentReport,
    dep: &Deployment,
    mean_cache_bytes: f64,
    pricing: &Pricing,
) {
    let cfg = &dep.config;
    let (tier_name, base_mem) = match cfg.arch {
        ArchKind::Remote => ("remote_cache", cfg.remote_cache_nodes as u64 * (1 << 30)),
        _ if cfg.arch.has_linked_cache() => {
            ("app", cfg.app_servers as u64 * cfg.app_base_mem_bytes)
        }
        _ => return,
    };
    if let Some(t) = report.tiers.iter_mut().find(|t| t.name == tier_name) {
        t.mem_gb = (base_mem as f64 + mean_cache_bytes) / 1e9;
        t.cost = pricing.monthly(&ResourceUsage::new(t.cores, t.mem_gb, t.disk_gb));
    }
    report.total_cost = report.tiers.iter().map(|t| t.cost).sum();
    report.total_mem_gb = report.tiers.iter().map(|t| t.mem_gb).sum();
}

/// Re-bill the cache tier's memory at the time-averaged *resident* bytes —
/// what a TTL-governed cache actually holds live. Mirrors
/// [`apply_elastic_billing`]: with expiry in play, configured capacity
/// overstates the footprint (expired entries hold no value, and sweeps
/// return their bytes), so time-averaged residency is the honest basis.
fn apply_ttl_billing(
    report: &mut ExperimentReport,
    dep: &Deployment,
    mean_resident_bytes: f64,
    pricing: &Pricing,
) {
    let cfg = &dep.config;
    let (tier_name, base_mem) = match cfg.arch {
        ArchKind::Remote => ("remote_cache", cfg.remote_cache_nodes as u64 * (1 << 30)),
        _ if cfg.arch.has_linked_cache() => {
            ("app", cfg.app_servers as u64 * cfg.app_base_mem_bytes)
        }
        _ => return,
    };
    if let Some(t) = report.tiers.iter_mut().find(|t| t.name == tier_name) {
        t.mem_gb = (base_mem as f64 + mean_resident_bytes) / 1e9;
        t.cost = pricing.monthly(&ResourceUsage::new(t.cores, t.mem_gb, t.disk_gb));
    }
    report.total_cost = report.tiers.iter().map(|t| t.cost).sum();
    report.total_mem_gb = report.tiers.iter().map(|t| t.mem_gb).sum();
}

/// Run `f`, recovering from a dead Raft leader by electing a replacement
/// and retrying once. The retried request carries the detection+election
/// penalty in its latency.
pub(crate) fn with_failover<T>(
    dep: &mut Deployment,
    now: SimTime,
    metrics: &mut RunMetrics,
    measuring: bool,
    mut f: impl FnMut(&mut Deployment, SimTime) -> StoreResult<T>,
) -> StoreResult<(T, SimDuration)> {
    match f(dep, now) {
        Ok(v) => Ok((v, SimDuration::ZERO)),
        Err(StoreError::NoLeader { region }) => {
            dep.cluster
                .region_mut(region as usize)
                .elect(now + FAILOVER_PENALTY)?;
            if measuring {
                metrics.failovers += 1;
            }
            let v = f(dep, now + FAILOVER_PENALTY)?;
            Ok((v, FAILOVER_PENALTY))
        }
        Err(e) => Err(e),
    }
}

/// Ring-buffer capacity of the per-run trace sink when tracing is on:
/// enough for the tail of any run at full sampling, bounded regardless of
/// request count.
pub const TRACE_SINK_CAPACITY: usize = 8_192;

/// What a traced run hands back next to its [`ExperimentReport`].
#[derive(Debug, Clone)]
pub struct TelemetryBundle {
    /// Every report field, fault counter, and latency distribution as
    /// named, labeled instruments (Prometheus-text / JSONL exportable).
    pub registry: telemetry::Registry,
    /// The retained trace spans, in recording order (ring-bounded tail).
    pub spans: Vec<telemetry::SpanRecord>,
    /// JSONL dump of the retained trace spans (one span per line).
    pub traces_jsonl: String,
    /// Collapsed-stack CPU attribution (`arch;tier;category nanos`),
    /// folded from the same meters the report's cost accounting uses.
    pub profile: telemetry::CpuProfile,
    /// Time series, SLO alerts and tail attribution — `None` unless
    /// `cfg.observability` was enabled.
    pub obs: Option<crate::obs::ObsArtifacts>,
}

/// Map a request outcome to the status of its root span.
fn outcome_status(out: &crate::deployment::ServeOutcome) -> telemetry::SpanStatus {
    if out.degraded {
        telemetry::SpanStatus::Degraded
    } else if out.coalesced {
        telemetry::SpanStatus::Coalesced
    } else {
        telemetry::SpanStatus::Ok
    }
}

/// Fold every tier's CPU meter into one collapsed-stack profile. Totals per
/// stack equal the meters' busy nanoseconds exactly, so per-tier cores in
/// the report equal `total_matching("{arch};{tier}") / duration_ns`.
pub fn cpu_profile(dep: &Deployment) -> telemetry::CpuProfile {
    let arch = dep.config.arch.label();
    let mut profile = telemetry::CpuProfile::new();
    dep.app_cpu_total().fold_into(&mut profile, &[arch, "app"]);
    if dep.config.arch == ArchKind::Remote {
        dep.cache_cpu_total()
            .fold_into(&mut profile, &[arch, "remote_cache"]);
    }
    dep.cluster
        .frontend_cpu_total()
        .fold_into(&mut profile, &[arch, "sql_frontend"]);
    dep.cluster
        .storage_cpu_total()
        .fold_into(&mut profile, &[arch, "storage"]);
    profile
}

/// Export a finished run into a metrics registry: report-level gauges and
/// counters, the deployment's fault counters, cache statistics, and the
/// measured latency distributions.
fn export_registry(
    report: &ExperimentReport,
    dep: &Deployment,
    metrics: &RunMetrics,
    obs: Option<&crate::obs::ObsArtifacts>,
) -> telemetry::Registry {
    use telemetry::InstrumentKind::{Counter, Gauge, Summary};
    let mut reg = telemetry::Registry::new();
    let arch = dep.config.arch.label();
    let labels: &[(&str, &str)] = &[("arch", arch)];

    reg.describe(
        "dcache_requests_total",
        Counter,
        "Measured requests served.",
    );
    reg.set_counter("dcache_requests_total", labels, report.requests);
    reg.set_counter("dcache_reads_total", labels, metrics.reads);
    reg.set_counter("dcache_writes_total", labels, metrics.writes);
    reg.set_counter("dcache_stale_reads_total", labels, report.stale_reads);
    reg.set_counter("dcache_version_checks_total", labels, report.version_checks);
    reg.set_counter("dcache_sql_statements_total", labels, report.sql_statements);
    reg.set_counter("dcache_failovers_total", labels, report.failovers);
    reg.set_counter(
        "dcache_deadline_exceeded_total",
        labels,
        report.deadline_exceeded,
    );
    reg.set_counter("dcache_net_delivered_total", labels, report.net_delivered);
    reg.set_counter("dcache_net_dropped_total", labels, report.net_dropped);
    reg.describe(
        "dcache_rpc_batches_total",
        Counter,
        "Coalesced remote-RPC frames issued (batching enabled only).",
    );
    reg.set_counter("dcache_rpc_batches_total", labels, report.rpc_batches);
    reg.set_counter(
        "dcache_batched_rpc_keys_total",
        labels,
        report.batched_rpc_keys,
    );
    reg.set_gauge("dcache_mean_batch_size", labels, report.mean_batch_size);

    reg.describe(
        "dcache_monthly_cost_dollars",
        Gauge,
        "Total monthly cost of the deployment.",
    );
    reg.set_gauge(
        "dcache_monthly_cost_dollars",
        labels,
        report.total_cost.total(),
    );
    reg.set_gauge("dcache_cache_hit_ratio", labels, report.cache_hit_ratio);
    reg.set_gauge(
        "dcache_block_cache_hit_ratio",
        labels,
        report.block_cache_hit_ratio,
    );
    reg.set_gauge("dcache_total_cores", labels, report.total_cores);
    reg.set_gauge("dcache_total_mem_gb", labels, report.total_mem_gb);
    for tier in &report.tiers {
        let tier_labels: &[(&str, &str)] = &[("arch", arch), ("tier", &tier.name)];
        reg.set_gauge("dcache_tier_cores", tier_labels, tier.cores);
        reg.set_gauge("dcache_tier_cost_dollars", tier_labels, tier.cost.total());
        reg.set_gauge(
            "dcache_tier_vms_at_target_util",
            tier_labels,
            tier.vms_at_target_util as f64,
        );
    }

    reg.describe(
        "dcache_read_latency_ns",
        Summary,
        "End-to-end read latency (virtual nanoseconds).",
    );
    if !metrics.read_latency.is_empty() {
        reg.set_summary(
            "dcache_read_latency_ns",
            labels,
            metrics.read_latency.summary(),
        );
    }
    if !metrics.write_latency.is_empty() {
        reg.set_summary(
            "dcache_write_latency_ns",
            labels,
            metrics.write_latency.summary(),
        );
    }

    // Elastic-provisioning telemetry, only when the controller is on (so
    // default runs export byte-identical registries).
    if dep.elastic.enabled() {
        reg.describe(
            "dcache_elastic_cache_capacity_bytes",
            Gauge,
            "Configured capacity of the elastic-managed cache tier at run end.",
        );
        reg.set_gauge(
            "dcache_elastic_cache_capacity_bytes",
            labels,
            dep.elastic_cache_capacity_bytes() as f64,
        );
        reg.set_gauge(
            "dcache_elastic_mean_cache_bytes",
            labels,
            report.elastic_mean_cache_bytes,
        );
        reg.set_gauge(
            "dcache_elastic_peak_cache_bytes",
            labels,
            report.elastic_peak_cache_bytes as f64,
        );
        reg.set_gauge("dcache_peak_window_cores", labels, report.peak_window_cores);
        if let Some(p) = dep.elastic.current_plan() {
            reg.describe(
                "dcache_elastic_plan_cache_bytes",
                Gauge,
                "Capacity target of the most recent provisioning plan.",
            );
            reg.set_gauge(
                "dcache_elastic_plan_cache_bytes",
                labels,
                p.cache_bytes as f64,
            );
            reg.set_gauge("dcache_elastic_plan_shards", labels, p.shards as f64);
            reg.set_gauge(
                "dcache_elastic_plan_monthly_dollars",
                labels,
                p.monthly_dollars,
            );
        }
        reg.set_counter(
            "dcache_elastic_decisions_total",
            labels,
            report.elastic_decisions,
        );
        reg.set_counter(
            "dcache_elastic_resizes_total",
            labels,
            report.elastic_resizes,
        );
        reg.set_counter(
            "dcache_elastic_migrated_entries_total",
            labels,
            report.elastic_migrated_entries,
        );
        reg.set_counter(
            "dcache_elastic_migrated_bytes_total",
            labels,
            report.elastic_migrated_bytes,
        );
        reg.set_gauge(
            "dcache_elastic_profiler_sampling_rate",
            labels,
            dep.elastic.profiler().rate(),
        );
        reg.set_gauge(
            "dcache_elastic_profiler_tracked_keys",
            labels,
            dep.elastic.profiler().tracked_keys() as f64,
        );
    }

    // Durability/recovery telemetry, only when the WAL layer is on (so
    // default runs export byte-identical registries).
    if dep.cluster.durability_enabled() {
        reg.describe(
            "dcache_durability_wal_appends_total",
            Counter,
            "WAL records appended across storage pods.",
        );
        reg.set_counter(
            "dcache_durability_wal_appends_total",
            labels,
            report.wal_appends,
        );
        reg.set_counter(
            "dcache_durability_fsync_batches_total",
            labels,
            report.wal_fsync_batches,
        );
        reg.set_counter(
            "dcache_durability_snapshot_bytes_total",
            labels,
            report.snapshot_bytes,
        );
        reg.describe(
            "dcache_durability_recoveries_total",
            Counter,
            "Storage-pod recoveries (snapshot load + WAL replay).",
        );
        reg.set_counter(
            "dcache_durability_recoveries_total",
            labels,
            report.recoveries,
        );
        reg.set_counter(
            "dcache_durability_replayed_entries_total",
            labels,
            report.replayed_entries,
        );
        reg.set_counter(
            "dcache_durability_lost_tail_entries_total",
            labels,
            report.lost_tail_entries,
        );
        reg.set_gauge(
            "dcache_durability_recovery_time_us",
            labels,
            report.recovery_time_us as f64,
        );
        reg.set_gauge(
            "dcache_durability_cold_refill_cpu_us",
            labels,
            report.cold_refill_cpu_us as f64,
        );
        reg.set_gauge(
            "dcache_durability_ssd_resident_bytes",
            labels,
            report.ssd_resident_bytes as f64,
        );
    }

    // Observability telemetry, only when the layer is on (so default runs
    // export byte-identical registries).
    if let Some(art) = obs {
        reg.describe(
            "dcache_latency_p999_us",
            Gauge,
            "99.9th-percentile end-to-end latency (microseconds).",
        );
        let read_labels: &[(&str, &str)] = &[("arch", arch), ("op", "read")];
        let write_labels: &[(&str, &str)] = &[("arch", arch), ("op", "write")];
        reg.set_gauge(
            "dcache_latency_p999_us",
            read_labels,
            report.read_latency_p999_us as f64,
        );
        reg.set_gauge(
            "dcache_latency_p999_us",
            write_labels,
            report.write_latency_p999_us as f64,
        );
        reg.describe(
            "dcache_slo_alerts_total",
            Counter,
            "SLO burn-rate alerts fired during the measured run.",
        );
        for rule in ["availability", "latency_p99_budget"] {
            let rule_labels: &[(&str, &str)] = &[("arch", arch), ("rule", rule)];
            reg.set_counter(
                "dcache_slo_alerts_total",
                rule_labels,
                art.alerts.iter().filter(|a| a.rule == rule).count() as u64,
            );
        }
        reg.describe(
            "dcache_tail_excess_us_total",
            Counter,
            "Latency excess above the p99 threshold, attributed per cause.",
        );
        for c in &art.tail.causes {
            let cause_labels: &[(&str, &str)] = &[("arch", arch), ("cause", c.cause.label())];
            reg.set_counter("dcache_tail_requests_total", cause_labels, c.count);
            reg.set_counter("dcache_tail_excess_us_total", cause_labels, c.excess_us);
        }
        reg.set_gauge(
            "dcache_tail_p99_threshold_us",
            labels,
            art.tail.threshold_us as f64,
        );
        reg.set_gauge(
            "dcache_obs_timeseries_samples",
            labels,
            art.timeseries.len() as f64,
        );
        reg.set_counter(
            "dcache_obs_timeseries_dropped_total",
            labels,
            art.timeseries.dropped(),
        );
    }

    // L0 hot-key-tier telemetry, only when the tier is on (so default runs
    // export byte-identical registries).
    if dep.l0_enabled() {
        let l0 = dep.l0_stats_total();
        reg.describe(
            l0_counters::HITS,
            Counter,
            "Reads served straight from the in-process L0 hot-key tier.",
        );
        reg.set_counter(l0_counters::HITS, labels, l0.hits);
        reg.set_counter(l0_counters::MISSES, labels, l0.misses);
        reg.set_counter(l0_counters::ADMITTED, labels, l0.admitted);
        reg.set_counter(l0_counters::REJECTED, labels, l0.rejected);
        reg.set_counter(
            l0_counters::STALE_ADMITS_DROPPED,
            labels,
            l0.stale_admits_dropped,
        );
        reg.set_counter(l0_counters::INVALIDATIONS, labels, l0.invalidations);
        reg.set_counter(
            l0_counters::INVALIDATION_MISSES,
            labels,
            l0.invalidation_misses,
        );
        reg.set_gauge("dcache_l0_hit_ratio", labels, report.l0_hit_ratio);
        reg.describe(
            "dcache_l0_stale_serves_total",
            Counter,
            "L0-served reads older than the latest committed write.",
        );
        reg.set_counter(
            "dcache_l0_stale_serves_total",
            labels,
            report.l0_stale_serves,
        );
        reg.set_gauge("dcache_l0_age_p50_us", labels, report.l0_age_p50_us as f64);
        reg.set_gauge("dcache_l0_age_p99_us", labels, report.l0_age_p99_us as f64);
        if !metrics.l0_age.is_empty() {
            reg.describe(
                "dcache_l0_age_ns",
                Summary,
                "Age of L0-served entries at serve time (nanoseconds).",
            );
            reg.set_summary("dcache_l0_age_ns", labels, metrics.l0_age.summary());
        }
    }

    // TTL-control-plane telemetry, only when the plane is on (so default
    // runs export byte-identical registries).
    if dep.ttl_enabled() {
        reg.describe(
            "dcache_ttl_decisions_total",
            Counter,
            "TTL planning rounds run across all tenant controllers.",
        );
        reg.set_counter("dcache_ttl_decisions_total", labels, report.ttl_decisions);
        reg.set_counter("dcache_ttl_changes_total", labels, report.ttl_changes);
        reg.describe(
            "dcache_ttl_expired_entries_total",
            Counter,
            "Entries reclaimed by heartbeat expiry sweeps.",
        );
        reg.set_counter(
            "dcache_ttl_expired_entries_total",
            labels,
            report.expired_entries,
        );
        reg.set_counter(
            "dcache_ttl_expiry_sweep_cpu_us_total",
            labels,
            report.expiry_sweep_cpu_us,
        );
        reg.set_gauge(
            "dcache_ttl_mean_resident_bytes",
            labels,
            report.ttl_mean_resident_bytes,
        );
        reg.describe(
            "dcache_ttl_current_secs",
            Gauge,
            "Adopted TTL per tenant at run end (0 = no decision yet).",
        );
        for (t, ctl) in dep.ttl.iter().enumerate() {
            let tenant_label = report
                .tenants
                .get(t)
                .map_or_else(|| t.to_string(), |tr| tr.label.clone());
            let tl: &[(&str, &str)] = &[("arch", arch), ("tenant", &tenant_label)];
            reg.set_gauge(
                "dcache_ttl_current_secs",
                tl,
                ctl.current_plan().map_or(0.0, |p| p.ttl_secs),
            );
            reg.set_gauge(
                "dcache_ttl_tracked_keys",
                tl,
                ctl.histogram().tracked_keys() as f64,
            );
        }
    }

    // Per-tenant accounting, only when the run had a tenant mix (so
    // single-workload runs export byte-identical registries).
    if !report.tenants.is_empty() {
        reg.describe(
            "dcache_tenant_requests_total",
            Counter,
            "Measured requests attributed to each tenant.",
        );
        for tr in &report.tenants {
            let tl: &[(&str, &str)] = &[("arch", arch), ("tenant", &tr.label)];
            reg.set_counter("dcache_tenant_requests_total", tl, tr.requests);
            reg.set_counter("dcache_tenant_cache_hits_total", tl, tr.cache_hits);
            reg.set_counter("dcache_tenant_stale_reads_total", tl, tr.stale_reads);
            reg.set_gauge("dcache_tenant_hit_ratio", tl, tr.hit_ratio);
            reg.set_gauge("dcache_tenant_monthly_dollars", tl, tr.monthly_dollars);
            reg.set_gauge("dcache_tenant_ttl_secs", tl, tr.ttl_secs);
        }
    }

    // Fault/degraded-path counters straight off the deployment.
    dep.metrics.export(&mut reg, "dcache_fault_", labels);
    // External-cache statistics (hits/misses/evictions/...).
    dep.linked_stats()
        .export(&mut reg, "dcache_linked_cache_", labels);
    dep.remote_stats()
        .export(&mut reg, "dcache_remote_cache_", labels);
    reg
}

/// A finished run plus everything needed to build its telemetry.
struct RunState {
    dep: Deployment,
    metrics: RunMetrics,
    obs: Option<crate::obs::ObsArtifacts>,
}

/// Run one KV cost experiment end to end.
pub fn run_kv_experiment(cfg: &KvExperimentConfig) -> StoreResult<ExperimentReport> {
    run_kv_experiment_core(cfg).map(|(report, _)| report)
}

/// Like [`run_kv_experiment`], but also returns the run's telemetry: the
/// metrics registry, the JSONL trace sample (empty unless
/// `cfg.trace_sample_every` is set), and the collapsed-stack CPU profile.
pub fn run_kv_experiment_with_telemetry(
    cfg: &KvExperimentConfig,
) -> StoreResult<(ExperimentReport, TelemetryBundle)> {
    let (report, state) = run_kv_experiment_core(cfg)?;
    let bundle = TelemetryBundle {
        registry: export_registry(&report, &state.dep, &state.metrics, state.obs.as_ref()),
        spans: state.dep.tracer.sink().iter().cloned().collect(),
        traces_jsonl: state.dep.tracer.sink().to_jsonl(),
        profile: cpu_profile(&state.dep),
        obs: state.obs,
    };
    Ok((report, bundle))
}

fn run_kv_experiment_core(cfg: &KvExperimentConfig) -> StoreResult<(ExperimentReport, RunState)> {
    let mut dep = Deployment::new(cfg.deployment.clone(), kv_catalog("kv"));
    if cfg.trace_sample_every.is_some() {
        dep.tracer = telemetry::Tracer::with_capacity(TRACE_SINK_CAPACITY);
    }

    // Seed the dataset: every key at generation 0. Multi-tenant runs load
    // each tenant's namespaced slice of the key space; the classic
    // single-workload path is byte-for-byte untouched.
    let wl_cfg = &cfg.workload;
    match &cfg.tenants {
        None => {
            dep.cluster.bulk_load(
                "kv",
                (0..wl_cfg.keys).map(|k| {
                    vec![
                        Datum::Int(k as i64),
                        Datum::Payload {
                            len: wl_cfg.size_of(k),
                            seed: 0,
                        },
                    ]
                }),
            )?;
        }
        Some(mix) => {
            for (t, spec) in mix.tenants.iter().enumerate() {
                let w = &spec.workload;
                dep.cluster.bulk_load(
                    "kv",
                    (0..w.keys).map(|k| {
                        vec![
                            Datum::Int(namespaced_key(t, k) as i64),
                            Datum::Payload {
                                len: w.size_of(k),
                                seed: 0,
                            },
                        ]
                    }),
                )?;
            }
        }
    }

    if cfg.prewarm {
        // One pass over the keyspace fills the external caches and heats
        // the storage block caches; none of it is billed (meters reset at
        // the measurement boundary below).
        match &cfg.tenants {
            None => {
                for k in 0..wl_cfg.keys {
                    dep.serve_kv_read("kv", k as i64, SimTime::ZERO)?;
                }
            }
            Some(mix) => {
                for (t, spec) in mix.tenants.iter().enumerate() {
                    for k in 0..spec.workload.keys {
                        dep.serve_kv_read("kv", namespaced_key(t, k) as i64, SimTime::ZERO)?;
                    }
                }
            }
        }
    }

    // One request-stream driver per tenant. Single-workload runs get one
    // driver, no picker, and no schedules, so their request sequence (and
    // RNG state) is exactly the classic path's.
    struct TenantRt {
        wl: KvWorkload,
        churn: Option<workloads::ChurnSchedule>,
        storm: Option<workloads::StormSchedule>,
        base_read_ratio: f64,
        requests: u64,
        reads: u64,
        writes: u64,
        cache_hits: u64,
        stale_reads: u64,
    }
    impl TenantRt {
        fn new(
            wl: KvWorkload,
            base_read_ratio: f64,
            churn: Option<workloads::ChurnSchedule>,
            storm: Option<workloads::StormSchedule>,
        ) -> Self {
            TenantRt {
                wl,
                churn,
                storm,
                base_read_ratio,
                requests: 0,
                reads: 0,
                writes: 0,
                cache_hits: 0,
                stale_reads: 0,
            }
        }
    }
    let mut tenants_rt: Vec<TenantRt> = match &cfg.tenants {
        None => vec![TenantRt::new(wl_cfg.build(), wl_cfg.read_ratio, None, None)],
        Some(mix) => mix
            .tenants
            .iter()
            .map(|s| TenantRt::new(s.workload.build(), s.workload.read_ratio, s.churn, s.storm))
            .collect(),
    };
    let mut picker = cfg.tenants.as_ref().map(|m| m.picker());
    let multi_tenant = cfg.tenants.is_some();
    dep.set_ttl_tenants(tenants_rt.len());
    // Per-key write generation; reads expect the latest generation.
    let mut generation: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let base_dt = SimDuration::from_secs_f64(1.0 / cfg.qps.max(1.0));
    let mut now = SimTime::ZERO;
    let mut metrics = RunMetrics::new();

    let total = cfg.warmup_requests + cfg.requests;
    let heartbeat_every = (cfg.qps as u64).max(1); // ~1 virtual second
    let mut measuring = false;
    let mut measure_start = SimTime::ZERO;
    let mut fault_driver = cfg.cache_fault_schedule.as_ref().map(FaultDriver::new);
    let deadline = cfg.deployment.fault_tolerance.request_deadline;
    let mut obs = cfg.observability.clone().map(|oc| {
        crate::obs::ObsState::new(
            oc,
            cfg.deployment.arch.label(),
            dep.cluster.durability_enabled(),
        )
    });

    // Load-window tracking: per-heartbeat cores (the peak of which is what
    // static provisioning pays for) and the capacity-over-time integral
    // (what elastic provisioning pays for). Only tracked when a run can
    // actually vary — diurnal load or an enabled controller — so the
    // default fixed-rate path stays untouched.
    let track_windows =
        cfg.diurnal.is_some() || dep.elastic.enabled() || dep.ttl_enabled() || obs.is_some();
    let mut peak_window_cores = 0.0f64;
    let mut window_busy_anchor = 0u64; // busy nanos at window start
    let mut window_start = SimTime::ZERO;
    let mut cap_integral = 0.0f64; // bytes · seconds
    let mut cap_peak = 0u64;
    let mut ttl_res_integral = 0.0f64; // TTL-aware resident bytes · seconds
    let total_busy = |dep: &Deployment| -> u64 {
        (dep.app_cpu_total().total()
            + dep.cache_cpu_total().total()
            + dep.cluster.frontend_cpu_total().total()
            + dep.cluster.storage_cpu_total().total())
        .as_nanos()
    };

    for i in 0..total {
        if i == cfg.warmup_requests {
            dep.reset_metrics();
            metrics = RunMetrics::new();
            measuring = true;
            measure_start = now;
            window_busy_anchor = 0;
            window_start = now;
            if let Some(o) = obs.as_mut() {
                o.on_measure_start();
            }
        }
        if i % heartbeat_every == 0 {
            dep.cluster.tick(now);
            dep.sharder.renew_all(now);
            // TTL plane housekeeping rides the same heartbeat: reclaim
            // expired entries (billing the sweeping tier per entry), then
            // give each tenant controller its decision check. Both are
            // no-ops while the plane is off.
            if dep.ttl_enabled() {
                dep.expire_sweep_tick(now);
                dep.ttl_maybe_decide(now.as_secs_f64(), &cfg.pricing);
            }
            if track_windows {
                if measuring && now > window_start {
                    let busy = total_busy(&dep);
                    let window = now.since(window_start);
                    let cores = (busy - window_busy_anchor) as f64 / window.as_nanos() as f64;
                    peak_window_cores = peak_window_cores.max(cores);
                    let cap = dep.elastic_cache_capacity_bytes();
                    cap_integral += cap as f64 * window.as_secs_f64();
                    cap_peak = cap_peak.max(cap);
                    if dep.ttl_enabled() {
                        ttl_res_integral +=
                            dep.cache_resident_bytes_at(now) as f64 * window.as_secs_f64();
                    }
                    window_busy_anchor = busy;
                    window_start = now;
                    if let Some(o) = obs.as_mut() {
                        o.heartbeat(now.as_nanos(), cores, cap, &metrics.read_latency);
                    }
                }
                if let Some(plan) = dep.elastic.maybe_decide(now.as_secs_f64(), &cfg.pricing) {
                    let before = dep.elastic_cache_capacity_bytes();
                    dep.apply_elastic_plan(plan, now);
                    let after = dep.elastic_cache_capacity_bytes();
                    if before != after {
                        if let Some(o) = obs.as_mut() {
                            o.on_resize(now.as_nanos(), before, after);
                        }
                    }
                }
            }
        }
        if let Some(at) = cfg.crash_leaders_at_request {
            if measuring && i == cfg.warmup_requests + at {
                for r in 0..dep.cluster.region_count() {
                    if let Some(slot) = dep.cluster.region(r).leader_slot() {
                        dep.cluster.region_mut(r).crash(slot);
                    }
                }
            }
        }
        if let Some(driver) = fault_driver.as_mut() {
            for ev in driver.due(now) {
                apply_fault(&mut dep, ev, now);
                if let Some(o) = obs.as_mut() {
                    o.on_fault(ev);
                }
            }
        }
        // Arm the tracer for sampled measured requests: the trace id is a
        // pure function of (workload seed, measured index), so two runs of
        // the same config produce byte-identical trace output.
        let measured_index = i.saturating_sub(cfg.warmup_requests);
        let sampled = measuring
            && cfg
                .trace_sample_every
                .is_some_and(|k| measured_index % k.max(1) == 0);
        // The trace id is the request's identity everywhere: tracer, latency
        // exemplars, and tail attribution all derive it the same way.
        let tid = telemetry::trace_id(cfg.workload.seed, measured_index);
        if sampled {
            dep.tracer.start_request(tid);
        }
        // Pick the tenant (a dedicated RNG stream; single-workload runs
        // skip the draw), apply its stress schedules, and stamp its adopted
        // TTL onto the caches before serving.
        let tenant = picker.as_mut().map_or(0, |p| p.pick());
        let rt = &mut tenants_rt[tenant];
        if let Some(churn) = rt.churn {
            rt.wl.set_epoch(churn.epoch(now.as_secs_f64()));
        }
        if let Some(storm) = rt.storm {
            rt.wl
                .set_read_ratio(storm.read_ratio_at(now.as_secs_f64()).unwrap_or(rt.base_read_ratio));
        }
        let mut req = rt.wl.next_request();
        if multi_tenant {
            req.key = namespaced_key(tenant, req.key);
        }
        dep.ttl_begin_request(tenant);
        if measuring {
            rt.requests += 1;
        }
        match req.op {
            KvOp::Read => {
                // Feed the tenant's age histogram (no-op while the TTL
                // plane is off).
                dep.ttl_observe(tenant, req.key, req.value_bytes, now);
                let (out, penalty) =
                    with_failover(&mut dep, now, &mut metrics, measuring, |d, t| {
                        d.serve_kv_read("kv", req.key as i64, t)
                    })?;
                dep.tracer.span(
                    "request.read",
                    "client",
                    now.as_nanos(),
                    now.as_nanos() + (out.latency + penalty).as_nanos(),
                    0,
                    outcome_status(&out),
                );
                if measuring {
                    let latency_ns = (out.latency + penalty).as_nanos();
                    metrics.reads += 1;
                    // Exemplar capture only runs with observability on, so
                    // plain runs keep byte-identical latency state; counts
                    // and sums are identical either way.
                    if obs.is_some() && sampled {
                        metrics.read_latency.record_with_exemplar(latency_ns, tid);
                    } else {
                        metrics.read_latency.record(latency_ns);
                    }
                    metrics.cache_hits += out.cache_hit as u64;
                    metrics.version_checks += out.version_checks;
                    metrics.sql_statements += out.sql_statements;
                    metrics.check_deadline(out.latency + penalty, deadline);
                    rt.reads += 1;
                    rt.cache_hits += out.cache_hit as u64;
                    let expect = generation.get(&req.key).copied().unwrap_or(0);
                    if out.seed != Some(expect) {
                        metrics.stale_reads += 1;
                        rt.stale_reads += 1;
                    }
                    if out.l0_hit {
                        metrics.l0_hits += 1;
                        metrics.l0_age.record(out.l0_age_nanos);
                        if out.seed != Some(expect) {
                            metrics.l0_stale_serves += 1;
                        }
                    }
                    if let Some(o) = obs.as_mut() {
                        o.observe(crate::obs::RequestSample {
                            trace_id: tid,
                            t_ns: now.as_nanos(),
                            latency_ns,
                            is_read: true,
                            cache_hit: out.cache_hit,
                            degraded: out.degraded,
                            coalesced: out.coalesced,
                            retries: out.retries,
                            failover: penalty > SimDuration::ZERO,
                            over_deadline: out.latency + penalty > deadline,
                            in_fault_window: false,
                            in_resize_window: false,
                            traced: sampled,
                        });
                    }
                }
            }
            KvOp::Write => {
                let g = generation.entry(req.key).or_insert(0);
                *g += 1;
                let value = Datum::Payload {
                    len: req.value_bytes,
                    seed: *g,
                };
                let (out, penalty) =
                    with_failover(&mut dep, now, &mut metrics, measuring, |d, t| {
                        d.serve_kv_write("kv", req.key as i64, value.clone(), t)
                    })?;
                dep.tracer.span(
                    "request.write",
                    "client",
                    now.as_nanos(),
                    now.as_nanos() + (out.latency + penalty).as_nanos(),
                    0,
                    outcome_status(&out),
                );
                if measuring {
                    let latency_ns = (out.latency + penalty).as_nanos();
                    metrics.writes += 1;
                    rt.writes += 1;
                    if obs.is_some() && sampled {
                        metrics.write_latency.record_with_exemplar(latency_ns, tid);
                    } else {
                        metrics.write_latency.record(latency_ns);
                    }
                    metrics.sql_statements += out.sql_statements;
                    metrics.check_deadline(out.latency + penalty, deadline);
                    if let Some(o) = obs.as_mut() {
                        o.observe(crate::obs::RequestSample {
                            trace_id: tid,
                            t_ns: now.as_nanos(),
                            latency_ns,
                            is_read: false,
                            cache_hit: false,
                            degraded: out.degraded,
                            coalesced: out.coalesced,
                            retries: out.retries,
                            failover: penalty > SimDuration::ZERO,
                            over_deadline: out.latency + penalty > deadline,
                            in_fault_window: false,
                            in_resize_window: false,
                            traced: sampled,
                        });
                    }
                }
            }
        }
        if sampled {
            dep.tracer.end_request();
        }
        now += match &cfg.diurnal {
            None => base_dt,
            Some(d) => SimDuration::from_secs_f64(
                base_dt.as_secs_f64() / d.multiplier(now.as_secs_f64()).max(1e-6),
            ),
        };
    }

    let duration = now.since(measure_start);
    let mut report = build_report(
        &dep,
        &metrics,
        cfg.qps,
        cfg.requests,
        duration,
        &cfg.pricing,
    );
    if track_windows {
        // Close the final partial window, then fill the window-derived
        // figures and re-bill elastic memory at its time-averaged capacity.
        if now > window_start {
            let busy = total_busy(&dep);
            let window = now.since(window_start);
            let cores = (busy - window_busy_anchor) as f64 / window.as_nanos() as f64;
            peak_window_cores = peak_window_cores.max(cores);
            let cap = dep.elastic_cache_capacity_bytes();
            cap_integral += cap as f64 * window.as_secs_f64();
            cap_peak = cap_peak.max(cap);
            if dep.ttl_enabled() {
                ttl_res_integral += dep.cache_resident_bytes_at(now) as f64 * window.as_secs_f64();
            }
        }
        report.peak_window_cores = peak_window_cores;
        report.elastic_mean_cache_bytes = cap_integral / duration.as_secs_f64().max(1e-9);
        report.elastic_peak_cache_bytes = cap_peak;
        if dep.elastic.enabled() {
            let mean = report.elastic_mean_cache_bytes;
            apply_elastic_billing(&mut report, &dep, mean, &cfg.pricing);
        }
        if dep.ttl_enabled() {
            // TTL billing refines elastic billing when both are on: the
            // time-averaged *resident* footprint is never more than the
            // configured capacity, and it is what expiry actually frees.
            report.ttl_mean_resident_bytes =
                ttl_res_integral / duration.as_secs_f64().max(1e-9);
            let mean = report.ttl_mean_resident_bytes;
            apply_ttl_billing(&mut report, &dep, mean, &cfg.pricing);
        }
    }
    if let Some(mix) = &cfg.tenants {
        let total_requests: u64 = tenants_rt.iter().map(|t| t.requests).sum();
        let total_dollars = report.total_cost.total();
        report.tenants = mix
            .tenants
            .iter()
            .zip(&tenants_rt)
            .enumerate()
            .map(|(t, (spec, rt))| {
                let ctl = dep.ttl.get(t).filter(|_| dep.ttl_enabled());
                TenantReport {
                    label: spec.label.clone(),
                    requests: rt.requests,
                    reads: rt.reads,
                    writes: rt.writes,
                    cache_hits: rt.cache_hits,
                    hit_ratio: if rt.reads == 0 {
                        0.0
                    } else {
                        rt.cache_hits as f64 / rt.reads as f64
                    },
                    stale_reads: rt.stale_reads,
                    ttl_secs: ctl
                        .and_then(|c| c.current_plan())
                        .map_or(0.0, |p| p.ttl_secs),
                    ttl_decisions: ctl.map_or(0, |c| c.decisions()),
                    ttl_changes: ctl.map_or(0, |c| c.ttl_changes()),
                    monthly_dollars: if total_requests == 0 {
                        0.0
                    } else {
                        total_dollars * rt.requests as f64 / total_requests as f64
                    },
                }
            })
            .collect();
    }
    let obs_artifacts = obs.map(|o| {
        let spans: Vec<telemetry::SpanRecord> = dep.tracer.sink().iter().cloned().collect();
        let art = o.finish(now.as_nanos(), &spans);
        report.slo_alerts_fired = art.alerts.len() as u64;
        report.tail_p99_threshold_us = art.tail.threshold_us;
        report.tail_causes = art
            .tail
            .causes
            .iter()
            .filter(|c| c.count > 0)
            .map(|c| (c.cause.label().to_string(), c.count, c.excess_us))
            .collect();
        art
    });
    Ok((
        report,
        RunState {
            dep,
            metrics,
            obs: obs_artifacts,
        },
    ))
}

/// Opaque per-shard result of a sharded KV experiment — produced by
/// [`run_kv_shard`], consumed by [`merge_kv_shards`].
///
/// A sharded run partitions the *keyspace* (per-app-server consistent
/// hashing over the same 128-vnode ring [`crate::lease::AutoSharder`]
/// builds) across `shards` independent replicas of the deployment. Every
/// shard replays the full request stream — keeping the workload RNG, the
/// virtual clock and the heartbeat schedule globally aligned — but serves,
/// loads and prewarms only the keys it owns. Because ownership partitions
/// reads and writes identically, read-your-writes generation accounting
/// stays exact within each shard, and the merged meters/histograms depend
/// only on the (config, shard count) pair — never on how many worker
/// threads executed the shards (jobs=1 ≡ jobs=N byte-for-byte).
#[derive(Debug)]
pub struct KvShardOutcome {
    shard: usize,
    shards: usize,
    duration: SimDuration,
    metrics: RunMetrics,
    app_meter: CpuMeter,
    cache_meter: CpuMeter,
    frontend_meter: CpuMeter,
    storage_meter: CpuMeter,
    primary_data_bytes: u64,
    storage_mem_bytes_per_node: u64,
    block_cache_hits: u64,
    block_cache_misses: u64,
    net_delivered: u64,
    net_dropped: u64,
    degraded_reads: u64,
    cache_retries: u64,
    stampede_suppressed: u64,
    cache_crashes: u64,
    cache_restarts: u64,
    rpc_batches: u64,
    batched_rpc_keys: u64,
    batch_size_counts: std::collections::HashMap<u32, u64>,
}

/// Serve shard `shard` of `shards` of one KV experiment (see
/// [`KvShardOutcome`] for the partitioning rule). Only the plain fixed-rate
/// runner is shardable: faults, tracing, diurnal load, observability,
/// elastic provisioning and durable storage all couple requests across the
/// keyspace and refuse with [`StoreError::Unsupported`].
pub fn run_kv_shard(
    cfg: &KvExperimentConfig,
    shard: usize,
    shards: usize,
) -> StoreResult<KvShardOutcome> {
    if shards == 0 || shard >= shards {
        return Err(StoreError::Unsupported(format!(
            "shard {shard} out of range for {shards} shards"
        )));
    }
    if cfg.crash_leaders_at_request.is_some()
        || cfg.cache_fault_schedule.is_some()
        || cfg.trace_sample_every.is_some()
        || cfg.diurnal.is_some()
        || cfg.observability.is_some()
        || cfg.deployment.l0.is_some()
        || cfg.tenants.is_some()
    {
        return Err(StoreError::Unsupported(
            "sharded runs support only the plain fixed-rate KV experiment \
             (no faults, tracing, diurnal load, observability, L0 tier, or \
             tenant mixes)"
                .to_string(),
        ));
    }

    let mut dep = Deployment::new(cfg.deployment.clone(), kv_catalog("kv"));
    if dep.elastic.enabled() || dep.ttl_enabled() || dep.cluster.durability_enabled() {
        return Err(StoreError::Unsupported(
            "sharded runs support neither elastic provisioning, the TTL \
             control plane, nor durable storage"
                .to_string(),
        ));
    }

    // Key → shard: per-app-server partitioning on the lease sharder's ring
    // (folded onto `shards` when fewer shards than app servers run). The
    // key buffer is reused so ownership checks never allocate.
    let ring = cachekit::HashRing::with_shards(cfg.deployment.app_servers as u32, 128);
    let mut keybuf = Deployment::cache_key("kv", 0);
    let prefix = keybuf.len() - std::mem::size_of::<i64>();
    let mut owns = move |key: u64| -> bool {
        keybuf.truncate(prefix);
        keybuf.extend_from_slice(&(key as i64).to_be_bytes());
        ring.shard_for(&keybuf).map(|s| s as usize % shards) == Some(shard)
    };

    // Seed and prewarm only the owned slice of the keyspace; across all
    // shards every key is loaded exactly once, so summed disk bytes equal
    // the unsharded dataset.
    let wl_cfg = &cfg.workload;
    dep.cluster.bulk_load(
        "kv",
        (0..wl_cfg.keys).filter(|&k| owns(k)).map(|k| {
            vec![
                Datum::Int(k as i64),
                Datum::Payload {
                    len: wl_cfg.size_of(k),
                    seed: 0,
                },
            ]
        }),
    )?;
    if cfg.prewarm {
        for k in (0..wl_cfg.keys).filter(|&k| owns(k)) {
            dep.serve_kv_read("kv", k as i64, SimTime::ZERO)?;
        }
    }

    let mut workload = wl_cfg.build();
    let mut generation: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let base_dt = SimDuration::from_secs_f64(1.0 / cfg.qps.max(1.0));
    let mut now = SimTime::ZERO;
    let mut metrics = RunMetrics::new();
    let total = cfg.warmup_requests + cfg.requests;
    let heartbeat_every = (cfg.qps as u64).max(1); // ~1 virtual second
    let mut measuring = false;
    let mut measure_start = SimTime::ZERO;
    let deadline = cfg.deployment.fault_tolerance.request_deadline;

    for i in 0..total {
        if i == cfg.warmup_requests {
            dep.reset_metrics();
            metrics = RunMetrics::new();
            measuring = true;
            measure_start = now;
        }
        if i % heartbeat_every == 0 {
            dep.cluster.tick(now);
            dep.sharder.renew_all(now);
        }
        // Every shard consumes the full stream (the RNG must stay aligned);
        // only owned requests are served.
        let req = workload.next_request();
        if owns(req.key) {
            match req.op {
                KvOp::Read => {
                    let (out, penalty) =
                        with_failover(&mut dep, now, &mut metrics, measuring, |d, t| {
                            d.serve_kv_read("kv", req.key as i64, t)
                        })?;
                    if measuring {
                        metrics.reads += 1;
                        metrics.read_latency.record((out.latency + penalty).as_nanos());
                        metrics.cache_hits += out.cache_hit as u64;
                        metrics.version_checks += out.version_checks;
                        metrics.sql_statements += out.sql_statements;
                        metrics.check_deadline(out.latency + penalty, deadline);
                        let expect = generation.get(&req.key).copied().unwrap_or(0);
                        if out.seed != Some(expect) {
                            metrics.stale_reads += 1;
                        }
                    }
                }
                KvOp::Write => {
                    let g = generation.entry(req.key).or_insert(0);
                    *g += 1;
                    let value = Datum::Payload {
                        len: req.value_bytes,
                        seed: *g,
                    };
                    let (out, penalty) =
                        with_failover(&mut dep, now, &mut metrics, measuring, |d, t| {
                            d.serve_kv_write("kv", req.key as i64, value.clone(), t)
                        })?;
                    if measuring {
                        metrics.writes += 1;
                        metrics
                            .write_latency
                            .record((out.latency + penalty).as_nanos());
                        metrics.sql_statements += out.sql_statements;
                        metrics.check_deadline(out.latency + penalty, deadline);
                    }
                }
            }
        }
        now += base_dt;
    }

    let (block_cache_hits, block_cache_misses) = dep.cluster.block_cache_counts();
    Ok(KvShardOutcome {
        shard,
        shards,
        duration: now.since(measure_start),
        metrics,
        app_meter: dep.app_cpu_total(),
        cache_meter: dep.cache_cpu_total(),
        frontend_meter: dep.cluster.frontend_cpu_total(),
        storage_meter: dep.cluster.storage_cpu_total(),
        primary_data_bytes: dep.cluster.primary_data_bytes(),
        storage_mem_bytes_per_node: dep.cluster.storage_mem_bytes_per_node(),
        block_cache_hits,
        block_cache_misses,
        net_delivered: dep.net.delivered,
        net_dropped: dep.net.dropped,
        degraded_reads: dep.metrics.counter_value(fault_counters::DEGRADED_READS),
        cache_retries: dep.metrics.counter_value(fault_counters::RETRIES),
        stampede_suppressed: dep
            .metrics
            .counter_value(fault_counters::STAMPEDE_SUPPRESSED),
        cache_crashes: dep.metrics.counter_value(fault_counters::CACHE_CRASHES),
        cache_restarts: dep.metrics.counter_value(fault_counters::CACHE_RESTARTS),
        rpc_batches: dep.metrics.counter_value(batch_counters::RPC_BATCHES),
        batched_rpc_keys: dep.metrics.counter_value(batch_counters::BATCHED_RPC_KEYS),
        batch_size_counts: dep.batch_size_counts.clone(),
    })
}

/// Fold per-shard outcomes (shard order 0..N) into the report the unsharded
/// runner would describe for the union deployment: CPU meters, latency
/// histograms and counters sum; tier memory comes from the configuration
/// exactly as in the unsharded report (every shard models the same fleet);
/// disk sums because the keyspace partitions exactly once.
pub fn merge_kv_shards(
    cfg: &KvExperimentConfig,
    outcomes: Vec<KvShardOutcome>,
) -> StoreResult<ExperimentReport> {
    let shards = outcomes.len();
    if shards == 0 {
        return Err(StoreError::Unsupported(
            "no shard outcomes to merge".to_string(),
        ));
    }
    for (i, o) in outcomes.iter().enumerate() {
        if o.shard != i || o.shards != shards {
            return Err(StoreError::Unsupported(format!(
                "shard outcome {}/{} at position {i} of {shards}: pass every shard, in order",
                o.shard, o.shards
            )));
        }
        if o.duration != outcomes[0].duration {
            return Err(StoreError::Unsupported(
                "shard durations diverge: shards must share one virtual clock".to_string(),
            ));
        }
    }
    let duration = outcomes[0].duration;
    let storage_mem_per_node = outcomes[0].storage_mem_bytes_per_node;

    let mut metrics = RunMetrics::new();
    let mut app = CpuMeter::new();
    let mut cache = CpuMeter::new();
    let mut frontend = CpuMeter::new();
    let mut storage = CpuMeter::new();
    let mut primary_data_bytes = 0u64;
    let (mut bc_hits, mut bc_misses) = (0u64, 0u64);
    let (mut net_delivered, mut net_dropped) = (0u64, 0u64);
    let mut degraded_reads = 0u64;
    let mut cache_retries = 0u64;
    let mut stampede_suppressed = 0u64;
    let mut cache_crashes = 0u64;
    let mut cache_restarts = 0u64;
    let mut rpc_batches = 0u64;
    let mut batched_rpc_keys = 0u64;
    let mut batch_counts: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for o in &outcomes {
        app.merge(&o.app_meter);
        cache.merge(&o.cache_meter);
        frontend.merge(&o.frontend_meter);
        storage.merge(&o.storage_meter);
        metrics.read_latency.merge_from(&o.metrics.read_latency);
        metrics.write_latency.merge_from(&o.metrics.write_latency);
        metrics.reads += o.metrics.reads;
        metrics.writes += o.metrics.writes;
        metrics.cache_hits += o.metrics.cache_hits;
        metrics.stale_reads += o.metrics.stale_reads;
        metrics.version_checks += o.metrics.version_checks;
        metrics.sql_statements += o.metrics.sql_statements;
        metrics.failovers += o.metrics.failovers;
        metrics.deadline_exceeded += o.metrics.deadline_exceeded;
        primary_data_bytes += o.primary_data_bytes;
        bc_hits += o.block_cache_hits;
        bc_misses += o.block_cache_misses;
        net_delivered += o.net_delivered;
        net_dropped += o.net_dropped;
        degraded_reads += o.degraded_reads;
        cache_retries += o.cache_retries;
        stampede_suppressed += o.stampede_suppressed;
        cache_crashes += o.cache_crashes;
        cache_restarts += o.cache_restarts;
        rpc_batches += o.rpc_batches;
        batched_rpc_keys += o.batched_rpc_keys;
        for (&s, &c) in &o.batch_size_counts {
            *batch_counts.entry(s).or_insert(0) += c;
        }
    }

    // Tier assembly mirrors `build_report`: memory is provisioned from the
    // configuration (identical in every shard), compute from the summed
    // busy time over the shared duration.
    let dcfg = &cfg.deployment;
    let pricing = &cfg.pricing;
    let mut tiers = Vec::new();
    let app_mem = dcfg.app_servers as u64
        * (dcfg.app_base_mem_bytes
            + if dcfg.arch.has_linked_cache() {
                dcfg.linked_cache_bytes_per_server
            } else {
                0
            });
    tiers.push(TierReport::from_meter(
        "app",
        dcfg.app_servers,
        &app,
        duration,
        app_mem,
        0,
        pricing,
    ));
    if dcfg.arch == ArchKind::Remote {
        let mem = dcfg.remote_cache_nodes as u64 * (dcfg.remote_cache_bytes_per_node + (1 << 30));
        tiers.push(TierReport::from_meter(
            "remote_cache",
            dcfg.remote_cache_nodes,
            &cache,
            duration,
            mem,
            0,
            pricing,
        ));
    }
    tiers.push(TierReport::from_meter(
        "sql_frontend",
        dcfg.cluster.frontends,
        &frontend,
        duration,
        dcfg.cluster.frontends as u64 * dcfg.cluster.frontend_mem_bytes,
        0,
        pricing,
    ));
    tiers.push(TierReport::from_meter(
        "storage",
        dcfg.cluster.storage_nodes,
        &storage,
        duration,
        dcfg.cluster.storage_nodes as u64 * storage_mem_per_node,
        primary_data_bytes * dcfg.cluster.replicas as u64,
        pricing,
    ));

    let total_cost: CostBreakdown = tiers.iter().map(|t| t.cost).sum();
    let total_cores: f64 = tiers.iter().map(|t| t.cores).sum();
    let total_mem_gb: f64 = tiers.iter().map(|t| t.mem_gb).sum();
    let mut batch_size_counts: Vec<(u32, u64)> =
        batch_counts.iter().map(|(&s, &c)| (s, c)).collect();
    batch_size_counts.sort_unstable();

    Ok(ExperimentReport {
        arch: dcfg.arch,
        qps: cfg.qps,
        requests: cfg.requests,
        duration_secs: duration.as_secs_f64(),
        tiers,
        total_cost,
        total_cores,
        total_mem_gb,
        cache_hit_ratio: if metrics.reads == 0 {
            0.0
        } else {
            metrics.cache_hits as f64 / metrics.reads as f64
        },
        // Sharded pods see disjoint key slices, so the exact (mergeable)
        // definition is aggregate hits over aggregate accesses.
        block_cache_hit_ratio: if bc_hits + bc_misses == 0 {
            0.0
        } else {
            bc_hits as f64 / (bc_hits + bc_misses) as f64
        },
        read_latency_p50_us: metrics.read_latency.p50() / 1_000,
        read_latency_p99_us: metrics.read_latency.p99() / 1_000,
        read_latency_p999_us: metrics.read_latency.p999() / 1_000,
        write_latency_p50_us: metrics.write_latency.p50() / 1_000,
        write_latency_p99_us: metrics.write_latency.p99() / 1_000,
        write_latency_p999_us: metrics.write_latency.p999() / 1_000,
        stale_reads: metrics.stale_reads,
        version_checks: metrics.version_checks,
        sql_statements: metrics.sql_statements,
        failovers: metrics.failovers,
        degraded_reads,
        cache_retries,
        stampede_suppressed,
        deadline_exceeded: metrics.deadline_exceeded,
        cache_crashes,
        cache_restarts,
        net_delivered,
        net_dropped,
        rpc_batches,
        batched_rpc_keys,
        mean_batch_size: if rpc_batches == 0 {
            0.0
        } else {
            batched_rpc_keys as f64 / rpc_batches as f64
        },
        batch_size_counts,
        // Sharded runs refuse elastic, durability and observability, so the
        // corresponding report sections are structurally zero.
        elastic_decisions: 0,
        elastic_plan_changes: 0,
        elastic_resizes: 0,
        elastic_shards_drained: 0,
        elastic_shards_restored: 0,
        elastic_migrated_entries: 0,
        elastic_migrated_bytes: 0,
        peak_window_cores: 0.0,
        elastic_mean_cache_bytes: 0.0,
        elastic_peak_cache_bytes: 0,
        wal_appends: 0,
        wal_fsync_batches: 0,
        snapshot_bytes: 0,
        recoveries: 0,
        recovery_time_us: 0,
        replayed_entries: 0,
        lost_tail_entries: 0,
        cold_refill_cpu_us: 0,
        ssd_resident_bytes: 0,
        slo_alerts_fired: 0,
        tail_p99_threshold_us: 0,
        tail_causes: Vec::new(),
        // Sharded runs refuse the L0 tier, so its section is structurally
        // zero too.
        l0_hits: 0,
        l0_misses: 0,
        l0_hit_ratio: 0.0,
        l0_admitted: 0,
        l0_rejected: 0,
        l0_invalidations: 0,
        l0_stale_admits_dropped: 0,
        l0_stale_serves: 0,
        l0_age_p50_us: 0,
        l0_age_p99_us: 0,
        // Sharded runs refuse the TTL plane and tenant mixes, so their
        // sections are structurally zero/empty as well.
        ttl_decisions: 0,
        ttl_changes: 0,
        expired_entries: 0,
        expiry_sweep_cpu_us: 0,
        ttl_current_secs: Vec::new(),
        ttl_mean_resident_bytes: 0.0,
        tenants: Vec::new(),
    })
}

/// Run a cost experiment from a captured/imported trace instead of a
/// generator (see `workloads::trace`). The dataset is seeded from the
/// trace's distinct keys at generation 0; the first `warmup_fraction` of
/// the trace warms caches unbilled, the rest is measured.
pub fn run_trace_experiment(
    deployment_cfg: &DeploymentConfig,
    trace: &[workloads::TraceRecord],
    qps: f64,
    warmup_fraction: f64,
    pricing: &Pricing,
) -> StoreResult<ExperimentReport> {
    let mut dep = Deployment::new(deployment_cfg.clone(), kv_catalog("kv"));

    // Seed every key at its first-seen size.
    let mut first_size: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for r in trace {
        first_size.entry(r.k).or_insert(r.b);
    }
    dep.cluster.bulk_load(
        "kv",
        first_size
            .iter()
            .map(|(&k, &b)| vec![Datum::Int(k as i64), Datum::Payload { len: b, seed: 0 }]),
    )?;

    let warmup = ((trace.len() as f64) * warmup_fraction.clamp(0.0, 1.0)) as usize;
    let dt = SimDuration::from_secs_f64(1.0 / qps.max(1.0));
    let mut now = SimTime::ZERO;
    let mut metrics = RunMetrics::new();
    let mut generation: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let heartbeat_every = (qps as u64).max(1);
    let mut measuring = false;
    let mut measure_start = SimTime::ZERO;

    for (i, record) in trace.iter().enumerate() {
        if i == warmup {
            dep.reset_metrics();
            metrics = RunMetrics::new();
            measuring = true;
            measure_start = now;
        }
        if (i as u64).is_multiple_of(heartbeat_every) {
            dep.cluster.tick(now);
            dep.sharder.renew_all(now);
        }
        let req = record
            .to_request()
            .map_err(|e| storekit::error::StoreError::Unsupported(e.to_string()))?;
        match req.op {
            KvOp::Read => {
                let out = dep.serve_kv_read("kv", req.key as i64, now)?;
                if measuring {
                    metrics.reads += 1;
                    metrics.read_latency.record(out.latency.as_nanos());
                    metrics.cache_hits += out.cache_hit as u64;
                    metrics.version_checks += out.version_checks;
                    metrics.sql_statements += out.sql_statements;
                    let expect = generation.get(&req.key).copied().unwrap_or(0);
                    if out.seed != Some(expect) {
                        metrics.stale_reads += 1;
                    }
                    if out.l0_hit {
                        metrics.l0_hits += 1;
                        metrics.l0_age.record(out.l0_age_nanos);
                        if out.seed != Some(expect) {
                            metrics.l0_stale_serves += 1;
                        }
                    }
                }
            }
            KvOp::Write => {
                let g = generation.entry(req.key).or_insert(0);
                *g += 1;
                let value = Datum::Payload {
                    len: req.value_bytes,
                    seed: *g,
                };
                let out = dep.serve_kv_write("kv", req.key as i64, value, now)?;
                if measuring {
                    metrics.writes += 1;
                    metrics.write_latency.record(out.latency.as_nanos());
                    metrics.sql_statements += out.sql_statements;
                }
            }
        }
        now += dt;
    }

    let measured = (trace.len() - warmup) as u64;
    let duration = now.since(measure_start);
    Ok(build_report(
        &dep, &metrics, qps, measured, duration, pricing,
    ))
}

/// Convenience: run the same workload across several architectures.
pub fn compare_architectures(
    archs: &[ArchKind],
    mut base_cfg: KvExperimentConfig,
) -> StoreResult<Vec<ExperimentReport>> {
    let mut out = Vec::new();
    for &arch in archs {
        base_cfg.deployment.arch = arch;
        out.push(run_kv_experiment(&base_cfg)?);
    }
    Ok(out)
}

/// §5.3-style CPU category fractions at a tier, for the Figure 6 breakdown.
pub fn category_fraction(report: &ExperimentReport, tier: &str, category: CpuCategory) -> f64 {
    report
        .tier(tier)
        .and_then(|t| {
            t.cpu_fractions
                .iter()
                .find(|(name, _)| name == category.label())
                .map(|(_, f)| *f)
        })
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{SizeDist, TenantSpec};

    fn tiny_cfg(arch: ArchKind) -> KvExperimentConfig {
        KvExperimentConfig {
            deployment: DeploymentConfig::test_small(arch),
            workload: KvWorkloadConfig {
                keys: 500,
                alpha: 1.2,
                read_ratio: 0.9,
                sizes: SizeDist::Fixed(1_000),
                seed: 7,
                churn_period: None,
            },
            qps: 50_000.0,
            warmup_requests: 2_000,
            requests: 4_000,
            prewarm: false,
            crash_leaders_at_request: None,
            cache_fault_schedule: None,
            trace_sample_every: None,
            diurnal: None,
            observability: None,
            tenants: None,
            pricing: Pricing::default(),
        }
    }

    /// tiny_cfg compressed onto a fast virtual day: ~1 heartbeat (and so
    /// ~1 load window) per virtual second at peak rate, a full diurnal
    /// cycle every 8 virtual seconds, and a provisioning decision every 2.
    fn elastic_cfg(arch: ArchKind) -> KvExperimentConfig {
        let mut cfg = tiny_cfg(arch);
        cfg.qps = 2_000.0;
        // Warmup spans several decision intervals so the controller's big
        // first convergence step (and its refill churn) lands pre-measurement.
        cfg.warmup_requests = 8_000;
        cfg.requests = 12_000;
        cfg.diurnal = Some(workloads::DiurnalSchedule::sinusoid(8.0, 0.25));
        cfg.deployment.elastic = elastic::ElasticConfig {
            decision_interval_secs: 2.0,
            profiler: elastic::ShardsConfig::default(),
            planner: elastic::PlannerConfig {
                min_cache_bytes: 64 << 10,
                max_cache_bytes: cfg
                    .deployment
                    .total_linked_bytes()
                    .max(cfg.deployment.total_remote_bytes())
                    .max(1 << 20),
                mean_entry_bytes: 1_064,
                // Half the acceptance budget on *predicted* misses, leaving
                // the other half for refill churn after resizes.
                max_miss_ratio_delta: 0.01,
                ..elastic::PlannerConfig::default()
            },
        };
        cfg
    }

    #[test]
    fn experiment_types_are_send() {
        // The parallel sweep runner moves configs to worker threads and
        // results back; each worker builds its own deployment (simnet
        // engine, caches, telemetry sink), so everything involved must be
        // `Send`. Compile-time check.
        fn assert_send<T: Send>() {}
        assert_send::<KvExperimentConfig>();
        assert_send::<crate::unityapp::UnityExperimentConfig>();
        assert_send::<crate::sessionapp::SessionExperimentConfig>();
        assert_send::<ExperimentReport>();
        assert_send::<crate::deployment::Deployment>();
        assert_send::<TelemetryBundle>();
    }

    #[test]
    fn linked_beats_base_on_cost() {
        let base = run_kv_experiment(&tiny_cfg(ArchKind::Base)).unwrap();
        let linked = run_kv_experiment(&tiny_cfg(ArchKind::Linked)).unwrap();
        assert!(
            linked.saving_vs(&base) > 1.5,
            "linked {:.2}$ must be well below base {:.2}$",
            linked.total_cost.total(),
            base.total_cost.total()
        );
        assert!(linked.cache_hit_ratio > 0.7, "{}", linked.cache_hit_ratio);
        assert_eq!(base.cache_hit_ratio, 0.0);
    }

    #[test]
    fn remote_lands_between_base_and_linked() {
        let base = run_kv_experiment(&tiny_cfg(ArchKind::Base)).unwrap();
        let remote = run_kv_experiment(&tiny_cfg(ArchKind::Remote)).unwrap();
        let linked = run_kv_experiment(&tiny_cfg(ArchKind::Linked)).unwrap();
        let (b, r, l) = (
            base.total_cost.total(),
            remote.total_cost.total(),
            linked.total_cost.total(),
        );
        assert!(
            l < r && r < b,
            "expected linked {l} < remote {r} < base {b}"
        );
    }

    #[test]
    fn version_checks_erase_most_of_the_saving() {
        let base = run_kv_experiment(&tiny_cfg(ArchKind::Base)).unwrap();
        let linked = run_kv_experiment(&tiny_cfg(ArchKind::Linked)).unwrap();
        let checked = run_kv_experiment(&tiny_cfg(ArchKind::LinkedVersion)).unwrap();
        let linked_saving = linked.saving_vs(&base);
        let checked_saving = checked.saving_vs(&base);
        assert!(
            checked_saving < 0.5 * linked_saving,
            "version checks should erase most of the benefit: linked {linked_saving:.2}x vs checked {checked_saving:.2}x"
        );
        assert!(checked.version_checks > 0);
    }

    #[test]
    fn lease_owned_recovers_the_loss() {
        let checked = run_kv_experiment(&tiny_cfg(ArchKind::LinkedVersion)).unwrap();
        let leased = run_kv_experiment(&tiny_cfg(ArchKind::LeaseOwned)).unwrap();
        assert!(
            leased.total_cost.total() < checked.total_cost.total() * 0.6,
            "leases must undercut per-read checks: {} vs {}",
            leased.total_cost.total(),
            checked.total_cost.total()
        );
        assert_eq!(leased.stale_reads, 0, "lease-owned reads stay consistent");
    }

    #[test]
    fn no_stale_reads_in_steady_state() {
        for arch in ArchKind::ALL {
            let report = run_kv_experiment(&tiny_cfg(arch)).unwrap();
            if arch == ArchKind::LinkedTtl {
                // TTL freshness trades staleness for cost — the runner
                // must *observe* stale reads here (that's the measurement
                // the TTL ablation sweeps).
                assert!(
                    report.stale_reads > 0,
                    "{arch}: unsharded TTL replicas must show staleness"
                );
            } else {
                assert_eq!(
                    report.stale_reads, 0,
                    "{arch}: write-through ownership keeps caches coherent in-run"
                );
            }
        }
    }

    #[test]
    fn default_runs_report_no_l0_activity() {
        // With `l0: None` (every default config) the tier must be
        // structurally absent: no hits, no misses, no admissions, no
        // invalidations, no age distribution.
        for arch in [ArchKind::Remote, ArchKind::Linked] {
            let r = run_kv_experiment(&tiny_cfg(arch)).unwrap();
            assert_eq!(r.l0_hits, 0, "{arch}");
            assert_eq!(r.l0_misses, 0, "{arch}");
            assert_eq!(r.l0_hit_ratio, 0.0, "{arch}");
            assert_eq!(r.l0_admitted, 0, "{arch}");
            assert_eq!(r.l0_rejected, 0, "{arch}");
            assert_eq!(r.l0_invalidations, 0, "{arch}");
            assert_eq!(r.l0_stale_admits_dropped, 0, "{arch}");
            assert_eq!(r.l0_stale_serves, 0, "{arch}");
            assert_eq!(r.l0_age_p50_us, 0, "{arch}");
            assert_eq!(r.l0_age_p99_us, 0, "{arch}");
        }
    }

    #[test]
    fn remote_l0_serves_the_head_coherently() {
        let mut cfg = tiny_cfg(ArchKind::Remote);
        cfg.deployment.l0 = Some(crate::config::L0Config::default());
        let with = run_kv_experiment(&cfg).unwrap();
        let without = run_kv_experiment(&tiny_cfg(ArchKind::Remote)).unwrap();
        assert!(with.l0_hits > 0, "the Zipf head must land in the L0");
        assert!(with.l0_hit_ratio > 0.5, "{}", with.l0_hit_ratio);
        assert_eq!(
            with.stale_reads, 0,
            "invalidate-first L0 hits are always fresh"
        );
        assert_eq!(with.l0_stale_serves, 0);
        assert!(
            with.l0_invalidations > 0,
            "writes to resident hot keys must invalidate"
        );
        // The head is served in-process, so the remote tier's RPC CPU (and
        // the bill) drops; the few MB of duplicated L0 DRAM can't offset it.
        assert!(
            with.total_cost.total() < without.total_cost.total(),
            "L0 {:.2}$ must undercut plain Remote {:.2}$",
            with.total_cost.total(),
            without.total_cost.total()
        );
        assert!(
            with.read_latency_p50_us < without.read_latency_p50_us,
            "an in-process hit beats a cache-node RPC on latency"
        );
    }

    #[test]
    fn linked_l0_composes_and_stays_coherent() {
        let mut cfg = tiny_cfg(ArchKind::Linked);
        cfg.deployment.l0 = Some(crate::config::L0Config::default());
        let r = run_kv_experiment(&cfg).unwrap();
        assert!(r.l0_hits > 0);
        assert!(r.l0_admitted > 0);
        assert_eq!(r.stale_reads, 0, "invalidate-first keeps Linked+L0 coherent");
        assert_eq!(r.l0_stale_serves, 0);
    }

    #[test]
    fn serve_stale_l0_bounds_staleness() {
        let mut cfg = tiny_cfg(ArchKind::Remote);
        // Write-heavy to surface staleness within the run.
        cfg.workload.read_ratio = 0.5;
        let bound_us = 5_000.0;
        cfg.deployment.l0 = Some(crate::config::L0Config {
            consistency: crate::config::L0Consistency::ServeStale,
            stale_after_us: bound_us,
            ..crate::config::L0Config::default()
        });
        let r = run_kv_experiment(&cfg).unwrap();
        assert!(r.l0_hits > 0);
        assert!(
            r.l0_stale_serves > 0,
            "serve-stale under writes must be *observed* as stale serves"
        );
        assert!(
            r.stale_reads >= r.l0_stale_serves,
            "every stale L0 serve is a stale read"
        );
        assert_eq!(
            r.l0_invalidations, 0,
            "serve-stale writers leave the tier alone"
        );
        // Entries expire at the declared bound, so the measured age
        // distribution sits at or below it (histogram-bucket slack: 2x).
        assert!(r.l0_age_p99_us > 0);
        assert!(
            (r.l0_age_p99_us as f64) <= 2.0 * bound_us,
            "p99 age {}us must respect the {}us bound",
            r.l0_age_p99_us,
            bound_us
        );
    }

    #[test]
    fn sharded_runs_refuse_the_l0_tier() {
        let mut cfg = tiny_cfg(ArchKind::Remote);
        cfg.deployment.l0 = Some(crate::config::L0Config::default());
        assert!(matches!(
            run_kv_shard(&cfg, 0, 2),
            Err(StoreError::Unsupported(_))
        ));
    }

    #[test]
    fn latency_orders_match_architecture() {
        let base = run_kv_experiment(&tiny_cfg(ArchKind::Base)).unwrap();
        let linked = run_kv_experiment(&tiny_cfg(ArchKind::Linked)).unwrap();
        assert!(
            linked.read_latency_p50_us < base.read_latency_p50_us,
            "linked p50 {} must beat base p50 {}",
            linked.read_latency_p50_us,
            base.read_latency_p50_us
        );
    }

    #[test]
    fn report_accounting_is_self_consistent() {
        let r = run_kv_experiment(&tiny_cfg(ArchKind::Linked)).unwrap();
        let tier_total: f64 = r.tiers.iter().map(|t| t.cost.total()).sum();
        assert!((tier_total - r.total_cost.total()).abs() < 1e-9);
        let tier_cores: f64 = r.tiers.iter().map(|t| t.cores).sum();
        assert!((tier_cores - r.total_cores).abs() < 1e-12);
        for t in &r.tiers {
            let frac_sum: f64 = t.cpu_fractions.iter().map(|(_, f)| f).sum();
            assert!(frac_sum <= 1.0 + 1e-9);
        }
        assert!(r.cost_per_million_requests() > 0.0);
        // VM sizing: ceil(cores / 0.7 / 8) per tier, summed.
        for t in &r.tiers {
            let expect = (t.cores / 0.7 / 8.0).ceil() as u64;
            assert_eq!(t.vms_at_target_util, expect);
            // 70% headroom keeps queueing modest on every busy tier.
            if t.cores > 0.1 {
                assert!(
                    t.expected_queue_wait.is_finite() && t.expected_queue_wait < 1.0,
                    "tier {} queue wait {}",
                    t.name,
                    t.expected_queue_wait
                );
            }
        }
        assert!(r.total_vms() >= 1);
        // JSON-serializable for the bench harness. Offline builds stub out
        // serde_json (to_string yields ""), so only check content when the
        // serializer is real.
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.is_empty() || json.contains("\"arch\""));
    }

    #[test]
    fn leader_crash_mid_run_recovers_with_visible_blip() {
        let mut cfg = tiny_cfg(ArchKind::Base);
        cfg.crash_leaders_at_request = Some(2_000);
        let crashed = run_kv_experiment(&cfg).unwrap();
        assert!(
            crashed.failovers > 0,
            "crashed leaders must trigger elections"
        );
        assert_eq!(crashed.stale_reads, 0, "failover must not corrupt data");

        let clean = run_kv_experiment(&tiny_cfg(ArchKind::Base)).unwrap();
        assert_eq!(clean.failovers, 0);
        assert!(
            crashed.read_latency_p99_us > clean.read_latency_p99_us,
            "the availability blip must show in tail latency: {} vs {}",
            crashed.read_latency_p99_us,
            clean.read_latency_p99_us
        );
        // Steady-state cost is essentially unchanged (the blip is latency,
        // not sustained CPU).
        let ratio = crashed.total_cost.total() / clean.total_cost.total();
        assert!((0.9..1.1).contains(&ratio), "cost ratio {ratio}");
    }

    #[test]
    fn trace_replay_matches_generator_run() {
        // Capture the generator's stream and replay it: the replayed run
        // must produce the identical report (same requests, same order).
        let cfg = tiny_cfg(ArchKind::Linked);
        let generated = run_kv_experiment(&cfg).unwrap();

        let mut wl = cfg.workload.build();
        let total = (cfg.warmup_requests + cfg.requests) as usize;
        let trace = workloads::trace::capture(&mut wl, total);
        let replayed = run_trace_experiment(
            &cfg.deployment,
            &trace,
            cfg.qps,
            cfg.warmup_requests as f64 / total as f64,
            &cfg.pricing,
        )
        .unwrap();
        // Compute and memory are bit-identical (same requests, same order);
        // disk differs slightly because the trace run seeds only the keys
        // the trace actually touches, not the whole configured keyspace.
        assert_eq!(generated.total_cost.compute, replayed.total_cost.compute);
        assert_eq!(generated.total_cost.memory, replayed.total_cost.memory);
        assert_eq!(generated.cache_hit_ratio, replayed.cache_hit_ratio);
        assert_eq!(generated.stale_reads, replayed.stale_reads);
    }

    #[test]
    fn scheduled_cache_crash_degrades_and_recovers() {
        use simnet::NodeId;
        // Crash every cache shard mid-measurement, restart shortly after.
        let mut cfg = tiny_cfg(ArchKind::Remote);
        cfg.deployment.fault_tolerance.single_flight = true;
        let dt = SimDuration::from_secs_f64(1.0 / cfg.qps);
        let crash_at = SimTime::ZERO + dt.saturating_mul(cfg.warmup_requests + 1_000);
        let downtime = dt.saturating_mul(1_000);
        let mut schedule = FaultSchedule::new();
        for shard in 0..cfg.deployment.remote_cache_nodes {
            schedule.crash_for(crash_at, NodeId(shard as u32), downtime);
        }
        cfg.cache_fault_schedule = Some(schedule);

        let faulty = run_kv_experiment(&cfg).unwrap();
        let mut clean_cfg = tiny_cfg(ArchKind::Remote);
        clean_cfg.deployment.fault_tolerance.single_flight = true;
        let clean = run_kv_experiment(&clean_cfg).unwrap();

        assert_eq!(
            faulty.cache_crashes,
            cfg.deployment.remote_cache_nodes as u64
        );
        assert_eq!(
            faulty.cache_restarts,
            cfg.deployment.remote_cache_nodes as u64
        );
        assert!(
            faulty.degraded_reads > 0,
            "outage window must degrade reads"
        );
        assert!(faulty.cache_retries > 0);
        assert!(faulty.net_dropped > 0);
        assert_eq!(clean.degraded_reads, 0);
        assert_eq!(clean.net_dropped, 0);
        assert!(
            faulty.read_latency_p99_us > clean.read_latency_p99_us,
            "outage must show in tail latency: {} vs {}",
            faulty.read_latency_p99_us,
            clean.read_latency_p99_us
        );
        assert!(
            faulty.cache_hit_ratio < clean.cache_hit_ratio,
            "cold restart costs hits: {} vs {}",
            faulty.cache_hit_ratio,
            clean.cache_hit_ratio
        );
        assert!(faulty.availability() <= 1.0);
    }

    #[test]
    fn scheduled_faults_are_deterministic() {
        use simnet::NodeId;
        let build = || {
            let mut cfg = tiny_cfg(ArchKind::Linked);
            cfg.deployment.fault_tolerance.single_flight = true;
            let dt = SimDuration::from_secs_f64(1.0 / cfg.qps);
            let crash_at = SimTime::ZERO + dt.saturating_mul(cfg.warmup_requests + 500);
            let mut schedule = FaultSchedule::new();
            schedule.crash_for(crash_at, NodeId(0), dt.saturating_mul(800));
            cfg.cache_fault_schedule = Some(schedule);
            cfg
        };
        let a = run_kv_experiment(&build()).unwrap();
        let b = run_kv_experiment(&build()).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same seed + same schedule must be byte-identical"
        );
        assert!(a.degraded_reads > 0);
    }

    #[test]
    fn scheduled_storage_crash_uses_failover_path() {
        use simnet::NodeId;
        let mut cfg = tiny_cfg(ArchKind::Base);
        let dt = SimDuration::from_secs_f64(1.0 / cfg.qps);
        let crash_at = SimTime::ZERO + dt.saturating_mul(cfg.warmup_requests + 1_000);
        let mut schedule = FaultSchedule::new();
        for r in 0..cfg.deployment.cluster.regions {
            schedule.crash(crash_at, NodeId(STORAGE_FAULT_NODE_BASE + r as u32));
        }
        cfg.cache_fault_schedule = Some(schedule);
        let report = run_kv_experiment(&cfg).unwrap();
        assert!(report.failovers > 0, "dead leaders must trigger elections");
        assert_eq!(report.stale_reads, 0);
    }

    #[test]
    fn default_runs_report_no_durability_activity() {
        let r = run_kv_experiment(&tiny_cfg(ArchKind::Remote)).unwrap();
        assert_eq!(r.wal_appends, 0);
        assert_eq!(r.wal_fsync_batches, 0);
        assert_eq!(r.snapshot_bytes, 0);
        assert_eq!(r.recoveries, 0);
        assert_eq!(r.recovery_time_us, 0);
        assert_eq!(r.replayed_entries, 0);
        assert_eq!(r.lost_tail_entries, 0);
        assert_eq!(r.cold_refill_cpu_us, 0);
        assert_eq!(r.ssd_resident_bytes, 0);
        assert_eq!(r.total_cost.ssd, 0.0, "no SSD line without durability");
    }

    fn durable_cfg(arch: ArchKind) -> KvExperimentConfig {
        let mut cfg = tiny_cfg(arch);
        cfg.deployment.cluster.durability = storekit::DurabilityConfig {
            enabled: true,
            fsync: storekit::FsyncPolicy::Group(8),
            snapshot_every_entries: 256,
        };
        cfg
    }

    #[test]
    fn scheduled_storage_crash_recovers_through_wal_replay() {
        use simnet::NodeId;
        let mut cfg = durable_cfg(ArchKind::Base);
        let dt = SimDuration::from_secs_f64(1.0 / cfg.qps);
        let crash_at = SimTime::ZERO + dt.saturating_mul(cfg.warmup_requests + 1_000);
        let mut schedule = FaultSchedule::new();
        // Crash the pod hosting region 0's leader; bring it back after a
        // 500-request outage.
        schedule.crash_for(
            crash_at,
            NodeId(STORAGE_FAULT_NODE_BASE),
            dt.saturating_mul(500),
        );
        cfg.cache_fault_schedule = Some(schedule);
        let r = run_kv_experiment(&cfg).unwrap();
        assert!(r.wal_appends > 0, "writes must be WAL'd");
        assert_eq!(r.recoveries, 1, "one pod recovery");
        assert!(r.recovery_time_us > 0);
        assert!(r.cold_refill_cpu_us > 0, "block cache lost residency");
        assert!(r.ssd_resident_bytes > 0);
        assert!(r.total_cost.ssd > 0.0, "SSD residency is billed");
        assert!(r.failovers > 0, "requests tripped over dead leaders");
        assert_eq!(r.stale_reads, 0, "no acked write is ever lost");
    }

    #[test]
    fn durable_runs_are_deterministic() {
        use simnet::NodeId;
        let build = || {
            let mut cfg = durable_cfg(ArchKind::Base);
            let dt = SimDuration::from_secs_f64(1.0 / cfg.qps);
            let mut schedule = FaultSchedule::new();
            schedule.crash_for(
                SimTime::ZERO + dt.saturating_mul(cfg.warmup_requests + 800),
                NodeId(STORAGE_FAULT_NODE_BASE + 1),
                dt.saturating_mul(400),
            );
            cfg.cache_fault_schedule = Some(schedule);
            cfg
        };
        let a = run_kv_experiment(&build()).unwrap();
        let b = run_kv_experiment(&build()).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "crash-replay must be fully deterministic"
        );
        assert_eq!(a.recoveries, b.recoveries);
        assert_eq!(a.replayed_entries, b.replayed_entries);
    }

    #[test]
    fn memory_fraction_higher_for_linked_than_base() {
        let base = run_kv_experiment(&tiny_cfg(ArchKind::Base)).unwrap();
        let linked = run_kv_experiment(&tiny_cfg(ArchKind::Linked)).unwrap();
        assert!(
            linked.memory_cost_fraction() > base.memory_cost_fraction(),
            "linked {} vs base {}",
            linked.memory_cost_fraction(),
            base.memory_cost_fraction()
        );
    }

    #[test]
    fn default_runs_report_no_elastic_activity() {
        let r = run_kv_experiment(&tiny_cfg(ArchKind::Remote)).unwrap();
        assert_eq!(r.elastic_decisions, 0);
        assert_eq!(r.elastic_resizes, 0);
        assert_eq!(r.elastic_migrated_entries, 0);
        assert_eq!(r.peak_window_cores, 0.0);
        assert_eq!(r.elastic_mean_cache_bytes, 0.0);
        assert_eq!(r.elastic_peak_cache_bytes, 0);
    }

    #[test]
    fn diurnal_schedule_stretches_the_virtual_day() {
        let mut flat_cfg = elastic_cfg(ArchKind::Linked);
        flat_cfg.deployment.elastic = elastic::ElasticConfig::default();
        flat_cfg.diurnal = None;
        let flat = run_kv_experiment(&flat_cfg).unwrap();
        let mut cfg = elastic_cfg(ArchKind::Linked);
        cfg.deployment.elastic = elastic::ElasticConfig::default();
        let wavy = run_kv_experiment(&cfg).unwrap();
        assert_eq!(flat.requests, wavy.requests);
        // Sub-peak arrival rates stretch inter-arrival gaps, so the same
        // request count spans more virtual time than the flat-rate run.
        assert!(
            wavy.duration_secs > flat.duration_secs * 1.2,
            "diurnal {} vs flat {}",
            wavy.duration_secs,
            flat.duration_secs
        );
        // Windows were tracked, and the peak window runs hotter than the
        // run-average cores (that gap is the static-provisioning waste).
        assert!(wavy.peak_window_cores > wavy.total_cores, "{wavy:?}");
        assert_eq!(wavy.elastic_resizes, 0, "controller still off");
    }

    #[test]
    fn elastic_run_is_deterministic_and_actually_resizes() {
        let a = run_kv_experiment(&elastic_cfg(ArchKind::Remote)).unwrap();
        let b = run_kv_experiment(&elastic_cfg(ArchKind::Remote)).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "elastic control loop must be fully deterministic"
        );
        assert!(a.elastic_decisions > 0, "{a:?}");
        assert!(
            a.elastic_resizes > 0,
            "plan must differ from the static size"
        );
        assert!(a.elastic_peak_cache_bytes > 0);
        assert!(a.elastic_mean_cache_bytes > 0.0);
    }

    #[test]
    fn elastic_trims_the_memory_bill_and_keeps_hits() {
        // Same diurnal day, controller off vs on.
        let mut static_cfg = elastic_cfg(ArchKind::Linked);
        static_cfg.deployment.elastic = elastic::ElasticConfig::default();
        let fixed = run_kv_experiment(&static_cfg).unwrap();
        let flexed = run_kv_experiment(&elastic_cfg(ArchKind::Linked)).unwrap();

        assert!(
            flexed.elastic_mean_cache_bytes < static_cfg.deployment.total_linked_bytes() as f64,
            "mean capacity {} must undercut the static {} bytes",
            flexed.elastic_mean_cache_bytes,
            static_cfg.deployment.total_linked_bytes()
        );
        assert!(
            flexed.total_cost.memory < fixed.total_cost.memory,
            "elastic memory bill {} must beat static {}",
            flexed.total_cost.memory,
            fixed.total_cost.memory
        );
        assert!(
            (fixed.cache_hit_ratio - flexed.cache_hit_ratio).abs() <= 0.02,
            "hit ratio must stay within 2 points: static {} vs elastic {}",
            fixed.cache_hit_ratio,
            flexed.cache_hit_ratio
        );
    }

    /// tiny_cfg slowed to ~1 heartbeat per virtual second with the TTL
    /// control plane deciding every 2 virtual seconds. The candidate grid
    /// is capped well below the 7-day default so the adopted TTL is short
    /// enough for entries to lapse (and the sweeper to reclaim them)
    /// within the few virtual seconds the test simulates.
    fn ttl_cfg(arch: ArchKind) -> KvExperimentConfig {
        let mut cfg = tiny_cfg(arch);
        cfg.qps = 2_000.0;
        // Warmup spans several decision intervals so the first adopted TTL
        // (and the expiry churn it causes) lands pre-measurement.
        cfg.warmup_requests = 8_000;
        cfg.requests = 12_000;
        cfg.deployment.ttl = elastic::TtlConfig {
            decision_interval_secs: 2.0,
            max_ttl_secs: 8.0,
            ..elastic::TtlConfig::default()
        };
        cfg
    }

    #[test]
    fn default_runs_report_no_ttl_activity() {
        for arch in [ArchKind::Remote, ArchKind::Linked] {
            let r = run_kv_experiment(&tiny_cfg(arch)).unwrap();
            assert_eq!(r.ttl_decisions, 0);
            assert_eq!(r.ttl_changes, 0);
            assert_eq!(r.expired_entries, 0);
            assert_eq!(r.expiry_sweep_cpu_us, 0);
            assert!(r.ttl_current_secs.is_empty());
            assert_eq!(r.ttl_mean_resident_bytes, 0.0);
            assert!(r.tenants.is_empty());
        }
    }

    #[test]
    fn ttl_plane_is_gated_to_plain_cache_archs() {
        // LinkedTtl's fixed TTL *is* its consistency contract; the adaptive
        // plane must refuse to fight it even when configured on.
        let mut cfg = ttl_cfg(ArchKind::LinkedTtl);
        let with_plane = run_kv_experiment(&cfg).unwrap();
        assert_eq!(with_plane.ttl_decisions, 0);
        assert_eq!(with_plane.expired_entries, 0);
        cfg.deployment.ttl = elastic::TtlConfig::default();
        let without = run_kv_experiment(&cfg).unwrap();
        assert_eq!(
            serde_json::to_string(&with_plane).unwrap(),
            serde_json::to_string(&without).unwrap(),
            "an unsupported arch must ignore the TTL config entirely"
        );
    }

    #[test]
    fn ttl_run_is_deterministic_and_decides() {
        let a = run_kv_experiment(&ttl_cfg(ArchKind::Remote)).unwrap();
        let b = run_kv_experiment(&ttl_cfg(ArchKind::Remote)).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "TTL control loop must be fully deterministic"
        );
        assert!(a.ttl_decisions > 0, "{a:?}");
        assert!(a.ttl_changes > 0, "the first adoption counts as a change");
        assert_eq!(a.ttl_current_secs.len(), 1, "one controller, no tenants");
        let ttl = a.ttl_current_secs[0];
        assert!(
            (0.004..=8.0).contains(&ttl),
            "adopted TTL {ttl}s must respect the configured bounds"
        );
        assert!(a.expired_entries > 0, "short TTLs must lapse entries");
        assert!(a.expiry_sweep_cpu_us > 0, "reclaim work must be billed");
        assert!(a.ttl_mean_resident_bytes > 0.0);
    }

    #[test]
    fn ttl_plane_trims_the_memory_bill_and_keeps_hits() {
        let mut static_cfg = ttl_cfg(ArchKind::Remote);
        static_cfg.deployment.ttl = elastic::TtlConfig::default();
        let fixed = run_kv_experiment(&static_cfg).unwrap();
        let flexed = run_kv_experiment(&ttl_cfg(ArchKind::Remote)).unwrap();
        assert!(
            flexed.ttl_mean_resident_bytes
                < static_cfg.deployment.total_remote_bytes() as f64,
            "mean resident {} must undercut the configured {} bytes",
            flexed.ttl_mean_resident_bytes,
            static_cfg.deployment.total_remote_bytes()
        );
        assert!(
            flexed.total_cost.memory < fixed.total_cost.memory,
            "resident-byte billing {} must beat capacity billing {}",
            flexed.total_cost.memory,
            fixed.total_cost.memory
        );
        assert!(
            (fixed.cache_hit_ratio - flexed.cache_hit_ratio).abs() <= 0.02,
            "hit ratio must stay within 2 points: static {} vs ttl {}",
            fixed.cache_hit_ratio,
            flexed.cache_hit_ratio
        );
    }

    fn tenant_cfg(arch: ArchKind) -> KvExperimentConfig {
        let mut cfg = ttl_cfg(arch);
        let quiet = TenantSpec::new(
            "quiet",
            3.0,
            KvWorkloadConfig {
                keys: 400,
                alpha: 1.2,
                read_ratio: 0.95,
                sizes: SizeDist::Fixed(1_000),
                seed: 11,
                churn_period: None,
            },
        );
        let stormy = TenantSpec::new(
            "stormy",
            1.0,
            KvWorkloadConfig {
                keys: 400,
                alpha: 1.1,
                read_ratio: 0.9,
                sizes: SizeDist::Fixed(1_000),
                seed: 13,
                churn_period: None,
            },
        )
        .with_storm(3.0, 1.0, 0.2);
        cfg.tenants = Some(workloads::TenantMix::new(vec![quiet, stormy], 99));
        cfg
    }

    #[test]
    fn tenant_mix_reports_per_tenant_accounting() {
        let a = run_kv_experiment(&tenant_cfg(ArchKind::Remote)).unwrap();
        let b = run_kv_experiment(&tenant_cfg(ArchKind::Remote)).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "tenant mixes must be fully deterministic"
        );
        assert_eq!(a.tenants.len(), 2);
        assert_eq!(a.tenants[0].label, "quiet");
        assert_eq!(a.tenants[1].label, "stormy");
        // Per-tenant tallies partition the run-level totals exactly.
        assert_eq!(
            a.tenants.iter().map(|t| t.requests).sum::<u64>(),
            a.requests
        );
        let reads: u64 = a.tenants.iter().map(|t| t.reads).sum();
        let hits: u64 = a.tenants.iter().map(|t| t.cache_hits).sum();
        assert!(
            (hits as f64 / reads as f64 - a.cache_hit_ratio).abs() < 1e-12,
            "tenant hit tallies must re-derive the run-level hit ratio"
        );
        let dollars: f64 = a.tenants.iter().map(|t| t.monthly_dollars).sum();
        assert!(
            (dollars - a.total_cost.total()).abs() < 1e-6 * a.total_cost.total(),
            "showback split {dollars} must re-sum to the bill {}",
            a.total_cost.total()
        );
        for t in &a.tenants {
            assert_eq!(t.reads + t.writes, t.requests, "{}", t.label);
            assert!((0.0..=1.0).contains(&t.hit_ratio), "{}", t.label);
            assert!(t.ttl_decisions > 0, "{} controller never decided", t.label);
            assert!(t.ttl_secs > 0.0, "{} has no adopted TTL", t.label);
        }
        // The storm really happened: the write-heavy tenant writes a far
        // larger share of its traffic than the quiet one.
        let write_share = |t: &TenantReport| t.writes as f64 / t.requests as f64;
        assert!(
            write_share(&a.tenants[1]) > write_share(&a.tenants[0]) + 0.05,
            "storm tenant write share {} vs quiet {}",
            write_share(&a.tenants[1]),
            write_share(&a.tenants[0])
        );
        // Per-tenant controllers ⇒ per-tenant TTLs exported.
        assert_eq!(a.ttl_current_secs.len(), 2);
    }

    #[test]
    fn default_runs_report_no_obs_activity() {
        let r = run_kv_experiment(&tiny_cfg(ArchKind::Remote)).unwrap();
        assert_eq!(r.slo_alerts_fired, 0);
        assert_eq!(r.tail_p99_threshold_us, 0);
        assert!(r.tail_causes.is_empty());
        // p999 is always reported, observability or not.
        assert!(r.read_latency_p999_us >= r.read_latency_p99_us);
        assert!(r.write_latency_p999_us >= r.write_latency_p99_us);
    }

    #[test]
    fn observability_leaves_the_report_unchanged() {
        // The obs layer only *observes*: the cost/latency report of an
        // instrumented run must be byte-identical to the plain run. Lower
        // qps so the measured window spans several heartbeats (~1 virtual
        // second each).
        let slow = |arch| {
            let mut cfg = tiny_cfg(arch);
            cfg.qps = 2_000.0;
            cfg.warmup_requests = 4_000;
            cfg.requests = 8_000;
            cfg
        };
        let plain = run_kv_experiment(&slow(ArchKind::Linked)).unwrap();
        let mut cfg = slow(ArchKind::Linked);
        cfg.trace_sample_every = Some(20);
        cfg.observability = Some(crate::obs::ObsConfig::default());
        let (observed, bundle) = run_kv_experiment_with_telemetry(&cfg).unwrap();
        assert_eq!(plain.total_cost.total(), observed.total_cost.total());
        assert_eq!(plain.read_latency_p99_us, observed.read_latency_p99_us);
        assert_eq!(plain.read_latency_p999_us, observed.read_latency_p999_us);
        assert_eq!(plain.cache_hit_ratio, observed.cache_hit_ratio);
        let obs = bundle.obs.expect("artifacts present when enabled");
        assert!(!obs.timeseries.is_empty(), "heartbeats must be recorded");
        // Attribution covers the measured run and each tail request has
        // exactly one cause.
        assert_eq!(obs.tail.measured_requests, cfg.requests);
        let count: u64 = obs.tail.causes.iter().map(|c| c.count).sum();
        assert_eq!(count, obs.tail.tail_requests.len() as u64);
        assert!(observed.tail_p99_threshold_us > 0);
    }

    #[test]
    fn observed_fault_run_is_deterministic_and_attributes_the_tail() {
        use simnet::NodeId;
        let build = || {
            let mut cfg = tiny_cfg(ArchKind::Remote);
            cfg.deployment.fault_tolerance.single_flight = true;
            cfg.trace_sample_every = Some(10);
            cfg.observability = Some(crate::obs::ObsConfig {
                p99_budget_us: 400,
                ..crate::obs::ObsConfig::default()
            });
            let dt = SimDuration::from_secs_f64(1.0 / cfg.qps);
            let crash_at = SimTime::ZERO + dt.saturating_mul(cfg.warmup_requests + 1_000);
            let mut schedule = FaultSchedule::new();
            for shard in 0..cfg.deployment.remote_cache_nodes {
                schedule.crash_for(crash_at, NodeId(shard as u32), dt.saturating_mul(1_000));
            }
            cfg.cache_fault_schedule = Some(schedule);
            cfg
        };
        let (ra, ba) = run_kv_experiment_with_telemetry(&build()).unwrap();
        let (rb, bb) = run_kv_experiment_with_telemetry(&build()).unwrap();
        let (oa, ob) = (ba.obs.unwrap(), bb.obs.unwrap());
        assert_eq!(oa.timeseries.to_jsonl(), ob.timeseries.to_jsonl());
        assert_eq!(oa.alerts_json(), ob.alerts_json());
        assert_eq!(oa.tail.to_json(), ob.tail.to_json());
        assert_eq!(ra.slo_alerts_fired, rb.slo_alerts_fired);
        // The outage window must be annotated and charged to the tail.
        assert!(!oa.timeseries.annotations().is_empty(), "fault annotations");
        let fault_excess: u64 = oa
            .tail
            .causes
            .iter()
            .filter(|c| {
                matches!(
                    c.cause,
                    crate::obs::TailCause::FaultWindow | crate::obs::TailCause::RetryBackoff
                )
            })
            .map(|c| c.excess_us)
            .sum();
        assert!(
            fault_excess > 0,
            "outage must dominate the tail: {:?}",
            oa.tail.causes
        );
        assert!(ra.requests > 0);
    }
}
