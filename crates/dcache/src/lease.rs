//! Ownership leases over key ranges — the §6 "auto-sharder" design.
//!
//! The paper's future-work proposal: instead of a per-read version check,
//! give each linked-cache shard *strong ownership* of its key range via an
//! auto-sharder (Slicer, OSDI '16). While a shard holds a valid lease and all
//! writes for its range are routed through it, the shard's cache is
//! trivially coherent and reads are linearizable without touching storage.
//!
//! Two hazards remain and are modeled here:
//!
//! * **Lease expiry / transfer** — during a transfer, the old owner must
//!   stop serving from cache (reads fall back to version checks) until the
//!   new owner has a lease.
//! * **Delayed writes (Figure 8)** — a write issued under epoch `e` may
//!   land in storage after ownership moved to epoch `e+1`, silently
//!   diverging cache and storage. The fix is classic fencing: every write
//!   carries its issuing epoch, and [`AutoSharder::admit_write`] rejects
//!   stale epochs. The consistency tests demonstrate both the hazard and
//!   the fix end-to-end.

use cachekit::HashRing;
use serde::{Deserialize, Serialize};
use simnet::{SimDuration, SimTime};

/// Per-shard lease state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ShardLease {
    epoch: u64,
    lease_until: SimTime,
}

/// The auto-sharder: key→shard assignment plus per-shard lease epochs.
#[derive(Debug, Clone)]
pub struct AutoSharder {
    ring: HashRing,
    leases: Vec<ShardLease>,
    lease: SimDuration,
}

impl AutoSharder {
    /// `shards` owners, each granted an initial lease at epoch 1 from `now`.
    pub fn new(shards: u32, lease: SimDuration, now: SimTime) -> Self {
        AutoSharder {
            ring: HashRing::with_shards(shards, 128),
            leases: (0..shards)
                .map(|_| ShardLease {
                    epoch: 1,
                    lease_until: now + lease,
                })
                .collect(),
            lease,
        }
    }

    pub fn shard_count(&self) -> usize {
        self.leases.len()
    }

    /// The shard owning `key`.
    pub fn owner(&self, key: &[u8]) -> u32 {
        self.ring.shard_for(key).expect("sharder always has shards")
    }

    /// [`AutoSharder::owner`] by precomputed `stable_hash(key)` (interned
    /// keys carry it), avoiding the per-request byte walk.
    pub fn owner_hashed(&self, hash: u64) -> u32 {
        self.ring
            .shard_for_hashed(hash)
            .expect("sharder always has shards")
    }

    /// Current fencing epoch of a shard.
    pub fn epoch(&self, shard: u32) -> u64 {
        self.leases[shard as usize].epoch
    }

    /// Whether `shard` may serve consistent reads from cache at `now`.
    pub fn lease_valid(&self, shard: u32, now: SimTime) -> bool {
        now < self.leases[shard as usize].lease_until
    }

    /// Renew a shard's lease (heartbeat to the sharder).
    pub fn renew(&mut self, shard: u32, now: SimTime) {
        self.leases[shard as usize].lease_until = now + self.lease;
    }

    /// Renew every shard (the experiment loop's periodic heartbeat).
    pub fn renew_all(&mut self, now: SimTime) {
        for l in &mut self.leases {
            l.lease_until = now + self.lease;
        }
    }

    /// Transfer ownership of a shard (resharding, node failure): bumps the
    /// fencing epoch and grants a fresh lease to the new owner. Writes
    /// stamped with the old epoch are no longer admissible.
    pub fn transfer(&mut self, shard: u32, now: SimTime) -> u64 {
        let l = &mut self.leases[shard as usize];
        l.epoch += 1;
        l.lease_until = now + self.lease;
        l.epoch
    }

    /// Revoke a shard's lease without granting a new one (owner crash; the
    /// range is unowned until `transfer` runs).
    pub fn revoke(&mut self, shard: u32) {
        self.leases[shard as usize].lease_until = SimTime::ZERO;
    }

    /// Fencing check: a write stamped with `epoch` is admissible iff it is
    /// the shard's current epoch.
    pub fn admit_write(&self, shard: u32, epoch: u64) -> bool {
        self.leases[shard as usize].epoch == epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn sharder() -> AutoSharder {
        AutoSharder::new(4, SimDuration::from_millis(100), t(0))
    }

    #[test]
    fn ownership_is_stable_per_key() {
        let s = sharder();
        for i in 0..100 {
            let k = format!("key{i}").into_bytes();
            assert_eq!(s.owner(&k), s.owner(&k));
            assert!(s.owner(&k) < 4);
        }
    }

    #[test]
    fn leases_expire_and_renew() {
        let mut s = sharder();
        assert!(s.lease_valid(0, t(50)));
        assert!(!s.lease_valid(0, t(100)));
        s.renew(0, t(100));
        assert!(s.lease_valid(0, t(150)));
        assert!(!s.lease_valid(0, t(250)));
        s.renew_all(t(250));
        for shard in 0..4 {
            assert!(s.lease_valid(shard, t(300)));
        }
    }

    #[test]
    fn transfer_bumps_epoch_and_fences_old_writes() {
        let mut s = sharder();
        let old = s.epoch(2);
        assert!(s.admit_write(2, old));
        let new = s.transfer(2, t(10));
        assert_eq!(new, old + 1);
        assert!(!s.admit_write(2, old), "stale epoch must be fenced");
        assert!(s.admit_write(2, new));
        // other shards unaffected
        assert!(s.admit_write(0, s.epoch(0)));
    }

    #[test]
    fn revoke_blocks_cached_reads_until_transfer() {
        let mut s = sharder();
        s.revoke(1);
        assert!(!s.lease_valid(1, t(1)));
        s.transfer(1, t(2));
        assert!(s.lease_valid(1, t(50)));
    }
}
