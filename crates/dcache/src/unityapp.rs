//! The Unity Catalog applications — rich objects (§5.4).
//!
//! Two flavors of the same service, matching the paper's comparison:
//!
//! * **Unity Catalog-Object** ([`run_unity_object_experiment`]) — how the
//!   production service works: a `getTable` read issues the 8 dependent SQL
//!   statements, the app assembles the rich object from the results, and —
//!   under the caching architectures — caches the *assembled object*.
//!   A cached hit saves all 8 statements plus assembly: the "query
//!   amplification" elimination of §5.4.
//! * **Unity Catalog-KV** ([`run_unity_kv_experiment`]) — the denormalized
//!   strawman: the entire object pre-joined into a single row, so a read is
//!   one point lookup. Cheaper than Object at the storage, but caching
//!   saves proportionally less — which is exactly the paper's contrast.
//!
//! Writes rewrite the table's property blob; cached objects are invalidated
//! (a rich object cannot be incrementally patched — one of §6's open
//! challenges) and reassembled on the next read.

use crate::config::{ArchKind, DeploymentConfig};
use crate::deployment::{CachedVal, Deployment, ServeOutcome};
use crate::experiment::{build_report, ExperimentReport, RunMetrics};
use costmodel::Pricing;
use simnet::{CpuCategory, SimDuration, SimTime};
use storekit::error::StoreResult;
use storekit::value::Datum;
use workloads::unity::{unity_kv_schema, unity_schema, UnityDataset, UnityOp, UnityScale, UnityWorkload};

/// Configuration of one Unity Catalog cost run.
#[derive(Debug, Clone)]
pub struct UnityExperimentConfig {
    pub deployment: DeploymentConfig,
    pub scale: UnityScale,
    pub qps: f64,
    pub warmup_requests: u64,
    pub requests: u64,
    /// Serve every table once before warmup so caches start resident
    /// (approximates the paper's long steady state).
    pub prewarm: bool,
    pub pricing: Pricing,
    pub stream_seed: u64,
}

impl UnityExperimentConfig {
    pub fn paper(arch: ArchKind, scale: UnityScale) -> Self {
        UnityExperimentConfig {
            deployment: DeploymentConfig::paper(arch),
            scale,
            qps: 40_000.0, // §5.2: ~40K QPS
            warmup_requests: 100_000,
            requests: 100_000,
            prewarm: true,
            pricing: Pricing::default(),
            stream_seed: 1,
        }
    }

    /// A tiny configuration for tests.
    pub fn test_small(arch: ArchKind) -> Self {
        UnityExperimentConfig {
            deployment: DeploymentConfig::test_small(arch),
            scale: UnityScale::tiny(5),
            qps: 20_000.0,
            warmup_requests: 1_500,
            requests: 3_000,
            prewarm: false,
            pricing: Pricing::default(),
            stream_seed: 2,
        }
    }
}

fn object_cache_key(t: u64) -> Vec<u8> {
    let mut k = b"obj/".to_vec();
    k.extend_from_slice(&t.to_be_bytes());
    k
}

/// Serve one `getTable` under the configured architecture.
fn serve_get_table(
    dep: &mut Deployment,
    dataset: &UnityDataset,
    t: u64,
    generation: u64,
    now: SimTime,
) -> StoreResult<ServeOutcome> {
    let ckey = dep.intern_bytes(&object_cache_key(t));
    let app = dep.route_app(ckey);
    let mut out = ServeOutcome::default();

    let arch = dep.config.arch;
    // 1. Try the object cache (if the architecture has one).
    let cached: Option<CachedVal> = match arch {
        ArchKind::Base => None,
        ArchKind::Remote => {
            let (hit, lat) = dep.remote_lookup(app, ckey, now);
            out.latency += lat;
            hit
        }
        ArchKind::Linked | ArchKind::LinkedVersion | ArchKind::LeaseOwned | ArchKind::LinkedTtl => {
            out.latency += dep.charge_linked_op(app);
            dep.linked[app].get(&ckey, now.as_nanos()).copied()
        }
    };

    // 2. Decide whether the cached object may be served.
    let mut serve_cached: Option<CachedVal> = None;
    if let Some(v) = cached {
        match arch {
            ArchKind::Remote | ArchKind::Linked | ArchKind::LinkedTtl => serve_cached = Some(v),
            ArchKind::LinkedVersion => {
                // Consistent read: verify the `tables` row version.
                let (latest, lat) = dep.version_check(app, "tables", t as i64, now)?;
                out.version_checks += 1;
                out.sql_statements += 1;
                out.latency += lat;
                if latest == Some(v.version) {
                    serve_cached = Some(v);
                } else {
                    dep.linked[app].remove(&ckey);
                }
            }
            ArchKind::LeaseOwned => {
                let shard = dep.sharder.owner_hashed(ckey.route_hash());
                let lease_cost =
                    SimDuration::from_micros_f64(dep.config.app_cost.lease_validate_us);
                dep.charge_app(app, CpuCategory::TxnLease, lease_cost);
                out.latency += lease_cost;
                if dep.sharder.lease_valid(shard, now) {
                    serve_cached = Some(v);
                } else {
                    let (latest, lat) = dep.version_check(app, "tables", t as i64, now)?;
                    out.version_checks += 1;
                    out.sql_statements += 1;
                    out.latency += lat;
                    dep.sharder.renew(shard, now);
                    if latest == Some(v.version) {
                        serve_cached = Some(v);
                    } else {
                        dep.linked[app].remove(&ckey);
                    }
                }
            }
            ArchKind::Base => unreachable!("Base never caches"),
        }
    }

    if let Some(v) = serve_cached {
        out.cache_hit = true;
        out.bytes = v.bytes;
        out.seed = Some(v.seed);
        out.version = Some(v.version);
        out.latency += dep.charge_client_reply(app, v.bytes);
        return Ok(out);
    }

    // 3. Cache miss (or Base): issue the 8 statements and assemble.
    let statements = dataset.get_table_statements(t);
    let mut total_bytes = 0u64;
    let mut parts = 0u64;
    let mut object_version = 0u64;
    for (i, (sql, params)) in statements.iter().enumerate() {
        let receipt = dep.cluster.execute(sql, params, now)?;
        out.sql_statements += 1;
        total_bytes += receipt.response_bytes;
        parts += receipt.rows.len() as u64;
        if i == 0 {
            // The `tables` row's MVCC version identifies the object version.
            object_version = receipt.versions.first().copied().unwrap_or(0);
        }
        out.latency += dep.charge_app_db_rpc(app, &receipt);
    }
    // Application logic: fold the result rows into the rich object.
    let assemble = SimDuration::from_micros_f64(
        dep.config.app_cost.object_assemble_per_part_us * parts.max(1) as f64
            + dep.config.app_cost.object_assemble_per_byte_ns * total_bytes as f64 / 1e3,
    );
    dep.charge_app(app, CpuCategory::AppLogic, assemble);
    out.latency += assemble;

    let object = CachedVal {
        version: object_version,
        bytes: dataset.object_logical_bytes(t),
        seed: generation,
    };

    // 4. Fill the object cache.
    match arch {
        ArchKind::Base => {}
        ArchKind::Remote => {
            out.latency += dep.remote_update(app, ckey, Some(object), now);
        }
        ArchKind::Linked | ArchKind::LinkedVersion | ArchKind::LeaseOwned => {
            out.latency += dep.charge_linked_op(app);
            dep.linked[app].insert(ckey, object, object.bytes, now.as_nanos());
        }
        ArchKind::LinkedTtl => {
            out.latency += dep.charge_linked_op(app);
            let ttl = dep.config.linked_ttl.as_nanos();
            dep.linked[app].insert_with_ttl(ckey, object, object.bytes, now.as_nanos(), ttl);
        }
    }

    out.bytes = object.bytes;
    out.seed = Some(object.seed);
    out.version = Some(object.version);
    out.latency += dep.charge_client_reply(app, object.bytes);
    Ok(out)
}

/// Serve one property update: write the `tables` row, invalidate the object.
fn serve_update_table(
    dep: &mut Deployment,
    dataset: &UnityDataset,
    t: u64,
    generation: u64,
    now: SimTime,
) -> StoreResult<ServeOutcome> {
    let ckey = dep.intern_bytes(&object_cache_key(t));
    let app = dep.route_app(ckey);
    let mut out = ServeOutcome::default();

    let (sql, params) = dataset.update_table_statement(t, generation);
    let payload_bytes = params
        .first()
        .map(|d| d.encoded_size().saturating_sub(5))
        .unwrap_or(0);
    let ser = dep.config.app_cost.serialize_cost(payload_bytes);
    dep.charge_app(app, CpuCategory::Serialization, ser);
    out.latency += ser;
    let receipt = dep.cluster.execute(sql, &params, now)?;
    out.sql_statements += 1;
    out.version = receipt.write_version;
    out.latency += dep.charge_app_db_rpc(app, &receipt);

    match dep.config.arch {
        ArchKind::Base => {}
        ArchKind::Remote => {
            out.latency += dep.remote_update(app, ckey, None, now);
        }
        ArchKind::Linked | ArchKind::LinkedVersion | ArchKind::LeaseOwned | ArchKind::LinkedTtl => {
            // Rich objects can't be patched in place: invalidate, and let
            // the next read reassemble (§6 discusses exactly this cost).
            // (For LinkedTtl this only clears the *writing* server's copy;
            // other servers age out via TTL.)
            out.latency += dep.charge_linked_op(app);
            dep.linked[app].remove(&ckey);
        }
    }
    out.latency += dep.charge_client_reply(app, 16);
    Ok(out)
}

/// Run the **Unity Catalog-Object** cost experiment.
pub fn run_unity_object_experiment(cfg: &UnityExperimentConfig) -> StoreResult<ExperimentReport> {
    let dataset = UnityDataset::new(cfg.scale);
    let mut dep = Deployment::new(cfg.deployment.clone(), unity_schema());
    // Load the relational universe, grouped by entity table.
    let mut grouped: std::collections::HashMap<&'static str, Vec<Vec<Datum>>> =
        std::collections::HashMap::new();
    for (table, row) in dataset.seed_rows() {
        grouped.entry(table).or_default().push(row);
    }
    for (table, rows) in grouped {
        dep.cluster.bulk_load(table, rows)?;
    }
    run_unity_loop(cfg, dep, &dataset, UnityFlavor::Object)
}

/// Run the **Unity Catalog-KV** cost experiment (denormalized single-row).
pub fn run_unity_kv_experiment(cfg: &UnityExperimentConfig) -> StoreResult<ExperimentReport> {
    let dataset = UnityDataset::new(cfg.scale);
    let mut dep = Deployment::new(cfg.deployment.clone(), unity_kv_schema());
    dep.cluster.bulk_load("objects", dataset.denorm_rows())?;
    run_unity_loop(cfg, dep, &dataset, UnityFlavor::Kv)
}

#[derive(Clone, Copy, PartialEq)]
enum UnityFlavor {
    Object,
    Kv,
}

fn run_unity_loop(
    cfg: &UnityExperimentConfig,
    mut dep: Deployment,
    dataset: &UnityDataset,
    flavor: UnityFlavor,
) -> StoreResult<ExperimentReport> {
    if cfg.prewarm {
        for t in 0..cfg.scale.tables {
            match flavor {
                UnityFlavor::Object => {
                    serve_get_table(&mut dep, dataset, t, 0, SimTime::ZERO)?;
                }
                UnityFlavor::Kv => {
                    dep.serve_kv_read("objects", t as i64, SimTime::ZERO)?;
                }
            }
        }
    }

    let mut workload = UnityWorkload::new(&cfg.scale, cfg.stream_seed);
    let mut generation: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut last_version: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let dt = SimDuration::from_secs_f64(1.0 / cfg.qps.max(1.0));
    let mut now = SimTime::ZERO;
    let mut metrics = RunMetrics::new();
    let total = cfg.warmup_requests + cfg.requests;
    let heartbeat_every = (cfg.qps as u64).max(1);
    let mut measuring = false;
    let mut measure_start = SimTime::ZERO;

    for i in 0..total {
        if i == cfg.warmup_requests {
            dep.reset_metrics();
            metrics = RunMetrics::new();
            measuring = true;
            measure_start = now;
        }
        if i % heartbeat_every == 0 {
            dep.cluster.tick(now);
            dep.sharder.renew_all(now);
        }
        let req = workload.next().expect("workload is infinite");
        match req.op {
            UnityOp::GetTable => {
                let gen = generation.get(&req.table).copied().unwrap_or(0);
                let out = match flavor {
                    UnityFlavor::Object => {
                        serve_get_table(&mut dep, dataset, req.table, gen, now)?
                    }
                    UnityFlavor::Kv => dep.serve_kv_read("objects", req.table as i64, now)?,
                };
                if measuring {
                    metrics.reads += 1;
                    metrics.read_latency.record(out.latency.as_nanos());
                    metrics.cache_hits += out.cache_hit as u64;
                    metrics.version_checks += out.version_checks;
                    metrics.sql_statements += out.sql_statements;
                    if let (Some(v), Some(&expect)) = (out.version, last_version.get(&req.table))
                    {
                        if v < expect {
                            metrics.stale_reads += 1;
                        }
                    }
                }
            }
            UnityOp::UpdateTable => {
                let gen = generation.entry(req.table).or_insert(0);
                *gen += 1;
                let gen = *gen;
                let out = match flavor {
                    UnityFlavor::Object => {
                        serve_update_table(&mut dep, dataset, req.table, gen, now)?
                    }
                    UnityFlavor::Kv => {
                        let value = Datum::Payload {
                            len: dataset.object_logical_bytes(req.table),
                            seed: gen,
                        };
                        dep.serve_kv_write("objects", req.table as i64, value, now)?
                    }
                };
                if let Some(v) = out.version {
                    last_version.insert(req.table, v);
                }
                if measuring {
                    metrics.writes += 1;
                    metrics.write_latency.record(out.latency.as_nanos());
                    metrics.sql_statements += out.sql_statements;
                }
            }
        }
        now += dt;
    }

    let duration = now.since(measure_start);
    Ok(build_report(
        &dep,
        &metrics,
        cfg.qps,
        cfg.requests,
        duration,
        &cfg.pricing,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_flavor_runs_all_architectures() {
        for arch in ArchKind::PAPER {
            let r = run_unity_object_experiment(&UnityExperimentConfig::test_small(arch)).unwrap();
            assert!(r.total_cost.total() > 0.0, "{arch}");
            assert_eq!(r.stale_reads, 0, "{arch}");
            if arch != ArchKind::Base {
                assert!(r.cache_hit_ratio > 0.3, "{arch}: {}", r.cache_hit_ratio);
            }
        }
    }

    #[test]
    fn object_caching_eliminates_query_amplification() {
        let base = run_unity_object_experiment(&UnityExperimentConfig::test_small(ArchKind::Base))
            .unwrap();
        let linked =
            run_unity_object_experiment(&UnityExperimentConfig::test_small(ArchKind::Linked))
                .unwrap();
        // Base issues ~8 statements per read; linked amortizes to ~8×missratio.
        let base_per_read = base.sql_statements as f64 / base.requests as f64;
        let linked_per_read = linked.sql_statements as f64 / linked.requests as f64;
        assert!(base_per_read > 6.0, "base amplification: {base_per_read}");
        assert!(
            linked_per_read < base_per_read / 2.0,
            "caching must slash statement count: {linked_per_read} vs {base_per_read}"
        );
        assert!(linked.saving_vs(&base) > 2.0);
    }

    #[test]
    fn object_saving_exceeds_kv_saving() {
        // §5.4's headline: caching rich objects saves *more* than caching
        // the denormalized KV variant of the same service.
        let obj_base =
            run_unity_object_experiment(&UnityExperimentConfig::test_small(ArchKind::Base))
                .unwrap();
        let obj_linked =
            run_unity_object_experiment(&UnityExperimentConfig::test_small(ArchKind::Linked))
                .unwrap();
        let kv_base =
            run_unity_kv_experiment(&UnityExperimentConfig::test_small(ArchKind::Base)).unwrap();
        let kv_linked =
            run_unity_kv_experiment(&UnityExperimentConfig::test_small(ArchKind::Linked)).unwrap();
        let obj_saving = obj_linked.saving_vs(&obj_base);
        let kv_saving = kv_linked.saving_vs(&kv_base);
        assert!(
            obj_saving > kv_saving,
            "object saving {obj_saving:.2}x must exceed kv saving {kv_saving:.2}x"
        );
    }

    #[test]
    fn updates_invalidate_cached_objects() {
        let r = run_unity_object_experiment(&UnityExperimentConfig::test_small(ArchKind::Linked))
            .unwrap();
        // With 7% updates, hit ratio is below the pure-read ceiling but the
        // run stays consistent.
        assert_eq!(r.stale_reads, 0);
        assert!(r.cache_hit_ratio < 1.0);
    }

    #[test]
    fn version_checked_objects_stay_fresh_but_cost_more() {
        let linked =
            run_unity_object_experiment(&UnityExperimentConfig::test_small(ArchKind::Linked))
                .unwrap();
        let checked = run_unity_object_experiment(&UnityExperimentConfig::test_small(
            ArchKind::LinkedVersion,
        ))
        .unwrap();
        assert!(checked.version_checks > 0);
        assert_eq!(checked.stale_reads, 0);
        assert!(checked.total_cost.total() > linked.total_cost.total());
    }
}
