//! A deployed service: app servers + (maybe) a cache tier + the database.
//!
//! [`Deployment::serve_kv_read`] / [`serve_kv_write`](Deployment::serve_kv_write)
//! implement the §2.4 serving paths, charging CPU to the tier that does each
//! piece of work:
//!
//! ```text
//! Base:           client → app ───────────────→ SQL frontend → storage
//! Remote:         client → app → cache server ↘ (miss) ──────→ …
//! Linked:         client → app(owner shard) cache hit | miss → …
//! Linked+Version: client → app cache hit + version check ────→ …
//! LeaseOwned:     client → app cache hit + local lease check
//! ```
//!
//! Every path ends with the app serializing the response to the client —
//! that cost is common to all architectures; what differs is the storage-
//! and cache-side work, which is exactly the paper's point.

use crate::config::{ArchKind, DeploymentConfig};
use crate::lease::AutoSharder;
use cachekit::{Cache, InternedKey, KeyInterner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{CpuCategory, CpuMeter, Delivery, MetricSet, Network, NodeId, SimDuration, SimTime};
use std::collections::HashMap;
use storekit::cluster::{CachedStatement, QueryReceipt, SqlCluster};
use storekit::error::{StoreError, StoreResult};
use storekit::schema::Catalog;
use storekit::value::Datum;
use telemetry::{SpanStatus, Tracer};

/// Names of the fault/degraded-path counters a deployment maintains in its
/// [`MetricSet`]; the experiment runner lifts them into `ExperimentReport`.
pub mod fault_counters {
    /// Reads served straight from storage because the cache shard was down.
    pub const DEGRADED_READS: &str = "degraded_reads";
    /// Retry attempts against an unresponsive cache shard.
    pub const RETRIES: &str = "cache_retries";
    /// Storage fills elided by single-flight request coalescing.
    pub const STAMPEDE_SUPPRESSED: &str = "stampede_suppressed";
    /// Cache shards crashed (contents wiped).
    pub const CACHE_CRASHES: &str = "cache_crashes";
    /// Cache shards restarted (cold).
    pub const CACHE_RESTARTS: &str = "cache_restarts";
    /// Remote-cache invalidations skipped because the shard was unreachable.
    pub const INVALIDATIONS_SKIPPED: &str = "invalidations_skipped";
    /// Linked-cache updates skipped because the shard was down.
    pub const CACHE_UPDATES_SKIPPED: &str = "cache_updates_skipped";
}

/// Names of the batched-RPC counters a deployment maintains in its
/// [`MetricSet`] when [`crate::config::BatchingConfig`] is enabled; the
/// experiment runner lifts them into `ExperimentReport`. Both stay absent
/// (zero) while batching is off, so default runs export identical metrics.
pub mod batch_counters {
    /// App→remote-cache RPC frames opened (each pays the fixed per-RPC cost
    /// once).
    pub const RPC_BATCHES: &str = "rpc_batches";
    /// Keys/operations carried by those frames (openers and followers).
    pub const BATCHED_RPC_KEYS: &str = "batched_rpc_keys";
}

/// Names of the elastic-provisioning counters a deployment maintains in its
/// [`MetricSet`] when [`elastic::ElasticConfig`] is enabled; the experiment
/// runner lifts them into `ExperimentReport`. All stay absent (zero) while
/// the controller is off, so default runs export identical metrics.
pub mod elastic_counters {
    /// Plan applications that changed at least one cache's capacity.
    pub const RESIZES: &str = "elastic_resizes";
    /// Entries evicted by capacity shrinks (not by normal cache pressure).
    pub const RESIZE_EVICTIONS: &str = "elastic_resize_evictions";
    /// Remote cache nodes drained out of the ring by a scale-down.
    pub const SHARDS_DRAINED: &str = "elastic_shards_drained";
    /// Remote cache nodes restored into the ring by a scale-up.
    pub const SHARDS_RESTORED: &str = "elastic_shards_restored";
    /// Entries moved between remote nodes by drain/restore migration.
    pub const MIGRATED_ENTRIES: &str = "elastic_migrated_entries";
    /// Bytes moved between remote nodes by drain/restore migration.
    pub const MIGRATED_BYTES: &str = "elastic_migrated_bytes";

    /// Every elastic counter, for bulk snapshot/carry-over.
    pub const ALL: &[&str] = &[
        RESIZES,
        RESIZE_EVICTIONS,
        SHARDS_DRAINED,
        SHARDS_RESTORED,
        MIGRATED_ENTRIES,
        MIGRATED_BYTES,
    ];
}

/// Registry names under which the L0 tier's aggregated
/// [`cachekit::L0Stats`] are exported when [`crate::config::L0Config`] is
/// enabled. The whole family is absent from default runs, so their
/// registries stay byte-identical.
pub mod l0_counters {
    /// Reads served straight from the in-process L0 tier.
    pub const HITS: &str = "dcache_l0_hits_total";
    /// L0 probes that fell through to the authoritative path.
    pub const MISSES: &str = "dcache_l0_misses_total";
    /// Values accepted by the TinyLFU admission gate.
    pub const ADMITTED: &str = "dcache_l0_admitted_total";
    /// Values the gate judged colder than the resident victim.
    pub const REJECTED: &str = "dcache_l0_rejected_total";
    /// Admits dropped because the resident entry was already newer.
    pub const STALE_ADMITS_DROPPED: &str = "dcache_l0_stale_admits_dropped_total";
    /// Entries removed by write-path versioned invalidations.
    pub const INVALIDATIONS: &str = "dcache_l0_invalidations_total";
    /// Invalidations that found nothing older to remove.
    pub const INVALIDATION_MISSES: &str = "dcache_l0_invalidation_misses_total";
}

/// Names of the TTL-control-plane counters a deployment maintains in its
/// [`MetricSet`] when [`elastic::TtlConfig`] is enabled; the experiment
/// runner lifts them into `ExperimentReport`. All stay absent (zero) while
/// the plane is off, so default runs export identical metrics.
pub mod ttl_counters {
    /// TTL planning rounds run, summed over every tenant controller.
    pub const DECISIONS: &str = "ttl_decisions";
    /// Decisions that changed some tenant's adopted TTL.
    pub const TTL_CHANGES: &str = "ttl_changes";
    /// Entries reclaimed by heartbeat expiry sweeps.
    pub const EXPIRED_ENTRIES: &str = "ttl_expired_entries";
    /// CPU charged for those sweeps, in nanoseconds (integer so it can
    /// live in the counter set; reports convert to µs).
    pub const SWEEP_CPU_NANOS: &str = "ttl_expiry_sweep_cpu_nanos";

    /// Every TTL counter, for bulk snapshot/carry-over.
    pub const ALL: &[&str] = &[DECISIONS, TTL_CHANGES, EXPIRED_ENTRIES, SWEEP_CPU_NANOS];
}

/// One open coalescing frame on an (app server, cache node) pair: requests
/// admitted within `[opened_at, departs_at)` ride the same wire frame, up
/// to `max_batch` occupants. The lower bound matters: admission times are
/// per-request virtual times (arrival + accumulated latency), so an op can
/// be admitted at a sim time *earlier* than a frame another request already
/// opened — in wall-clock terms that op was sent before the frame existed,
/// and letting it join would ratchet waits unboundedly (each high-latency
/// op opens a later frame that captures earlier-stamped ops with huge
/// waits, whose fills open frames later still).
#[derive(Debug, Clone, Copy)]
struct BatchWindow {
    opened_at: SimTime,
    departs_at: SimTime,
    occupancy: u32,
}

/// What the cache stores per key: enough to serve (and verify) a value
/// without materializing payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedVal {
    /// MVCC version of the row this value came from.
    pub version: u64,
    /// Logical value size (drives serving costs and cache charge).
    pub bytes: u64,
    /// Content identity (Payload seed), used by staleness checks.
    pub seed: u64,
}

/// Per-request outcome, consumed by the experiment runner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeOutcome {
    pub latency: SimDuration,
    /// Whether an external cache (remote or linked) served the value.
    pub cache_hit: bool,
    /// Logical bytes returned to the client.
    pub bytes: u64,
    /// Content identity of the served value (None for writes/missing keys).
    pub seed: Option<u64>,
    /// MVCC version served or written.
    pub version: Option<u64>,
    /// Version-check round trips performed.
    pub version_checks: u64,
    /// SQL statements executed against the database.
    pub sql_statements: u64,
    /// True when the key was not found anywhere.
    pub not_found: bool,
    /// True when the read bypassed a down cache shard and served from
    /// storage (degraded mode).
    pub degraded: bool,
    /// True when the storage fill was coalesced onto an identical in-flight
    /// fill (single-flight).
    pub coalesced: bool,
    /// Cache-RPC retries this request performed.
    pub retries: u64,
    /// True when the in-process L0 hot-key tier served the value (implies
    /// `cache_hit`).
    pub l0_hit: bool,
    /// Age of the L0 entry at serve time, nanoseconds (0 unless `l0_hit`).
    /// Under serve-stale this is the request's staleness upper bound.
    pub l0_age_nanos: u64,
}

/// In-flight storage fills keyed by cache key: while a fill is outstanding
/// (its completion time is still in the future), identical misses ride on it
/// instead of issuing their own SQL statement.
#[derive(Debug, Default)]
struct SingleFlight {
    inflight: cachekit::FxHashMap<InternedKey, (SimTime, Option<CachedVal>)>,
}

impl SingleFlight {
    /// If an identical fill completes after `now`, return its completion
    /// time and result; expired entries are dropped lazily.
    fn check(&mut self, key: InternedKey, now: SimTime) -> Option<(SimTime, Option<CachedVal>)> {
        match self.inflight.get(&key) {
            Some(&(done_at, val)) if done_at > now => Some((done_at, val)),
            Some(_) => {
                self.inflight.remove(&key);
                None
            }
            None => None,
        }
    }

    fn record(&mut self, key: InternedKey, done_at: SimTime, val: Option<CachedVal>) {
        self.inflight.insert(key, (done_at, val));
    }

    /// A write or delete makes any in-flight result unsafe to share.
    fn invalidate(&mut self, key: InternedKey) {
        self.inflight.remove(&key);
    }
}

/// One deployed architecture.
pub struct Deployment {
    pub config: DeploymentConfig,
    pub cluster: SqlCluster,
    /// CPU meters, one per app server.
    pub app_cpu: Vec<CpuMeter>,
    /// CPU meters, one per remote cache node (empty unless Remote).
    pub cache_cpu: Vec<CpuMeter>,
    /// Linked cache shards, one per app server (linked-family archs).
    /// Keyed by interned key ids — see [`Deployment::intern_bytes`].
    pub(crate) linked: Vec<Cache<InternedKey, CachedVal>>,
    /// Remote cache nodes (Remote only).
    pub(crate) remote: Vec<Cache<InternedKey, CachedVal>>,
    /// In-process L0 hot-key tiers, one per app server. Empty unless
    /// `config.l0` is set *and* the architecture supports the tier
    /// ([`ArchKind::supports_l0`]), so default runs never touch it.
    pub(crate) l0: Vec<cachekit::L0Cache<InternedKey, CachedVal>>,
    /// Key → shard routing for both cache families, plus lease state.
    pub sharder: AutoSharder,
    remote_ring: cachekit::HashRing,
    /// Round-robin app-server pointer for unsharded request routing.
    rr: usize,
    /// Liveness per linked shard (same index as `linked`).
    linked_up: Vec<bool>,
    /// Liveness per remote cache node (same index as `remote`).
    remote_up: Vec<bool>,
    /// Fabric between app servers (node id = server index) and remote cache
    /// nodes (node id = `CACHE_NODE_BASE` + node index). Adjudicates message
    /// fate under crashes/partitions and tracks delivery counters; latency
    /// cost stays with `cluster.link` as before.
    pub net: Network,
    /// Seeded RNG for fault adjudication and retry jitter. Drawn from only
    /// on faulty paths, so healthy runs stay byte-identical.
    net_rng: StdRng,
    /// Fault/degraded-path counters (see [`fault_counters`]).
    pub metrics: MetricSet,
    single_flight: SingleFlight,
    /// Open coalescing frames keyed by (app server, remote cache node).
    /// Never populated unless `config.batching` is enabled, so default
    /// runs do no hashing here. Keyed by (app server, cache node, update?):
    /// lookups coalesce into MGET frames and fills/invalidations into MSET
    /// frames, mirroring the wire protocol's separate batch ops — and
    /// keeping the two populations' very different admission times (a fill
    /// is admitted a storage read's latency later than a lookup) from
    /// starving each other's frames.
    batch_windows: HashMap<(usize, usize, bool), BatchWindow>,
    /// Frames by their current size: `batch_size_counts[s]` frames carry
    /// exactly `s` keys. Maintained incrementally as frames open and grow
    /// (open: size 1 appears; join: one frame moves from `n-1` to `n`), so
    /// no end-of-run flush is needed.
    pub batch_size_counts: HashMap<u32, u64>,
    /// Span recorder for sampled requests. Disabled by default; the
    /// experiment runner arms it per sampled request, so untraced runs pay
    /// nothing and stay byte-identical. Span clocks are virtual nanos:
    /// request arrival plus latency accumulated so far.
    pub tracer: Tracer,
    /// Storage pods taken down by scheduled crash faults while durability
    /// is on, keyed by the region id the fault addressed (so the paired
    /// `Restart` event recovers the same pod). Empty unless the fault
    /// engine actually crashes durable pods.
    pub(crate) crashed_storage_pods: std::collections::BTreeMap<usize, usize>,
    /// Online MRC profiler + cost planner (see [`elastic`]). Disabled by
    /// default: `observe`/`maybe_decide` are no-ops, so baseline runs stay
    /// byte-identical. The experiment runner drives decisions from its
    /// heartbeat and applies them via [`Deployment::apply_elastic_plan`].
    pub elastic: elastic::ElasticController,
    /// Per-tenant TTL controllers (see [`elastic::TtlController`]); index =
    /// tenant id, and single-tenant runs use entry 0. Disabled by default:
    /// every entry point checks [`Deployment::ttl_enabled`] first, so
    /// baseline runs stay byte-identical. The experiment runner feeds
    /// accesses via [`Deployment::ttl_observe`], drives decisions from its
    /// heartbeat, and the adopted TTLs reach the caches through
    /// [`Deployment::ttl_begin_request`].
    pub ttl: Vec<elastic::TtlController>,
    /// Per-table KV statements parsed + planned once (first use) and reused
    /// on every serve — a wall-clock-only optimization: cached executions
    /// charge exactly what `SqlCluster::execute` would for the same text.
    sql_stmts: HashMap<String, TableSql>,
    /// Byte key ↔ interned id table shared by every cache/routing layer.
    /// An interned key carries the same hashes the byte key produced, so
    /// interning changes wall-clock only — never simulated behaviour.
    pub(crate) interner: KeyInterner,
    /// Reusable buffer for building `table/key` bytes before interning;
    /// keeps the steady-state serve path allocation-free.
    key_scratch: Vec<u8>,
}

/// The four statement shapes the KV serve paths issue, pre-planned per
/// table (see [`storekit::cluster::CachedStatement`]). Each statement is
/// prepared on first use: the KV-shaped trio (`... WHERE k = ?`) only
/// validates against KV tables, while the version probe works for any
/// table — rich-object paths only ever need the latter.
#[derive(Default)]
struct TableSql {
    select: Option<CachedStatement>,
    replace: Option<CachedStatement>,
    delete: Option<CachedStatement>,
    version: Option<CachedStatement>,
}

/// Selector into a [`TableSql`] entry.
#[derive(Clone, Copy)]
enum KvStmt {
    Select,
    Replace,
    Delete,
    Version,
}

/// Remote cache node `i` appears on the fault fabric as `CACHE_NODE_BASE+i`;
/// ids below the base are app servers.
pub const CACHE_NODE_BASE: u32 = 64;

/// Fault-fabric id of remote cache node `i`.
pub fn cache_node_id(i: usize) -> NodeId {
    NodeId(CACHE_NODE_BASE + i as u32)
}

impl Deployment {
    /// Build a deployment serving data described by `catalog`.
    pub fn new(config: DeploymentConfig, catalog: Catalog) -> Self {
        let cluster = SqlCluster::new(catalog, config.cluster.clone());
        let build_cache = |capacity: u64| {
            let cache = Cache::new(capacity, config.cache_policy);
            if config.cache_admission {
                // Sketch sized for entries of ~1 KB and up; smaller entries
                // just share counters a little more.
                cache.with_tinylfu((capacity / 1024).clamp(1_024, 4 << 20) as usize)
            } else {
                cache
            }
        };
        let linked = if config.arch.has_linked_cache() {
            (0..config.app_servers)
                .map(|_| build_cache(config.linked_cache_bytes_per_server))
                .collect()
        } else {
            Vec::new()
        };
        let remote = if config.arch == ArchKind::Remote {
            (0..config.remote_cache_nodes)
                .map(|_| build_cache(config.remote_cache_bytes_per_node))
                .collect()
        } else {
            Vec::new()
        };
        let l0 = match &config.l0 {
            Some(c) if config.arch.supports_l0() => (0..config.app_servers)
                .map(|_| cachekit::L0Cache::new(c.params()))
                .collect(),
            _ => Vec::new(),
        };
        let sharder = AutoSharder::new(
            config.app_servers as u32,
            SimDuration::from_secs(10),
            SimTime::ZERO,
        );
        let remote_ring =
            cachekit::HashRing::with_shards(config.remote_cache_nodes.max(1) as u32, 128);
        let linked_up = vec![true; linked.len()];
        let remote_up = vec![true; remote.len()];
        let net_rng = StdRng::seed_from_u64(config.seed ^ 0x5f41_7c5b_9e1d_3a77);
        Deployment {
            app_cpu: (0..config.app_servers).map(|_| CpuMeter::new()).collect(),
            cache_cpu: (0..config.remote_cache_nodes)
                .map(|_| CpuMeter::new())
                .collect(),
            linked,
            remote,
            l0,
            sharder,
            remote_ring,
            rr: 0,
            linked_up,
            remote_up,
            net: Network::new(),
            net_rng,
            metrics: MetricSet::new(),
            single_flight: SingleFlight::default(),
            batch_windows: HashMap::new(),
            batch_size_counts: HashMap::new(),
            crashed_storage_pods: std::collections::BTreeMap::new(),
            tracer: Tracer::disabled(),
            elastic: elastic::ElasticController::new(config.elastic),
            ttl: vec![elastic::TtlController::new(config.ttl)],
            sql_stmts: HashMap::new(),
            interner: KeyInterner::new(),
            key_scratch: Vec::new(),
            cluster,
            config,
        }
    }

    /// Intern an arbitrary cache-key byte string (rich-object paths build
    /// their own key shapes).
    pub(crate) fn intern_bytes(&mut self, bytes: &[u8]) -> InternedKey {
        self.interner.intern(bytes)
    }

    /// Pre-populate the key interner with arbitrary byte keys, shifting the
    /// dense ids later keys receive. Ids are an internal detail — serving
    /// behavior must be a function of key *bytes* only; the interning
    /// equivalence test uses this to prove it.
    pub fn prewarm_interner(&mut self, keys: impl IntoIterator<Item = Vec<u8>>) {
        for k in keys {
            self.intern_bytes(&k);
        }
    }

    /// Intern the `table/key` cache key for one KV request without
    /// allocating: the bytes are built in a reusable scratch buffer and
    /// only copied out on first sight of the key.
    pub(crate) fn intern_kv_key(&mut self, table: &str, key: i64) -> InternedKey {
        self.key_scratch.clear();
        self.key_scratch.extend_from_slice(table.as_bytes());
        self.key_scratch.push(b'/');
        self.key_scratch.extend_from_slice(&key.to_be_bytes());
        self.interner.intern(&self.key_scratch)
    }

    /// The pre-planned statement for `table`, built on first use. An
    /// associated function over disjoint fields so callers can keep
    /// borrowing `self.cluster` mutably while holding the result.
    fn table_sql<'a>(
        stmts: &'a mut HashMap<String, TableSql>,
        cluster: &SqlCluster,
        table: &str,
        which: KvStmt,
    ) -> StoreResult<&'a CachedStatement> {
        if !stmts.contains_key(table) {
            stmts.insert(table.to_string(), TableSql::default());
        }
        let entry = stmts.get_mut(table).unwrap();
        let slot = match which {
            KvStmt::Select => &mut entry.select,
            KvStmt::Replace => &mut entry.replace,
            KvStmt::Delete => &mut entry.delete,
            KvStmt::Version => &mut entry.version,
        };
        if slot.is_none() {
            let sql = match which {
                KvStmt::Select => format!("SELECT v, _version FROM {table} WHERE k = ?"),
                KvStmt::Replace => format!("REPLACE INTO {table} VALUES (?, ?)"),
                KvStmt::Delete => format!("DELETE FROM {table} WHERE k = ?"),
                KvStmt::Version => {
                    let schema = cluster.catalog.get(table)?;
                    let pk_col = &schema.columns[schema.primary_key].name;
                    format!("SELECT _version FROM {table} WHERE {pk_col} = ?")
                }
            };
            *slot = Some(cluster.prepare_cached(&sql)?);
        }
        Ok(slot.as_ref().unwrap())
    }

    /// Reset all CPU meters and cache statistics (between warmup and
    /// measurement); cached data stays resident.
    pub fn reset_metrics(&mut self) {
        for m in &mut self.app_cpu {
            m.reset();
        }
        for m in &mut self.cache_cpu {
            m.reset();
        }
        for c in &mut self.linked {
            c.reset_stats();
        }
        for c in &mut self.remote {
            c.reset_stats();
        }
        for c in &mut self.l0 {
            c.reset_stats();
        }
        self.cluster.reset_metrics();
        // Provisioning lifecycle counters survive the warmup reset: a shard
        // drained or a cache resized during convergence is still a
        // control-plane action the report must account for, and the
        // controller's own decisions()/plan_changes() are cumulative too.
        let mut carried: Vec<(&'static str, u64)> = if self.elastic.enabled() {
            elastic_counters::ALL
                .iter()
                .map(|&n| (n, self.metrics.counter_value(n)))
                .filter(|&(_, v)| v > 0)
                .collect()
        } else {
            Vec::new()
        };
        if self.ttl_enabled() {
            carried.extend(
                ttl_counters::ALL
                    .iter()
                    .map(|&n| (n, self.metrics.counter_value(n)))
                    .filter(|&(_, v)| v > 0),
            );
        }
        self.metrics = MetricSet::new();
        for (n, v) in carried {
            self.metrics.counter(n).add(v);
        }
        self.net.reset_counters();
        self.batch_windows.clear();
        self.batch_size_counts.clear();
    }

    /// How many cache shards this architecture deploys (0 for Base).
    pub fn cache_shard_count(&self) -> usize {
        match self.config.arch {
            ArchKind::Remote => self.remote.len(),
            _ if self.config.arch.has_linked_cache() => self.linked.len(),
            _ => 0,
        }
    }

    /// Whether cache shard `i` is currently up.
    pub fn cache_shard_up(&self, i: usize) -> bool {
        match self.config.arch {
            ArchKind::Remote => self.remote_up.get(i).copied().unwrap_or(false),
            _ if self.config.arch.has_linked_cache() => {
                self.linked_up.get(i).copied().unwrap_or(false)
            }
            _ => false,
        }
    }

    /// Crash cache shard `i`: its contents are wiped (a restarted shard
    /// comes back cold) and requests routed at it degrade until
    /// [`Deployment::restart_cache_shard`]. No-op for Base or out-of-range.
    pub fn crash_cache_shard(&mut self, i: usize) {
        if self.config.arch == ArchKind::Remote {
            if i < self.remote.len() && self.remote_up[i] {
                self.remote_up[i] = false;
                self.remote[i].clear();
                self.net.set_node_down(cache_node_id(i), true);
                self.metrics.counter(fault_counters::CACHE_CRASHES).inc();
            }
        } else if self.config.arch.has_linked_cache()
            && i < self.linked.len()
            && self.linked_up[i]
        {
            self.linked_up[i] = false;
            self.linked[i].clear();
            // The L0 lives in the same process: a crashed server loses it.
            if let Some(l0) = self.l0.get_mut(i) {
                l0.clear();
            }
            self.metrics.counter(fault_counters::CACHE_CRASHES).inc();
        }
    }

    /// Bring cache shard `i` back (cold — it was wiped at crash time).
    pub fn restart_cache_shard(&mut self, i: usize) {
        if self.config.arch == ArchKind::Remote {
            if i < self.remote.len() && !self.remote_up[i] {
                self.remote_up[i] = true;
                self.net.set_node_down(cache_node_id(i), false);
                self.metrics.counter(fault_counters::CACHE_RESTARTS).inc();
            }
        } else if self.config.arch.has_linked_cache()
            && i < self.linked.len()
            && !self.linked_up[i]
        {
            self.linked_up[i] = true;
            self.metrics.counter(fault_counters::CACHE_RESTARTS).inc();
        }
    }

    fn linked_shard_up(&self, app: usize) -> bool {
        self.linked_up.get(app).copied().unwrap_or(true)
    }

    /// The remote cache node owning `cache_key` on the hash ring.
    fn remote_node_for(&self, cache_key: InternedKey) -> usize {
        self.remote_ring
            .shard_for_hashed(cache_key.route_hash())
            .unwrap_or(0) as usize
            % self.remote.len().max(1)
    }

    /// One attempted app→cache-node message on the fault fabric; `true` if
    /// it got through. Only consumes randomness when loss is configured.
    fn cache_rpc_attempt(&mut self, app: usize, node: usize) -> bool {
        let from = NodeId(app as u32);
        let to = cache_node_id(node);
        matches!(
            self.net.send(&mut self.net_rng, from, to, 32),
            Delivery::After(_)
        )
    }

    /// A failed attempt still burned its RPC stack CPU and waited out the
    /// per-attempt timeout before declaring the shard unreachable.
    fn charge_failed_attempt(&mut self, app: usize, out: &mut ServeOutcome) {
        let rpc = self.config.app_cost.rpc_side_cost(32);
        self.charge_app(app, CpuCategory::RpcStack, rpc);
        out.latency += rpc + self.config.fault_tolerance.attempt_timeout;
    }

    /// Try to reach remote cache `node`, retrying with jittered exponential
    /// backoff while the retry budget and the request deadline allow. Each
    /// attempt — the first and every retry — is one `cache.rpc_attempt`
    /// span on the active trace, so a retried request shows up as a single
    /// trace with N attempt spans.
    fn reach_cache_node(
        &mut self,
        app: usize,
        node: usize,
        now: SimTime,
        out: &mut ServeOutcome,
    ) -> bool {
        let start = now.as_nanos() + out.latency.as_nanos();
        if self.cache_rpc_attempt(app, node) {
            self.tracer
                .span("cache.rpc_attempt", "app", start, start, 0, SpanStatus::Ok);
            return true;
        }
        let ft = self.config.fault_tolerance;
        self.charge_failed_attempt(app, out);
        self.tracer.span(
            "cache.rpc_attempt",
            "app",
            start,
            now.as_nanos() + out.latency.as_nanos(),
            0,
            SpanStatus::Failed,
        );
        let mut attempt = 0;
        while attempt < ft.retry.max_retries && out.latency < ft.request_deadline {
            let unit = self.net_rng.gen::<f64>();
            out.latency += ft.retry.backoff(attempt, unit);
            out.retries += 1;
            self.metrics.counter(fault_counters::RETRIES).inc();
            let start = now.as_nanos() + out.latency.as_nanos();
            if self.cache_rpc_attempt(app, node) {
                self.tracer
                    .span("cache.rpc_attempt", "app", start, start, attempt + 1, SpanStatus::Ok);
                return true;
            }
            self.charge_failed_attempt(app, out);
            self.tracer.span(
                "cache.rpc_attempt",
                "app",
                start,
                now.as_nanos() + out.latency.as_nanos(),
                attempt + 1,
                SpanStatus::Failed,
            );
            attempt += 1;
        }
        false
    }

    /// Storage fill with optional single-flight coalescing: if an identical
    /// fill is still in flight, ride on it instead of issuing another SQL
    /// statement (the thundering-herd guard after a cold shard restart).
    fn storage_fill(
        &mut self,
        app: usize,
        table: &str,
        key: i64,
        cache_key: InternedKey,
        now: SimTime,
        out: &mut ServeOutcome,
    ) -> StoreResult<Option<CachedVal>> {
        let start = now.as_nanos() + out.latency.as_nanos();
        if self.config.fault_tolerance.single_flight {
            if let Some((done_at, val)) = self.single_flight.check(cache_key, now) {
                self.metrics
                    .counter(fault_counters::STAMPEDE_SUPPRESSED)
                    .inc();
                out.coalesced = true;
                // Park until the leader's fill lands, plus the wakeup work.
                out.latency += done_at.since(now);
                let op = SimDuration::from_micros_f64(self.config.app_cost.local_cache_op_us);
                self.charge_app(app, CpuCategory::AppLogic, op);
                out.latency += op;
                self.tracer.span(
                    "storage.fill",
                    "storage",
                    start,
                    now.as_nanos() + out.latency.as_nanos(),
                    0,
                    SpanStatus::Coalesced,
                );
                return Ok(val);
            }
        }
        let (val, lat, _r) = self.storage_read(app, table, key, now)?;
        out.sql_statements += 1;
        out.latency += lat;
        if self.config.fault_tolerance.single_flight {
            self.single_flight.record(cache_key, now + lat, val);
        }
        self.tracer.span(
            "storage.fill",
            "storage",
            start,
            now.as_nanos() + out.latency.as_nanos(),
            0,
            SpanStatus::Ok,
        );
        Ok(val)
    }

    /// Serve a read from storage because the owning cache shard is down.
    fn degraded_read(
        &mut self,
        app: usize,
        table: &str,
        key: i64,
        cache_key: InternedKey,
        now: SimTime,
        out: &mut ServeOutcome,
    ) -> StoreResult<()> {
        if !self.config.fault_tolerance.degraded_fallback {
            return Err(StoreError::Unavailable {
                what: format!("cache shard for {table}/{key} is down"),
            });
        }
        self.metrics.counter(fault_counters::DEGRADED_READS).inc();
        out.degraded = true;
        let start = now.as_nanos() + out.latency.as_nanos();
        let val = self.storage_fill(app, table, key, cache_key, now, out)?;
        self.finish_read(app, val, now, out);
        self.tracer.span(
            "read.degraded",
            "app",
            start,
            now.as_nanos() + out.latency.as_nanos(),
            0,
            SpanStatus::Degraded,
        );
        Ok(())
    }

    /// Aggregate linked-cache statistics.
    pub fn linked_stats(&self) -> cachekit::CacheStats {
        let mut s = cachekit::CacheStats::default();
        for c in &self.linked {
            s += *c.stats();
        }
        s
    }

    /// Aggregate remote-cache statistics.
    pub fn remote_stats(&self) -> cachekit::CacheStats {
        let mut s = cachekit::CacheStats::default();
        for c in &self.remote {
            s += *c.stats();
        }
        s
    }

    /// Bytes currently resident in the external caches.
    pub fn cache_resident_bytes(&self) -> u64 {
        self.linked.iter().map(|c| c.used_bytes()).sum::<u64>()
            + self.remote.iter().map(|c| c.used_bytes()).sum::<u64>()
    }

    /// Bytes resident in the external caches *at* `now`: like
    /// [`Self::cache_resident_bytes`], but entries whose TTL has lapsed and
    /// that no sweep has reclaimed yet are excluded — they hold no live
    /// value. TTL billing integrates this over time.
    pub fn cache_resident_bytes_at(&self, now: SimTime) -> u64 {
        let nanos = now.as_nanos();
        self.linked.iter().map(|c| c.resident_bytes(nanos)).sum::<u64>()
            + self.remote.iter().map(|c| c.resident_bytes(nanos)).sum::<u64>()
    }

    /// Whether the adaptive TTL control plane is live: configured on, the
    /// architecture supports runtime default-TTL adjustment, and a cache
    /// tier exists to expire.
    pub fn ttl_enabled(&self) -> bool {
        self.config.ttl.enabled()
            && self.config.arch.supports_ttl_plane()
            && (!self.linked.is_empty() || !self.remote.is_empty())
    }

    /// Size the per-tenant controller set (tenant 0 always exists). Called
    /// by the experiment runner before traffic starts; never shrinks.
    pub fn set_ttl_tenants(&mut self, tenants: usize) {
        while self.ttl.len() < tenants.max(1) {
            self.ttl.push(elastic::TtlController::new(self.config.ttl));
        }
    }

    /// Apply `tenant`'s adopted TTL as every cache's default before serving
    /// one of its requests — the whole push-down mechanism: inserts on the
    /// fill path pick the default up, so the serve paths need no changes.
    /// A handful of `Option` stores per request when the plane is on; a
    /// no-op (and no RNG, no metrics) when off.
    pub fn ttl_begin_request(&mut self, tenant: usize) {
        if !self.ttl_enabled() {
            return;
        }
        let ttl = self.ttl.get(tenant).and_then(|c| c.current_ttl_nanos());
        for c in &mut self.linked {
            c.set_default_ttl(ttl);
        }
        for c in &mut self.remote {
            c.set_default_ttl(ttl);
        }
    }

    /// Feed one access to `tenant`'s age histogram. `key` is the workload's
    /// (namespaced) key id; hashing happens here so callers never worry
    /// about distribution quality.
    pub fn ttl_observe(&mut self, tenant: usize, key: u64, bytes: u64, now: SimTime) {
        if !self.ttl_enabled() {
            return;
        }
        if let Some(ctl) = self.ttl.get_mut(tenant) {
            ctl.observe_hashed(cachekit::ring::splitmix64(key), bytes, now.as_nanos());
        }
    }

    /// Run every tenant controller's decision check (each no-ops until its
    /// interval elapses) and mirror the outcomes into the metric set.
    pub fn ttl_maybe_decide(&mut self, now_secs: f64, pricing: &costmodel::Pricing) {
        if !self.ttl_enabled() {
            return;
        }
        let mut decisions = 0;
        let mut changes = 0;
        for ctl in &mut self.ttl {
            let before = (ctl.decisions(), ctl.ttl_changes());
            ctl.maybe_decide(now_secs, pricing);
            decisions += ctl.decisions() - before.0;
            changes += ctl.ttl_changes() - before.1;
        }
        if decisions > 0 {
            self.metrics.counter(ttl_counters::DECISIONS).add(decisions);
        }
        if changes > 0 {
            self.metrics.counter(ttl_counters::TTL_CHANGES).add(changes);
        }
    }

    /// Reclaim expired entries from every cache shard, charging the owning
    /// tier per entry scanned ([`crate::config::AppCostConfig::expiry_sweep_entry_us`]).
    /// Linked shards bill their app server; remote shards bill the cache
    /// node. Returns entries reclaimed. Driven from the experiment
    /// heartbeat, like elastic decisions.
    pub fn expire_sweep_tick(&mut self, now: SimTime) -> u64 {
        if !self.ttl_enabled() {
            return 0;
        }
        let per_entry_us = self.config.app_cost.expiry_sweep_entry_us;
        let nanos = now.as_nanos();
        let mut reclaimed = 0u64;
        let mut cpu_nanos = 0u64;
        for i in 0..self.linked.len() {
            let n = self.linked[i].expire_sweep(nanos) as u64;
            if n > 0 {
                let cost = SimDuration::from_micros_f64(per_entry_us * n as f64);
                self.app_cpu[i].charge(CpuCategory::CacheOp, cost);
                reclaimed += n;
                cpu_nanos += cost.as_nanos();
            }
        }
        for i in 0..self.remote.len() {
            let n = self.remote[i].expire_sweep(nanos) as u64;
            if n > 0 {
                let cost = SimDuration::from_micros_f64(per_entry_us * n as f64);
                self.cache_cpu[i].charge(CpuCategory::CacheOp, cost);
                reclaimed += n;
                cpu_nanos += cost.as_nanos();
            }
        }
        if reclaimed > 0 {
            self.metrics.counter(ttl_counters::EXPIRED_ENTRIES).add(reclaimed);
            self.metrics.counter(ttl_counters::SWEEP_CPU_NANOS).add(cpu_nanos);
        }
        reclaimed
    }

    pub(crate) fn cache_key(table: &str, key: i64) -> Vec<u8> {
        let mut k = Vec::with_capacity(table.len() + 9);
        k.extend_from_slice(table.as_bytes());
        k.push(b'/');
        k.extend_from_slice(&key.to_be_bytes());
        k
    }

    /// The app server handling this request: the shard owner for sharded
    /// linked architectures (Slicer-style client routing), round-robin
    /// otherwise — including LinkedTtl, where every server caches its own
    /// replica of whatever it serves.
    pub(crate) fn route_app(&mut self, cache_key: InternedKey) -> usize {
        if self.config.arch.has_linked_cache() && self.config.arch.linked_cache_is_sharded() {
            self.sharder.owner_hashed(cache_key.route_hash()) as usize % self.config.app_servers
        } else {
            self.route_app_rr()
        }
    }

    /// Round-robin routing for requests with no key affinity (multi-key
    /// batch requests, unsharded architectures).
    pub(crate) fn route_app_rr(&mut self) -> usize {
        self.rr = self.rr.wrapping_add(1);
        self.rr % self.config.app_servers
    }

    pub(crate) fn charge_app(&mut self, app: usize, cat: CpuCategory, cost: SimDuration) {
        self.app_cpu[app].charge(cat, cost);
    }

    /// App-side costs of one database statement round trip.
    pub(crate) fn charge_app_db_rpc(&mut self, app: usize, receipt: &QueryReceipt) -> SimDuration {
        let cost = &self.config.app_cost;
        let prep = SimDuration::from_micros_f64(cost.request_prep_us);
        let rpc = cost.rpc_side_cost(receipt.request_bytes)
            + cost.rpc_side_cost(receipt.response_bytes);
        let deser = cost.serialize_cost(receipt.response_bytes);
        self.charge_app(app, CpuCategory::AppLogic, prep);
        self.charge_app(app, CpuCategory::RpcStack, rpc);
        self.charge_app(app, CpuCategory::Serialization, deser);
        let link = &self.config.cluster.link;
        prep + rpc
            + deser
            + link.delivery_time(receipt.request_bytes)
            + link.delivery_time(receipt.response_bytes)
            + receipt.latency
    }

    /// The common tail: serve `bytes` back to the client. Framing and copy
    /// costs are folded into `client_rpc_per_byte_ns`; no proto re-encode is
    /// charged because responses stream the stored representation.
    pub(crate) fn charge_client_reply(&mut self, app: usize, bytes: u64) -> SimDuration {
        let comm = self.config.app_cost.client_reply_cost(bytes);
        self.charge_app(app, CpuCategory::ClientComm, comm);
        comm + self.config.cluster.link.delivery_time(bytes)
    }

    /// Fetch `(value, version)` from the database through the SQL path.
    pub(crate) fn storage_read(
        &mut self,
        app: usize,
        table: &str,
        key: i64,
        now: SimTime,
    ) -> StoreResult<(Option<CachedVal>, SimDuration, QueryReceipt)> {
        let stmt = Self::table_sql(&mut self.sql_stmts, &self.cluster, table, KvStmt::Select)?;
        let receipt = self.cluster.execute_cached(stmt, &[Datum::Int(key)], now)?;
        let latency = self.charge_app_db_rpc(app, &receipt);
        let val = receipt.rows.first().map(|row| {
            let (bytes, seed) = payload_identity(row.get(0).unwrap_or(&Datum::Null));
            let version = row.get(1).and_then(|d| d.as_int()).unwrap_or(0) as u64;
            CachedVal {
                version,
                bytes,
                seed,
            }
        });
        Ok((val, latency, receipt))
    }

    /// Write `value` under `key` through the SQL path.
    pub(crate) fn storage_write(
        &mut self,
        app: usize,
        table: &str,
        key: i64,
        value: Datum,
        now: SimTime,
    ) -> StoreResult<(CachedVal, SimDuration)> {
        let (bytes, seed) = payload_identity(&value);
        // The app serializes the value into the write request.
        let ser = self.config.app_cost.serialize_cost(bytes);
        self.charge_app(app, CpuCategory::Serialization, ser);
        let stmt = Self::table_sql(&mut self.sql_stmts, &self.cluster, table, KvStmt::Replace)?;
        let receipt = self
            .cluster
            .execute_cached(stmt, &[Datum::Int(key), value], now)?;
        let latency = ser + self.charge_app_db_rpc(app, &receipt);
        let version = receipt.write_version.unwrap_or(0);
        Ok((
            CachedVal {
                version,
                bytes,
                seed,
            },
            latency,
        ))
    }

    /// Move one frame from size `n-1` to size `n` in the size histogram.
    fn bump_batch_size(&mut self, n: u32) {
        if n > 1 {
            if let Some(c) = self.batch_size_counts.get_mut(&(n - 1)) {
                *c = c.saturating_sub(1);
                if *c == 0 {
                    self.batch_size_counts.remove(&(n - 1));
                }
            }
        }
        *self.batch_size_counts.entry(n).or_insert(0) += 1;
    }

    /// Admit one app→cache-node operation into a coalescing frame at time
    /// `at` (request arrival plus latency accumulated so far); `update`
    /// selects the MSET frame class over MGET. Returns `(follower, wait)`:
    /// a *follower* rides an already-open frame and is charged the
    /// amortized per-key RPC cost; the opener pays the full fixed cost and
    /// `wait` covers sitting out the coalescing window until the frame
    /// departs. A no-op (opener, zero wait) unless batching is enabled, so
    /// default runs never touch the window map.
    fn batch_admit(
        &mut self,
        app: usize,
        node: usize,
        at: SimTime,
        update: bool,
    ) -> (bool, SimDuration) {
        let b = self.config.batching;
        if !b.enabled() {
            return (false, SimDuration::ZERO);
        }
        self.metrics.counter(batch_counters::BATCHED_RPC_KEYS).inc();
        let slot = (app, node, update);
        if let Some(w) = self.batch_windows.get_mut(&slot) {
            if at >= w.opened_at && at < w.departs_at && w.occupancy < b.max_batch {
                w.occupancy += 1;
                let n = w.occupancy;
                let wait = w.departs_at.since(at);
                self.bump_batch_size(n);
                self.tracer.span(
                    "cache.rpc_batch",
                    "app",
                    at.as_nanos(),
                    at.as_nanos() + wait.as_nanos(),
                    n,
                    SpanStatus::Ok,
                );
                return (true, wait);
            }
            if at < w.opened_at {
                // Sent before the stored frame opened (see [`BatchWindow`]):
                // an unbatched one-off send that leaves the frame in place
                // for the joiners it was opened for.
                self.metrics.counter(batch_counters::RPC_BATCHES).inc();
                self.bump_batch_size(1);
                return (false, SimDuration::ZERO);
            }
        }
        let wait = b.window();
        if b.windowed() {
            // A zero-length window departs instantly — never store it, or a
            // later request whose admission time lands *earlier* on the sim
            // clock (ops are admitted at arrival + accumulated latency)
            // would ride a frame that no longer exists.
            self.batch_windows.insert(
                slot,
                BatchWindow {
                    opened_at: at,
                    departs_at: at + wait,
                    occupancy: 1,
                },
            );
        }
        self.metrics.counter(batch_counters::RPC_BATCHES).inc();
        self.bump_batch_size(1);
        self.tracer.span(
            "cache.rpc_batch",
            "app",
            at.as_nanos(),
            at.as_nanos() + wait.as_nanos(),
            1,
            SpanStatus::Ok,
        );
        (false, wait)
    }

    /// Remote-cache lookup: returns the value if cached, charging both the
    /// app side and the cache node. `resp_bytes` covers hit and miss sizes.
    pub(crate) fn remote_lookup(
        &mut self,
        app: usize,
        cache_key: InternedKey,
        now: SimTime,
    ) -> (Option<CachedVal>, SimDuration) {
        self.remote_lookup_at(app, cache_key, now, now)
    }

    /// Like [`Deployment::remote_lookup`], but admits the RPC into a
    /// coalescing frame at `at` (arrival plus latency accumulated so far,
    /// so an op issued late in a request doesn't ride a frame that already
    /// departed).
    pub(crate) fn remote_lookup_at(
        &mut self,
        app: usize,
        cache_key: InternedKey,
        now: SimTime,
        at: SimTime,
    ) -> (Option<CachedVal>, SimDuration) {
        let node = self.remote_node_for(cache_key);
        let (follower, wait) = self.batch_admit(app, node, at, false);
        let (found, lat) = self.remote_lookup_role(app, node, cache_key, now, follower);
        (found, lat + wait)
    }

    /// The lookup body with an explicit batch role: followers pay the
    /// amortized per-key marginal on both RPC sides instead of the full
    /// fixed cost. `follower == false` charges exactly the pre-batching
    /// amounts, keeping default runs byte-identical.
    fn remote_lookup_role(
        &mut self,
        app: usize,
        node: usize,
        cache_key: InternedKey,
        now: SimTime,
        follower: bool,
    ) -> (Option<CachedVal>, SimDuration) {
        let found = self.remote[node].get(&cache_key, now.as_nanos()).copied();
        let resp_bytes = found.map(|v| v.bytes).unwrap_or(8);
        let cost = self.config.app_cost;
        let app_rpc = if follower {
            cost.rpc_batched_side_cost(32) + cost.rpc_batched_side_cost(resp_bytes)
        } else {
            cost.rpc_side_cost(32) + cost.rpc_side_cost(resp_bytes)
        };
        let node_rpc = app_rpc;
        let op = SimDuration::from_micros_f64(cost.cache_server_op_us);
        let deser = if found.is_some() {
            cost.serialize_cost(resp_bytes)
        } else {
            SimDuration::ZERO
        };
        self.charge_app(app, CpuCategory::RpcStack, app_rpc);
        self.charge_app(app, CpuCategory::Serialization, deser);
        self.cache_cpu[node].charge(CpuCategory::RpcStack, node_rpc);
        self.cache_cpu[node].charge(CpuCategory::CacheOp, op);
        let link = &self.config.cluster.link;
        let latency = app_rpc
            + node_rpc
            + op
            + deser
            + link.delivery_time(32)
            + link.delivery_time(resp_bytes);
        (found, latency)
    }

    /// Remote-cache fill or invalidation (value = None ⇒ delete).
    pub(crate) fn remote_update(
        &mut self,
        app: usize,
        cache_key: InternedKey,
        value: Option<CachedVal>,
        now: SimTime,
    ) -> SimDuration {
        self.remote_update_at(app, cache_key, value, now, now)
    }

    /// Like [`Deployment::remote_update`], with an explicit batch-admission
    /// time (see [`Deployment::remote_lookup_at`]).
    pub(crate) fn remote_update_at(
        &mut self,
        app: usize,
        cache_key: InternedKey,
        value: Option<CachedVal>,
        now: SimTime,
        at: SimTime,
    ) -> SimDuration {
        let node = self.remote_node_for(cache_key);
        let (follower, wait) = self.batch_admit(app, node, at, true);
        wait + self.remote_update_role(app, node, cache_key, value, now, follower)
    }

    /// The update body with an explicit batch role (see
    /// [`Deployment::remote_lookup_role`]).
    fn remote_update_role(
        &mut self,
        app: usize,
        node: usize,
        cache_key: InternedKey,
        value: Option<CachedVal>,
        now: SimTime,
        follower: bool,
    ) -> SimDuration {
        let bytes = value.map(|v| v.bytes).unwrap_or(0);
        let cost = self.config.app_cost;
        let app_rpc = if follower {
            cost.rpc_batched_side_cost(32 + bytes) + cost.rpc_batched_side_cost(8)
        } else {
            cost.rpc_side_cost(32 + bytes) + cost.rpc_side_cost(8)
        };
        let ser = if value.is_some() {
            cost.serialize_cost(bytes)
        } else {
            SimDuration::ZERO
        };
        let node_rpc = app_rpc;
        let op = SimDuration::from_micros_f64(cost.cache_server_op_us);
        self.charge_app(app, CpuCategory::RpcStack, app_rpc);
        self.charge_app(app, CpuCategory::Serialization, ser);
        self.cache_cpu[node].charge(CpuCategory::RpcStack, node_rpc);
        self.cache_cpu[node].charge(CpuCategory::CacheOp, op);
        match value {
            Some(v) => {
                self.remote[node].insert(cache_key, v, v.bytes, now.as_nanos());
            }
            None => {
                self.remote[node].remove(&cache_key);
            }
        }
        let link = &self.config.cluster.link;
        app_rpc + ser + node_rpc + op + link.delivery_time(32 + bytes) + link.delivery_time(8)
    }

    /// Linked-cache op on `shard` (lookup cost model; no serialization).
    pub(crate) fn charge_linked_op(&mut self, app: usize) -> SimDuration {
        let op = SimDuration::from_micros_f64(self.config.app_cost.local_cache_op_us);
        self.charge_app(app, CpuCategory::CacheOp, op);
        op
    }

    /// Whether this deployment runs an active L0 tier.
    pub fn l0_enabled(&self) -> bool {
        !self.l0.is_empty()
    }

    /// Aggregated L0 statistics across every app server's tier.
    pub fn l0_stats_total(&self) -> cachekit::L0Stats {
        let mut total = cachekit::L0Stats::default();
        for c in &self.l0 {
            let s = c.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.admitted += s.admitted;
            total.rejected += s.rejected;
            total.stale_admits_dropped += s.stale_admits_dropped;
            total.invalidations += s.invalidations;
            total.invalidation_misses += s.invalidation_misses;
        }
        total
    }

    /// Probe app server `app`'s L0 for `ckey`. Every probe — hit or miss —
    /// charges the in-process lookup cost; the serve paths call this before
    /// any cache/storage work, so an L0 hit pays *only* this. A `None`
    /// falls open to the authoritative path. No-op (free) when the tier is
    /// off, keeping default runs byte-identical.
    fn l0_lookup(
        &mut self,
        app: usize,
        ckey: InternedKey,
        now: SimTime,
        out: &mut ServeOutcome,
    ) -> Option<CachedVal> {
        if self.l0.is_empty() {
            return None;
        }
        let probe =
            SimDuration::from_micros_f64(self.config.l0.as_ref().map_or(0.0, |c| c.hit_us));
        self.charge_app(app, CpuCategory::CacheOp, probe);
        let start = now.as_nanos() + out.latency.as_nanos();
        out.latency += probe;
        match self.l0[app].get(&ckey, now.as_nanos()) {
            Some(hit) => {
                out.l0_hit = true;
                out.l0_age_nanos = hit.age_nanos;
                let v = *hit.value;
                self.tracer.span(
                    "cache.l0_hit",
                    "app",
                    start,
                    now.as_nanos() + out.latency.as_nanos(),
                    0,
                    SpanStatus::Ok,
                );
                Some(v)
            }
            None => None,
        }
    }

    /// Offer a freshly-fetched value to `app`'s L0 (no-op when the tier is
    /// off). The TinyLFU gate decides residency; strict versioning drops
    /// offers older than the resident entry.
    fn l0_admit(
        &mut self,
        app: usize,
        ckey: InternedKey,
        v: CachedVal,
        now: SimTime,
        out: &mut ServeOutcome,
    ) {
        if self.l0.is_empty() {
            return;
        }
        let cost =
            SimDuration::from_micros_f64(self.config.l0.as_ref().map_or(0.0, |c| c.insert_us));
        self.charge_app(app, CpuCategory::CacheOp, cost);
        out.latency += cost;
        self.l0[app].admit(ckey, v, v.version, v.bytes, now.as_nanos());
    }

    /// Writer-side L0 maintenance. Under invalidate-first the new version
    /// is broadcast to every server's tier before the ack — the writer
    /// cannot know which servers cached the key, so each pays the
    /// invalidation CPU (that fan-out, proportional to servers × write
    /// rate, is the coherence cost the hot-key ablation measures). The ack
    /// waits one invalidation op: the fan-out itself is parallel. Under
    /// serve-stale writers leave the tier alone; entries age out at the
    /// declared bound.
    fn l0_on_write(&mut self, ckey: InternedKey, new_version: u64, out: &mut ServeOutcome) {
        if self.l0.is_empty() {
            return;
        }
        let c = self.config.l0.as_ref().expect("l0 vec implies config");
        if c.serve_stale() {
            return;
        }
        let cost = SimDuration::from_micros_f64(c.invalidate_us);
        for i in 0..self.l0.len() {
            self.charge_app(i, CpuCategory::CacheOp, cost);
            self.l0[i].invalidate(&ckey, new_version);
        }
        out.latency += cost;
    }

    /// Serve one read. See module docs for the per-architecture paths.
    pub fn serve_kv_read(
        &mut self,
        table: &str,
        key: i64,
        now: SimTime,
    ) -> StoreResult<ServeOutcome> {
        let _span = simnet::prof_span!("serve_kv_read");
        let ckey = self.intern_kv_key(table, key);
        let app = self.route_app(ckey);
        // Feed the MRC profiler (no-op unless elastic is enabled).
        self.elastic.observe_hashed(ckey.route_hash());
        let mut out = ServeOutcome::default();

        match self.config.arch {
            ArchKind::Base => {
                let (val, lat, _r) = self.storage_read(app, table, key, now)?;
                out.sql_statements += 1;
                out.latency += lat;
                self.finish_read(app, val, now, &mut out);
            }
            ArchKind::Remote => {
                // L0 front check: a hit skips the cache-node RPC entirely
                // (and doesn't care whether that node is even up).
                if let Some(v) = self.l0_lookup(app, ckey, now, &mut out) {
                    out.cache_hit = true;
                    self.finish_read(app, Some(v), now, &mut out);
                    return Ok(out);
                }
                let node = self.remote_node_for(ckey);
                if self.reach_cache_node(app, node, now, &mut out) {
                    let lookup_start = now.as_nanos() + out.latency.as_nanos();
                    let (hit, lat) = self.remote_lookup_at(app, ckey, now, now + out.latency);
                    out.latency += lat;
                    self.tracer.span(
                        "cache.lookup",
                        "cache",
                        lookup_start,
                        now.as_nanos() + out.latency.as_nanos(),
                        0,
                        SpanStatus::Ok,
                    );
                    match hit {
                        Some(v) => {
                            out.cache_hit = true;
                            // A remote hit is the L0's fill source for hot
                            // keys: offer it (TinyLFU decides residency).
                            self.l0_admit(app, ckey, v, now, &mut out);
                            self.finish_read(app, Some(v), now, &mut out);
                        }
                        None => {
                            let val = self.storage_fill(app, table, key, ckey, now, &mut out)?;
                            if !out.coalesced {
                                if let Some(v) = val {
                                    let _ = self.cache_rpc_attempt(app, node);
                                    let at = now + out.latency;
                                    out.latency +=
                                        self.remote_update_at(app, ckey, Some(v), now, at);
                                    self.l0_admit(app, ckey, v, now, &mut out);
                                }
                            }
                            self.finish_read(app, val, now, &mut out);
                        }
                    }
                } else {
                    self.degraded_read(app, table, key, ckey, now, &mut out)?;
                }
            }
            ArchKind::Linked => {
                if !self.linked_shard_up(app) {
                    self.degraded_read(app, table, key, ckey, now, &mut out)?;
                    return Ok(out);
                }
                // L0 front check before the sharded linked lookup.
                if let Some(v) = self.l0_lookup(app, ckey, now, &mut out) {
                    out.cache_hit = true;
                    self.finish_read(app, Some(v), now, &mut out);
                    return Ok(out);
                }
                let lk_start = now.as_nanos() + out.latency.as_nanos();
                out.latency += self.charge_linked_op(app);
                let hit = self.linked[app].get(&ckey, now.as_nanos()).copied();
                self.tracer.span(
                    "cache.lookup",
                    "app",
                    lk_start,
                    now.as_nanos() + out.latency.as_nanos(),
                    0,
                    SpanStatus::Ok,
                );
                match hit {
                    Some(v) => {
                        out.cache_hit = true;
                        self.l0_admit(app, ckey, v, now, &mut out);
                        self.finish_read(app, Some(v), now, &mut out);
                    }
                    None => {
                        let val = self.storage_fill(app, table, key, ckey, now, &mut out)?;
                        if !out.coalesced {
                            if let Some(v) = val {
                                self.linked[app].insert(ckey, v, v.bytes, now.as_nanos());
                                self.l0_admit(app, ckey, v, now, &mut out);
                            }
                        }
                        self.finish_read(app, val, now, &mut out);
                    }
                }
            }
            ArchKind::LinkedTtl => {
                // Unsharded per-server cache: this server may hold a stale
                // replica (another server wrote since). TTL bounds the
                // staleness window; expiry shows up as a miss.
                if !self.linked_shard_up(app) {
                    self.degraded_read(app, table, key, ckey, now, &mut out)?;
                    return Ok(out);
                }
                let lk_start = now.as_nanos() + out.latency.as_nanos();
                out.latency += self.charge_linked_op(app);
                let hit = self.linked[app].get(&ckey, now.as_nanos()).copied();
                self.tracer.span(
                    "cache.lookup",
                    "app",
                    lk_start,
                    now.as_nanos() + out.latency.as_nanos(),
                    0,
                    SpanStatus::Ok,
                );
                match hit {
                    Some(v) => {
                        out.cache_hit = true;
                        self.finish_read(app, Some(v), now, &mut out);
                    }
                    None => {
                        let val = self.storage_fill(app, table, key, ckey, now, &mut out)?;
                        if !out.coalesced {
                            if let Some(v) = val {
                                let ttl = self.config.linked_ttl.as_nanos();
                                self.linked[app].insert_with_ttl(
                                    ckey,
                                    v,
                                    v.bytes,
                                    now.as_nanos(),
                                    ttl,
                                );
                            }
                        }
                        self.finish_read(app, val, now, &mut out);
                    }
                }
            }
            ArchKind::LinkedVersion => {
                if !self.linked_shard_up(app) {
                    // Reading storage directly is trivially consistent.
                    self.degraded_read(app, table, key, ckey, now, &mut out)?;
                    return Ok(out);
                }
                let lk_start = now.as_nanos() + out.latency.as_nanos();
                out.latency += self.charge_linked_op(app);
                let hit = self.linked[app].get(&ckey, now.as_nanos()).copied();
                self.tracer.span(
                    "cache.lookup",
                    "app",
                    lk_start,
                    now.as_nanos() + out.latency.as_nanos(),
                    0,
                    SpanStatus::Ok,
                );
                match hit {
                    Some(v) => {
                        // §5.5: a consistent read must verify the version in
                        // storage before returning the cached value.
                        let vc_start = now.as_nanos() + out.latency.as_nanos();
                        let (latest, lat) = self.version_check(app, table, key, now)?;
                        out.version_checks += 1;
                        out.sql_statements += 1;
                        out.latency += lat;
                        self.tracer.span(
                            "storage.version_check",
                            "storage",
                            vc_start,
                            now.as_nanos() + out.latency.as_nanos(),
                            0,
                            SpanStatus::Ok,
                        );
                        if latest == Some(v.version) {
                            out.cache_hit = true;
                            self.finish_read(app, Some(v), now, &mut out);
                        } else {
                            // Stale (or deleted): refresh from storage.
                            self.linked[app].remove(&ckey);
                            let val = self.storage_fill(app, table, key, ckey, now, &mut out)?;
                            if !out.coalesced {
                                if let Some(fresh) = val {
                                    self.linked[app].insert(
                                        ckey,
                                        fresh,
                                        fresh.bytes,
                                        now.as_nanos(),
                                    );
                                }
                            }
                            self.finish_read(app, val, now, &mut out);
                        }
                    }
                    None => {
                        let val = self.storage_fill(app, table, key, ckey, now, &mut out)?;
                        if !out.coalesced {
                            if let Some(v) = val {
                                self.linked[app].insert(ckey, v, v.bytes, now.as_nanos());
                            }
                        }
                        self.finish_read(app, val, now, &mut out);
                    }
                }
            }
            ArchKind::LeaseOwned => {
                if !self.linked_shard_up(app) {
                    // No cached copy to fence; storage reads are linearizable.
                    self.degraded_read(app, table, key, ckey, now, &mut out)?;
                    return Ok(out);
                }
                let shard = self.sharder.owner_hashed(ckey.route_hash());
                let lease_cost =
                    SimDuration::from_micros_f64(self.config.app_cost.lease_validate_us);
                self.charge_app(app, CpuCategory::TxnLease, lease_cost);
                out.latency += lease_cost;
                out.latency += self.charge_linked_op(app);
                let lease_ok = self.sharder.lease_valid(shard, now);
                let hit = self.linked[app].get(&ckey, now.as_nanos()).copied();
                match hit {
                    Some(v) if lease_ok => {
                        // Ownership makes the cached value linearizable
                        // without any storage contact.
                        out.cache_hit = true;
                        self.finish_read(app, Some(v), now, &mut out);
                    }
                    Some(v) => {
                        // Lease lapsed: fall back to a version check, then
                        // renew the lease.
                        let vc_start = now.as_nanos() + out.latency.as_nanos();
                        let (latest, lat) = self.version_check(app, table, key, now)?;
                        out.version_checks += 1;
                        out.sql_statements += 1;
                        out.latency += lat;
                        self.tracer.span(
                            "storage.version_check",
                            "storage",
                            vc_start,
                            now.as_nanos() + out.latency.as_nanos(),
                            0,
                            SpanStatus::Ok,
                        );
                        self.sharder.renew(shard, now);
                        if latest == Some(v.version) {
                            out.cache_hit = true;
                            self.finish_read(app, Some(v), now, &mut out);
                        } else {
                            self.linked[app].remove(&ckey);
                            let val = self.storage_fill(app, table, key, ckey, now, &mut out)?;
                            if !out.coalesced {
                                if let Some(fresh) = val {
                                    self.linked[app].insert(
                                        ckey,
                                        fresh,
                                        fresh.bytes,
                                        now.as_nanos(),
                                    );
                                }
                            }
                            self.finish_read(app, val, now, &mut out);
                        }
                    }
                    None => {
                        let val = self.storage_fill(app, table, key, ckey, now, &mut out)?;
                        if !lease_ok {
                            self.sharder.renew(shard, now);
                        }
                        if !out.coalesced {
                            if let Some(v) = val {
                                self.linked[app].insert(ckey, v, v.bytes, now.as_nanos());
                            }
                        }
                        self.finish_read(app, val, now, &mut out);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Serve a multi-key read as one client request (the app-side analogue
    /// of netrpc's `MGET`). With the Remote architecture and batching
    /// enabled, keys are grouped per owning cache node into frames of at
    /// most `max_batch` keys: the first key of each frame pays the full
    /// fixed per-RPC cost, the rest pay only the amortized per-key
    /// marginal. Outcomes are position-matched to `keys` and semantically
    /// identical to serving each key alone — batching moves CPU, never
    /// hits, misses, or values. Other architectures (and batching off)
    /// serve each key independently.
    pub fn serve_kv_read_batch(
        &mut self,
        table: &str,
        keys: &[i64],
        now: SimTime,
    ) -> StoreResult<Vec<ServeOutcome>> {
        let _span = simnet::prof_span!("serve_kv_read_batch");
        if self.config.arch != ArchKind::Remote || !self.config.batching.enabled() {
            return keys
                .iter()
                .map(|&k| self.serve_kv_read(table, k, now))
                .collect();
        }
        let max_batch = self.config.batching.max_batch.max(1) as usize;
        // One app server fields the whole multi-key request (round-robin).
        let app = self.route_app_rr();
        let ckeys: Vec<InternedKey> = keys
            .iter()
            .map(|&k| self.intern_kv_key(table, k))
            .collect();
        for ck in &ckeys {
            self.elastic.observe_hashed(ck.route_hash());
        }
        // L0 front check per key: hits serve locally and never enter a
        // frame; misses (everything, when the tier is off) proceed to the
        // batched remote path carrying their probe charge.
        let mut outcomes = vec![ServeOutcome::default(); keys.len()];
        // Group miss positions by owning cache node, preserving order
        // (vec-indexed, so grouping is deterministic).
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.remote.len().max(1)];
        for (i, &ck) in ckeys.iter().enumerate() {
            let mut out = ServeOutcome::default();
            if let Some(v) = self.l0_lookup(app, ck, now, &mut out) {
                out.cache_hit = true;
                self.finish_read(app, Some(v), now, &mut out);
            } else {
                groups[self.remote_node_for(ck)].push(i);
            }
            outcomes[i] = out;
        }
        for (node, members) in groups.iter().enumerate() {
            for frame in members.chunks(max_batch) {
                // Frame-level connectivity: one reachability check (with
                // retries) covers every key in the frame.
                let mut probe = ServeOutcome::default();
                let up = self.reach_cache_node(app, node, now, &mut probe);
                if up {
                    self.metrics.counter(batch_counters::RPC_BATCHES).inc();
                    self.metrics
                        .counter(batch_counters::BATCHED_RPC_KEYS)
                        .add(frame.len() as u64);
                    *self
                        .batch_size_counts
                        .entry(frame.len() as u32)
                        .or_insert(0) += 1;
                    self.tracer.span(
                        "cache.rpc_batch",
                        "app",
                        now.as_nanos() + probe.latency.as_nanos(),
                        now.as_nanos() + probe.latency.as_nanos(),
                        frame.len() as u32,
                        SpanStatus::Ok,
                    );
                }
                for (pos, &i) in frame.iter().enumerate() {
                    // Start from the (possibly L0-probe-charged) outcome
                    // recorded at grouping time, plus the frame's
                    // reachability latency.
                    let mut out = outcomes[i];
                    out.latency += probe.latency;
                    if pos == 0 {
                        // Retry accounting belongs to the frame, not to
                        // every rider: charge it once.
                        out.retries = probe.retries;
                    }
                    if !up {
                        self.degraded_read(app, table, keys[i], ckeys[i], now, &mut out)?;
                        outcomes[i] = out;
                        continue;
                    }
                    let (hit, lat) =
                        self.remote_lookup_role(app, node, ckeys[i], now, pos > 0);
                    out.latency += lat;
                    match hit {
                        Some(v) => {
                            out.cache_hit = true;
                            self.l0_admit(app, ckeys[i], v, now, &mut out);
                            self.finish_read(app, Some(v), now, &mut out);
                        }
                        None => {
                            let val =
                                self.storage_fill(app, table, keys[i], ckeys[i], now, &mut out)?;
                            if !out.coalesced {
                                if let Some(v) = val {
                                    let _ = self.cache_rpc_attempt(app, node);
                                    let at = now + out.latency;
                                    out.latency +=
                                        self.remote_update_at(app, ckeys[i], Some(v), now, at);
                                    self.l0_admit(app, ckeys[i], v, now, &mut out);
                                }
                            }
                            self.finish_read(app, val, now, &mut out);
                        }
                    }
                    outcomes[i] = out;
                }
            }
        }
        Ok(outcomes)
    }

    /// The §5.5 version check plus the app-side RPC around it.
    pub(crate) fn version_check(
        &mut self,
        app: usize,
        table: &str,
        key: i64,
        now: SimTime,
    ) -> StoreResult<(Option<u64>, SimDuration)> {
        let stmt = Self::table_sql(&mut self.sql_stmts, &self.cluster, table, KvStmt::Version)?;
        let pk = Datum::Int(key);
        let receipt = self
            .cluster
            .execute_cached(stmt, std::slice::from_ref(&pk), now)?;
        let version = receipt
            .rows
            .first()
            .and_then(|r| r.get(0))
            .and_then(|d| d.as_int())
            .map(|v| v as u64);
        let latency = self.charge_app_db_rpc(app, &receipt);
        Ok((version, latency))
    }

    pub(crate) fn finish_read(
        &mut self,
        app: usize,
        val: Option<CachedVal>,
        now: SimTime,
        out: &mut ServeOutcome,
    ) {
        let start = now.as_nanos() + out.latency.as_nanos();
        match val {
            Some(v) => {
                out.bytes = v.bytes;
                out.seed = Some(v.seed);
                out.version = Some(v.version);
                out.latency += self.charge_client_reply(app, v.bytes);
            }
            None => {
                out.not_found = true;
                out.latency += self.charge_client_reply(app, 0);
            }
        }
        self.tracer.span(
            "client.reply",
            "app",
            start,
            now.as_nanos() + out.latency.as_nanos(),
            0,
            SpanStatus::Ok,
        );
    }

    /// Serve one write: write-through to storage, then per-architecture
    /// cache maintenance (update linked shards, invalidate remote entries).
    pub fn serve_kv_write(
        &mut self,
        table: &str,
        key: i64,
        value: Datum,
        now: SimTime,
    ) -> StoreResult<ServeOutcome> {
        let _span = simnet::prof_span!("serve_kv_write");
        let ckey = self.intern_kv_key(table, key);
        let app = self.route_app(ckey);
        let mut out = ServeOutcome::default();

        if self.config.arch == ArchKind::LeaseOwned {
            // The owner validates its own lease/epoch before accepting the
            // write (fencing is enforced at commit; see `consistency`).
            let lease_cost = SimDuration::from_micros_f64(self.config.app_cost.lease_validate_us);
            self.charge_app(app, CpuCategory::TxnLease, lease_cost);
            out.latency += lease_cost;
        }

        let w_start = now.as_nanos() + out.latency.as_nanos();
        let (written, lat) = self.storage_write(app, table, key, value, now)?;
        out.sql_statements += 1;
        out.latency += lat;
        self.tracer.span(
            "storage.write",
            "storage",
            w_start,
            now.as_nanos() + out.latency.as_nanos(),
            0,
            SpanStatus::Ok,
        );
        out.version = Some(written.version);
        out.bytes = written.bytes;
        // The row changed: any in-flight fill result is no longer shareable.
        self.single_flight.invalidate(ckey);

        match self.config.arch {
            ArchKind::Base => {}
            ArchKind::Remote => {
                // Classic lookaside: invalidate after write; the next read
                // misses and refills.
                let node = self.remote_node_for(ckey);
                if self.cache_rpc_attempt(app, node) {
                    let at = now + out.latency;
                    out.latency += self.remote_update_at(app, ckey, None, now, at);
                } else {
                    // A crashed shard lost the entry anyway (restart is
                    // cold), so skipping the invalidation is safe; record
                    // it because partition windows are *not* safe this way.
                    self.metrics
                        .counter(fault_counters::INVALIDATIONS_SKIPPED)
                        .inc();
                    self.charge_failed_attempt(app, &mut out);
                }
            }
            ArchKind::Linked | ArchKind::LinkedVersion | ArchKind::LeaseOwned => {
                if self.linked_shard_up(app) {
                    // The owner shard updates its copy in place.
                    out.latency += self.charge_linked_op(app);
                    self.linked[app].insert(ckey, written, written.bytes, now.as_nanos());
                } else {
                    self.metrics
                        .counter(fault_counters::CACHE_UPDATES_SKIPPED)
                        .inc();
                }
            }
            ArchKind::LinkedTtl => {
                // Only the server that handled the write refreshes its
                // replica; other servers keep serving their cached copy
                // until the TTL expires — the staleness the TTL bounds.
                if self.linked_shard_up(app) {
                    out.latency += self.charge_linked_op(app);
                    let ttl = self.config.linked_ttl.as_nanos();
                    self.linked[app].insert_with_ttl(
                        ckey,
                        written,
                        written.bytes,
                        now.as_nanos(),
                        ttl,
                    );
                } else {
                    self.metrics
                        .counter(fault_counters::CACHE_UPDATES_SKIPPED)
                        .inc();
                }
            }
        }
        // Invalidate-first L0 coherence: broadcast before the ack (no-op
        // when the tier is off or in serve-stale mode).
        self.l0_on_write(ckey, written.version, &mut out);
        // Ack to the client.
        out.latency += self.charge_client_reply(app, 16);
        Ok(out)
    }

    /// Serve one delete: remove from storage, then per-architecture cache
    /// maintenance (sessions and other lifecycle-heavy services need this).
    pub fn serve_kv_delete(
        &mut self,
        table: &str,
        key: i64,
        now: SimTime,
    ) -> StoreResult<ServeOutcome> {
        let ckey = self.intern_kv_key(table, key);
        let app = self.route_app(ckey);
        let mut out = ServeOutcome::default();

        if self.config.arch == ArchKind::LeaseOwned {
            let lease_cost = SimDuration::from_micros_f64(self.config.app_cost.lease_validate_us);
            self.charge_app(app, CpuCategory::TxnLease, lease_cost);
            out.latency += lease_cost;
        }

        let stmt = Self::table_sql(&mut self.sql_stmts, &self.cluster, table, KvStmt::Delete)?;
        let receipt = self.cluster.execute_cached(stmt, &[Datum::Int(key)], now)?;
        out.sql_statements += 1;
        out.version = receipt.write_version;
        out.latency += self.charge_app_db_rpc(app, &receipt);
        self.single_flight.invalidate(ckey);

        match self.config.arch {
            ArchKind::Base => {}
            ArchKind::Remote => {
                let node = self.remote_node_for(ckey);
                if self.cache_rpc_attempt(app, node) {
                    let at = now + out.latency;
                    out.latency += self.remote_update_at(app, ckey, None, now, at);
                } else {
                    self.metrics
                        .counter(fault_counters::INVALIDATIONS_SKIPPED)
                        .inc();
                    self.charge_failed_attempt(app, &mut out);
                }
            }
            ArchKind::Linked
            | ArchKind::LinkedVersion
            | ArchKind::LeaseOwned
            | ArchKind::LinkedTtl => {
                if self.linked_shard_up(app) {
                    out.latency += self.charge_linked_op(app);
                    self.linked[app].remove(&ckey);
                } else {
                    self.metrics
                        .counter(fault_counters::CACHE_UPDATES_SKIPPED)
                        .inc();
                }
            }
        }
        // A delete removes the row outright: every resident L0 entry is
        // older than "gone", so invalidate unconditionally.
        self.l0_on_write(ckey, u64::MAX, &mut out);
        out.latency += self.charge_client_reply(app, 16);
        Ok(out)
    }

    /// Total app-tier CPU.
    pub fn app_cpu_total(&self) -> CpuMeter {
        let mut m = CpuMeter::new();
        for a in &self.app_cpu {
            m.merge(a);
        }
        m
    }

    /// Total remote-cache-tier CPU.
    pub fn cache_cpu_total(&self) -> CpuMeter {
        let mut m = CpuMeter::new();
        for c in &self.cache_cpu {
            m.merge(c);
        }
        m
    }

    /// Total *configured* capacity of the elastic-managed cache tier right
    /// now (drained remote nodes count as 0). This is what elastic billing
    /// integrates over time; `cache_resident_bytes` is what's in use.
    pub fn elastic_cache_capacity_bytes(&self) -> u64 {
        match self.config.arch {
            ArchKind::Remote => self.remote.iter().map(|c| c.capacity_bytes()).sum(),
            _ if self.config.arch.has_linked_cache() => {
                self.linked.iter().map(|c| c.capacity_bytes()).sum()
            }
            _ => 0,
        }
    }

    /// Remote cache nodes currently serving ring traffic.
    pub fn active_remote_nodes(&self) -> usize {
        if self.config.arch == ArchKind::Remote {
            self.remote_ring.shard_count()
        } else {
            0
        }
    }

    /// Apply one provisioning decision to the live cache tier.
    ///
    /// * Linked-family: the cache rides inside the fixed app-server fleet,
    ///   so the plan's total capacity is split evenly across servers and
    ///   each shard resized in place (`Cache::set_capacity`); shrinks evict
    ///   in LRU order and the evicted keys refill through normal misses,
    ///   which is where the re-fill CPU gets charged.
    /// * Remote: the node count follows `plan.shards` (clamped to the
    ///   deployed fleet). Scale-downs drain the highest-index nodes —
    ///   removed from the ring first, then their residents migrate to the
    ///   surviving owners with per-entry CPU charged to both cache nodes.
    ///   Scale-ups restore nodes in index order and migrate the keys they
    ///   now own. Placement equals a fresh ring of the same membership
    ///   (`HashRing` add/remove round-trip is exact), so routing stays
    ///   deterministic across resizes.
    /// * Base: nothing to resize.
    pub fn apply_elastic_plan(&mut self, plan: elastic::Plan, now: SimTime) {
        match self.config.arch {
            ArchKind::Remote => self.apply_remote_plan(plan, now),
            _ if self.config.arch.has_linked_cache() => {
                let per_server = (plan.cache_bytes / self.linked.len().max(1) as u64).max(1);
                let mut evicted = 0u64;
                let mut changed = false;
                for c in &mut self.linked {
                    if c.capacity_bytes() != per_server {
                        evicted += c.set_capacity(per_server) as u64;
                        changed = true;
                    }
                }
                if changed {
                    self.metrics.counter(elastic_counters::RESIZES).inc();
                    self.metrics
                        .counter(elastic_counters::RESIZE_EVICTIONS)
                        .add(evicted);
                }
            }
            _ => {}
        }
    }

    fn apply_remote_plan(&mut self, plan: elastic::Plan, now: SimTime) {
        let nodes = self.remote.len();
        if nodes == 0 {
            return;
        }
        let target = (plan.shards as usize).clamp(1, nodes);
        let current = self.remote_ring.shard_count();
        let per_node = plan.cache_bytes.div_ceil(target as u64).max(1);
        let mut evicted = 0u64;
        let mut changed = false;
        if target > current {
            for j in current..target {
                self.remote_ring.add_shard(j as u32);
                self.metrics.counter(elastic_counters::SHARDS_RESTORED).inc();
            }
            changed = true;
        } else if target < current {
            // Take every leaving shard off the ring before migrating, so
            // each resident maps straight to its final owner (no double
            // hops when several nodes drain at once).
            for j in target..current {
                self.remote_ring.remove_shard(j as u32);
                self.metrics.counter(elastic_counters::SHARDS_DRAINED).inc();
            }
            changed = true;
        }
        for j in 0..target {
            if self.remote[j].capacity_bytes() != per_node {
                evicted += self.remote[j].set_capacity(per_node) as u64;
                changed = true;
            }
        }
        if target != current {
            self.rebalance_remote(now);
            for j in target..nodes {
                self.remote[j].set_capacity(0);
            }
        }
        if changed {
            self.metrics.counter(elastic_counters::RESIZES).inc();
            self.metrics
                .counter(elastic_counters::RESIZE_EVICTIONS)
                .add(evicted);
        }
    }

    /// Move every remote resident to its current ring owner, charging the
    /// migration CPU (one cache op per side plus the wire bytes) to both
    /// cache nodes. Keys move in sorted order per source node, so the whole
    /// migration is deterministic.
    fn rebalance_remote(&mut self, now: SimTime) {
        for src in 0..self.remote.len() {
            let mut keys: Vec<InternedKey> = self.remote[src].keys().copied().collect();
            // Sorted by the keys' original *bytes* — the order the
            // pre-interning implementation migrated in (interned ids are
            // assigned in first-access order, which is not byte order).
            let interner = &self.interner;
            keys.sort_unstable_by(|&a, &b| interner.resolve(a).cmp(interner.resolve(b)));
            for k in keys {
                let owner = self.remote_node_for(k);
                if owner == src {
                    continue;
                }
                if let Some((v, _charge)) = self.remote[src].take(&k) {
                    let vb = v.bytes;
                    self.charge_migration(src, owner, vb);
                    self.remote[owner].insert(k, v, vb, now.as_nanos());
                }
            }
        }
    }

    fn charge_migration(&mut self, src: usize, dst: usize, bytes: u64) {
        let cost = self.config.app_cost;
        let op = SimDuration::from_micros_f64(cost.cache_server_op_us);
        let wire = SimDuration::from_micros_f64(cost.rpc_per_byte_ns * bytes as f64 / 1e3);
        self.cache_cpu[src].charge(CpuCategory::CacheOp, op);
        self.cache_cpu[src].charge(CpuCategory::RpcStack, wire);
        self.cache_cpu[dst].charge(CpuCategory::CacheOp, op);
        self.cache_cpu[dst].charge(CpuCategory::RpcStack, wire);
        self.metrics
            .counter(elastic_counters::MIGRATED_ENTRIES)
            .inc();
        self.metrics
            .counter(elastic_counters::MIGRATED_BYTES)
            .add(bytes);
    }
}

/// `(logical bytes, content identity)` of a stored value datum.
fn payload_identity(d: &Datum) -> (u64, u64) {
    match d {
        Datum::Payload { len, seed } => (*len, *seed),
        other => {
            let bytes = other.encoded_size().saturating_sub(1);
            (bytes, cachekit::ring::stable_hash(format!("{other}").as_bytes()))
        }
    }
}

/// Build the `kv`-style catalog used by the KV experiments: one table with
/// an integer key and a bytes value.
pub fn kv_catalog(table: &str) -> Catalog {
    use storekit::schema::{ColumnDef, ColumnType, TableSchema};
    let mut c = Catalog::new();
    c.add(
        TableSchema::new(
            table,
            vec![
                ColumnDef::new("k", ColumnType::Int),
                ColumnDef::new("v", ColumnType::Bytes),
            ],
            "k",
            &[],
        )
        .expect("static schema"),
    );
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeploymentConfig;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    fn deployment(arch: ArchKind) -> Deployment {
        let mut d = Deployment::new(DeploymentConfig::test_small(arch), kv_catalog("kv"));
        d.cluster
            .bulk_load(
                "kv",
                (0..100i64).map(|k| {
                    vec![
                        Datum::Int(k),
                        Datum::Payload { len: 1000, seed: 0 },
                    ]
                }),
            )
            .unwrap();
        d
    }

    #[test]
    fn every_arch_serves_reads_and_writes() {
        for arch in ArchKind::ALL {
            let mut d = deployment(arch);
            let r = d.serve_kv_read("kv", 5, t(1)).unwrap();
            assert_eq!(r.bytes, 1000, "{arch}");
            assert_eq!(r.seed, Some(0), "{arch}");
            assert!(!r.not_found);
            assert!(r.latency > SimDuration::ZERO);
            let w = d
                .serve_kv_write("kv", 5, Datum::Payload { len: 1000, seed: 7 }, t(2))
                .unwrap();
            assert!(w.version.is_some(), "{arch}");
            let r2 = d.serve_kv_read("kv", 5, t(3)).unwrap();
            if arch == ArchKind::LinkedTtl {
                // Unsharded TTL replicas: a different server may serve the
                // old value until its TTL lapses — bounded staleness.
                assert!(r2.seed == Some(7) || r2.seed == Some(0), "{arch}");
            } else {
                assert_eq!(r2.seed, Some(7), "{arch}: read after write sees new value");
            }
        }
    }

    #[test]
    fn linked_ttl_staleness_is_bounded_by_the_ttl() {
        let mut d = deployment(ArchKind::LinkedTtl);
        let ttl = d.config.linked_ttl;
        // Warm every server's replica of key 5 (round-robin routing).
        for i in 0..d.config.app_servers as u64 {
            d.serve_kv_read("kv", 5, t(i)).unwrap();
        }
        // A write through one server leaves the others' replicas stale.
        let at = t(100);
        d.serve_kv_write("kv", 5, Datum::Payload { len: 1000, seed: 7 }, at)
            .unwrap();
        let mut saw_stale = false;
        for i in 0..d.config.app_servers as u64 {
            let r = d.serve_kv_read("kv", 5, at + SimDuration::from_micros(i)).unwrap();
            saw_stale |= r.seed == Some(0);
        }
        assert!(saw_stale, "some replica must still serve the old value");
        // But strictly after the TTL, every server serves fresh data.
        let late = at + ttl + SimDuration::from_millis(1);
        for i in 0..2 * d.config.app_servers as u64 {
            let r = d.serve_kv_read("kv", 5, late + SimDuration::from_micros(i)).unwrap();
            assert_eq!(r.seed, Some(7), "staleness must not outlive the TTL");
        }
    }

    #[test]
    fn linked_hits_after_first_read() {
        let mut d = deployment(ArchKind::Linked);
        let r1 = d.serve_kv_read("kv", 1, t(1)).unwrap();
        assert!(!r1.cache_hit);
        let r2 = d.serve_kv_read("kv", 1, t(2)).unwrap();
        assert!(r2.cache_hit);
        assert!(r2.latency < r1.latency, "hits are much faster");
        assert_eq!(r2.sql_statements, 0, "hit touches no SQL");
    }

    #[test]
    fn remote_hits_after_first_read_and_costs_more_than_linked() {
        let mut dr = deployment(ArchKind::Remote);
        dr.serve_kv_read("kv", 1, t(1)).unwrap();
        let remote_hit = dr.serve_kv_read("kv", 1, t(2)).unwrap();
        assert!(remote_hit.cache_hit);

        let mut dl = deployment(ArchKind::Linked);
        dl.serve_kv_read("kv", 1, t(1)).unwrap();
        dl.reset_metrics();
        dl.serve_kv_read("kv", 1, t(2)).unwrap();
        let linked_cpu = dl.app_cpu_total().total();

        dr.reset_metrics();
        dr.serve_kv_read("kv", 1, t(3)).unwrap();
        let remote_cpu = dr.app_cpu_total().total() + dr.cache_cpu_total().total();
        assert!(
            remote_cpu > linked_cpu,
            "remote hit ({remote_cpu}) must cost more CPU than linked hit ({linked_cpu})"
        );
    }

    #[test]
    fn base_always_touches_sql() {
        let mut d = deployment(ArchKind::Base);
        for i in 0..5 {
            let r = d.serve_kv_read("kv", 1, t(i)).unwrap();
            assert!(!r.cache_hit);
            assert_eq!(r.sql_statements, 1);
        }
    }

    #[test]
    fn version_check_detects_external_update() {
        let mut d = deployment(ArchKind::LinkedVersion);
        d.serve_kv_read("kv", 9, t(1)).unwrap(); // fill cache
        // Update storage *behind the cache's back* (bypassing serve paths):
        d.cluster
            .execute(
                "UPDATE kv SET v = ? WHERE k = 9",
                &[Datum::Payload { len: 1000, seed: 99 }],
                t(2),
            )
            .unwrap();
        let r = d.serve_kv_read("kv", 9, t(3)).unwrap();
        assert_eq!(r.seed, Some(99), "version check must catch staleness");
        assert!(r.version_checks >= 1);
        assert!(!r.cache_hit, "stale hit is a miss after verification");
    }

    #[test]
    fn plain_linked_serves_stale_after_external_update() {
        // The contrast case: without version checks the linked cache
        // happily serves the old value — this is the consistency gap the
        // paper's §5.5 is about.
        let mut d = deployment(ArchKind::Linked);
        d.serve_kv_read("kv", 9, t(1)).unwrap();
        d.cluster
            .execute(
                "UPDATE kv SET v = ? WHERE k = 9",
                &[Datum::Payload { len: 1000, seed: 99 }],
                t(2),
            )
            .unwrap();
        let r = d.serve_kv_read("kv", 9, t(3)).unwrap();
        assert_eq!(r.seed, Some(0), "eventual consistency serves stale data");
        assert!(r.cache_hit);
    }

    #[test]
    fn version_checked_hit_costs_more_than_plain_hit() {
        let mut dv = deployment(ArchKind::LinkedVersion);
        dv.serve_kv_read("kv", 3, t(1)).unwrap();
        dv.reset_metrics();
        let rv = dv.serve_kv_read("kv", 3, t(2)).unwrap();
        assert!(rv.cache_hit);
        assert_eq!(rv.version_checks, 1);
        let checked_cpu = dv.app_cpu_total().total()
            + dv.cluster.frontend_cpu_total().total()
            + dv.cluster.storage_cpu_total().total();

        let mut dl = deployment(ArchKind::Linked);
        dl.serve_kv_read("kv", 3, t(1)).unwrap();
        dl.reset_metrics();
        dl.serve_kv_read("kv", 3, t(2)).unwrap();
        let plain_cpu = dl.app_cpu_total().total()
            + dl.cluster.frontend_cpu_total().total()
            + dl.cluster.storage_cpu_total().total();
        assert!(
            checked_cpu > plain_cpu * 3,
            "version check must dominate hit cost: {checked_cpu} vs {plain_cpu}"
        );
    }

    #[test]
    fn lease_owned_hit_skips_storage_entirely() {
        let mut d = deployment(ArchKind::LeaseOwned);
        d.sharder.renew_all(t(1));
        d.serve_kv_read("kv", 3, t(1)).unwrap();
        d.reset_metrics();
        let r = d.serve_kv_read("kv", 3, t(2)).unwrap();
        assert!(r.cache_hit);
        assert_eq!(r.version_checks, 0, "valid lease elides the check");
        assert_eq!(r.sql_statements, 0);
        assert_eq!(d.cluster.storage_cpu_total().total(), SimDuration::ZERO);
    }

    #[test]
    fn lease_expiry_falls_back_to_version_check() {
        let mut d = deployment(ArchKind::LeaseOwned);
        d.serve_kv_read("kv", 3, t(1)).unwrap();
        // Let every lease lapse (leases are 10s).
        let late = SimTime::from_nanos(20_000_000_000);
        let r = d.serve_kv_read("kv", 3, late).unwrap();
        assert_eq!(r.version_checks, 1, "expired lease must verify");
        assert!(r.cache_hit, "value was still fresh");
        // Lease renewed: next read is check-free again.
        let r2 = d
            .serve_kv_read("kv", 3, late + SimDuration::from_millis(1))
            .unwrap();
        assert_eq!(r2.version_checks, 0);
    }

    #[test]
    fn remote_write_invalidates() {
        let mut d = deployment(ArchKind::Remote);
        d.serve_kv_read("kv", 4, t(1)).unwrap();
        assert!(d.serve_kv_read("kv", 4, t(2)).unwrap().cache_hit);
        d.serve_kv_write("kv", 4, Datum::Payload { len: 1000, seed: 5 }, t(3))
            .unwrap();
        let r = d.serve_kv_read("kv", 4, t(4)).unwrap();
        assert!(!r.cache_hit, "lookaside write invalidates");
        assert_eq!(r.seed, Some(5));
        assert!(d.serve_kv_read("kv", 4, t(5)).unwrap().cache_hit, "refilled");
    }

    #[test]
    fn deletes_remove_from_storage_and_caches() {
        for arch in ArchKind::ALL {
            let mut d = deployment(arch);
            d.serve_kv_read("kv", 3, t(1)).unwrap(); // maybe fill cache
            let del = d.serve_kv_delete("kv", 3, t(2)).unwrap();
            assert!(del.version.is_some(), "{arch}");
            if arch == ArchKind::LinkedTtl {
                // Other servers' replicas may serve the tombstoned key
                // until their TTL lapses — after it, the key is gone
                // everywhere.
                let late = t(2) + d.config.linked_ttl + SimDuration::from_millis(1);
                for i in 0..2 * d.config.app_servers as u64 {
                    let r = d
                        .serve_kv_read("kv", 3, late + SimDuration::from_micros(i))
                        .unwrap();
                    assert!(r.not_found, "{arch}: delete must stick after TTL");
                }
            } else {
                let r = d.serve_kv_read("kv", 3, t(3)).unwrap();
                assert!(r.not_found, "{arch}: deleted key must be gone");
            }
            // Deleting again is a no-op write.
            d.serve_kv_delete("kv", 3, t(4 + 10_000)).unwrap();
        }
    }

    #[test]
    fn missing_keys_are_not_found_everywhere() {
        for arch in ArchKind::ALL {
            let mut d = deployment(arch);
            let r = d.serve_kv_read("kv", 4040, t(1)).unwrap();
            assert!(r.not_found, "{arch}");
            assert_eq!(r.seed, None);
        }
    }

    #[test]
    fn remote_crash_degrades_then_recovers_cold() {
        let mut d = deployment(ArchKind::Remote);
        d.serve_kv_read("kv", 1, t(1)).unwrap();
        assert!(d.serve_kv_read("kv", 1, t(2)).unwrap().cache_hit);

        for i in 0..d.cache_shard_count() {
            d.crash_cache_shard(i);
            assert!(!d.cache_shard_up(i));
        }
        let r = d.serve_kv_read("kv", 1, t(3)).unwrap();
        assert!(r.degraded, "down shard must degrade to storage");
        assert!(!r.cache_hit);
        assert_eq!(r.seed, Some(0), "value still served");
        assert_eq!(
            r.retries,
            d.config.fault_tolerance.retry.max_retries as u64,
            "retry budget exhausted before degrading"
        );
        assert!(
            d.metrics.counter_value(fault_counters::DEGRADED_READS) >= 1
        );
        assert!(d.net.dropped > 0, "failed attempts hit the fabric");

        for i in 0..d.cache_shard_count() {
            d.restart_cache_shard(i);
            assert!(d.cache_shard_up(i));
        }
        let r = d.serve_kv_read("kv", 1, t(4)).unwrap();
        assert!(!r.cache_hit, "restart is cold — entry was wiped");
        assert!(!r.degraded);
        assert!(d.serve_kv_read("kv", 1, t(5)).unwrap().cache_hit, "refilled");
        assert_eq!(
            d.metrics.counter_value(fault_counters::CACHE_CRASHES),
            d.cache_shard_count() as u64
        );
        assert_eq!(
            d.metrics.counter_value(fault_counters::CACHE_RESTARTS),
            d.cache_shard_count() as u64
        );
    }

    #[test]
    fn degraded_read_costs_latency_but_serves() {
        let mut d = deployment(ArchKind::Remote);
        let healthy = d.serve_kv_read("kv", 2, t(1)).unwrap(); // miss + fill
        for i in 0..d.cache_shard_count() {
            d.crash_cache_shard(i);
        }
        let degraded = d.serve_kv_read("kv", 2, t(2)).unwrap();
        assert!(
            degraded.latency > healthy.latency,
            "timeouts + backoff must show up in latency: {:?} vs {:?}",
            degraded.latency,
            healthy.latency
        );
    }

    #[test]
    fn no_fallback_means_unavailable_error() {
        let mut cfg = DeploymentConfig::test_small(ArchKind::Remote);
        cfg.fault_tolerance.degraded_fallback = false;
        let mut d = Deployment::new(cfg, kv_catalog("kv"));
        d.cluster
            .bulk_load("kv", (0..10i64).map(|k| {
                vec![Datum::Int(k), Datum::Payload { len: 100, seed: 0 }]
            }))
            .unwrap();
        for i in 0..d.cache_shard_count() {
            d.crash_cache_shard(i);
        }
        let err = d.serve_kv_read("kv", 1, t(1)).unwrap_err();
        assert!(matches!(err, StoreError::Unavailable { .. }), "{err}");
    }

    #[test]
    fn linked_family_survives_shard_crashes() {
        for arch in [
            ArchKind::Linked,
            ArchKind::LinkedVersion,
            ArchKind::LeaseOwned,
            ArchKind::LinkedTtl,
        ] {
            let mut d = deployment(arch);
            d.serve_kv_read("kv", 7, t(1)).unwrap();
            for i in 0..d.cache_shard_count() {
                d.crash_cache_shard(i);
            }
            let r = d.serve_kv_read("kv", 7, t(2)).unwrap();
            assert!(r.degraded, "{arch}");
            assert_eq!(r.seed, Some(0), "{arch}");
            // Writes keep working (cache maintenance skipped).
            let w = d
                .serve_kv_write("kv", 7, Datum::Payload { len: 1000, seed: 9 }, t(3))
                .unwrap();
            assert!(w.version.is_some(), "{arch}");
            assert_eq!(d.serve_kv_read("kv", 7, t(4)).unwrap().seed, Some(9), "{arch}");
            for i in 0..d.cache_shard_count() {
                d.restart_cache_shard(i);
            }
            let r = d.serve_kv_read("kv", 7, t(5)).unwrap();
            assert!(!r.degraded, "{arch}: healthy again after restart");
            assert_eq!(r.seed, Some(9), "{arch}: no stale resurrection");
        }
    }

    #[test]
    fn single_flight_coalesces_concurrent_fills() {
        let mut cfg = DeploymentConfig::test_small(ArchKind::Linked);
        cfg.fault_tolerance.single_flight = true;
        let mut d = Deployment::new(cfg, kv_catalog("kv"));
        d.cluster
            .bulk_load("kv", (0..10i64).map(|k| {
                vec![Datum::Int(k), Datum::Payload { len: 1000, seed: 0 }]
            }))
            .unwrap();
        let leader = d.serve_kv_read("kv", 1, t(1)).unwrap();
        assert_eq!(leader.sql_statements, 1);
        assert!(!leader.coalesced);
        // A second identical miss "arrives" while the first fill is still in
        // flight (the cache insert only lands at fill completion; here the
        // entry IS cached, so force the miss by clearing the shard).
        for c in &mut d.linked {
            c.clear();
        }
        let follower = d.serve_kv_read("kv", 1, t(1)).unwrap();
        assert!(follower.coalesced, "identical in-flight fill must coalesce");
        assert_eq!(follower.sql_statements, 0, "no duplicate SQL");
        assert_eq!(follower.seed, Some(0));
        assert_eq!(
            d.metrics.counter_value(fault_counters::STAMPEDE_SUPPRESSED),
            1
        );
        // After a write, the stale in-flight result must not be served.
        d.serve_kv_write("kv", 1, Datum::Payload { len: 1000, seed: 3 }, t(2))
            .unwrap();
        for c in &mut d.linked {
            c.clear();
        }
        let fresh = d.serve_kv_read("kv", 1, t(3)).unwrap();
        assert!(!fresh.coalesced, "write invalidates the in-flight fill");
        assert_eq!(fresh.seed, Some(3));
    }

    #[test]
    fn healthy_path_is_unchanged_by_fault_machinery() {
        // With defaults (no single-flight, nothing crashed) the serve paths
        // must charge exactly what they did before the fault layer existed:
        // counters stay zero and no randomness is consumed.
        for arch in ArchKind::ALL {
            let mut d = deployment(arch);
            for i in 0..20u64 {
                d.serve_kv_read("kv", (i % 7) as i64, t(i + 1)).unwrap();
            }
            assert_eq!(d.metrics.counter_value(fault_counters::DEGRADED_READS), 0);
            assert_eq!(d.metrics.counter_value(fault_counters::RETRIES), 0);
            assert_eq!(d.net.dropped, 0, "{arch}");
        }
    }

    fn batching_deployment(window_us: f64, max_batch: u32) -> Deployment {
        let mut cfg = DeploymentConfig::test_small(ArchKind::Remote);
        cfg.batching = crate::config::BatchingConfig {
            batch_window_us: window_us,
            max_batch,
        };
        let mut d = Deployment::new(cfg, kv_catalog("kv"));
        d.cluster
            .bulk_load(
                "kv",
                (0..100i64).map(|k| {
                    vec![
                        Datum::Int(k),
                        Datum::Payload { len: 1000, seed: 0 },
                    ]
                }),
            )
            .unwrap();
        d
    }

    /// Total CPU the remote path burns: app tier + cache tier.
    fn remote_path_cpu(d: &Deployment) -> SimDuration {
        d.app_cpu_total().total() + d.cache_cpu_total().total()
    }

    #[test]
    fn unwindowed_batching_charges_exactly_like_disabled() {
        // max_batch > 1 but a zero-length window: every per-request RPC
        // opens (and closes) its own frame, so CPU must be bit-identical
        // to batching-off — the knob only moves costs when frames coalesce.
        let mut off = deployment(ArchKind::Remote);
        let mut on = batching_deployment(0.0, 8);
        for i in 0..30u64 {
            let a = off.serve_kv_read("kv", (i % 7) as i64, t(i + 1)).unwrap();
            let b = on.serve_kv_read("kv", (i % 7) as i64, t(i + 1)).unwrap();
            assert_eq!(a, b, "identical outcomes, latency included");
        }
        assert_eq!(remote_path_cpu(&off), remote_path_cpu(&on));
        let frames = on.metrics.counter_value(batch_counters::RPC_BATCHES);
        let keys = on.metrics.counter_value(batch_counters::BATCHED_RPC_KEYS);
        assert!(frames > 0, "enabled batching still counts frames");
        assert_eq!(frames, keys, "zero window ⇒ every frame has one key");
        assert_eq!(
            on.batch_size_counts.iter().collect::<Vec<_>>(),
            vec![(&1u32, &frames)]
        );
        assert_eq!(off.metrics.counter_value(batch_counters::RPC_BATCHES), 0);
    }

    #[test]
    fn windowed_batching_coalesces_and_trades_latency_for_cpu() {
        let mut off = deployment(ArchKind::Remote);
        let mut on = batching_deployment(10_000.0, 4);
        // Warm one key in both, then read it 16 times in a tight burst that
        // fits inside one coalescing window.
        off.serve_kv_read("kv", 1, t(1)).unwrap();
        on.serve_kv_read("kv", 1, t(1)).unwrap();
        off.reset_metrics();
        on.reset_metrics();
        let mut off_lat = SimDuration::ZERO;
        let mut on_lat = SimDuration::ZERO;
        for i in 0..16u64 {
            let at = t(100_000) + SimDuration::from_micros(i);
            let a = off.serve_kv_read("kv", 1, at).unwrap();
            let b = on.serve_kv_read("kv", 1, at).unwrap();
            assert!(a.cache_hit && b.cache_hit);
            assert_eq!(a.seed, b.seed);
            off_lat += a.latency;
            on_lat += b.latency;
        }
        let frames = on.metrics.counter_value(batch_counters::RPC_BATCHES);
        let keys = on.metrics.counter_value(batch_counters::BATCHED_RPC_KEYS);
        assert_eq!(keys, 16);
        assert!(
            frames < keys,
            "a burst inside the window must coalesce: {frames} frames for {keys} keys"
        );
        assert!(
            remote_path_cpu(&on) < remote_path_cpu(&off),
            "coalesced frames must burn less CPU: {:?} vs {:?}",
            remote_path_cpu(&on),
            remote_path_cpu(&off)
        );
        assert!(
            on_lat > off_lat,
            "waiting out the window must show up in latency: {on_lat:?} vs {off_lat:?}"
        );
        // Each follower elides the fixed per-RPC cost on both message sides
        // of both meters (app + cache node).
        let followers = keys - frames;
        let saved_per_follower = SimDuration::from_micros_f64(
            4.0 * (on.config.app_cost.rpc_fixed_us - on.config.app_cost.rpc_batched_key_us),
        );
        assert_eq!(
            remote_path_cpu(&off).as_nanos() - remote_path_cpu(&on).as_nanos(),
            saved_per_follower.saturating_mul(followers).as_nanos(),
            "CPU saving must be exactly followers × amortized constant"
        );
    }

    #[test]
    fn explicit_batch_read_matches_sequential_modulo_amortized_constant() {
        let keys: Vec<i64> = (0..20).collect();
        let mut seq = deployment(ArchKind::Remote);
        let mut bat = batching_deployment(0.0, 8);
        // Identical warmup fills in both; meters reset after.
        for (i, &k) in keys.iter().enumerate() {
            seq.serve_kv_read("kv", k, t(i as u64 + 1)).unwrap();
            bat.serve_kv_read("kv", k, t(i as u64 + 1)).unwrap();
        }
        seq.reset_metrics();
        bat.reset_metrics();

        let seq_outs: Vec<ServeOutcome> = keys
            .iter()
            .map(|&k| seq.serve_kv_read("kv", k, t(1000)).unwrap())
            .collect();
        let bat_outs = bat.serve_kv_read_batch("kv", &keys, t(1000)).unwrap();

        assert_eq!(bat_outs.len(), seq_outs.len());
        for (a, b) in seq_outs.iter().zip(&bat_outs) {
            // Same semantics: hit/miss, value identity, version. Latency is
            // *not* compared — followers' cheaper RPC legs shorten it.
            assert_eq!(a.cache_hit, b.cache_hit);
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.version, b.version);
            assert_eq!(a.not_found, b.not_found);
            assert!(b.cache_hit, "warmed keys must hit");
        }
        let frames = bat.metrics.counter_value(batch_counters::RPC_BATCHES);
        let carried = bat.metrics.counter_value(batch_counters::BATCHED_RPC_KEYS);
        assert_eq!(carried, keys.len() as u64);
        assert!(frames < carried, "chunks of 8 must produce followers");
        let followers = carried - frames;
        let saved_per_follower = SimDuration::from_micros_f64(
            4.0 * (bat.config.app_cost.rpc_fixed_us - bat.config.app_cost.rpc_batched_key_us),
        );
        assert_eq!(
            remote_path_cpu(&seq).as_nanos() - remote_path_cpu(&bat).as_nanos(),
            saved_per_follower.saturating_mul(followers).as_nanos()
        );
        // The size histogram accounts for every key exactly once.
        let histo_keys: u64 = bat
            .batch_size_counts
            .iter()
            .map(|(&s, &c)| s as u64 * c)
            .sum();
        assert_eq!(histo_keys, carried);
    }

    #[test]
    fn batch_read_on_non_remote_archs_loops_the_scalar_path() {
        for arch in [ArchKind::Base, ArchKind::Linked] {
            let mut a = deployment(arch);
            let mut b = deployment(arch);
            let keys: Vec<i64> = (0..6).collect();
            let singles: Vec<ServeOutcome> = keys
                .iter()
                .map(|&k| a.serve_kv_read("kv", k, t(5)).unwrap())
                .collect();
            let batched = b.serve_kv_read_batch("kv", &keys, t(5)).unwrap();
            assert_eq!(singles, batched, "{arch}");
        }
    }

    #[test]
    fn linked_routing_is_deterministic_by_key() {
        let mut d = deployment(ArchKind::Linked);
        d.serve_kv_read("kv", 42, t(1)).unwrap();
        // All traffic for key 42 lands on one shard: exactly one shard has
        // a non-zero lookup count.
        let shards_touched = d
            .linked
            .iter()
            .filter(|c| c.stats().lookups() > 0)
            .count();
        assert_eq!(shards_touched, 1);
    }

    fn test_plan(cache_bytes: u64, shards: u32) -> elastic::Plan {
        elastic::Plan {
            cache_bytes,
            ssd_bytes: 0,
            shards,
            per_shard_bytes: cache_bytes.div_ceil(shards.max(1) as u64),
            vms: 1,
            predicted_miss_ratio: 0.1,
            monthly_dollars: 1.0,
        }
    }

    fn remote_deployment(nodes: usize) -> Deployment {
        let mut cfg = DeploymentConfig::test_small(ArchKind::Remote);
        cfg.remote_cache_nodes = nodes;
        let mut d = Deployment::new(cfg, kv_catalog("kv"));
        d.cluster
            .bulk_load(
                "kv",
                (0..100i64).map(|k| {
                    vec![Datum::Int(k), Datum::Payload { len: 1000, seed: 0 }]
                }),
            )
            .unwrap();
        d
    }

    #[test]
    fn elastic_is_inert_by_default() {
        let mut d = deployment(ArchKind::Remote);
        assert!(!d.elastic.enabled());
        for k in 0..20 {
            d.serve_kv_read("kv", k, t(k as u64)).unwrap();
        }
        assert_eq!(d.elastic.profiler().raw_accesses(), 0);
        assert_eq!(d.metrics.counter_value(elastic_counters::RESIZES), 0);
        assert_eq!(d.metrics.counter_value(elastic_counters::MIGRATED_ENTRIES), 0);
    }

    #[test]
    fn elastic_observe_feeds_the_profiler_when_enabled() {
        let mut cfg = DeploymentConfig::test_small(ArchKind::Remote);
        cfg.elastic = elastic::ElasticConfig::with_interval(10.0);
        let mut d = Deployment::new(cfg, kv_catalog("kv"));
        d.cluster
            .bulk_load(
                "kv",
                (0..20i64).map(|k| {
                    vec![Datum::Int(k), Datum::Payload { len: 1000, seed: 0 }]
                }),
            )
            .unwrap();
        for k in 0..20 {
            d.serve_kv_read("kv", k, t(k as u64)).unwrap();
        }
        assert_eq!(d.elastic.profiler().raw_accesses(), 20);
    }

    #[test]
    fn elastic_remote_drain_migrates_residents_to_survivors() {
        let mut d = remote_deployment(4);
        let keys: Vec<i64> = (0..60).collect();
        for &k in &keys {
            d.serve_kv_read("kv", k, t(k as u64)).unwrap();
        }
        let full_capacity = d.elastic_cache_capacity_bytes();
        assert_eq!(d.active_remote_nodes(), 4);
        let cpu_before = d.cache_cpu_total().total();

        d.apply_elastic_plan(test_plan(full_capacity, 2), t(1_000));
        assert_eq!(d.active_remote_nodes(), 2);
        assert_eq!(d.metrics.counter_value(elastic_counters::SHARDS_DRAINED), 2);
        let migrated = d.metrics.counter_value(elastic_counters::MIGRATED_ENTRIES);
        assert!(migrated > 0, "draining half the ring must move entries");
        assert!(d.metrics.counter_value(elastic_counters::MIGRATED_BYTES) >= 1000 * migrated);
        assert!(
            d.cache_cpu_total().total() > cpu_before,
            "migration CPU must be charged to the cache tier"
        );
        // Drained nodes hold nothing and bill nothing.
        assert_eq!(d.remote[2].capacity_bytes(), 0);
        assert_eq!(d.remote[3].capacity_bytes(), 0);
        assert_eq!(d.remote[2].used_bytes() + d.remote[3].used_bytes(), 0);
        // Every warmed key survived the drain: all reads still hit.
        for &k in &keys {
            let r = d.serve_kv_read("kv", k, t(2_000 + k as u64)).unwrap();
            assert!(r.cache_hit, "key {k} lost during drain");
        }
    }

    #[test]
    fn elastic_remote_restore_round_trips_placement() {
        let mut d = remote_deployment(4);
        let fresh_ids: Vec<u32> = d.remote_ring.shard_ids().collect();
        for k in 0..60 {
            d.serve_kv_read("kv", k, t(k as u64)).unwrap();
        }
        let capacity = d.elastic_cache_capacity_bytes();
        d.apply_elastic_plan(test_plan(capacity / 4, 1), t(1_000));
        assert_eq!(d.active_remote_nodes(), 1);
        d.apply_elastic_plan(test_plan(capacity, 4), t(2_000));
        assert_eq!(d.active_remote_nodes(), 4);
        assert_eq!(
            d.remote_ring.shard_ids().collect::<Vec<u32>>(),
            fresh_ids,
            "drain + restore must reproduce the original ring membership"
        );
        assert_eq!(d.metrics.counter_value(elastic_counters::SHARDS_RESTORED), 3);
        // Residents sit where a fresh ring would place them.
        for node in 0..4 {
            let misplaced = d.remote[node]
                .keys()
                .filter(|&&k| d.remote_node_for(k) != node)
                .count();
            assert_eq!(misplaced, 0, "node {node} holds keys it does not own");
        }
        for k in 0..60 {
            let r = d.serve_kv_read("kv", k, t(3_000 + k as u64)).unwrap();
            assert!(r.cache_hit, "key {k} lost across drain/restore");
        }
    }

    #[test]
    fn elastic_linked_shrink_resizes_every_server_and_counts_evictions() {
        let mut d = deployment(ArchKind::Linked);
        for k in 0..100 {
            d.serve_kv_read("kv", k, t(k as u64)).unwrap();
        }
        let resident = d.cache_resident_bytes();
        assert!(resident > 0);
        // Shrink to roughly a third of what's resident: must evict.
        let target = resident / 3;
        d.apply_elastic_plan(test_plan(target, 1), t(1_000));
        let per_server = (target / d.linked.len() as u64).max(1);
        for c in &d.linked {
            assert_eq!(c.capacity_bytes(), per_server);
            assert!(c.used_bytes() <= per_server);
        }
        assert_eq!(d.elastic_cache_capacity_bytes(), per_server * d.linked.len() as u64);
        assert_eq!(d.metrics.counter_value(elastic_counters::RESIZES), 1);
        assert!(d.metrics.counter_value(elastic_counters::RESIZE_EVICTIONS) > 0);
        // Re-applying the same plan is a no-op.
        d.apply_elastic_plan(test_plan(target, 1), t(2_000));
        assert_eq!(d.metrics.counter_value(elastic_counters::RESIZES), 1);
    }

    #[test]
    fn elastic_plan_on_base_arch_is_a_noop() {
        let mut d = deployment(ArchKind::Base);
        assert_eq!(d.elastic_cache_capacity_bytes(), 0);
        d.apply_elastic_plan(test_plan(1 << 20, 2), t(1));
        assert_eq!(d.metrics.counter_value(elastic_counters::RESIZES), 0);
    }
}
