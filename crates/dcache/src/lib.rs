//! # dcache — the cost study of distributed caches for datacenter services
//!
//! This is the paper's primary contribution, as a library. It wires the
//! substrates together — [`storekit`]'s TiDB-like cluster, [`cachekit`]'s
//! caches, [`workloads`]' traces, [`costmodel`]'s pricing — into the four
//! §2.4 architectures and measures what each costs:
//!
//! * **Base** — no external cache; every read traverses SQL → storage, with
//!   only the storage-layer block cache (`s_D`) absorbing heat.
//! * **Remote** — a Memcached/Redis-style lookaside tier: shared, but every
//!   access pays an RPC and (de)serialization on both sides.
//! * **Linked** — the cache lives inside the application processes, sharded
//!   across app servers by consistent hashing; hits cost a hash lookup.
//! * **Linked+Version** — Linked, plus a per-read version check against
//!   storage for linearizable reads (§5.5's consistency baseline).
//! * **LeaseOwned** — the §6 future-work design: Slicer-style ownership
//!   leases over key ranges elide the per-read version check; write fencing
//!   closes the delayed-write hazard (Figure 8).
//!
//! Entry points:
//!
//! * [`Deployment`] — build an architecture at a given scale and serve
//!   requests against it.
//! * [`experiment`] — drive a workload through a deployment and get a
//!   [`experiment::ExperimentReport`]: per-tier cores/GB, dollars/month,
//!   CPU category breakdowns, latency percentiles, hit ratios.
//! * [`unityapp`] — the rich-object application (Unity Catalog-Object and
//!   -KV flavors of §5.4).
//! * [`sessionapp`] — the §2.3 session-state service, where stale reads
//!   are correctness bugs; quantifies the consistent-cache motivation.
//! * [`consistency`] — the Figure 8 delayed-writes scenario, the fencing
//!   fix, and a linearizability checker to prove both claims.

pub mod config;
pub mod consistency;
pub mod deployment;
pub mod experiment;
pub mod lease;
pub mod obs;
pub mod sessionapp;
pub mod unityapp;

pub use config::{
    AppCostConfig, ArchKind, BatchingConfig, DeploymentConfig, FaultToleranceConfig, L0Config,
    L0Consistency, RetryPolicy,
};
pub use deployment::{
    batch_counters, elastic_counters, fault_counters, l0_counters, Deployment, ServeOutcome,
};
pub use experiment::{run_kv_experiment, ExperimentReport, KvExperimentConfig};
