//! The session-state service — the paper's second motivating workload
//! (§2.3): low-latency session reads that must be *strongly consistent*,
//! because a stale session state "can yield incorrect query behavior".
//!
//! The runner drives the lifecycle stream ([`workloads::sessions`]) through
//! a deployment and reports, alongside cost, the metric this service
//! actually cares about: **incorrect reads** — `Get`s that observed a
//! session state older than the latest acknowledged `Advance`. For
//! eventually-consistent architectures that number is the price of their
//! cheapness; for Base / Linked+Version / LeaseOwned it must be zero
//! (tests enforce it).
//!
//! Sessions map onto the deployment's KV paths: `Create`/`Advance` are
//! writes of the state payload (generation = step), `Get` is a read, `End`
//! is a delete. Unlike the KV trace, deletes are frequent, so this also
//! exercises tombstone handling end to end.

use crate::config::DeploymentConfig;
use crate::deployment::{kv_catalog, Deployment};
use crate::experiment::{build_report, ExperimentReport, RunMetrics};
use costmodel::Pricing;
use simnet::{SimDuration, SimTime};
use storekit::error::StoreResult;
use storekit::value::Datum;
use workloads::sessions::{SessionOp, SessionWorkloadConfig};

/// Configuration of one session-service cost run.
#[derive(Debug, Clone)]
pub struct SessionExperimentConfig {
    pub deployment: DeploymentConfig,
    pub workload: SessionWorkloadConfig,
    pub qps: f64,
    pub warmup_requests: u64,
    pub requests: u64,
    pub pricing: Pricing,
}

impl SessionExperimentConfig {
    pub fn paper(arch: crate::ArchKind) -> Self {
        SessionExperimentConfig {
            deployment: DeploymentConfig::paper(arch),
            workload: SessionWorkloadConfig::default(),
            qps: 40_000.0,
            warmup_requests: 80_000,
            requests: 80_000,
            pricing: Pricing::default(),
        }
    }

    pub fn test_small(arch: crate::ArchKind) -> Self {
        SessionExperimentConfig {
            deployment: DeploymentConfig::test_small(arch),
            workload: SessionWorkloadConfig {
                live_sessions: 300,
                ..Default::default()
            },
            qps: 50_000.0,
            warmup_requests: 2_000,
            requests: 4_000,
            pricing: Pricing::default(),
        }
    }
}

/// Run the session service. The returned report's `stale_reads` counts
/// *incorrect session reads* — the §2.3 correctness violations.
pub fn run_session_experiment(cfg: &SessionExperimentConfig) -> StoreResult<ExperimentReport> {
    let mut dep = Deployment::new(cfg.deployment.clone(), kv_catalog("sessions"));

    // Seed the initial live pool at step 0.
    dep.cluster.bulk_load(
        "sessions",
        (0..cfg.workload.live_sessions as u64).map(|id| {
            vec![
                Datum::Int(id as i64),
                Datum::Payload {
                    len: cfg.workload.state_bytes(id),
                    seed: 0,
                },
            ]
        }),
    )?;

    let mut workload = cfg.workload.build();
    // Latest acknowledged step per live session (None = ended).
    let mut truth: std::collections::HashMap<u64, u64> =
        (0..cfg.workload.live_sessions as u64).map(|id| (id, 0)).collect();
    let dt = SimDuration::from_secs_f64(1.0 / cfg.qps.max(1.0));
    let mut now = SimTime::ZERO;
    let mut metrics = RunMetrics::new();
    let total = cfg.warmup_requests + cfg.requests;
    let heartbeat_every = (cfg.qps as u64).max(1);
    let mut measuring = false;
    let mut measure_start = SimTime::ZERO;

    for i in 0..total {
        if i == cfg.warmup_requests {
            dep.reset_metrics();
            metrics = RunMetrics::new();
            measuring = true;
            measure_start = now;
        }
        if i % heartbeat_every == 0 {
            dep.cluster.tick(now);
            dep.sharder.renew_all(now);
        }
        match workload.next_op() {
            SessionOp::Get { id } => {
                let out = dep.serve_kv_read("sessions", id as i64, now)?;
                if measuring {
                    metrics.reads += 1;
                    metrics.read_latency.record(out.latency.as_nanos());
                    metrics.cache_hits += out.cache_hit as u64;
                    metrics.version_checks += out.version_checks;
                    metrics.sql_statements += out.sql_statements;
                    let expect = truth.get(&id).copied();
                    if out.seed != expect {
                        // Stale state or a resurrected tombstone: the
                        // "incorrect query behavior" of §2.3.
                        metrics.stale_reads += 1;
                    }
                }
            }
            SessionOp::Create { id } => {
                let value = Datum::Payload {
                    len: cfg.workload.state_bytes(id),
                    seed: 0,
                };
                let out = dep.serve_kv_write("sessions", id as i64, value, now)?;
                truth.insert(id, 0);
                if measuring {
                    metrics.writes += 1;
                    metrics.write_latency.record(out.latency.as_nanos());
                    metrics.sql_statements += out.sql_statements;
                }
            }
            SessionOp::Advance { id, step } => {
                let value = Datum::Payload {
                    len: cfg.workload.state_bytes(id),
                    seed: step,
                };
                let out = dep.serve_kv_write("sessions", id as i64, value, now)?;
                truth.insert(id, step);
                if measuring {
                    metrics.writes += 1;
                    metrics.write_latency.record(out.latency.as_nanos());
                    metrics.sql_statements += out.sql_statements;
                }
            }
            SessionOp::End { id } => {
                let out = dep.serve_kv_delete("sessions", id as i64, now)?;
                truth.remove(&id);
                if measuring {
                    metrics.writes += 1;
                    metrics.write_latency.record(out.latency.as_nanos());
                    metrics.sql_statements += out.sql_statements;
                }
            }
        }
        now += dt;
    }

    let duration = now.since(measure_start);
    Ok(build_report(
        &dep,
        &metrics,
        cfg.qps,
        cfg.requests,
        duration,
        &cfg.pricing,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArchKind;

    #[test]
    fn consistent_architectures_never_serve_stale_sessions() {
        for arch in [ArchKind::Base, ArchKind::LinkedVersion, ArchKind::LeaseOwned] {
            let r = run_session_experiment(&SessionExperimentConfig::test_small(arch)).unwrap();
            assert_eq!(
                r.stale_reads, 0,
                "{arch}: session reads must be linearizable"
            );
            assert!(r.total_cost.total() > 0.0);
        }
    }

    #[test]
    fn linked_and_remote_stay_coherent_with_routed_writes() {
        // With all writes routed through the serving path (single-writer
        // sessions), even the eventual architectures read their own writes.
        for arch in [ArchKind::Linked, ArchKind::Remote] {
            let r = run_session_experiment(&SessionExperimentConfig::test_small(arch)).unwrap();
            assert_eq!(r.stale_reads, 0, "{arch}");
        }
    }

    #[test]
    fn ttl_replicas_serve_incorrect_session_state() {
        // The §2.3 argument, quantified: TTL-freshness caches serve stale
        // session state between an Advance and the TTL horizon.
        let r = run_session_experiment(&SessionExperimentConfig::test_small(ArchKind::LinkedTtl))
            .unwrap();
        assert!(
            r.stale_reads > 0,
            "per-server TTL replicas must exhibit incorrect reads"
        );
    }

    #[test]
    fn lease_owned_is_cheapest_consistent_option() {
        let base = run_session_experiment(&SessionExperimentConfig::test_small(ArchKind::Base))
            .unwrap();
        let checked = run_session_experiment(&SessionExperimentConfig::test_small(
            ArchKind::LinkedVersion,
        ))
        .unwrap();
        let leased =
            run_session_experiment(&SessionExperimentConfig::test_small(ArchKind::LeaseOwned))
                .unwrap();
        assert!(
            leased.total_cost.total() < checked.total_cost.total(),
            "leases {} must beat per-read checks {}",
            leased.total_cost.total(),
            checked.total_cost.total()
        );
        assert!(
            leased.total_cost.total() < base.total_cost.total(),
            "leases {} must beat reading storage {}",
            leased.total_cost.total(),
            base.total_cost.total()
        );
    }
}
