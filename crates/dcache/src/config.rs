//! Deployment configuration: architecture choice, tier sizing, and the
//! application-side CPU cost constants.

use serde::{Deserialize, Serialize};
use simnet::SimDuration;
use storekit::cluster::ClusterConfig;

/// The §2.4 architectures plus the §6 extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchKind {
    /// Storage-layer cache only (Figure 1a).
    Base,
    /// Remote lookaside cache tier (Figure 1b).
    Remote,
    /// Application-linked sharded cache (Figure 1c).
    Linked,
    /// Linked cache + per-read version check (Figure 1d).
    LinkedVersion,
    /// Linked cache + ownership leases + write fencing (§6 future work).
    LeaseOwned,
    /// TTL-freshness extension (paper §7 related work): every app server
    /// caches independently (no ownership routing — requests round-robin),
    /// and entries expire after a TTL that bounds staleness. Models the
    /// common deployment where invalidation is unavailable; costs more
    /// memory (duplication across servers) and serves boundedly-stale data.
    LinkedTtl,
}

impl ArchKind {
    pub const ALL: [ArchKind; 6] = [
        ArchKind::Base,
        ArchKind::Remote,
        ArchKind::Linked,
        ArchKind::LinkedVersion,
        ArchKind::LeaseOwned,
        ArchKind::LinkedTtl,
    ];

    /// The four the paper evaluates (Figures 4–7).
    pub const PAPER: [ArchKind; 4] = [
        ArchKind::Base,
        ArchKind::Remote,
        ArchKind::Linked,
        ArchKind::LinkedVersion,
    ];

    pub const fn label(self) -> &'static str {
        match self {
            ArchKind::Base => "base",
            ArchKind::Remote => "remote",
            ArchKind::Linked => "linked",
            ArchKind::LinkedVersion => "linked+version",
            ArchKind::LeaseOwned => "lease-owned",
            ArchKind::LinkedTtl => "linked+ttl",
        }
    }

    /// Whether this architecture deploys an app-side (linked) cache.
    pub const fn has_linked_cache(self) -> bool {
        matches!(
            self,
            ArchKind::Linked
                | ArchKind::LinkedVersion
                | ArchKind::LeaseOwned
                | ArchKind::LinkedTtl
        )
    }

    /// Whether the linked cache is sharded by key ownership (one copy
    /// cluster-wide) or replicated per server (TTL-freshness deployments).
    pub const fn linked_cache_is_sharded(self) -> bool {
        !matches!(self, ArchKind::LinkedTtl)
    }

    /// Whether reads are linearizable under this architecture.
    pub const fn is_consistent(self) -> bool {
        matches!(
            self,
            ArchKind::Base | ArchKind::LinkedVersion | ArchKind::LeaseOwned
        )
    }

    /// Whether the in-process L0 hot-key tier can front this architecture.
    /// Base has no cache to front; the version-checked/leased families
    /// derive their consistency from checks the L0 would bypass, so the
    /// tier composes only with plain Remote and sharded Linked.
    pub const fn supports_l0(self) -> bool {
        matches!(self, ArchKind::Remote | ArchKind::Linked)
    }

    /// Whether the adaptive TTL control plane can drive this architecture.
    /// The plane works by adjusting the caches' *default* TTL at runtime;
    /// Base has no cache to expire, LinkedTtl's TTL is its consistency
    /// contract (a controller shortening it silently changes the staleness
    /// bound), and the version-checked/leased families get freshness from
    /// checks, not expiry — so the plane composes with Remote and sharded
    /// Linked only, mirroring [`Self::supports_l0`].
    pub const fn supports_ttl_plane(self) -> bool {
        matches!(self, ArchKind::Remote | ArchKind::Linked)
    }
}

impl std::fmt::Display for ArchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Application-server CPU cost constants (calibrated alongside
/// [`storekit::cost::StorageCostConfig`]; see DESIGN.md §5).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AppCostConfig {
    /// Handling one client request/response pair (socket + framing).
    pub client_rpc_fixed_us: f64,
    /// Per byte of response streamed to the client.
    pub client_rpc_per_byte_ns: f64,
    /// Proto-style (de)serialization of *storage/cache responses* into
    /// application objects, per byte per direction. Responses to the end
    /// client are covered by `client_rpc_per_byte_ns` instead (they stream
    /// the already-encoded representation).
    pub serialize_per_byte_ns: f64,
    /// Fixed cost of one serialization/deserialization call.
    pub serialize_fixed_us: f64,
    /// Preparing and issuing a request to a remote tier (cache or storage).
    pub request_prep_us: f64,
    /// RPC stack cost per message side (app ↔ remote cache).
    pub rpc_fixed_us: f64,
    pub rpc_per_byte_ns: f64,
    /// A linked-cache lookup (hash + policy touch), no serialization.
    pub local_cache_op_us: f64,
    /// Remote cache server's per-operation cost (lookup/insert bookkeeping).
    pub cache_server_op_us: f64,
    /// Marginal cost of one additional key riding an already-open batched
    /// RPC frame (encoding/decoding its entry only — the syscall + framing
    /// fixed cost `rpc_fixed_us` is paid once per frame by the opener).
    /// Calibrated from the netrpc loopback MGET path: the per-key marginal
    /// is ~7% of the fixed per-RPC cost.
    pub rpc_batched_key_us: f64,
    /// Rich-object assembly: per constituent query result folded in.
    pub object_assemble_per_part_us: f64,
    /// Rich-object assembly: per byte of object material handled.
    pub object_assemble_per_byte_ns: f64,
    /// Validating a local ownership lease (LeaseOwned reads).
    pub lease_validate_us: f64,
    /// Reclaiming one expired entry during a TTL expiry sweep (ordered-index
    /// pop + hash removal + free-list push) — cheaper than a full cache op
    /// because there is no probe, policy touch, or admission decision.
    pub expiry_sweep_entry_us: f64,
}

impl Default for AppCostConfig {
    fn default() -> Self {
        AppCostConfig {
            client_rpc_fixed_us: 105.0,
            client_rpc_per_byte_ns: 0.13,
            serialize_per_byte_ns: 0.4,
            serialize_fixed_us: 2.0,
            request_prep_us: 45.0,
            rpc_fixed_us: 35.0,
            rpc_per_byte_ns: 0.9,
            local_cache_op_us: 1.2,
            cache_server_op_us: 6.0,
            rpc_batched_key_us: 2.5,
            object_assemble_per_part_us: 6.0,
            object_assemble_per_byte_ns: 0.3,
            lease_validate_us: 0.4,
            expiry_sweep_entry_us: 0.3,
        }
    }
}

impl AppCostConfig {
    /// (De)serialization of `bytes` in one direction.
    pub fn serialize_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros_f64(
            self.serialize_fixed_us + self.serialize_per_byte_ns * bytes as f64 / 1e3,
        )
    }

    /// One RPC message side of `bytes` between app and a remote tier.
    pub fn rpc_side_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros_f64(self.rpc_fixed_us + self.rpc_per_byte_ns * bytes as f64 / 1e3)
    }

    /// One message side of `bytes` for a key that joins an already-open
    /// batched frame: per-key marginal plus the byte-proportional term. The
    /// frame opener pays [`Self::rpc_side_cost`]; followers pay this.
    pub fn rpc_batched_side_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros_f64(
            self.rpc_batched_key_us + self.rpc_per_byte_ns * bytes as f64 / 1e3,
        )
    }

    /// Serving `bytes` back to the end client.
    pub fn client_reply_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros_f64(
            self.client_rpc_fixed_us + self.client_rpc_per_byte_ns * bytes as f64 / 1e3,
        )
    }
}

/// Bounded exponential backoff with deterministic jitter, used when a cache
/// shard stops answering.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 = fail straight through).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: SimDuration,
    /// Ceiling on any single backoff.
    pub max_backoff: SimDuration,
    /// Jitter fraction: each backoff is scaled by `1 + jitter * u` with
    /// `u ∈ [0, 1)` drawn from the deployment's seeded RNG.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: SimDuration::from_micros(500),
            max_backoff: SimDuration::from_millis(20),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (0-based), jittered by
    /// `unit ∈ [0, 1)`. `max_backoff` bounds the *jittered* delay: clamping
    /// before stretching let the result exceed the configured ceiling by up
    /// to `1 + jitter`×.
    pub fn backoff(&self, attempt: u32, unit: f64) -> SimDuration {
        let exp = self.base_backoff.saturating_mul(1u64 << attempt.min(20));
        let scale = 1.0 + self.jitter.clamp(0.0, 1.0) * unit.clamp(0.0, 1.0);
        let jittered = SimDuration::from_secs_f64(exp.as_secs_f64() * scale);
        jittered.min(self.max_backoff)
    }
}

/// App-side coalescing of remote-cache RPCs (the §4 answer to the per-RPC
/// tax): lookups and fills issued to the same cache node close together in
/// time share one MGET/MSET frame, so the fixed per-RPC CPU cost
/// (`rpc_fixed_us`, both message sides, both endpoints) is paid once per
/// frame instead of once per key. **Off by default** — the paper's
/// healthy-path figures assume one RPC per lookup, and the fig2–fig8
/// goldens are byte-identical only while this stays disabled.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BatchingConfig {
    /// Coalescing window in microseconds: a frame opened at `t` departs at
    /// `t + window`, and every RPC for the same (app, node) pair arriving
    /// before departure rides it (members wait for departure, so batching
    /// trades latency for CPU). 0 disables cross-request coalescing;
    /// explicit multi-key serves still batch when `max_batch > 1`.
    pub batch_window_us: f64,
    /// Maximum keys per frame; a full frame departs immediately and the
    /// next request opens a new one. Values ≤ 1 disable batching entirely.
    pub max_batch: u32,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        BatchingConfig {
            batch_window_us: 0.0,
            max_batch: 1,
        }
    }
}

impl BatchingConfig {
    /// Whether any batching (explicit multi-key or windowed) can happen.
    pub fn enabled(&self) -> bool {
        self.max_batch > 1
    }

    /// Whether RPCs from *different* requests may coalesce over time.
    pub fn windowed(&self) -> bool {
        self.enabled() && self.batch_window_us > 0.0
    }

    pub fn window(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.batch_window_us.max(0.0))
    }
}

/// Consistency mode for the in-process L0 hot-key tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum L0Consistency {
    /// Writers invalidate every app server's L0 before acknowledging, so
    /// L0 hits are always fresh — coherence paid for in invalidation CPU.
    InvalidateFirst,
    /// Writers skip the L0; entries expire `stale_after_us` after being
    /// filled, so hits may be stale but never beyond the declared bound.
    ServeStale,
}

/// The in-process L0 hot-key tier (HybridKV-style): a few MB of
/// TinyLFU-admitted, version-invalidated cache *inside* each app server,
/// consulted before the Remote or Linked lookup. The Zipf head is served
/// for one in-process hash probe instead of an RPC (Remote) or a sharded
/// local op (Linked) — the third point on the paper's CPU-tax vs
/// DRAM-duplication curve. **Off by default** (`None` on
/// [`DeploymentConfig::l0`]); the fig2–fig8 goldens are byte-identical
/// only while it stays disabled.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct L0Config {
    /// Hard byte cap per app server (entry overhead included).
    pub bytes_per_server: u64,
    pub consistency: L0Consistency,
    /// Staleness bound in microseconds (serve-stale mode only).
    pub stale_after_us: f64,
    /// CPU for an L0 probe that hits: one in-process hash lookup, no RPC,
    /// no serialization, no shard routing.
    pub hit_us: f64,
    /// CPU to admit a fetched value into the L0 on the fill path.
    pub insert_us: f64,
    /// CPU per app server to apply one write-path invalidation.
    pub invalidate_us: f64,
    /// Mean hot-entry bytes — sizes the TinyLFU sketch.
    pub mean_entry_bytes: u64,
}

impl Default for L0Config {
    fn default() -> Self {
        L0Config {
            bytes_per_server: 4 << 20,
            consistency: L0Consistency::InvalidateFirst,
            stale_after_us: 10_000.0,
            hit_us: 0.15,
            insert_us: 0.3,
            invalidate_us: 0.2,
            mean_entry_bytes: 1_024,
        }
    }
}

impl L0Config {
    /// The `cachekit` parameters for one app server's tier.
    pub fn params(&self) -> cachekit::L0Params {
        cachekit::L0Params {
            capacity_bytes: self.bytes_per_server,
            expected_entries: (self.bytes_per_server / self.mean_entry_bytes.max(1))
                .clamp(64, 1 << 20) as usize,
            mode: match self.consistency {
                L0Consistency::InvalidateFirst => cachekit::L0Mode::InvalidateFirst,
                L0Consistency::ServeStale => cachekit::L0Mode::ServeStale {
                    stale_after_nanos: (self.stale_after_us.max(0.0) * 1_000.0) as u64,
                },
            },
        }
    }

    pub fn serve_stale(&self) -> bool {
        self.consistency == L0Consistency::ServeStale
    }
}

/// How the request path behaves when a cache shard is crashed, partitioned
/// away, or slow: detection timeouts, retries, degraded fallback to storage,
/// and single-flight coalescing of the resulting storage fills.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultToleranceConfig {
    /// Latency charged for one RPC attempt against an unresponsive shard
    /// (the client's per-attempt timeout budget).
    pub attempt_timeout: SimDuration,
    pub retry: RetryPolicy,
    /// End-to-end latency budget per request. Requests that exceed it are
    /// counted as deadline violations, and retrying stops once the budget
    /// is spent.
    pub request_deadline: SimDuration,
    /// Serve reads from storage when the owning cache shard is down
    /// (availability over cache locality). When off, such reads error.
    pub degraded_fallback: bool,
    /// Coalesce concurrent identical storage fills so a cold shard does not
    /// trigger a thundering herd. Off by default: it changes steady-state
    /// SQL counts, and the paper's healthy-path figures assume no coalescing.
    pub single_flight: bool,
}

impl Default for FaultToleranceConfig {
    fn default() -> Self {
        FaultToleranceConfig {
            attempt_timeout: SimDuration::from_millis(2),
            retry: RetryPolicy::default(),
            request_deadline: SimDuration::from_millis(50),
            degraded_fallback: true,
            single_flight: false,
        }
    }
}

/// Full deployment shape.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    pub arch: ArchKind,
    /// Application server count.
    pub app_servers: usize,
    /// Linked-cache capacity per app server, bytes (the paper provisions
    /// 6 GB per app server, §5.1). Ignored by Base/Remote.
    pub linked_cache_bytes_per_server: u64,
    /// Remote cache node count (Remote only).
    pub remote_cache_nodes: usize,
    /// Remote cache capacity per node, bytes.
    pub remote_cache_bytes_per_node: u64,
    /// Non-cache memory provisioned per app server (runtime heap).
    pub app_base_mem_bytes: u64,
    /// Eviction policy for the external caches (LRU in the paper; the
    /// eviction ablation sweeps the rest).
    pub cache_policy: cachekit::PolicyKind,
    /// Time-to-live for LinkedTtl cache entries (bounds staleness).
    pub linked_ttl: SimDuration,
    /// Enable TinyLFU admission on the external caches (scan resistance;
    /// off by default to match the paper's plain-LRU deployments).
    pub cache_admission: bool,
    pub app_cost: AppCostConfig,
    pub cluster: ClusterConfig,
    /// Behaviour under cache-shard faults (retries, deadlines, degraded mode).
    pub fault_tolerance: FaultToleranceConfig,
    /// App-side RPC coalescing for the remote-cache path (default off).
    pub batching: BatchingConfig,
    /// In-process L0 hot-key tier in front of the Remote/Linked lookup
    /// (default `None` = off; see [`L0Config`]).
    pub l0: Option<L0Config>,
    /// Online MRC profiling + cost-aware elastic provisioning (default
    /// off: `decision_interval_secs == 0`). When enabled, the deployment
    /// embeds an [`elastic::ElasticController`] that watches the read key
    /// stream and periodically resizes the external cache tier to the
    /// dollar-minimizing capacity.
    pub elastic: elastic::ElasticConfig,
    /// Cost-aware adaptive TTL control plane (default off:
    /// `decision_interval_secs == 0`). When enabled on an architecture with
    /// [`ArchKind::supports_ttl_plane`], the deployment embeds one
    /// [`elastic::TtlController`] per tenant that learns the hit-ratio-vs-TTL
    /// curve from reference ages and periodically pushes the
    /// dollar-minimizing default TTL into the live caches.
    pub ttl: elastic::TtlConfig,
    /// Deterministic seed for the deployment's internals.
    pub seed: u64,
}

impl DeploymentConfig {
    /// The paper's §5.1 shape: 3 app servers with 6 GB cache each, 3 TiDB +
    /// 3 TiKV pods (15 GB each), remote tier sized like the linked tier.
    pub fn paper(arch: ArchKind) -> Self {
        DeploymentConfig {
            arch,
            app_servers: 3,
            linked_cache_bytes_per_server: 6 << 30,
            remote_cache_nodes: 3,
            remote_cache_bytes_per_node: 6 << 30,
            app_base_mem_bytes: 2 << 30,
            cache_policy: cachekit::PolicyKind::Lru,
            linked_ttl: SimDuration::from_secs(1),
            cache_admission: false,
            app_cost: AppCostConfig::default(),
            cluster: ClusterConfig::default(),
            fault_tolerance: FaultToleranceConfig::default(),
            batching: BatchingConfig::default(),
            l0: None,
            elastic: elastic::ElasticConfig::default(),
            ttl: elastic::TtlConfig::default(),
            seed: 42,
        }
    }

    /// A small shape for unit tests: tiny caches force evictions, and the
    /// fixed memory footprint shrinks so that per-request compute (the
    /// quantity under test) dominates total cost as it does in the paper's
    /// high-QPS regime.
    pub fn test_small(arch: ArchKind) -> Self {
        let mut cfg = Self::paper(arch);
        cfg.app_servers = 2;
        cfg.linked_cache_bytes_per_server = 1 << 20;
        cfg.remote_cache_nodes = 2;
        cfg.remote_cache_bytes_per_node = 1 << 20;
        cfg.app_base_mem_bytes = 256 << 20;
        cfg.cluster.regions = 4;
        cfg.cluster.block_cache_bytes = 4 << 20;
        cfg.cluster.base_mem_bytes = 256 << 20;
        cfg.cluster.frontend_mem_bytes = 256 << 20;
        cfg
    }

    /// Total linked-cache capacity across the app tier.
    pub fn total_linked_bytes(&self) -> u64 {
        if self.arch.has_linked_cache() {
            self.linked_cache_bytes_per_server * self.app_servers as u64
        } else {
            0
        }
    }

    /// Total remote-cache capacity.
    pub fn total_remote_bytes(&self) -> u64 {
        if self.arch == ArchKind::Remote {
            self.remote_cache_bytes_per_node * self.remote_cache_nodes as u64
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_properties() {
        assert!(!ArchKind::Base.has_linked_cache());
        assert!(ArchKind::Linked.has_linked_cache());
        assert!(ArchKind::LinkedVersion.is_consistent());
        assert!(ArchKind::LeaseOwned.is_consistent());
        assert!(!ArchKind::Linked.is_consistent());
        assert!(ArchKind::Base.is_consistent(), "reading storage is linearizable");
        assert!(!ArchKind::LinkedTtl.is_consistent());
        assert!(ArchKind::LinkedTtl.has_linked_cache());
        assert!(!ArchKind::LinkedTtl.linked_cache_is_sharded());
        assert!(ArchKind::Linked.linked_cache_is_sharded());
        assert_eq!(ArchKind::PAPER.len(), 4);
    }

    #[test]
    fn cost_helpers_scale_with_bytes() {
        let c = AppCostConfig::default();
        assert!(c.serialize_cost(1 << 20) > c.serialize_cost(1 << 10));
        assert!(c.rpc_side_cost(0) >= SimDuration::from_micros(8));
        assert!(c.client_reply_cost(1_000_000) > c.client_reply_cost(0));
    }

    #[test]
    fn paper_shape_matches_section_5_1() {
        let d = DeploymentConfig::paper(ArchKind::Linked);
        assert_eq!(d.app_servers, 3);
        assert_eq!(d.linked_cache_bytes_per_server, 6 << 30);
        assert_eq!(d.cluster.frontends, 3);
        assert_eq!(d.cluster.storage_nodes, 3);
        assert_eq!(d.total_linked_bytes(), 18 << 30);
        assert_eq!(d.total_remote_bytes(), 0);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 5,
            base_backoff: SimDuration::from_millis(1),
            max_backoff: SimDuration::from_millis(4),
            jitter: 0.0,
        };
        assert_eq!(p.backoff(0, 0.0), SimDuration::from_millis(1));
        assert_eq!(p.backoff(1, 0.0), SimDuration::from_millis(2));
        assert_eq!(p.backoff(2, 0.0), SimDuration::from_millis(4));
        assert_eq!(p.backoff(3, 0.0), SimDuration::from_millis(4), "capped");
        // Jitter only ever lengthens the wait, bounded by the fraction.
        let j = RetryPolicy {
            jitter: 0.5,
            ..p
        };
        let b = j.backoff(0, 0.999);
        assert!(b >= SimDuration::from_millis(1));
        assert!(b < SimDuration::from_micros(1_500) + SimDuration::from_micros(1));
    }

    #[test]
    fn jittered_backoff_never_exceeds_max() {
        // Regression: jitter used to be applied after the clamp, so a retry
        // at the cap could wait up to (1 + jitter)× the configured maximum.
        let p = RetryPolicy {
            max_retries: 8,
            base_backoff: SimDuration::from_millis(1),
            max_backoff: SimDuration::from_millis(4),
            jitter: 0.5,
        };
        for attempt in 0..12 {
            for unit in [0.0, 0.25, 0.5, 0.75, 0.999] {
                let b = p.backoff(attempt, unit);
                assert!(
                    b <= p.max_backoff,
                    "attempt {attempt} unit {unit}: {b:?} exceeds max {:?}",
                    p.max_backoff
                );
            }
        }
        // At the cap, jitter has nothing left to stretch; below it, jitter
        // still applies in full.
        assert_eq!(p.backoff(2, 0.999), p.max_backoff);
        assert_eq!(
            p.backoff(0, 0.5),
            SimDuration::from_secs_f64(0.001 * 1.25)
        );
    }

    #[test]
    fn fault_tolerance_defaults_preserve_healthy_path() {
        let ft = FaultToleranceConfig::default();
        assert!(ft.degraded_fallback);
        assert!(!ft.single_flight, "coalescing must be opt-in");
        assert!(ft.request_deadline > ft.attempt_timeout);
    }

    #[test]
    fn batching_defaults_off_and_amortizes_when_on() {
        let b = BatchingConfig::default();
        assert!(!b.enabled(), "batching must be opt-in: goldens assume one RPC per lookup");
        assert!(!b.windowed());
        let on = BatchingConfig {
            batch_window_us: 200.0,
            max_batch: 16,
        };
        assert!(on.enabled() && on.windowed());
        assert_eq!(on.window(), SimDuration::from_micros(200));
        // Explicit multi-key batching without a window is still batching.
        let explicit = BatchingConfig {
            batch_window_us: 0.0,
            max_batch: 8,
        };
        assert!(explicit.enabled() && !explicit.windowed());
        // The per-key marginal must undercut the fixed per-RPC cost, or
        // batching would amortize nothing.
        let c = AppCostConfig::default();
        assert!(c.rpc_batched_side_cost(1024) < c.rpc_side_cost(1024));
    }

    #[test]
    fn l0_defaults_off_and_maps_to_cachekit_params() {
        // Off by default everywhere: goldens are byte-identical only while
        // the L0 tier stays disabled.
        assert!(DeploymentConfig::paper(ArchKind::Remote).l0.is_none());
        assert!(DeploymentConfig::test_small(ArchKind::Linked).l0.is_none());

        let cfg = L0Config::default();
        assert!(!cfg.serve_stale());
        let p = cfg.params();
        assert_eq!(p.capacity_bytes, 4 << 20);
        assert!(matches!(p.mode, cachekit::L0Mode::InvalidateFirst));
        // Sketch sized to capacity / mean entry.
        assert_eq!(p.expected_entries, (4 << 20) / 1_024);

        let stale = L0Config {
            consistency: L0Consistency::ServeStale,
            stale_after_us: 1_000.0,
            ..L0Config::default()
        };
        assert!(stale.serve_stale());
        assert!(matches!(
            stale.params().mode,
            cachekit::L0Mode::ServeStale {
                stale_after_nanos: 1_000_000
            }
        ));
        // An L0 probe must be far cheaper than the ops it short-circuits.
        assert!(cfg.hit_us < AppCostConfig::default().local_cache_op_us);
    }

    #[test]
    fn elastic_defaults_off() {
        // The fig2–fig8 goldens are byte-identical only while the elastic
        // control plane stays disabled by default.
        let d = DeploymentConfig::paper(ArchKind::Linked);
        assert!(!d.elastic.enabled());
        let t = DeploymentConfig::test_small(ArchKind::Remote);
        assert!(!t.elastic.enabled());
    }

    #[test]
    fn ttl_defaults_off() {
        // Same contract as elastic/L0: every pre-existing golden is
        // byte-identical only while the TTL control plane stays disabled.
        let d = DeploymentConfig::paper(ArchKind::Remote);
        assert!(!d.ttl.enabled());
        let t = DeploymentConfig::test_small(ArchKind::Linked);
        assert!(!t.ttl.enabled());
        // Plane gating mirrors supports_l0.
        assert!(ArchKind::Remote.supports_ttl_plane());
        assert!(ArchKind::Linked.supports_ttl_plane());
        assert!(!ArchKind::Base.supports_ttl_plane());
        assert!(!ArchKind::LinkedTtl.supports_ttl_plane());
        assert!(!ArchKind::LinkedVersion.supports_ttl_plane());
        // Sweep reclamation must be cheaper than a policy-touching cache op.
        let c = AppCostConfig::default();
        assert!(c.expiry_sweep_entry_us < c.local_cache_op_us);
    }

    #[test]
    fn capacity_accessors_respect_arch() {
        let base = DeploymentConfig::paper(ArchKind::Base);
        assert_eq!(base.total_linked_bytes(), 0);
        let remote = DeploymentConfig::paper(ArchKind::Remote);
        assert_eq!(remote.total_remote_bytes(), 18 << 30);
        assert_eq!(remote.total_linked_bytes(), 0);
    }
}
