//! Consistency machinery: a linearizability checker and the paper's
//! Figure 8 delayed-writes scenario — hazard and fix.
//!
//! §6 describes the hazard: (1) an application sends a write to storage but
//! the write is *delayed*; (2) a different cache instance — after
//! resharding or a node failure — reads the current (old) value from
//! storage and caches it; (3) the delayed write finally commits, leaving
//! cache and storage permanently out of sync, even under ownership leases.
//!
//! [`delayed_write_scenario`] reproduces this end to end on the real
//! substrate (storage with Raft, linked cache shards, the auto-sharder),
//! and shows that epoch fencing — every write carries the lease epoch it
//! was issued under, and storage-side admission rejects stale epochs —
//! restores linearizability. [`check_linearizable`] is the judge: a
//! Wing & Gong-style search over single-register histories.

use crate::lease::AutoSharder;
use serde::{Deserialize, Serialize};
use simnet::{SimDuration, SimTime};
use storekit::cluster::{ClusterConfig, SqlCluster};
use storekit::error::StoreResult;
use storekit::schema::Catalog;
use storekit::value::Datum;

// ---------------------------------------------------------------------------
// Linearizability checking
// ---------------------------------------------------------------------------

/// One completed operation on a single register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryOp {
    pub kind: OpKind,
    /// Value written, or value observed by a read (`None` = key absent).
    pub value: Option<u64>,
    pub invoked: SimTime,
    pub completed: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    Write,
    Read,
}

impl HistoryOp {
    pub fn write(value: u64, invoked: SimTime, completed: SimTime) -> Self {
        HistoryOp {
            kind: OpKind::Write,
            value: Some(value),
            invoked,
            completed,
        }
    }

    pub fn read(value: Option<u64>, invoked: SimTime, completed: SimTime) -> Self {
        HistoryOp {
            kind: OpKind::Read,
            value,
            invoked,
            completed,
        }
    }
}

/// Is this single-register history linearizable, starting from an initial
/// register value of `initial`?
///
/// Exhaustive search with pruning (histories here are small — tens of ops):
/// at each step, any not-yet-linearized operation whose invocation precedes
/// the completion of every other pending operation *may* be next; reads must
/// observe the current register value.
pub fn check_linearizable(history: &[HistoryOp], initial: Option<u64>) -> bool {
    fn search(remaining: &mut Vec<HistoryOp>, register: Option<u64>) -> bool {
        if remaining.is_empty() {
            return true;
        }
        // An op can be linearized next only if no other remaining op
        // completed before it was invoked (real-time order).
        let min_completion = remaining
            .iter()
            .map(|o| o.completed)
            .min()
            .expect("non-empty");
        for i in 0..remaining.len() {
            let op = remaining[i];
            if op.invoked > min_completion {
                continue;
            }
            let next_register = match op.kind {
                OpKind::Write => op.value,
                OpKind::Read => {
                    if op.value != register {
                        continue;
                    }
                    register
                }
            };
            let removed = remaining.remove(i);
            if search(remaining, next_register) {
                remaining.insert(i, removed);
                return true;
            }
            remaining.insert(i, removed);
        }
        false
    }
    let mut ops = history.to_vec();
    search(&mut ops, initial)
}

// ---------------------------------------------------------------------------
// The Figure 8 scenario
// ---------------------------------------------------------------------------

/// What the scenario produced.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// The operation history observed by clients.
    pub history: Vec<HistoryOp>,
    /// Whether the delayed write was admitted by storage.
    pub delayed_write_admitted: bool,
    /// The value the (new-owner) cache serves at the end.
    pub final_cache_value: Option<u64>,
    /// The value storage holds at the end.
    pub final_storage_value: Option<u64>,
    pub linearizable: bool,
}

fn scenario_catalog() -> Catalog {
    use storekit::schema::{ColumnDef, ColumnType, TableSchema};
    let mut c = Catalog::new();
    c.add(
        TableSchema::new(
            "kv",
            vec![
                ColumnDef::new("k", ColumnType::Int),
                ColumnDef::new("v", ColumnType::Int),
            ],
            "k",
            &[],
        )
        .expect("static schema"),
    );
    c
}

/// Reproduce Figure 8 on the real substrate.
///
/// Timeline (all on the virtual clock):
///
/// 1. `t=0`  — key `k` holds `1`; owner A caches it.
/// 2. `t=1ms` — a client asks A to write `2`; A stamps the write with its
///    current lease epoch and sends it to storage, where it is *delayed*
///    (prepared but not committed — e.g. stuck in a network queue).
/// 3. `t=2ms` — the auto-sharder transfers ownership of `k`'s range to B
///    (epoch bump). B warms its cache by reading storage: it sees `1`.
/// 4. `t=3ms` — the delayed write arrives at storage.
///    * `fencing = false`: storage admits it. Storage now holds `2`, B's
///      cache holds `1` — silent divergence, and the resulting history is
///      **not linearizable** (a later read through B returns `1` after the
///      write of `2` completed).
///    * `fencing = true`: storage rejects the stale epoch; the write fails
///      (the client sees an error and may retry through B). Cache and
///      storage agree; the history of *completed* operations stays
///      linearizable.
/// 5. `t=4ms` — a client reads through B's cache.
pub fn delayed_write_scenario(fencing: bool) -> StoreResult<ScenarioOutcome> {
    let ms = |m: u64| SimTime::from_nanos(m * 1_000_000);
    let mut cluster = SqlCluster::new(scenario_catalog(), ClusterConfig::default());
    let mut sharder = AutoSharder::new(2, SimDuration::from_secs(10), ms(0));
    let key_bytes = b"kv/k1".to_vec();
    let shard = sharder.owner(&key_bytes);
    let mut history = Vec::new();

    // t=0: initial state, committed and cached by owner A.
    cluster.execute("INSERT INTO kv VALUES (1, 1)", &[], ms(0))?;
    history.push(HistoryOp::write(1, ms(0), ms(0)));

    // t=1ms: client write of 2 through A; stamped with A's epoch; delayed.
    let issue_epoch = sharder.epoch(shard);
    let delayed = cluster.begin_delayed_write(
        "UPDATE kv SET v = ? WHERE k = 1",
        &[Datum::Int(2)],
        ms(1),
    )?;

    // t=2ms: ownership transfer A → B (epoch bump). A drops its range and
    // is out of the picture from here on.
    sharder.transfer(shard, ms(2));

    // B warms its cache from storage: reads the current committed value.
    let read = cluster.execute("SELECT v FROM kv WHERE k = 1", &[], ms(2))?;
    let mut cache_b: Option<u64> = read.rows.first().and_then(|r| r.get(0)).and_then(|d| d.as_int()).map(|v| v as u64);

    // t=3ms: the delayed write finally reaches storage.
    let admitted = if fencing && !sharder.admit_write(shard, issue_epoch) {
        // Fenced: storage rejects; the client's write FAILS (it never
        // completes successfully, so it does not enter the history of
        // completed operations).
        false
    } else {
        cluster.commit_delayed(delayed, ms(3))?;
        history.push(HistoryOp::write(2, ms(1), ms(3)));
        true
    };

    // t=4ms: a client reads through the new owner B's cache (B trusts its
    // lease, so it serves from cache without a storage round trip).
    history.push(HistoryOp::read(cache_b, ms(4), ms(4)));

    // Ground truth in storage.
    let stored = cluster.execute("SELECT v FROM kv WHERE k = 1", &[], ms(5))?;
    let final_storage_value = stored
        .rows
        .first()
        .and_then(|r| r.get(0))
        .and_then(|d| d.as_int())
        .map(|v| v as u64);

    // If B's cache were invalidation-driven it would still say 1; it only
    // converges if something refreshes it. Nothing does — that is the bug.
    if !admitted {
        // With fencing, cache and storage already agree (both old value);
        // a retried write through B would go through cleanly — do it, to
        // show the system makes progress.
        let retry = cluster.execute("UPDATE kv SET v = ? WHERE k = 1", &[Datum::Int(2)], ms(6))?;
        debug_assert!(retry.write_version.is_some());
        cache_b = Some(2); // B, the owner, updates its own cache on write.
        history.push(HistoryOp::write(2, ms(6), ms(6)));
        history.push(HistoryOp::read(cache_b, ms(7), ms(7)));
    }

    let final_storage_value = if admitted {
        final_storage_value
    } else {
        let stored = cluster.execute("SELECT v FROM kv WHERE k = 1", &[], ms(8))?;
        stored
            .rows
            .first()
            .and_then(|r| r.get(0))
            .and_then(|d| d.as_int())
            .map(|v| v as u64)
    };

    Ok(ScenarioOutcome {
        linearizable: check_linearizable(&history, None),
        history,
        delayed_write_admitted: admitted,
        final_cache_value: cache_b,
        final_storage_value,
    })
}

// ---------------------------------------------------------------------------
// Event-driven variant
// ---------------------------------------------------------------------------

/// World state for the discrete-event variant of the scenario.
struct ScenarioWorld {
    cluster: SqlCluster,
    sharder: AutoSharder,
    shard: u32,
    issue_epoch: u64,
    fencing: bool,
    delayed: Option<storekit::cluster::DelayedWrite>,
    cache_b: Option<u64>,
    history: Vec<HistoryOp>,
    delayed_write_admitted: bool,
}

/// The same Figure 8 timeline, driven through the [`simnet::Sim`] event
/// kernel instead of straight-line code: each step is a scheduled event, so
/// reordering experiments (e.g. "what if the transfer lands *after* the
/// write?") are one `schedule_at` away. Asserted equivalent to
/// [`delayed_write_scenario`] by tests.
pub fn delayed_write_scenario_des(fencing: bool) -> StoreResult<ScenarioOutcome> {
    use simnet::Sim;
    let ms = |m: u64| SimTime::from_nanos(m * 1_000_000);

    let mut cluster = SqlCluster::new(scenario_catalog(), ClusterConfig::default());
    cluster.execute("INSERT INTO kv VALUES (1, 1)", &[], ms(0))?;
    let sharder = AutoSharder::new(2, SimDuration::from_secs(10), ms(0));
    let shard = sharder.owner(b"kv/k1");
    let issue_epoch = sharder.epoch(shard);

    let mut world = ScenarioWorld {
        cluster,
        sharder,
        shard,
        issue_epoch,
        fencing,
        delayed: None,
        cache_b: None,
        history: vec![HistoryOp::write(1, ms(0), ms(0))],
        delayed_write_admitted: false,
    };
    let mut sim: Sim<ScenarioWorld> = Sim::new(1);

    // t=1ms: owner A issues the write; it stalls in flight.
    sim.schedule_at(ms(1), |w: &mut ScenarioWorld, s| {
        let dw = w
            .cluster
            .begin_delayed_write("UPDATE kv SET v = ? WHERE k = 1", &[Datum::Int(2)], s.now())
            .expect("prepare delayed write");
        w.delayed = Some(dw);
    });

    // t=2ms: ownership transfer; new owner B warms its cache from storage.
    sim.schedule_at(ms(2), |w: &mut ScenarioWorld, s| {
        w.sharder.transfer(w.shard, s.now());
        let read = w
            .cluster
            .execute("SELECT v FROM kv WHERE k = 1", &[], s.now())
            .expect("warm read");
        w.cache_b = read
            .rows
            .first()
            .and_then(|r| r.get(0))
            .and_then(|d| d.as_int())
            .map(|v| v as u64);
    });

    // t=3ms: the delayed write arrives at storage (fenced or not).
    sim.schedule_at(ms(3), |w: &mut ScenarioWorld, s| {
        let dw = w.delayed.take().expect("write was prepared");
        if w.fencing && !w.sharder.admit_write(w.shard, w.issue_epoch) {
            w.delayed_write_admitted = false;
        } else {
            w.cluster.commit_delayed(dw, s.now()).expect("commit");
            w.history.push(HistoryOp::write(2, SimTime::from_nanos(1_000_000), s.now()));
            w.delayed_write_admitted = true;
        }
    });

    // t=4ms: a client reads through B's cache (lease-trusting).
    sim.schedule_at(ms(4), |w: &mut ScenarioWorld, s| {
        w.history.push(HistoryOp::read(w.cache_b, s.now(), s.now()));
    });

    // t=6ms: if the write was fenced, the client retries through B.
    sim.schedule_at(ms(6), |w: &mut ScenarioWorld, s| {
        if !w.delayed_write_admitted {
            w.cluster
                .execute("UPDATE kv SET v = ? WHERE k = 1", &[Datum::Int(2)], s.now())
                .expect("retry");
            w.cache_b = Some(2);
            w.history.push(HistoryOp::write(2, s.now(), s.now()));
            let at = s.now() + SimDuration::from_millis(1);
            s.schedule_at(at, |w: &mut ScenarioWorld, s| {
                w.history.push(HistoryOp::read(w.cache_b, s.now(), s.now()));
            });
        }
    });

    sim.run(&mut world);

    let stored = world
        .cluster
        .execute("SELECT v FROM kv WHERE k = 1", &[], ms(10))?;
    let final_storage_value = stored
        .rows
        .first()
        .and_then(|r| r.get(0))
        .and_then(|d| d.as_int())
        .map(|v| v as u64);

    Ok(ScenarioOutcome {
        linearizable: check_linearizable(&world.history, None),
        history: world.history,
        delayed_write_admitted: world.delayed_write_admitted,
        final_cache_value: world.cache_b,
        final_storage_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let h = vec![
            HistoryOp::write(1, t(0), t(1)),
            HistoryOp::read(Some(1), t(2), t(3)),
            HistoryOp::write(2, t(4), t(5)),
            HistoryOp::read(Some(2), t(6), t(7)),
        ];
        assert!(check_linearizable(&h, None));
    }

    #[test]
    fn stale_read_after_write_is_not_linearizable() {
        let h = vec![
            HistoryOp::write(1, t(0), t(1)),
            HistoryOp::write(2, t(2), t(3)),
            HistoryOp::read(Some(1), t(4), t(5)), // observes overwritten value
        ];
        assert!(!check_linearizable(&h, None));
    }

    #[test]
    fn concurrent_ops_may_reorder() {
        // Write of 2 overlaps the read; the read may see either 1 or 2.
        let base = vec![HistoryOp::write(1, t(0), t(1))];
        for observed in [1u64, 2] {
            let mut h = base.clone();
            h.push(HistoryOp::write(2, t(2), t(6)));
            h.push(HistoryOp::read(Some(observed), t(3), t(5)));
            assert!(check_linearizable(&h, None), "observed {observed}");
        }
        // But it cannot see a never-written value.
        let mut h = base.clone();
        h.push(HistoryOp::write(2, t(2), t(6)));
        h.push(HistoryOp::read(Some(9), t(3), t(5)));
        assert!(!check_linearizable(&h, None));
    }

    #[test]
    fn read_of_initial_value_requires_it() {
        let h = vec![HistoryOp::read(Some(7), t(0), t(1))];
        assert!(check_linearizable(&h, Some(7)));
        assert!(!check_linearizable(&h, None));
        let h = vec![HistoryOp::read(None, t(0), t(1))];
        assert!(check_linearizable(&h, None));
    }

    #[test]
    fn real_time_order_is_enforced() {
        // Two sequential reads must not "swap" across a completed write.
        let h = vec![
            HistoryOp::write(1, t(0), t(1)),
            HistoryOp::read(Some(1), t(10), t(11)),
            HistoryOp::write(2, t(12), t(13)),
            HistoryOp::read(Some(1), t(20), t(21)), // strictly after write 2
        ];
        assert!(!check_linearizable(&h, None));
    }

    #[test]
    fn figure8_without_fencing_violates_linearizability() {
        let outcome = delayed_write_scenario(false).unwrap();
        assert!(outcome.delayed_write_admitted);
        assert_eq!(outcome.final_storage_value, Some(2), "write landed");
        assert_eq!(outcome.final_cache_value, Some(1), "cache is stale");
        assert!(
            !outcome.linearizable,
            "delayed write must break linearizability: {:?}",
            outcome.history
        );
    }

    #[test]
    fn des_variant_agrees_with_straight_line_version() {
        for fencing in [false, true] {
            let a = delayed_write_scenario(fencing).unwrap();
            let b = delayed_write_scenario_des(fencing).unwrap();
            assert_eq!(a.delayed_write_admitted, b.delayed_write_admitted, "fencing={fencing}");
            assert_eq!(a.final_cache_value, b.final_cache_value, "fencing={fencing}");
            assert_eq!(a.final_storage_value, b.final_storage_value, "fencing={fencing}");
            assert_eq!(a.linearizable, b.linearizable, "fencing={fencing}");
        }
    }

    #[test]
    fn figure8_with_fencing_stays_linearizable() {
        let outcome = delayed_write_scenario(true).unwrap();
        assert!(!outcome.delayed_write_admitted, "stale epoch fenced out");
        assert_eq!(
            outcome.final_cache_value, outcome.final_storage_value,
            "cache and storage agree"
        );
        assert!(
            outcome.linearizable,
            "fenced history must linearize: {:?}",
            outcome.history
        );
    }
}
