//! Allocation regression gate for the zero-alloc serve path.
//!
//! The PR-8 overhaul removed every steady-state heap allocation from the
//! cache-hit serve path: keys are interned once (scratch-buffer reuse +
//! dense-id equality), cache lookups are FxHash map hits, and outcomes are
//! plain structs. This test pins that property with a counting
//! `#[global_allocator]`: after warmup, N cache-hit reads must perform
//! exactly **zero** allocations. Any future change that sneaks a `Vec`,
//! `format!`, or boxed closure back into the hit path fails here with the
//! allocation count, not as a silent throughput regression.
//!
//! The gate counts *allocations* (not frees), is enabled only around the
//! measured window, and the test binary contains this test alone so no
//! sibling thread can pollute the counter.

use dcache::deployment::{kv_catalog, Deployment};
use dcache::{ArchKind, DeploymentConfig};
use simnet::{SimDuration, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use storekit::value::Datum;

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const KEYS: i64 = 32;

fn warmed_deployment(arch: ArchKind) -> Deployment {
    let mut d = Deployment::new(DeploymentConfig::test_small(arch), kv_catalog("kv"));
    d.cluster
        .bulk_load(
            "kv",
            (0..KEYS).map(|k| vec![Datum::Int(k), Datum::Payload { len: 256, seed: 3 }]),
        )
        .unwrap();
    // Two passes: the first faults every key into cache (interning it and
    // growing every map to steady-state size), the second confirms hits.
    let mut now = SimTime::ZERO;
    for pass in 0..2 {
        for k in 0..KEYS {
            now += SimDuration::from_micros(50);
            let out = d.serve_kv_read("kv", k, now).expect("warm read");
            if pass == 1 {
                assert!(out.cache_hit, "warmup pass 2 must hit ({arch:?}, key {k})");
            }
        }
    }
    d
}

/// Count allocations across `rounds` full sweeps of cache-hit reads.
fn count_hit_path_allocs(d: &mut Deployment, rounds: usize) -> u64 {
    let mut now = SimTime::from_nanos(1_000_000_000);
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..rounds {
        for k in 0..KEYS {
            now += SimDuration::from_micros(50);
            let out = d.serve_kv_read("kv", k, now).expect("hit read");
            assert!(out.cache_hit, "measured read must be a cache hit");
        }
    }
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_cache_hit_reads_allocate_nothing() {
    // Linked: the paper's cheapest path (in-process cache hit) and the one
    // fig_scale hammers hardest. Remote: hit served by a cache-tier node.
    for arch in [ArchKind::Linked, ArchKind::Remote] {
        let mut d = warmed_deployment(arch);
        let requests = 50 * KEYS as u64;
        let allocs = count_hit_path_allocs(&mut d, 50);
        assert_eq!(
            allocs, 0,
            "{arch:?} hit path allocated {allocs} times over {requests} requests \
             (expected 0 steady-state allocations per request)"
        );
    }
}
