//! Batching-invariance properties: splitting a multi-key read into frames
//! — any frames — must never change what the cache returns or stores, and
//! must change total CPU by *exactly* the amortized-RPC accounting
//! identity. The plain `#[test]` cases below enumerate deterministic
//! splits (including adversarial ones from a seeded LCG) so they run under
//! the offline test harness; the `proptest!` block re-states the property
//! for environments with a full proptest.

// The offline `proptest` stub swallows `proptest!` blocks, leaving the
// strategy helpers (and some imports) unreferenced in offline builds.
#![allow(dead_code, unused_imports)]
use dcache::deployment::{batch_counters, kv_catalog, Deployment};
use dcache::{ArchKind, BatchingConfig, DeploymentConfig, ServeOutcome};
use proptest::prelude::*;
use simnet::{SimDuration, SimTime};
use storekit::value::Datum;

const KEYS: i64 = 40;

fn deployment(max_batch: u32) -> Deployment {
    let mut cfg = DeploymentConfig::test_small(ArchKind::Remote);
    cfg.batching = BatchingConfig {
        batch_window_us: 0.0, // explicit batches only; per-call reads stay unbatched
        max_batch,
    };
    let mut d = Deployment::new(cfg, kv_catalog("kv"));
    d.cluster
        .bulk_load(
            "kv",
            (0..KEYS).map(|k| vec![Datum::Int(k), Datum::Payload { len: 256, seed: 0 }]),
        )
        .unwrap();
    d
}

/// app + remote-cache CPU, in exact nanoseconds.
fn cpu_ns(d: &Deployment) -> u64 {
    d.app_cpu_total().total().as_nanos() + d.cache_cpu_total().total().as_nanos()
}

/// Exact per-follower saving: the fixed per-RPC cost minus the per-key
/// marginal, on both message sides of both meters (app + cache node).
fn saved_per_follower_ns(d: &Deployment) -> u64 {
    let cost = d.config.app_cost;
    SimDuration::from_micros_f64(4.0 * (cost.rpc_fixed_us - cost.rpc_batched_key_us)).as_nanos()
}

/// Serve `keys` through `serve_kv_read_batch` in the given frame splits
/// (slices of `keys`), returning outcomes in key order.
fn serve_split(d: &mut Deployment, splits: &[Vec<i64>], at: SimTime) -> Vec<ServeOutcome> {
    let mut outs = Vec::new();
    for frame in splits {
        outs.extend(d.serve_kv_read_batch("kv", frame, at).unwrap());
    }
    outs
}

/// Compare semantic outcome fields; latency is excluded on purpose —
/// followers' cheaper RPC legs legitimately shorten it.
fn assert_same_outcomes(a: &[ServeOutcome], b: &[ServeOutcome]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.cache_hit, y.cache_hit);
        assert_eq!(x.bytes, y.bytes);
        assert_eq!(x.seed, y.seed);
        assert_eq!(x.version, y.version);
        assert_eq!(x.not_found, y.not_found);
        assert_eq!(x.degraded, y.degraded);
    }
}

/// The invariant: against a sequential (batching-off) baseline over the
/// same keys, a split into frames leaves every outcome identical and
/// reduces CPU by exactly `followers × saved_per_follower`.
fn check_split(splits: &[Vec<i64>]) {
    let keys: Vec<i64> = splits.iter().flatten().copied().collect();

    let mut seq = deployment(1); // max_batch 1 ⇒ batching disabled
    let mut bat = deployment(64);

    // Identical warmup so both sides hit the same cache state.
    for (i, &k) in keys.iter().enumerate() {
        let at = SimTime::from_nanos((i as u64 + 1) * 1_000_000);
        seq.serve_kv_read("kv", k, at).unwrap();
        bat.serve_kv_read("kv", k, at).unwrap();
    }
    seq.reset_metrics();
    bat.reset_metrics();

    let at = SimTime::from_nanos(1_000_000_000);
    let seq_outs: Vec<ServeOutcome> = keys
        .iter()
        .map(|&k| seq.serve_kv_read("kv", k, at).unwrap())
        .collect();
    let bat_outs = serve_split(&mut bat, splits, at);

    assert_same_outcomes(&seq_outs, &bat_outs);

    let frames = bat.metrics.counter_value(batch_counters::RPC_BATCHES);
    let carried = bat.metrics.counter_value(batch_counters::BATCHED_RPC_KEYS);
    assert_eq!(carried, keys.len() as u64, "every key rides exactly one frame");
    let followers = carried - frames;
    assert_eq!(
        cpu_ns(&seq) - cpu_ns(&bat),
        followers * saved_per_follower_ns(&bat),
        "CPU must differ by exactly the amortized-RPC constant per follower"
    );
    // The histogram accounts for every key exactly once.
    let histo: u64 = bat.batch_size_counts.iter().map(|(&s, &c)| s as u64 * c).sum();
    assert_eq!(histo, carried);
}

#[test]
fn singleton_frames_match_sequential_with_zero_savings() {
    let splits: Vec<Vec<i64>> = (0..KEYS).map(|k| vec![k]).collect();
    check_split(&splits);
}

#[test]
fn one_big_frame_matches_sequential() {
    check_split(&[(0..KEYS).collect::<Vec<i64>>()]);
}

#[test]
fn uneven_frames_match_sequential() {
    check_split(&[
        (0..3).collect(),
        (3..4).collect(),
        (4..17).collect(),
        (17..40).collect(),
    ]);
}

#[test]
fn lcg_random_splits_match_sequential() {
    // A few dozen adversarial splits from a deterministic LCG: random frame
    // boundaries, shuffled key order, duplicate keys across frames.
    let mut state = 0x2545f4914f6cdd1du64;
    let mut rng = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for _case in 0..24 {
        // Shuffled key list (Fisher–Yates with the LCG), possibly with dups.
        let mut keys: Vec<i64> = (0..KEYS).collect();
        for i in (1..keys.len()).rev() {
            keys.swap(i, rng() % (i + 1));
        }
        if rng() % 3 == 0 {
            let dup = keys[rng() % keys.len()];
            keys.push(dup);
        }
        // Random frame boundaries.
        let mut splits: Vec<Vec<i64>> = Vec::new();
        let mut rest = keys.as_slice();
        while !rest.is_empty() {
            let take = (rng() % 9 + 1).min(rest.len());
            splits.push(rest[..take].to_vec());
            rest = &rest[take..];
        }
        check_split(&splits);
    }
}

#[test]
fn batch_cap_splits_oversized_frames() {
    // A frame larger than max_batch must be chunked, never over-filled.
    let mut d = deployment(8);
    for k in 0..KEYS {
        d.serve_kv_read("kv", k, SimTime::from_nanos((k as u64 + 1) * 1_000_000))
            .unwrap();
    }
    d.reset_metrics();
    let keys: Vec<i64> = (0..KEYS).collect();
    let outs = d
        .serve_kv_read_batch("kv", &keys, SimTime::from_nanos(1_000_000_000))
        .unwrap();
    assert!(outs.iter().all(|o| o.cache_hit));
    assert!(
        d.batch_size_counts.keys().all(|&s| s <= 8),
        "no frame may exceed the cap: {:?}",
        d.batch_size_counts
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The same invariant over arbitrary frame splits (runs where the full
    /// proptest crate is available; compile-checked offline).
    #[test]
    fn any_split_matches_sequential(
        sizes in proptest::collection::vec(1usize..12, 1..12),
    ) {
        let mut splits = Vec::new();
        let mut next = 0i64;
        for s in sizes {
            let end = (next + s as i64).min(KEYS);
            if next >= end {
                break;
            }
            splits.push((next..end).collect::<Vec<i64>>());
            next = end;
        }
        if !splits.is_empty() {
            check_split(&splits);
        }
    }
}
