//! Trace-context propagation through the fault-tolerant request path.
//!
//! The invariant under test: a request is ONE trace, whatever the fabric
//! does to it. A retried cache RPC shows up as N `cache.rpc_attempt` spans
//! (attempt 0..N-1) under a single trace id; a degraded read adds a
//! `read.degraded` span to the same trace; and arming the tracer never
//! changes what the simulator computes.

use dcache::experiment::{run_kv_experiment, run_kv_experiment_with_telemetry, KvExperimentConfig};
use dcache::{ArchKind, DeploymentConfig};
use simnet::{FaultSchedule, NodeId, SimDuration, SimTime};
use std::collections::BTreeMap;
use telemetry::{SpanRecord, SpanStatus};
use workloads::{KvWorkloadConfig, SizeDist};

const SEED: u64 = 7;
const WARMUP: u64 = 800;
const MEASURED: u64 = 1_200;

fn traced_cfg(arch: ArchKind) -> KvExperimentConfig {
    KvExperimentConfig {
        deployment: DeploymentConfig::test_small(arch),
        workload: KvWorkloadConfig {
            keys: 500,
            alpha: 1.2,
            read_ratio: 0.9,
            sizes: SizeDist::Fixed(1_000),
            seed: SEED,
            churn_period: None,
        },
        qps: 50_000.0,
        warmup_requests: WARMUP,
        requests: MEASURED,
        prewarm: false,
        crash_leaders_at_request: None,
        cache_fault_schedule: None,
        trace_sample_every: Some(1),
        diurnal: None,
        observability: None,
        tenants: None,
        pricing: Default::default(),
    }
}

/// Crash every remote cache shard for a window inside the measured phase.
fn crashed_cfg() -> KvExperimentConfig {
    let mut cfg = traced_cfg(ArchKind::Remote);
    let dt = SimDuration::from_secs_f64(1.0 / cfg.qps);
    let crash_at = SimTime::ZERO + dt.saturating_mul(cfg.warmup_requests + 300);
    let downtime = dt.saturating_mul(400);
    let mut schedule = FaultSchedule::new();
    for shard in 0..cfg.deployment.remote_cache_nodes {
        schedule.crash_for(crash_at, NodeId(shard as u32), downtime);
    }
    cfg.cache_fault_schedule = Some(schedule);
    cfg
}

fn by_trace(spans: &[SpanRecord]) -> BTreeMap<u64, Vec<&SpanRecord>> {
    let mut map: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        map.entry(s.trace_id).or_default().push(s);
    }
    map
}

#[test]
fn healthy_requests_trace_cleanly() {
    let (_, bundle) = run_kv_experiment_with_telemetry(&traced_cfg(ArchKind::Remote)).unwrap();
    assert!(!bundle.spans.is_empty());
    assert!(
        bundle
            .spans
            .iter()
            .all(|s| s.status != SpanStatus::Failed && s.attempt == 0),
        "a healthy fabric must produce no failed or retried attempts"
    );

    let traces = by_trace(&bundle.spans);
    // Every measured request is sampled, and its id comes from the seed.
    let expected: Vec<u64> = (0..MEASURED)
        .map(|k| telemetry::trace_id(SEED, k))
        .collect();
    let mut expected_sorted = expected.clone();
    expected_sorted.sort_unstable();
    assert_eq!(
        traces.keys().copied().collect::<Vec<_>>(),
        expected_sorted,
        "one trace per measured request, ids derived from the workload seed"
    );

    for (id, spans) in &traces {
        let roots: Vec<_> = spans.iter().filter(|s| s.tier == "client").collect();
        assert_eq!(
            roots.len(),
            1,
            "trace {id:x} must have exactly one root span"
        );
        let root = roots[0];
        assert!(root.name == "request.read" || root.name == "request.write");
        for s in spans {
            assert!(
                s.start_ns >= root.start_ns && s.end_ns <= root.end_ns,
                "trace {id:x}: hop {} [{}, {}] escapes its root [{}, {}]",
                s.name,
                s.start_ns,
                s.end_ns,
                root.start_ns,
                root.end_ns
            );
        }
    }
}

#[test]
fn retried_request_is_one_trace_with_attempt_spans() {
    let cfg = crashed_cfg();
    let (report, bundle) = run_kv_experiment_with_telemetry(&cfg).unwrap();
    assert!(
        report.degraded_reads > 0,
        "the outage must force degraded reads"
    );
    assert!(report.cache_retries > 0);

    let max_attempts = cfg.deployment.fault_tolerance.retry.max_retries + 1;
    let traces = by_trace(&bundle.spans);
    let mut saw_full_retry_budget = false;
    for (id, spans) in &traces {
        let mut attempts: Vec<&&SpanRecord> = spans
            .iter()
            .filter(|s| s.name == "cache.rpc_attempt")
            .collect();
        attempts.sort_by_key(|s| s.attempt);
        // Attempts of one logical hop are contiguous from 0 — a retry never
        // starts a new trace.
        for (i, s) in attempts.iter().enumerate() {
            assert_eq!(
                s.attempt, i as u32,
                "trace {id:x}: attempt numbers must be contiguous from 0"
            );
        }
        // Only the last attempt may succeed; earlier ones are failures.
        for s in attempts.iter().rev().skip(1) {
            assert_eq!(s.status, SpanStatus::Failed, "trace {id:x}");
        }

        if let Some(degraded) = spans.iter().find(|s| s.name == "read.degraded") {
            assert_eq!(degraded.status, SpanStatus::Degraded);
            // The degraded path only engages once every attempt failed.
            assert!(
                attempts.iter().all(|s| s.status == SpanStatus::Failed),
                "trace {id:x}: degraded read after a successful cache RPC"
            );
            assert!(
                !attempts.is_empty(),
                "trace {id:x}: degraded with no attempts"
            );
            if attempts.len() == max_attempts as usize {
                saw_full_retry_budget = true;
            }
        }
    }
    assert!(
        saw_full_retry_budget,
        "some degraded read must exhaust the full retry budget ({max_attempts} attempts)"
    );
}

#[test]
fn crashed_run_traces_are_deterministic() {
    let (_, a) = run_kv_experiment_with_telemetry(&crashed_cfg()).unwrap();
    let (_, b) = run_kv_experiment_with_telemetry(&crashed_cfg()).unwrap();
    assert_eq!(a.traces_jsonl, b.traces_jsonl);
    assert_eq!(a.profile.to_collapsed(), b.profile.to_collapsed());
    assert_eq!(
        a.registry.to_prometheus_text(),
        b.registry.to_prometheus_text()
    );
}

#[test]
fn elastic_run_exports_provisioning_series() {
    // An elastic-enabled run must surface the whole provisioning story in
    // its Prometheus export — live capacity, the current plan, decision and
    // migration counters, profiler state — and a default run must export
    // none of it (the gauges are gated, keeping default registries stable).
    let mut cfg = traced_cfg(ArchKind::Remote);
    cfg.trace_sample_every = None;
    cfg.qps = 2_000.0;
    cfg.warmup_requests = 4_000;
    cfg.requests = 6_000;
    cfg.diurnal = Some(workloads::DiurnalSchedule::sinusoid(8.0, 0.25));
    cfg.deployment.elastic = elastic::ElasticConfig::with_interval(2.0);
    let (report, bundle) = run_kv_experiment_with_telemetry(&cfg).unwrap();
    assert!(report.elastic_decisions > 0, "controller never decided");

    let text = bundle.registry.to_prometheus_text();
    for name in [
        "dcache_elastic_cache_capacity_bytes",
        "dcache_elastic_mean_cache_bytes",
        "dcache_elastic_peak_cache_bytes",
        "dcache_peak_window_cores",
        "dcache_elastic_plan_cache_bytes",
        "dcache_elastic_plan_shards",
        "dcache_elastic_plan_monthly_dollars",
        "dcache_elastic_decisions_total",
        "dcache_elastic_resizes_total",
        "dcache_elastic_migrated_entries_total",
        "dcache_elastic_migrated_bytes_total",
        "dcache_elastic_profiler_sampling_rate",
        "dcache_elastic_profiler_tracked_keys",
    ] {
        assert!(text.contains(name), "export is missing {name}:\n{text}");
    }

    let (_, base) = run_kv_experiment_with_telemetry(&traced_cfg(ArchKind::Remote)).unwrap();
    assert!(
        !base
            .registry
            .to_prometheus_text()
            .contains("dcache_elastic"),
        "default run leaked elastic series into its registry"
    );
}

#[test]
fn tracing_does_not_perturb_the_run() {
    let mut untraced = traced_cfg(ArchKind::Remote);
    untraced.trace_sample_every = None;
    let baseline = run_kv_experiment(&untraced).unwrap();
    let (traced, bundle) = run_kv_experiment_with_telemetry(&traced_cfg(ArchKind::Remote)).unwrap();
    assert!(!bundle.spans.is_empty());
    assert_eq!(baseline.total_cost.total(), traced.total_cost.total());
    assert_eq!(baseline.total_cores, traced.total_cores);
    assert_eq!(baseline.read_latency_p50_us, traced.read_latency_p50_us);
    assert_eq!(baseline.read_latency_p99_us, traced.read_latency_p99_us);
    assert_eq!(baseline.cache_hit_ratio, traced.cache_hit_ratio);
    assert_eq!(baseline.stale_reads, traced.stale_reads);
    assert_eq!(baseline.sql_statements, traced.sql_statements);
}
