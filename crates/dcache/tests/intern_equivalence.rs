//! Interning must be invisible: serving behavior is a function of cache-key
//! *bytes*, never of the dense `u32` ids the interner hands out.
//!
//! The PR-8 speed overhaul threads `InternedKey` (id + precomputed route and
//! sketch hashes) through the whole serve path instead of re-hashing byte
//! keys per request. Ids are assigned in first-sight order, so two runs that
//! intern keys in different orders hold completely different id spaces. This
//! test drives two deployments through an identical splitmix64-derived
//! operation sequence — one fresh, one whose interner was pre-warmed with
//! thousands of unrelated keys so every real key's id is shifted — and
//! asserts every `ServeOutcome` (latencies, hits, versions, bytes: the full
//! debug form) is identical. Any dependence on id values, id ordering, or
//! id-keyed iteration order would diverge here.

use dcache::deployment::{kv_catalog, Deployment};
use dcache::{ArchKind, DeploymentConfig};
use simnet::{SimDuration, SimTime};
use storekit::value::Datum;

const KEYS: i64 = 64;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn deployment(arch: ArchKind) -> Deployment {
    let mut d = Deployment::new(DeploymentConfig::test_small(arch), kv_catalog("kv"));
    d.cluster
        .bulk_load(
            "kv",
            (0..KEYS).map(|k| vec![Datum::Int(k), Datum::Payload { len: 128, seed: 7 }]),
        )
        .unwrap();
    d
}

/// Run one deterministic op sequence, returning the outcome transcript.
fn transcript(d: &mut Deployment, seed: u64, ops: usize) -> Vec<String> {
    let mut rng = seed;
    let mut log = Vec::with_capacity(ops);
    let mut now = SimTime::ZERO;
    for _ in 0..ops {
        now += SimDuration::from_micros(100);
        let key = (splitmix64(&mut rng) % KEYS as u64) as i64;
        let out = match splitmix64(&mut rng) % 10 {
            0..=6 => d.serve_kv_read("kv", key, now),
            7..=8 => d.serve_kv_write(
                "kv",
                key,
                Datum::Payload {
                    len: 128,
                    seed: splitmix64(&mut rng),
                },
                now,
            ),
            _ => d.serve_kv_delete("kv", key, now),
        };
        log.push(format!("{out:?}"));
    }
    log
}

#[test]
fn shifted_interner_ids_leave_serving_byte_identical() {
    for arch in ArchKind::PAPER {
        let mut fresh = deployment(arch);
        let mut shifted = deployment(arch);
        // Shift every real key's dense id by thousands of positions (and
        // scatter the interner's table layout) before any traffic.
        shifted
            .prewarm_interner((0..5_000u64).map(|i| format!("unrelated/{i}/padding").into_bytes()));

        let a = transcript(&mut fresh, 42, 4_000);
        let b = transcript(&mut shifted, 42, 4_000);
        assert_eq!(
            a, b,
            "outcome transcripts diverged under shifted interner ids ({arch:?})"
        );
    }
}

#[test]
fn interleaved_interning_order_is_invisible() {
    // Same traffic, but one deployment has the real keyspace pre-interned
    // in *reverse*, so id order is the exact opposite of first-touch order.
    // The transcripts must still match.
    for arch in [ArchKind::Remote, ArchKind::Linked] {
        let mut forward = deployment(arch);
        let mut reverse = deployment(arch);
        reverse.prewarm_interner((0..KEYS).rev().map(|k| {
            let mut v = b"kv/".to_vec();
            v.extend_from_slice(&k.to_be_bytes());
            v
        }));

        let a = transcript(&mut forward, 99, 2_000);
        let b = transcript(&mut reverse, 99, 2_000);
        assert_eq!(a, b, "id assignment order leaked into serving ({arch:?})");
    }
}
