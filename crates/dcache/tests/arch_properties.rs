//! Property-based tests over the serving architectures: for arbitrary
//! operation sequences, every architecture agrees with a ground-truth map
//! on the guarantees it claims.

// The offline `proptest` stub swallows `proptest!` blocks, leaving the
// strategy helpers (and some imports) unreferenced in offline builds.
#![allow(dead_code, unused_imports)]
use dcache::deployment::{kv_catalog, Deployment};
use dcache::{ArchKind, DeploymentConfig};
use proptest::prelude::*;
use simnet::SimTime;
use std::collections::HashMap;
use storekit::value::Datum;

#[derive(Debug, Clone)]
enum Op {
    Read(u8),
    Write(u8),
    /// Update storage behind the caches' backs (a foreign writer).
    ForeignWrite(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u8..24).prop_map(Op::Read),
        2 => (0u8..24).prop_map(Op::Write),
        1 => (0u8..24).prop_map(Op::ForeignWrite),
    ]
}

fn deployment(arch: ArchKind) -> Deployment {
    let mut d = Deployment::new(DeploymentConfig::test_small(arch), kv_catalog("kv"));
    d.cluster
        .bulk_load(
            "kv",
            (0..24i64).map(|k| vec![Datum::Int(k), Datum::Payload { len: 64, seed: 0 }]),
        )
        .unwrap();
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Consistent architectures (Base, Linked+Version, LeaseOwned-with-
    /// routed-writes) always serve the latest value, even with foreign
    /// writers — provided, for LeaseOwned, that all writes go through the
    /// owner (here foreign writes go through serve paths, respecting that).
    #[test]
    fn consistent_archs_always_serve_latest(
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        for arch in [ArchKind::Base, ArchKind::LinkedVersion] {
            let mut d = deployment(arch);
            let mut truth: HashMap<u8, u64> = HashMap::new();
            let mut gen = 1u64;
            let mut clock = 1u64;
            for op in &ops {
                let now = SimTime::from_nanos(clock * 1_000);
                clock += 1;
                match *op {
                    Op::Read(k) => {
                        let out = d.serve_kv_read("kv", k as i64, now).unwrap();
                        let expect = truth.get(&k).copied().unwrap_or(0);
                        prop_assert_eq!(out.seed, Some(expect),
                            "{}: stale read of key {}", arch, k);
                    }
                    Op::Write(k) => {
                        gen += 1;
                        d.serve_kv_write("kv", k as i64,
                            Datum::Payload { len: 64, seed: gen }, now).unwrap();
                        truth.insert(k, gen);
                    }
                    Op::ForeignWrite(k) => {
                        gen += 1;
                        // Foreign writer goes straight to storage.
                        d.cluster.execute(
                            "UPDATE kv SET v = ? WHERE k = ?",
                            &[Datum::Payload { len: 64, seed: gen }, Datum::Int(k as i64)],
                            now,
                        ).unwrap();
                        truth.insert(k, gen);
                    }
                }
            }
        }
    }

    /// Every architecture (including eventually-consistent ones) serves the
    /// latest value when all writes flow through the serving path and
    /// caches are large enough to never evict.
    #[test]
    fn all_archs_are_coherent_without_foreign_writers(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        for arch in [ArchKind::Remote, ArchKind::Linked, ArchKind::LeaseOwned] {
            let mut d = deployment(arch);
            let mut truth: HashMap<u8, u64> = HashMap::new();
            let mut gen = 1u64;
            let mut clock = 1u64;
            for op in &ops {
                let now = SimTime::from_nanos(clock * 1_000);
                clock += 1;
                match *op {
                    Op::Read(k) => {
                        let out = d.serve_kv_read("kv", k as i64, now).unwrap();
                        let expect = truth.get(&k).copied().unwrap_or(0);
                        prop_assert_eq!(out.seed, Some(expect), "{}: key {}", arch, k);
                    }
                    // "Foreign" writers route through the owner here — the
                    // precondition for eventual architectures' coherence.
                    Op::Write(k) | Op::ForeignWrite(k) => {
                        gen += 1;
                        d.serve_kv_write("kv", k as i64,
                            Datum::Payload { len: 64, seed: gen }, now).unwrap();
                        truth.insert(k, gen);
                    }
                }
            }
        }
    }

    /// Reads never fabricate data: a key outside the loaded range is
    /// not_found in every architecture, before and after traffic.
    #[test]
    fn absent_keys_stay_absent(
        ops in proptest::collection::vec(op_strategy(), 0..30),
        probe in 100i64..200,
    ) {
        for arch in ArchKind::ALL {
            let mut d = deployment(arch);
            let mut clock = 1u64;
            for op in &ops {
                let now = SimTime::from_nanos(clock * 1_000);
                clock += 1;
                match *op {
                    Op::Read(k) => { d.serve_kv_read("kv", k as i64, now).unwrap(); }
                    Op::Write(k) | Op::ForeignWrite(k) => {
                        d.serve_kv_write("kv", k as i64,
                            Datum::Payload { len: 64, seed: 1 }, now).unwrap();
                    }
                }
            }
            let out = d
                .serve_kv_read("kv", probe, SimTime::from_nanos(clock * 1_000))
                .unwrap();
            prop_assert!(out.not_found, "{}: fabricated key {}", arch, probe);
        }
    }
}
