//! Eviction policies.
//!
//! A policy tracks only *slot ids* (indices into the cache's entry slab) and
//! answers one question: which slot should be evicted next. The cache owns
//! keys, values, sizes and TTLs; the policy owns recency/frequency state.
//! This split keeps each policy small and lets the eviction ablation swap
//! policies without touching the cache.
//!
//! Implemented policies, matching the ablation in DESIGN.md:
//!
//! * **LRU** — classic least-recently-used (the paper's deployments and
//!   TiKV's block cache are LRU-family).
//! * **FIFO** — eviction by insertion order; hits do not promote. Cheap and,
//!   per recent literature (FIFO queues are all you need, SOSP'23), often
//!   competitive.
//! * **LFU** — least-frequently-used with LRU tie-breaking.
//! * **SLRU** — segmented LRU: new entries enter a probationary segment and
//!   are promoted to a protected segment on re-reference.
//! * **CLOCK** — second-chance approximation of LRU with O(1) hits.

use crate::list::SlotList;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Runtime-selectable policy. The eviction ablation bench sweeps this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    Lru,
    Fifo,
    Lfu,
    Slru,
    Clock,
}

impl PolicyKind {
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Lfu,
        PolicyKind::Slru,
        PolicyKind::Clock,
    ];

    pub const fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Fifo => "fifo",
            PolicyKind::Lfu => "lfu",
            PolicyKind::Slru => "slru",
            PolicyKind::Clock => "clock",
        }
    }

    pub(crate) fn build(self) -> PolicyImpl {
        match self {
            PolicyKind::Lru => PolicyImpl::Lru(LruPolicy::default()),
            PolicyKind::Fifo => PolicyImpl::Fifo(FifoPolicy::default()),
            PolicyKind::Lfu => PolicyImpl::Lfu(LfuPolicy::default()),
            PolicyKind::Slru => PolicyImpl::Slru(SlruPolicy::new(0.8)),
            PolicyKind::Clock => PolicyImpl::Clock(ClockPolicy::default()),
        }
    }
}

/// The policy interface the cache drives.
pub trait Policy {
    /// A new entry landed in `slot`.
    fn on_insert(&mut self, slot: usize);
    /// The entry in `slot` was read.
    fn on_hit(&mut self, slot: usize);
    /// The entry in `slot` was removed (eviction or explicit).
    fn on_remove(&mut self, slot: usize);
    /// Choose the next eviction victim. Must return a slot previously
    /// inserted and not yet removed, or `None` if the policy is empty.
    fn victim(&mut self) -> Option<usize>;
}

/// Enum dispatch over the concrete policies (keeps `Cache` object-safe and
/// serde-friendly without generics).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum PolicyImpl {
    Lru(LruPolicy),
    Fifo(FifoPolicy),
    Lfu(LfuPolicy),
    Slru(SlruPolicy),
    Clock(ClockPolicy),
}

impl Policy for PolicyImpl {
    fn on_insert(&mut self, slot: usize) {
        match self {
            PolicyImpl::Lru(p) => p.on_insert(slot),
            PolicyImpl::Fifo(p) => p.on_insert(slot),
            PolicyImpl::Lfu(p) => p.on_insert(slot),
            PolicyImpl::Slru(p) => p.on_insert(slot),
            PolicyImpl::Clock(p) => p.on_insert(slot),
        }
    }
    fn on_hit(&mut self, slot: usize) {
        match self {
            PolicyImpl::Lru(p) => p.on_hit(slot),
            PolicyImpl::Fifo(p) => p.on_hit(slot),
            PolicyImpl::Lfu(p) => p.on_hit(slot),
            PolicyImpl::Slru(p) => p.on_hit(slot),
            PolicyImpl::Clock(p) => p.on_hit(slot),
        }
    }
    fn on_remove(&mut self, slot: usize) {
        match self {
            PolicyImpl::Lru(p) => p.on_remove(slot),
            PolicyImpl::Fifo(p) => p.on_remove(slot),
            PolicyImpl::Lfu(p) => p.on_remove(slot),
            PolicyImpl::Slru(p) => p.on_remove(slot),
            PolicyImpl::Clock(p) => p.on_remove(slot),
        }
    }
    fn victim(&mut self) -> Option<usize> {
        match self {
            PolicyImpl::Lru(p) => p.victim(),
            PolicyImpl::Fifo(p) => p.victim(),
            PolicyImpl::Lfu(p) => p.victim(),
            PolicyImpl::Slru(p) => p.victim(),
            PolicyImpl::Clock(p) => p.victim(),
        }
    }
}

/// Least-recently-used.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LruPolicy {
    list: SlotList,
}

impl Policy for LruPolicy {
    fn on_insert(&mut self, slot: usize) {
        self.list.push_front(slot);
    }
    fn on_hit(&mut self, slot: usize) {
        self.list.move_to_front(slot);
    }
    fn on_remove(&mut self, slot: usize) {
        self.list.remove(slot);
    }
    fn victim(&mut self) -> Option<usize> {
        self.list.back()
    }
}

/// First-in-first-out: hits do not change eviction order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FifoPolicy {
    list: SlotList,
}

impl Policy for FifoPolicy {
    fn on_insert(&mut self, slot: usize) {
        self.list.push_front(slot);
    }
    fn on_hit(&mut self, _slot: usize) {}
    fn on_remove(&mut self, slot: usize) {
        self.list.remove(slot);
    }
    fn victim(&mut self) -> Option<usize> {
        self.list.back()
    }
}

/// Least-frequently-used with least-recent tie-breaking.
///
/// State per slot: access count and a logical tick of last touch. The
/// eviction order is the BTreeSet ordering on `(freq, tick, slot)`, so the
/// victim is the minimum — the coldest, then stalest entry.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LfuPolicy {
    // (freq, last_touch_tick) per slot; None = not resident.
    meta: Vec<Option<(u64, u64)>>,
    order: BTreeSet<(u64, u64, usize)>,
    tick: u64,
}

impl LfuPolicy {
    fn ensure(&mut self, slot: usize) {
        if self.meta.len() <= slot {
            self.meta.resize(slot + 1, None);
        }
    }

    fn touch(&mut self, slot: usize, bump: u64) {
        self.ensure(slot);
        self.tick += 1;
        match self.meta[slot] {
            Some((freq, tick)) => {
                self.order.remove(&(freq, tick, slot));
                let nf = freq + bump;
                self.meta[slot] = Some((nf, self.tick));
                self.order.insert((nf, self.tick, slot));
            }
            None => {
                self.meta[slot] = Some((1, self.tick));
                self.order.insert((1, self.tick, slot));
            }
        }
    }
}

impl Policy for LfuPolicy {
    fn on_insert(&mut self, slot: usize) {
        debug_assert!(self.meta.get(slot).is_none_or(|m| m.is_none()));
        self.touch(slot, 0);
    }
    fn on_hit(&mut self, slot: usize) {
        self.touch(slot, 1);
    }
    fn on_remove(&mut self, slot: usize) {
        self.ensure(slot);
        if let Some((freq, tick)) = self.meta[slot].take() {
            self.order.remove(&(freq, tick, slot));
        }
    }
    fn victim(&mut self) -> Option<usize> {
        self.order.iter().next().map(|&(_, _, s)| s)
    }
}

/// Segmented LRU. `protected_frac` bounds the protected segment as a
/// fraction of resident entries; overflow demotes the protected LRU back to
/// the probation segment's MRU end (it gets one more chance).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlruPolicy {
    probation: SlotList,
    protected: SlotList,
    protected_frac: f64,
}

impl SlruPolicy {
    pub fn new(protected_frac: f64) -> Self {
        SlruPolicy {
            probation: SlotList::new(),
            protected: SlotList::new(),
            protected_frac: protected_frac.clamp(0.0, 1.0),
        }
    }

    fn protected_cap(&self) -> usize {
        let total = self.probation.len() + self.protected.len();
        ((total as f64) * self.protected_frac).floor() as usize
    }

    fn rebalance(&mut self) {
        while self.protected.len() > self.protected_cap().max(1) {
            if let Some(demoted) = self.protected.pop_back() {
                self.probation.push_front(demoted);
            } else {
                break;
            }
        }
    }
}

impl Policy for SlruPolicy {
    fn on_insert(&mut self, slot: usize) {
        self.probation.push_front(slot);
    }
    fn on_hit(&mut self, slot: usize) {
        if self.probation.contains(slot) {
            self.probation.remove(slot);
            self.protected.push_front(slot);
            self.rebalance();
        } else {
            self.protected.move_to_front(slot);
        }
    }
    fn on_remove(&mut self, slot: usize) {
        self.probation.remove(slot);
        self.protected.remove(slot);
    }
    fn victim(&mut self) -> Option<usize> {
        self.probation.back().or_else(|| self.protected.back())
    }
}

/// CLOCK (second chance): a circular scan with one reference bit per entry.
/// Hits are O(1) (set the bit); eviction sweeps the hand, clearing bits,
/// until it finds an unreferenced entry.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClockPolicy {
    /// Ring positions; `None` marks holes left by removals.
    ring: Vec<Option<usize>>,
    /// Position in `ring` per slot; usize::MAX = absent.
    pos: Vec<usize>,
    refbit: Vec<bool>,
    hand: usize,
    live: usize,
}

impl ClockPolicy {
    fn ensure(&mut self, slot: usize) {
        if self.pos.len() <= slot {
            self.pos.resize(slot + 1, usize::MAX);
            self.refbit.resize(slot + 1, false);
        }
    }
}

impl Policy for ClockPolicy {
    fn on_insert(&mut self, slot: usize) {
        self.ensure(slot);
        debug_assert_eq!(self.pos[slot], usize::MAX);
        self.pos[slot] = self.ring.len();
        self.ring.push(Some(slot));
        self.refbit[slot] = false;
        self.live += 1;
        // Compact the ring when it is mostly holes, preserving hand order.
        if self.ring.len() > 64 && self.live * 2 < self.ring.len() {
            let start = self.hand.min(self.ring.len());
            let rotated: Vec<usize> = self.ring[start..]
                .iter()
                .chain(self.ring[..start].iter())
                .filter_map(|s| *s)
                .collect();
            self.ring = rotated.iter().map(|&s| Some(s)).collect();
            for (i, &s) in rotated.iter().enumerate() {
                self.pos[s] = i;
            }
            self.hand = 0;
        }
    }

    fn on_hit(&mut self, slot: usize) {
        self.ensure(slot);
        self.refbit[slot] = true;
    }

    fn on_remove(&mut self, slot: usize) {
        self.ensure(slot);
        let p = self.pos[slot];
        if p != usize::MAX {
            self.ring[p] = None;
            self.pos[slot] = usize::MAX;
            self.live -= 1;
        }
    }

    fn victim(&mut self) -> Option<usize> {
        if self.live == 0 {
            return None;
        }
        // Two full sweeps guarantee termination: the first clears bits.
        for _ in 0..2 * self.ring.len() {
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            match self.ring[self.hand] {
                Some(slot) if self.refbit[slot] => {
                    self.refbit[slot] = false;
                    self.hand += 1;
                }
                Some(slot) => return Some(slot),
                None => self.hand += 1,
            }
        }
        unreachable!("CLOCK sweep must find a victim when live > 0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_victim_sequence(kind: PolicyKind, script: &[(&str, usize)]) -> Vec<usize> {
        let mut p = kind.build();
        let mut victims = Vec::new();
        for &(op, slot) in script {
            match op {
                "ins" => p.on_insert(slot),
                "hit" => p.on_hit(slot),
                "del" => p.on_remove(slot),
                "evict" => {
                    let v = p.victim().expect("victim expected");
                    assert_eq!(v, slot, "policy {kind:?} chose wrong victim");
                    p.on_remove(v);
                    victims.push(v);
                }
                _ => unreachable!(),
            }
        }
        victims
    }

    #[test]
    fn lru_evicts_least_recent() {
        run_victim_sequence(
            PolicyKind::Lru,
            &[
                ("ins", 0),
                ("ins", 1),
                ("ins", 2),
                ("hit", 0), // 0 becomes most recent
                ("evict", 1),
                ("evict", 2),
                ("evict", 0),
            ],
        );
    }

    #[test]
    fn fifo_ignores_hits() {
        run_victim_sequence(
            PolicyKind::Fifo,
            &[
                ("ins", 0),
                ("ins", 1),
                ("hit", 0),
                ("hit", 0),
                ("evict", 0), // still first in
                ("evict", 1),
            ],
        );
    }

    #[test]
    fn lfu_evicts_coldest_with_lru_tiebreak() {
        run_victim_sequence(
            PolicyKind::Lfu,
            &[
                ("ins", 0),
                ("ins", 1),
                ("ins", 2),
                ("hit", 0),
                ("hit", 0),
                ("hit", 1),
                // freqs: 0→3, 1→2, 2→1
                ("evict", 2),
                ("evict", 1),
                ("evict", 0),
            ],
        );
    }

    #[test]
    fn lfu_tiebreak_prefers_stalest() {
        run_victim_sequence(
            PolicyKind::Lfu,
            &[
                ("ins", 0),
                ("ins", 1),
                ("hit", 0),
                ("hit", 1),
                // equal freq; 0 touched earlier → evict 0 first
                ("evict", 0),
                ("evict", 1),
            ],
        );
    }

    #[test]
    fn slru_protects_rereferenced_entries() {
        run_victim_sequence(
            PolicyKind::Slru,
            &[
                ("ins", 0),
                ("ins", 1),
                ("ins", 2),
                ("hit", 1), // 1 promoted to protected
                // probation is [2, 0] (front to back) → victim is 0
                ("evict", 0),
                ("evict", 2),
                ("evict", 1), // protected drains last
            ],
        );
    }

    #[test]
    fn clock_gives_second_chance() {
        run_victim_sequence(
            PolicyKind::Clock,
            &[
                ("ins", 0),
                ("ins", 1),
                ("ins", 2),
                ("hit", 0),
                // hand at 0: ref set → clear, advance; victim = 1
                ("evict", 1),
                ("evict", 2),
                ("evict", 0),
            ],
        );
    }

    #[test]
    fn removal_of_victim_candidate_is_handled() {
        for kind in PolicyKind::ALL {
            let mut p = kind.build();
            p.on_insert(0);
            p.on_insert(1);
            p.on_remove(0);
            let v = p.victim().unwrap();
            assert_eq!(v, 1, "{kind:?} must not return a removed slot");
            p.on_remove(1);
            assert_eq!(p.victim(), None, "{kind:?} must be empty");
        }
    }

    #[test]
    fn empty_policy_has_no_victim() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.build().victim(), None);
        }
    }

    #[test]
    fn slot_reuse_is_safe_across_policies() {
        for kind in PolicyKind::ALL {
            let mut p = kind.build();
            p.on_insert(0);
            p.on_remove(0);
            p.on_insert(0); // slab reuses slot 0
            p.on_hit(0);
            assert_eq!(p.victim(), Some(0), "{kind:?}");
        }
    }

    #[test]
    fn clock_compaction_preserves_live_entries() {
        let mut p = ClockPolicy::default();
        for s in 0..200 {
            p.on_insert(s);
        }
        for s in 0..150 {
            p.on_remove(s);
        }
        // trigger compaction path
        p.on_insert(500);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..51 {
            let v = p.victim().unwrap();
            p.on_remove(v);
            seen.insert(v);
        }
        assert_eq!(seen.len(), 51);
        assert!(seen.contains(&500));
        assert_eq!(p.victim(), None);
    }
}
