//! A cache partitioned across shards by consistent hashing.
//!
//! This models the paper's linked-cache deployment: each application server
//! holds one shard of the cache, and a request for a key is routed to the
//! server owning that key (§2.4, citing Slicer-style auto-sharding). The
//! total memory bill is the sum of shard capacities; the hit ratio is that
//! of whichever shard owns the key.

use crate::cache::{Cache, InsertOutcome, ENTRY_OVERHEAD_BYTES};
use crate::policy::PolicyKind;
use crate::ring::HashRing;
use crate::stats::CacheStats;

/// Entry/byte accounting for a topology or capacity change, so an elastic
/// controller can charge migration and re-fill work to the cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReshardOutcome {
    /// Entries successfully re-homed onto their new owner shard.
    pub migrated_entries: u64,
    /// Total charge (value bytes + per-entry overhead) of those entries.
    pub migrated_bytes: u64,
    /// Entries lost to the change: evicted by shrinking, displaced at the
    /// destination, or rejected there (too large / not admitted).
    pub evicted_entries: u64,
}

/// Keys are byte strings here because routing hashes bytes; higher layers
/// provide typed wrappers.
pub struct ShardedCache<V> {
    shards: Vec<Cache<Vec<u8>, V>>,
    ring: HashRing,
}

impl<V> ShardedCache<V> {
    /// `shard_count` shards of `per_shard_bytes` each.
    pub fn new(shard_count: u32, per_shard_bytes: u64, policy: PolicyKind) -> Self {
        let shards = (0..shard_count)
            .map(|_| Cache::new(per_shard_bytes, policy))
            .collect();
        ShardedCache {
            shards,
            ring: HashRing::with_shards(shard_count, 128),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity across shards (the DRAM that gets billed).
    pub fn total_capacity_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.capacity_bytes()).sum()
    }

    pub fn total_used_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.used_bytes()).sum()
    }

    /// Which shard owns `key`.
    pub fn owner(&self, key: &[u8]) -> usize {
        self.ring
            .shard_for(key)
            .expect("ShardedCache always has shards") as usize
    }

    pub fn get(&mut self, key: &[u8], now: u64) -> Option<&V> {
        let shard = self.owner(key);
        self.shards[shard].get(key, now)
    }

    pub fn insert(&mut self, key: &[u8], value: V, value_bytes: u64, now: u64) -> InsertOutcome {
        let shard = self.owner(key);
        self.shards[shard].insert(key.to_vec(), value, value_bytes, now)
    }

    pub fn remove(&mut self, key: &[u8]) -> Option<V> {
        let shard = self.owner(key);
        self.shards[shard].remove(key)
    }

    pub fn contains(&self, key: &[u8], now: u64) -> bool {
        self.shards[self.owner(key)].contains(key, now)
    }

    /// Aggregate statistics across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            total += *s.stats();
        }
        total
    }

    /// Statistics of one shard (for imbalance analysis).
    pub fn shard_stats(&self, shard: usize) -> &CacheStats {
        self.shards[shard].stats()
    }

    pub fn reset_stats(&mut self) {
        for s in &mut self.shards {
            s.reset_stats();
        }
    }

    /// Shards currently on the ring (drained shards keep their vector slot
    /// but own no keys and hold no capacity).
    pub fn active_shards(&self) -> usize {
        self.ring.shard_count()
    }

    /// Resize every active shard to `per_shard_bytes`, evicting in policy
    /// order where a shard shrank. Drained shards stay at zero capacity.
    pub fn set_per_shard_capacity(&mut self, per_shard_bytes: u64) -> ReshardOutcome {
        let mut out = ReshardOutcome::default();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if self.ring.contains_shard(i as u32) {
                out.evicted_entries += shard.set_capacity(per_shard_bytes) as u64;
            }
        }
        out
    }

    /// Take `shard` off the ring and migrate its residents to their new
    /// owners (sorted key order, so the result is deterministic regardless
    /// of insertion history). The shard keeps its vector slot at zero
    /// capacity and can be brought back with [`ShardedCache::restore_shard`].
    /// Draining an absent shard — or the last active one — is a no-op.
    pub fn drain_shard(&mut self, shard: u32, now: u64) -> ReshardOutcome {
        let mut out = ReshardOutcome::default();
        if !self.ring.contains_shard(shard) || self.ring.shard_count() <= 1 {
            return out;
        }
        self.ring.remove_shard(shard);
        let idx = shard as usize;
        let mut keys: Vec<Vec<u8>> = self.shards[idx].keys().cloned().collect();
        keys.sort_unstable();
        for key in keys {
            let (value, charge) = self.shards[idx].take(&key).expect("key was resident");
            let owner = self.owner(&key);
            match self.shards[owner].insert(key, value, charge - ENTRY_OVERHEAD_BYTES, now) {
                InsertOutcome::Inserted { evicted } | InsertOutcome::Replaced { evicted } => {
                    out.migrated_entries += 1;
                    out.migrated_bytes += charge;
                    out.evicted_entries += evicted as u64;
                }
                InsertOutcome::TooLarge | InsertOutcome::NotAdmitted => {
                    out.evicted_entries += 1;
                }
            }
        }
        self.shards[idx].set_capacity(0);
        out
    }

    /// Re-add a drained shard at `per_shard_bytes` and migrate the keys it
    /// now owns back from the other shards (sorted key order per source
    /// shard). Restoring a shard already on the ring is a no-op.
    pub fn restore_shard(&mut self, shard: u32, per_shard_bytes: u64, now: u64) -> ReshardOutcome {
        let mut out = ReshardOutcome::default();
        let idx = shard as usize;
        if idx >= self.shards.len() || self.ring.contains_shard(shard) {
            return out;
        }
        self.ring.add_shard(shard);
        self.shards[idx].set_capacity(per_shard_bytes);
        for src in 0..self.shards.len() {
            if src == idx {
                continue;
            }
            let mut moving: Vec<Vec<u8>> = self.shards[src]
                .keys()
                .filter(|k| self.ring.shard_for(k) == Some(shard))
                .cloned()
                .collect();
            moving.sort_unstable();
            for key in moving {
                let (value, charge) = self.shards[src].take(&key).expect("key was resident");
                match self.shards[idx].insert(key, value, charge - ENTRY_OVERHEAD_BYTES, now) {
                    InsertOutcome::Inserted { evicted } | InsertOutcome::Replaced { evicted } => {
                        out.migrated_entries += 1;
                        out.migrated_bytes += charge;
                        out.evicted_entries += evicted as u64;
                    }
                    InsertOutcome::TooLarge | InsertOutcome::NotAdmitted => {
                        out.evicted_entries += 1;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_per_key() {
        let c: ShardedCache<u32> = ShardedCache::new(4, 1 << 20, PolicyKind::Lru);
        for i in 0..100 {
            let k = format!("key{i}").into_bytes();
            assert_eq!(c.owner(&k), c.owner(&k));
        }
    }

    #[test]
    fn get_after_insert_across_shards() {
        let mut c: ShardedCache<u32> = ShardedCache::new(4, 1 << 20, PolicyKind::Lru);
        for i in 0..100u32 {
            let k = format!("key{i}").into_bytes();
            c.insert(&k, i, 100, 0);
        }
        for i in 0..100u32 {
            let k = format!("key{i}").into_bytes();
            assert_eq!(c.get(&k, 0), Some(&i));
        }
        assert_eq!(c.stats().hits, 100);
    }

    #[test]
    fn shards_fill_roughly_evenly() {
        let mut c: ShardedCache<()> = ShardedCache::new(4, 1 << 30, PolicyKind::Lru);
        for i in 0..4_000u32 {
            let k = format!("key{i}").into_bytes();
            c.insert(&k, (), 100, 0);
        }
        for shard in 0..4 {
            let inserts = c.shard_stats(shard).inserts;
            assert!(
                (500..=1_500).contains(&inserts),
                "shard {shard} got {inserts} inserts"
            );
        }
    }

    #[test]
    fn total_capacity_sums_shards() {
        let c: ShardedCache<()> = ShardedCache::new(3, 1_000, PolicyKind::Lru);
        assert_eq!(c.total_capacity_bytes(), 3_000);
    }

    #[test]
    fn remove_invalidates_only_owner_shard() {
        let mut c: ShardedCache<u32> = ShardedCache::new(4, 1 << 20, PolicyKind::Lru);
        c.insert(b"k", 7, 10, 0);
        assert!(c.contains(b"k", 0));
        assert_eq!(c.remove(b"k"), Some(7));
        assert!(!c.contains(b"k", 0));
        assert_eq!(c.stats().invalidations, 1);
    }

    fn filled(shards: u32, per_shard: u64, keys: u32) -> ShardedCache<u32> {
        let mut c = ShardedCache::new(shards, per_shard, PolicyKind::Lru);
        for i in 0..keys {
            let k = format!("key{i}").into_bytes();
            c.insert(&k, i, 100, 0);
        }
        c
    }

    #[test]
    fn resize_shrinks_and_grows_active_shards() {
        let mut c = filled(4, 1 << 20, 400);
        let before = c.total_used_bytes();
        let out = c.set_per_shard_capacity(1 << 10); // ~6 entries per shard
        assert!(out.evicted_entries > 0);
        assert!(c.total_used_bytes() < before);
        assert_eq!(c.total_capacity_bytes(), 4 << 10);
        let regrow = c.set_per_shard_capacity(1 << 20);
        assert_eq!(regrow.evicted_entries, 0, "growth never evicts");
        assert_eq!(c.total_capacity_bytes(), 4 << 20);
    }

    #[test]
    fn drain_migrates_residents_to_surviving_shards() {
        let mut c = filled(4, 1 << 20, 400);
        let before_used = c.total_used_bytes();
        let out = c.drain_shard(2, 0);
        assert!(out.migrated_entries > 0, "shard 2 owned some keys");
        assert_eq!(out.evicted_entries, 0, "plenty of headroom: nothing lost");
        assert_eq!(c.active_shards(), 3);
        assert_eq!(c.total_used_bytes(), before_used, "bytes conserved");
        // Every key is still resident and routed away from the drained shard.
        for i in 0..400u32 {
            let k = format!("key{i}").into_bytes();
            assert_ne!(c.owner(&k), 2);
            assert_eq!(c.get(&k, 0), Some(&i));
        }
        // Draining again (or a shard that never existed) is a no-op.
        assert_eq!(c.drain_shard(2, 0), ReshardOutcome::default());
    }

    #[test]
    fn drain_then_restore_matches_fresh_placement() {
        let mut c = filled(4, 1 << 20, 400);
        c.drain_shard(1, 0);
        c.restore_shard(1, 1 << 20, 0);
        assert_eq!(c.active_shards(), 4);
        let fresh: ShardedCache<u32> = ShardedCache::new(4, 1 << 20, PolicyKind::Lru);
        for i in 0..400u32 {
            let k = format!("key{i}").into_bytes();
            assert_eq!(c.owner(&k), fresh.owner(&k), "placement restored exactly");
            assert_eq!(c.get(&k, 0), Some(&i), "no key lost across drain+restore");
        }
        // Restoring a shard already on the ring changes nothing.
        assert_eq!(c.restore_shard(1, 1 << 20, 0), ReshardOutcome::default());
    }

    #[test]
    fn last_active_shard_cannot_be_drained() {
        let mut c = filled(2, 1 << 20, 50);
        c.drain_shard(0, 0);
        assert_eq!(c.active_shards(), 1);
        assert_eq!(c.drain_shard(1, 0), ReshardOutcome::default());
        assert_eq!(c.active_shards(), 1);
        for i in 0..50u32 {
            let k = format!("key{i}").into_bytes();
            assert_eq!(c.get(&k, 0), Some(&i));
        }
    }
}
