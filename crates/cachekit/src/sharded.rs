//! A cache partitioned across shards by consistent hashing.
//!
//! This models the paper's linked-cache deployment: each application server
//! holds one shard of the cache, and a request for a key is routed to the
//! server owning that key (§2.4, citing Slicer-style auto-sharding). The
//! total memory bill is the sum of shard capacities; the hit ratio is that
//! of whichever shard owns the key.

use crate::cache::{Cache, InsertOutcome};
use crate::policy::PolicyKind;
use crate::ring::HashRing;
use crate::stats::CacheStats;

/// Keys are byte strings here because routing hashes bytes; higher layers
/// provide typed wrappers.
pub struct ShardedCache<V> {
    shards: Vec<Cache<Vec<u8>, V>>,
    ring: HashRing,
}

impl<V> ShardedCache<V> {
    /// `shard_count` shards of `per_shard_bytes` each.
    pub fn new(shard_count: u32, per_shard_bytes: u64, policy: PolicyKind) -> Self {
        let shards = (0..shard_count)
            .map(|_| Cache::new(per_shard_bytes, policy))
            .collect();
        ShardedCache {
            shards,
            ring: HashRing::with_shards(shard_count, 128),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity across shards (the DRAM that gets billed).
    pub fn total_capacity_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.capacity_bytes()).sum()
    }

    pub fn total_used_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.used_bytes()).sum()
    }

    /// Which shard owns `key`.
    pub fn owner(&self, key: &[u8]) -> usize {
        self.ring
            .shard_for(key)
            .expect("ShardedCache always has shards") as usize
    }

    pub fn get(&mut self, key: &[u8], now: u64) -> Option<&V> {
        let shard = self.owner(key);
        self.shards[shard].get(key, now)
    }

    pub fn insert(&mut self, key: &[u8], value: V, value_bytes: u64, now: u64) -> InsertOutcome {
        let shard = self.owner(key);
        self.shards[shard].insert(key.to_vec(), value, value_bytes, now)
    }

    pub fn remove(&mut self, key: &[u8]) -> Option<V> {
        let shard = self.owner(key);
        self.shards[shard].remove(key)
    }

    pub fn contains(&self, key: &[u8], now: u64) -> bool {
        self.shards[self.owner(key)].contains(key, now)
    }

    /// Aggregate statistics across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            total += *s.stats();
        }
        total
    }

    /// Statistics of one shard (for imbalance analysis).
    pub fn shard_stats(&self, shard: usize) -> &CacheStats {
        self.shards[shard].stats()
    }

    pub fn reset_stats(&mut self) {
        for s in &mut self.shards {
            s.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_per_key() {
        let c: ShardedCache<u32> = ShardedCache::new(4, 1 << 20, PolicyKind::Lru);
        for i in 0..100 {
            let k = format!("key{i}").into_bytes();
            assert_eq!(c.owner(&k), c.owner(&k));
        }
    }

    #[test]
    fn get_after_insert_across_shards() {
        let mut c: ShardedCache<u32> = ShardedCache::new(4, 1 << 20, PolicyKind::Lru);
        for i in 0..100u32 {
            let k = format!("key{i}").into_bytes();
            c.insert(&k, i, 100, 0);
        }
        for i in 0..100u32 {
            let k = format!("key{i}").into_bytes();
            assert_eq!(c.get(&k, 0), Some(&i));
        }
        assert_eq!(c.stats().hits, 100);
    }

    #[test]
    fn shards_fill_roughly_evenly() {
        let mut c: ShardedCache<()> = ShardedCache::new(4, 1 << 30, PolicyKind::Lru);
        for i in 0..4_000u32 {
            let k = format!("key{i}").into_bytes();
            c.insert(&k, (), 100, 0);
        }
        for shard in 0..4 {
            let inserts = c.shard_stats(shard).inserts;
            assert!(
                (500..=1_500).contains(&inserts),
                "shard {shard} got {inserts} inserts"
            );
        }
    }

    #[test]
    fn total_capacity_sums_shards() {
        let c: ShardedCache<()> = ShardedCache::new(3, 1_000, PolicyKind::Lru);
        assert_eq!(c.total_capacity_bytes(), 3_000);
    }

    #[test]
    fn remove_invalidates_only_owner_shard() {
        let mut c: ShardedCache<u32> = ShardedCache::new(4, 1 << 20, PolicyKind::Lru);
        c.insert(b"k", 7, 10, 0);
        assert!(c.contains(b"k", 0));
        assert_eq!(c.remove(b"k"), Some(7));
        assert!(!c.contains(b"k", 0));
        assert_eq!(c.stats().invalidations, 1);
    }
}
