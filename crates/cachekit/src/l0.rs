//! The in-process L0 hot-key tier.
//!
//! A few megabytes of cache *inside* the application process absorb the
//! Zipf head at near-zero CPU: no RPC, no serialization, one hash probe.
//! This is the HybridKV-style third point on the paper's curve between
//! Remote's per-RPC CPU tax and Linked's DRAM duplication — the L0 is so
//! small that duplicating it per app server costs almost nothing, while
//! the keys it holds are exactly the ones whose lookups dominate the bill.
//!
//! Correctness model:
//!
//! * **Hard byte cap.** The L0 never exceeds its configured capacity;
//!   admission is TinyLFU-gated so scans and one-hit wonders cannot wash
//!   out the head (see [`crate::admission`]).
//! * **Strict version-based invalidation.** Every entry carries the
//!   version of the value it was filled from. [`L0Cache::invalidate`]
//!   carries the writer's new version and only removes entries that are
//!   actually older; an admit whose version is behind the resident entry's
//!   is dropped (a late refill must never roll a key backwards).
//! * **Fail-open.** Any miss, expiry or version mismatch returns `None`
//!   and the caller falls through to the authoritative path. The L0 can
//!   only ever *add* a fast path, never change an outcome.
//!
//! Two consistency modes ([`L0Mode`]):
//!
//! * `InvalidateFirst` — writers invalidate the L0 before acknowledging,
//!   so a hit is always fresh at its version (the coherent mode).
//! * `ServeStale` — writers leave the L0 alone and entries simply expire
//!   `stale_after_nanos` after they were stored, so a hit may be stale but
//!   never by more than the declared bound (the cheap mode).

use crate::cache::{Cache, CacheKeyHash, InsertOutcome};
use crate::policy::PolicyKind;
use serde::{Deserialize, Serialize};

/// Consistency mode for the L0 tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum L0Mode {
    /// Writers invalidate before acking: every hit is fresh at its version.
    InvalidateFirst,
    /// Writers skip the L0; entries expire `stale_after_nanos` after being
    /// stored, bounding how stale any served value can be.
    ServeStale { stale_after_nanos: u64 },
}

/// Sizing and mode for an [`L0Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct L0Params {
    /// Hard byte cap (entry overhead included, like [`Cache`]).
    pub capacity_bytes: u64,
    /// Sizes the TinyLFU sketch (≈ capacity / mean hot-entry size).
    pub expected_entries: usize,
    pub mode: L0Mode,
}

/// Counters the deployment lifts into its report and telemetry export.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct L0Stats {
    pub hits: u64,
    pub misses: u64,
    /// Entries accepted by the TinyLFU gate.
    pub admitted: u64,
    /// Candidates the TinyLFU gate judged colder than the victim.
    pub rejected: u64,
    /// Admits dropped because the resident entry was already newer.
    pub stale_admits_dropped: u64,
    /// Entries removed by a versioned invalidation.
    pub invalidations: u64,
    /// Invalidations that found nothing older to remove.
    pub invalidation_misses: u64,
}

/// A served L0 value with its provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L0Hit<'a, V> {
    pub value: &'a V,
    /// Version of the authoritative value this entry was filled from.
    pub version: u64,
    /// Nanoseconds since the entry was stored (staleness upper bound).
    pub age_nanos: u64,
}

#[derive(Debug, Clone)]
struct L0Entry<V> {
    value: V,
    version: u64,
    stored_at: u64,
}

/// The tier itself: a TinyLFU-admitted, byte-capped cache of versioned
/// entries. See module docs for the consistency model.
#[derive(Debug, Clone)]
pub struct L0Cache<K, V> {
    cache: Cache<K, L0Entry<V>>,
    mode: L0Mode,
    stats: L0Stats,
}

impl<K: CacheKeyHash + Eq + Clone, V> L0Cache<K, V> {
    pub fn new(params: L0Params) -> Self {
        L0Cache {
            cache: Cache::new(params.capacity_bytes, PolicyKind::Lru)
                .with_tinylfu(params.expected_entries.max(16)),
            mode: params.mode,
            stats: L0Stats::default(),
        }
    }

    pub fn mode(&self) -> L0Mode {
        self.mode
    }

    pub fn capacity_bytes(&self) -> u64 {
        self.cache.capacity_bytes()
    }

    pub fn used_bytes(&self) -> u64 {
        self.cache.used_bytes()
    }

    pub fn len(&self) -> usize {
        self.cache.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    pub fn stats(&self) -> L0Stats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = L0Stats::default();
        self.cache.reset_stats();
    }

    /// Serve `key` if resident and within the mode's freshness rules.
    /// Expired (serve-stale) entries are dropped on the way out, so a
    /// `None` here is always safe to fail open on.
    pub fn get(&mut self, key: &K, now: u64) -> Option<L0Hit<'_, V>> {
        match self.cache.get(key, now) {
            Some(e) => {
                self.stats.hits += 1;
                Some(L0Hit {
                    version: e.version,
                    age_nanos: now.saturating_sub(e.stored_at),
                    value: &e.value,
                })
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Offer a freshly-fetched value at `version` to the tier. Returns
    /// true if the entry is now resident. The TinyLFU gate may refuse a
    /// cold candidate; an offer older than the resident entry is dropped
    /// (strict versioning: the tier never rolls a key backwards).
    pub fn admit(&mut self, key: K, value: V, version: u64, value_bytes: u64, now: u64) -> bool {
        if let Some(resident) = self.cache.peek(&key) {
            if version < resident.version {
                self.stats.stale_admits_dropped += 1;
                return false;
            }
        }
        let entry = L0Entry {
            value,
            version,
            stored_at: now,
        };
        let outcome = match self.mode {
            L0Mode::InvalidateFirst => self.cache.insert(key, entry, value_bytes, now),
            L0Mode::ServeStale { stale_after_nanos } => {
                self.cache
                    .insert_with_ttl(key, entry, value_bytes, now, stale_after_nanos)
            }
        };
        match outcome {
            InsertOutcome::Inserted { .. } | InsertOutcome::Replaced { .. } => {
                self.stats.admitted += 1;
                true
            }
            InsertOutcome::TooLarge | InsertOutcome::NotAdmitted => {
                self.stats.rejected += 1;
                false
            }
        }
    }

    /// A writer moved `key` to `new_version`: drop the resident entry if
    /// it is older. Entries already at or past `new_version` stay (they
    /// were filled from the new write or something newer). Returns true
    /// if an entry was removed.
    pub fn invalidate(&mut self, key: &K, new_version: u64) -> bool {
        let stale = self
            .cache
            .peek(key)
            .map(|e| e.version < new_version)
            .unwrap_or(false);
        if stale {
            self.cache.remove(key);
            self.stats.invalidations += 1;
            true
        } else {
            self.stats.invalidation_misses += 1;
            false
        }
    }

    /// Drop everything (deployment resets between phases).
    pub fn clear(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l0(capacity: u64, mode: L0Mode) -> L0Cache<u64, u64> {
        L0Cache::new(L0Params {
            capacity_bytes: capacity,
            expected_entries: 64,
            mode,
        })
    }

    #[test]
    fn hit_carries_version_and_age() {
        let mut c = l0(4096, L0Mode::InvalidateFirst);
        assert!(c.admit(1, 100, 7, 16, 1_000));
        let hit = c.get(&1, 3_500).expect("resident");
        assert_eq!(*hit.value, 100);
        assert_eq!(hit.version, 7);
        assert_eq!(hit.age_nanos, 2_500);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn invalidation_is_strictly_versioned() {
        let mut c = l0(4096, L0Mode::InvalidateFirst);
        c.admit(1, 100, 5, 16, 0);
        // An invalidation at the same version is a no-op (entry is fresh).
        assert!(!c.invalidate(&1, 5));
        assert!(c.get(&1, 0).is_some());
        // A newer write removes it.
        assert!(c.invalidate(&1, 6));
        assert!(c.get(&1, 0).is_none(), "fail open after invalidation");
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn late_refill_never_rolls_back() {
        let mut c = l0(4096, L0Mode::InvalidateFirst);
        c.admit(1, 200, 9, 16, 0);
        assert!(!c.admit(1, 100, 8, 16, 1), "older offer must be dropped");
        assert_eq!(*c.get(&1, 2).unwrap().value, 200);
        assert_eq!(c.stats().stale_admits_dropped, 1);
    }

    #[test]
    fn serve_stale_expires_at_the_declared_bound() {
        let bound = 1_000_000; // 1 ms
        let mut c = l0(
            4096,
            L0Mode::ServeStale {
                stale_after_nanos: bound,
            },
        );
        c.admit(1, 100, 1, 16, 0);
        assert!(c.get(&1, bound - 1).is_some(), "within bound: served");
        assert!(c.get(&1, bound).is_none(), "at the bound: fail open");
    }

    #[test]
    fn byte_cap_is_hard() {
        let mut c = l0(1024, L0Mode::InvalidateFirst);
        for k in 0..100u64 {
            c.admit(k, k, 1, 64, k);
            assert!(c.used_bytes() <= c.capacity_bytes());
        }
        assert!(c.len() < 100, "cap must have forced eviction or rejection");
    }

    #[test]
    fn tinylfu_protects_the_head_from_scans() {
        let mut c = l0(2048, L0Mode::InvalidateFirst);
        // Build a hot working set with repeated gets + admits.
        for round in 0..10u64 {
            for k in 0..10u64 {
                if c.get(&k, round).is_none() {
                    c.admit(k, k, 1, 64, round);
                }
            }
        }
        // A cold scan must mostly bounce off the admission gate.
        let before = c.stats().rejected;
        for k in 1_000..1_200u64 {
            c.admit(k, k, 1, 64, 100);
        }
        let rejected = c.stats().rejected - before;
        assert!(rejected >= 150, "scan keys admitted too easily: {rejected}");
        // The head survives.
        let mut resident = 0;
        for k in 0..10u64 {
            if c.get(&k, 200).is_some() {
                resident += 1;
            }
        }
        assert!(resident >= 8, "hot head washed out: {resident}/10");
    }
}
