//! # cachekit — the cache toolkit underlying every architecture in this repo
//!
//! The paper compares storage-layer caches, remote lookaside caches, and
//! application-linked caches. All three are, underneath, a byte-bounded
//! key-value cache with an eviction policy; they differ in *where* they sit
//! and what CPU their access path burns. `cachekit` provides that shared
//! machinery:
//!
//! * [`Cache`] — a byte-capacity-bounded cache with per-entry charges,
//!   optional TTL, and hit/miss/eviction statistics,
//! * [`PolicyKind`] — pluggable eviction: LRU, FIFO, LFU, SLRU, CLOCK
//!   (the eviction ablation bench sweeps these),
//! * [`admission`] — optional TinyLFU admission (count-min sketch +
//!   doorkeeper) gating what may enter a full cache,
//! * [`l0::L0Cache`] — the in-process hot-key tier: a few MB of
//!   TinyLFU-admitted, version-invalidated cache inside each app server
//!   that absorbs the Zipf head at near-zero CPU,
//! * [`ring::HashRing`] — consistent hashing used to shard linked caches
//!   across application servers (§2.4: "linked caches are typically
//!   sharded"),
//! * [`sharded::ShardedCache`] — a cache partitioned over a ring,
//! * [`mrc`] — miss-ratio-curve estimation, both analytic (Zipfian) and
//!   trace-driven (Mattson stack distances), feeding the §4 theoretical
//!   model.
//!
//! Time is expressed as plain `u64` nanoseconds so the crate stays
//! independent of the simulator; `simnet::SimTime::as_nanos` bridges them.

pub mod admission;
pub mod cache;
pub mod fxhash;
pub mod intern;
pub mod l0;
pub mod list;
pub mod mrc;
pub mod policy;
pub mod ring;
pub mod sharded;
pub mod stats;

pub use admission::TinyLfu;
pub use cache::{Cache, CacheKeyHash, InsertOutcome};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHasher};
pub use intern::{InternedKey, KeyInterner};
pub use l0::{L0Cache, L0Hit, L0Mode, L0Params, L0Stats};
pub use mrc::{zipf_hit_ratio, MissRatioCurve, StackDistance};
pub use policy::PolicyKind;
pub use ring::HashRing;
pub use sharded::{ReshardOutcome, ShardedCache};
pub use stats::CacheStats;
