//! A byte-capacity-bounded cache with pluggable eviction and optional TTL.
//!
//! Capacity is expressed in bytes because the paper bills DRAM by the
//! gigabyte: a cache holding few large values must cost the same memory as
//! one holding many small values. Each entry carries an explicit `charge`
//! (value bytes plus per-entry overhead), and inserts evict until the charge
//! fits.
//!
//! Time is a caller-supplied `u64` nanosecond clock (the simulator's virtual
//! clock in practice). Expired entries count as misses and are lazily
//! reclaimed on access; `expire_sweep` supports proactive reclamation.

use crate::admission::TinyLfu;
use crate::fxhash::FxHashMap;
use crate::policy::{Policy, PolicyImpl, PolicyKind};
use crate::stats::CacheStats;
use std::borrow::Borrow;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

/// The admission-sketch hash the cache has always used: FNV-1a over the
/// key's `std::hash::Hash` byte stream, finished with SplitMix64. Stable
/// across runs and platforms for keys that hash deterministic bytes.
pub(crate) fn legacy_sketch_hash<Q>(key: &Q) -> u64
where
    Q: Hash + ?Sized,
{
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            crate::ring::splitmix64(self.0)
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100000001b3);
            }
        }
    }
    let mut h = Fnv(0xcbf29ce484222325);
    key.hash(&mut h);
    h.finish()
}

/// Keys a [`Cache`] can index: hashable, plus a stable admission-sketch
/// hash. The provided method computes the sketch hash the cache has always
/// used; implementors that already know their bytes' hash (interned keys)
/// override it with the precomputed value — which must equal what the
/// default would produce for the original byte key, or TinyLFU admission
/// decisions change.
///
/// Implemented explicitly (no blanket impl) so a key type with a custom
/// override can never be shadowed by a generic one.
pub trait CacheKeyHash: Hash {
    fn sketch_hash(&self) -> u64 {
        legacy_sketch_hash(self)
    }
}

impl CacheKeyHash for Vec<u8> {}
impl CacheKeyHash for [u8] {}
impl CacheKeyHash for Box<[u8]> {}
impl CacheKeyHash for String {}
impl CacheKeyHash for str {}
impl CacheKeyHash for u8 {}
impl CacheKeyHash for u16 {}
impl CacheKeyHash for u32 {}
impl CacheKeyHash for u64 {}
impl CacheKeyHash for usize {}
impl CacheKeyHash for i64 {}
impl<A: CacheKeyHash, B: CacheKeyHash> CacheKeyHash for (A, B) {}

/// Fixed per-entry metadata overhead added to every charge, approximating
/// hash-table, policy and allocator bookkeeping (Memcached's item overhead is
/// ~50–60 B; we use 64).
pub const ENTRY_OVERHEAD_BYTES: u64 = 64;

#[derive(Debug, Clone)]
struct Entry<K, V> {
    key: K,
    value: V,
    charge: u64,
    /// Absolute expiry in nanoseconds; u64::MAX = never.
    expires_at: u64,
}

/// Outcome of an insert, so callers can account for admission behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Entry admitted; `evicted` entries were displaced to make room.
    Inserted { evicted: usize },
    /// Entry replaced an existing value under the same key.
    Replaced { evicted: usize },
    /// Entry is larger than the whole cache and was rejected.
    TooLarge,
    /// TinyLFU admission judged the candidate colder than the eviction
    /// victim it would displace; the cache is unchanged.
    NotAdmitted,
}

/// Byte-bounded key-value cache. See module docs.
#[derive(Debug, Clone)]
pub struct Cache<K, V> {
    map: FxHashMap<K, usize>,
    slab: Vec<Option<Entry<K, V>>>,
    free: Vec<usize>,
    policy: PolicyImpl,
    kind: PolicyKind,
    capacity_bytes: u64,
    used_bytes: u64,
    default_ttl_nanos: Option<u64>,
    admission: Option<TinyLfu>,
    stats: CacheStats,
    /// Expiry index over entries with a finite deadline, ordered by
    /// `(expires_at, slot)`. Entries with `expires_at == u64::MAX` (never)
    /// are not indexed, so caches that never use TTLs pay nothing beyond a
    /// branch per insert/remove and `expire_sweep` on them is O(1).
    expiry: BTreeSet<(u64, usize)>,
}

impl<K: CacheKeyHash + Eq + Clone, V> Cache<K, V> {
    /// Create a cache bounded to `capacity_bytes` with the given policy.
    pub fn new(capacity_bytes: u64, kind: PolicyKind) -> Self {
        Cache {
            map: FxHashMap::default(),
            slab: Vec::new(),
            free: Vec::new(),
            policy: kind.build(),
            kind,
            capacity_bytes,
            used_bytes: 0,
            default_ttl_nanos: None,
            admission: None,
            stats: CacheStats::default(),
            expiry: BTreeSet::new(),
        }
    }

    /// LRU cache — the default everywhere in the paper's deployments.
    pub fn lru(capacity_bytes: u64) -> Self {
        Cache::new(capacity_bytes, PolicyKind::Lru)
    }

    /// Set a default TTL applied to entries inserted without an explicit one.
    pub fn with_default_ttl(mut self, ttl_nanos: u64) -> Self {
        self.default_ttl_nanos = Some(ttl_nanos);
        self
    }

    /// Change the default TTL at runtime (the TTL control plane's knob).
    /// Applies to future inserts only; resident entries keep the deadline
    /// they were stored with. `None` disables the default TTL.
    pub fn set_default_ttl(&mut self, ttl_nanos: Option<u64>) {
        self.default_ttl_nanos = ttl_nanos;
    }

    /// The default TTL currently applied to inserts, if any.
    pub fn default_ttl_nanos(&self) -> Option<u64> {
        self.default_ttl_nanos
    }

    /// Enable TinyLFU admission: when the cache is full, a new entry only
    /// displaces the eviction victim if it is historically more popular.
    /// `expected_entries` sizes the frequency sketch (≈ capacity / mean
    /// entry size).
    pub fn with_tinylfu(mut self, expected_entries: usize) -> Self {
        self.admission = Some(TinyLfu::new(expected_entries));
        self
    }

    pub fn policy_kind(&self) -> PolicyKind {
        self.kind
    }

    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn alloc_slot(&mut self, entry: Entry<K, V>) -> usize {
        if let Some(slot) = self.free.pop() {
            self.slab[slot] = Some(entry);
            slot
        } else {
            self.slab.push(Some(entry));
            self.slab.len() - 1
        }
    }

    fn drop_slot(&mut self, slot: usize) -> Entry<K, V> {
        let entry = self.slab[slot].take().expect("slot must be occupied");
        self.free.push(slot);
        self.map.remove(&entry.key);
        self.policy.on_remove(slot);
        self.used_bytes -= entry.charge;
        if entry.expires_at != u64::MAX {
            self.expiry.remove(&(entry.expires_at, slot));
        }
        entry
    }

    /// Evict the policy's victim; returns the evicted key. Panics if empty
    /// (callers guard on `len()`).
    fn evict_one(&mut self) -> K {
        let victim = self
            .policy
            .victim()
            .expect("evict_one called on empty cache");
        let entry = self.drop_slot(victim);
        self.stats.evictions += 1;
        entry.key
    }

    /// Insert with the cache's default TTL (or no TTL).
    pub fn insert(&mut self, key: K, value: V, value_bytes: u64, now: u64) -> InsertOutcome {
        let expires = self
            .default_ttl_nanos
            .map(|t| now.saturating_add(t))
            .unwrap_or(u64::MAX);
        self.insert_with_expiry(key, value, value_bytes, now, expires)
    }

    /// Insert with an explicit TTL relative to `now`.
    pub fn insert_with_ttl(
        &mut self,
        key: K,
        value: V,
        value_bytes: u64,
        now: u64,
        ttl_nanos: u64,
    ) -> InsertOutcome {
        self.insert_with_expiry(key, value, value_bytes, now, now.saturating_add(ttl_nanos))
    }

    fn insert_with_expiry(
        &mut self,
        key: K,
        value: V,
        value_bytes: u64,
        _now: u64,
        expires_at: u64,
    ) -> InsertOutcome {
        let charge = value_bytes.saturating_add(ENTRY_OVERHEAD_BYTES);
        if charge > self.capacity_bytes {
            self.stats.rejected += 1;
            return InsertOutcome::TooLarge;
        }
        let candidate_hash = if let Some(adm) = &mut self.admission {
            let h = key.sketch_hash();
            adm.record(h);
            Some(h)
        } else {
            None
        };
        let replaced = if let Some(&slot) = self.map.get(&key) {
            self.drop_slot(slot);
            true
        } else {
            false
        };
        // TinyLFU gate: if making room would displace a historically more
        // popular victim, refuse the candidate instead (never gates
        // replacements of the same key or inserts that fit for free).
        if !replaced && self.used_bytes + charge > self.capacity_bytes {
            if let (Some(cand), Some(adm)) = (candidate_hash, &self.admission) {
                let victim_hash = self
                    .policy
                    .victim()
                    .and_then(|slot| self.slab[slot].as_ref())
                    .map(|e| e.key.sketch_hash());
                if let Some(victim) = victim_hash {
                    if !adm.admit(cand, victim) {
                        self.stats.rejected += 1;
                        return InsertOutcome::NotAdmitted;
                    }
                }
            }
        }
        let mut evicted = 0;
        while self.used_bytes + charge > self.capacity_bytes {
            self.evict_one();
            evicted += 1;
        }
        let entry = Entry {
            key: key.clone(),
            value,
            charge,
            expires_at,
        };
        let slot = self.alloc_slot(entry);
        self.map.insert(key, slot);
        self.policy.on_insert(slot);
        self.used_bytes += charge;
        if expires_at != u64::MAX {
            self.expiry.insert((expires_at, slot));
        }
        self.stats.inserts += 1;
        if replaced {
            InsertOutcome::Replaced { evicted }
        } else {
            InsertOutcome::Inserted { evicted }
        }
    }

    /// Look up `key` at time `now`. Records hit/miss statistics; expired
    /// entries are removed and count as misses.
    pub fn get<Q>(&mut self, key: &Q, now: u64) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: CacheKeyHash + Eq + ?Sized,
    {
        if let Some(adm) = &mut self.admission {
            adm.record(key.sketch_hash());
        }
        let slot = match self.map.get(key) {
            Some(&s) => s,
            None => {
                self.stats.misses += 1;
                return None;
            }
        };
        let expired = self.slab[slot]
            .as_ref()
            .map(|e| e.expires_at <= now)
            .unwrap_or(true);
        if expired {
            self.drop_slot(slot);
            self.stats.expired += 1;
            self.stats.misses += 1;
            return None;
        }
        self.policy.on_hit(slot);
        self.stats.hits += 1;
        self.slab[slot].as_ref().map(|e| &e.value)
    }

    /// Look up without affecting recency or statistics (for invariants,
    /// invalidation checks, and tests).
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map
            .get(key)
            .and_then(|&s| self.slab[s].as_ref())
            .map(|e| &e.value)
    }

    /// The charge currently held for `key`, if resident.
    pub fn charge_of<Q>(&self, key: &Q) -> Option<u64>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map
            .get(key)
            .and_then(|&s| self.slab[s].as_ref())
            .map(|e| e.charge)
    }

    /// Remove `key`, returning its value (used for invalidation).
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let slot = *self.map.get(key)?;
        let entry = self.drop_slot(slot);
        self.stats.invalidations += 1;
        Some(entry.value)
    }

    /// Whether `key` is resident and unexpired at `now` (no stats effect).
    pub fn contains<Q>(&self, key: &Q, now: u64) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map
            .get(key)
            .and_then(|&s| self.slab[s].as_ref())
            .map(|e| e.expires_at > now)
            .unwrap_or(false)
    }

    /// Drop every expired entry; returns how many were reclaimed. O(k log n)
    /// in the number reclaimed via the expiry index — a sweep over a cache
    /// with nothing expired (or no finite TTLs at all) touches no entries.
    pub fn expire_sweep(&mut self, now: u64) -> usize {
        let mut n = 0;
        while let Some(&(deadline, slot)) = self.expiry.iter().next() {
            if deadline > now {
                break;
            }
            self.drop_slot(slot);
            self.stats.expired += 1;
            n += 1;
        }
        n
    }

    /// Bytes held by entries still alive at `now`: `used_bytes` minus the
    /// charges of entries whose deadline has lapsed but which no sweep or
    /// access has reclaimed yet. This is what memory billing and profilers
    /// should read — expired residents are ghosts, not working set.
    pub fn resident_bytes(&self, now: u64) -> u64 {
        let mut lapsed = 0u64;
        for &(deadline, slot) in self.expiry.iter() {
            if deadline > now {
                break;
            }
            if let Some(e) = self.slab[slot].as_ref() {
                lapsed += e.charge;
            }
        }
        self.used_bytes - lapsed
    }

    /// Resize the cache to `capacity_bytes`, evicting (policy order) until
    /// the resident set fits. Returns how many entries were evicted; growth
    /// never evicts. This is the primitive an elastic controller uses to
    /// track a changing capacity plan.
    pub fn set_capacity(&mut self, capacity_bytes: u64) -> usize {
        self.capacity_bytes = capacity_bytes;
        let mut evicted = 0;
        while self.used_bytes > self.capacity_bytes && !self.is_empty() {
            self.evict_one();
            evicted += 1;
        }
        evicted
    }

    /// Remove `key` without touching hit/miss/invalidation statistics,
    /// returning its value and charge. For migration between shards, where
    /// the move is an artifact of resharding rather than cache traffic.
    pub fn take<Q>(&mut self, key: &Q) -> Option<(V, u64)>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let slot = *self.map.get(key)?;
        let entry = self.drop_slot(slot);
        Some((entry.value, entry.charge))
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        let occupied: Vec<usize> = self
            .slab
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|_| i))
            .collect();
        for slot in occupied {
            self.drop_slot(slot);
        }
    }

    /// Iterate resident keys (unspecified order; for tests and resharding).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.slab.iter().flatten().map(|e| &e.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(cap: u64) -> Cache<String, u64> {
        Cache::lru(cap)
    }

    const T0: u64 = 0;

    #[test]
    fn get_after_insert_returns_value() {
        let mut c = cache(10_000);
        c.insert("a".into(), 1, 100, T0);
        assert_eq!(c.get("a", T0), Some(&1));
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn miss_on_absent_key() {
        let mut c = cache(10_000);
        assert_eq!(c.get("nope", T0), None);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = cache(1_000);
        for i in 0..50 {
            c.insert(format!("k{i}"), i, 100, T0);
            assert!(c.used_bytes() <= c.capacity_bytes());
        }
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn lru_evicts_cold_keys_first() {
        // capacity for ~4 entries of charge 164
        let mut c = cache(700);
        for k in ["a", "b", "c", "d"] {
            c.insert(k.into(), 0, 100, T0);
        }
        c.get("a", T0); // warm "a"
        c.insert("e".into(), 0, 100, T0); // evicts "b"
        assert!(c.contains("a", T0));
        assert!(!c.contains("b", T0));
        assert!(c.contains("e", T0));
    }

    #[test]
    fn replace_updates_value_and_charge() {
        let mut c = cache(10_000);
        c.insert("k".into(), 1, 100, T0);
        let out = c.insert("k".into(), 2, 500, T0);
        assert!(matches!(out, InsertOutcome::Replaced { .. }));
        assert_eq!(c.get("k", T0), Some(&2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 500 + ENTRY_OVERHEAD_BYTES);
    }

    #[test]
    fn oversized_entry_is_rejected() {
        let mut c = cache(100);
        let out = c.insert("big".into(), 0, 1_000, T0);
        assert_eq!(out, InsertOutcome::TooLarge);
        assert!(c.is_empty());
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn ttl_expires_entries_lazily() {
        let mut c = cache(10_000);
        c.insert_with_ttl("k".into(), 9, 10, T0, 1_000);
        assert_eq!(c.get("k", 999), Some(&9));
        assert_eq!(c.get("k", 1_000), None); // expired exactly at deadline
        assert_eq!(c.stats().expired, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn default_ttl_applies_when_set() {
        let mut c = cache(10_000).with_default_ttl(500);
        c.insert("k".into(), 1, 10, 100);
        assert!(c.contains("k", 599));
        assert!(!c.contains("k", 600));
    }

    #[test]
    fn expire_sweep_reclaims_bytes() {
        let mut c = cache(10_000);
        c.insert_with_ttl("a".into(), 1, 10, T0, 100);
        c.insert_with_ttl("b".into(), 2, 10, T0, 100);
        c.insert("c".into(), 3, 10, T0);
        assert_eq!(c.expire_sweep(200), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 10 + ENTRY_OVERHEAD_BYTES);
    }

    #[test]
    fn remove_returns_value_and_counts_invalidation() {
        let mut c = cache(10_000);
        c.insert("k".into(), 42, 10, T0);
        assert_eq!(c.remove("k"), Some(42));
        assert_eq!(c.remove("k"), None);
        assert_eq!(c.stats().invalidations, 1);
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn peek_does_not_touch_stats_or_recency() {
        let mut c = cache(700);
        for k in ["a", "b", "c", "d"] {
            c.insert(k.into(), 0, 100, T0);
        }
        assert!(c.peek("a").is_some());
        assert_eq!(c.stats().hits, 0);
        // "a" was not promoted by peek, so it is still the LRU victim.
        c.insert("e".into(), 0, 100, T0);
        assert!(!c.contains("a", T0));
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = cache(10_000);
        for i in 0..10 {
            c.insert(format!("k{i}"), i, 50, T0);
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        // reuse after clear works
        c.insert("x".into(), 1, 50, T0);
        assert_eq!(c.get("x", T0), Some(&1));
    }

    #[test]
    fn hit_ratio_reflects_traffic() {
        let mut c = cache(100_000);
        c.insert("k".into(), 1, 10, T0);
        for _ in 0..9 {
            c.get("k", T0);
        }
        c.get("absent", T0);
        assert!((c.stats().hit_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn tinylfu_protects_hot_entries_from_scans() {
        // A full cache of hot keys, then a one-pass scan of cold keys: with
        // TinyLFU the scan must not displace the hot set.
        let mut c: Cache<u64, ()> = Cache::lru(164 * 20).with_tinylfu(64);
        for k in 0..20u64 {
            c.insert(k, (), 100, 0);
        }
        // Heat the residents (recorded by the sketch via get()).
        for _ in 0..5 {
            for k in 0..20u64 {
                c.get(&k, 0);
            }
        }
        // One-hit-wonder scan.
        let mut rejected = 0;
        for k in 1_000..1_200u64 {
            if c.insert(k, (), 100, 0) == InsertOutcome::NotAdmitted {
                rejected += 1;
            }
        }
        assert!(rejected >= 190, "scan keys must be rejected: {rejected}/200");
        // Hot set intact.
        let resident = (0..20u64).filter(|k| c.contains(k, 0)).count();
        assert!(resident >= 18, "hot set was washed out: {resident}/20");
    }

    #[test]
    fn tinylfu_admits_keys_that_become_popular() {
        let mut c: Cache<u64, ()> = Cache::lru(164 * 10).with_tinylfu(64);
        for k in 0..10u64 {
            c.insert(k, (), 100, 0);
        }
        // Key 99 gets requested repeatedly (each miss records a touch via
        // get, each attempted insert records another).
        for _ in 0..10 {
            c.get(&99, 0);
            c.insert(99, (), 100, 0);
        }
        assert!(c.contains(&99, 0), "a genuinely popular key must get in");
    }

    #[test]
    fn tinylfu_never_gates_replacements_or_free_inserts() {
        let mut c: Cache<u64, u64> = Cache::lru(1 << 20).with_tinylfu(64);
        // Fits for free: always admitted.
        assert!(matches!(c.insert(1, 10, 100, 0), InsertOutcome::Inserted { .. }));
        // Same-key replacement: always admitted even when full.
        let mut small: Cache<u64, u64> = Cache::lru(164).with_tinylfu(64);
        small.insert(1, 10, 100, 0);
        assert!(matches!(small.insert(1, 20, 100, 0), InsertOutcome::Replaced { .. }));
        assert_eq!(small.get(&1, 0), Some(&20));
    }

    #[test]
    fn set_capacity_shrink_evicts_lru_order_and_grow_is_free() {
        let mut c = cache(1_000);
        for k in ["a", "b", "c", "d", "e"] {
            c.insert(k.into(), 0, 100, T0); // charge 164 each, 820 total
        }
        c.get("a", T0); // warm "a" so "b" is the LRU victim
        let evicted = c.set_capacity(500); // fits 3 entries of 164
        assert_eq!(evicted, 2);
        assert!(!c.contains("b", T0) && !c.contains("c", T0));
        assert!(c.contains("a", T0));
        assert!(c.used_bytes() <= c.capacity_bytes());
        assert_eq!(c.stats().evictions, 2);
        // Growing back never evicts and leaves residents intact.
        assert_eq!(c.set_capacity(10_000), 0);
        assert_eq!(c.len(), 3);
        assert_eq!(c.capacity_bytes(), 10_000);
    }

    #[test]
    fn set_capacity_to_zero_empties_the_cache() {
        let mut c = cache(1_000);
        c.insert("k".into(), 1, 100, T0);
        assert_eq!(c.set_capacity(0), 1);
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn take_returns_value_and_charge_without_stats() {
        let mut c = cache(10_000);
        c.insert("k".into(), 42, 100, T0);
        let before = *c.stats();
        assert_eq!(c.take("k"), Some((42, 100 + ENTRY_OVERHEAD_BYTES)));
        assert_eq!(c.take("k"), None);
        assert_eq!(*c.stats(), before, "take must not move any counter");
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn ttl_boundary_expires_exactly_at_deadline() {
        // `expires_at == now` is a miss: an entry with TTL t inserted at
        // time 0 serves through t-1 and not at t (pinned above in
        // ttl_expires_entries_lazily too; this one also checks contains()).
        let mut c = cache(10_000);
        c.insert_with_ttl("k".into(), 1, 10, T0, 1_000);
        assert!(c.contains("k", 999));
        assert!(!c.contains("k", 1_000));
        assert_eq!(c.get("k", 1_000), None);
    }

    #[test]
    fn zero_ttl_is_an_immediate_miss_without_panicking() {
        let mut c = cache(10_000);
        c.insert_with_ttl("k".into(), 1, 10, 500, 0);
        assert_eq!(c.get("k", 500), None);
        assert_eq!(c.stats().expired, 1);
        let mut d = cache(10_000).with_default_ttl(0);
        d.insert("k".into(), 1, 10, 500);
        assert_eq!(d.get("k", 500), None);
    }

    #[test]
    fn overflowing_ttl_saturates_to_never_expires() {
        let mut c = cache(10_000);
        c.insert_with_ttl("k".into(), 1, 10, 5, u64::MAX);
        assert!(c.contains("k", u64::MAX - 1));
        assert_eq!(c.get("k", u64::MAX - 1), Some(&1));
        assert_eq!(c.expire_sweep(u64::MAX - 1), 0);
        let mut d = cache(10_000).with_default_ttl(u64::MAX);
        d.insert("k".into(), 2, 10, 7);
        assert!(d.contains("k", u64::MAX - 1));
    }

    #[test]
    fn overwrite_resets_ttl() {
        let mut c = cache(10_000);
        c.insert_with_ttl("k".into(), 1, 10, T0, 100);
        // Re-insert at t=50 with a fresh TTL: the old deadline is gone.
        c.insert_with_ttl("k".into(), 2, 10, 50, 100);
        assert_eq!(c.get("k", 120), Some(&2));
        assert_eq!(c.get("k", 150), None);
        // And a TTL'd entry overwritten without a TTL never expires.
        c.insert_with_ttl("k".into(), 3, 10, 200, 100);
        c.insert("k".into(), 4, 10, 250);
        assert_eq!(c.get("k", 100_000), Some(&4));
        assert_eq!(c.expire_sweep(u64::MAX - 1), 0);
    }

    #[test]
    fn set_default_ttl_applies_to_future_inserts_only() {
        let mut c = cache(10_000);
        c.insert("old".into(), 1, 10, T0);
        c.set_default_ttl(Some(100));
        assert_eq!(c.default_ttl_nanos(), Some(100));
        c.insert("new".into(), 2, 10, T0);
        assert!(c.contains("old", 1_000), "pre-change entries keep their deadline");
        assert!(!c.contains("new", 1_000));
        c.set_default_ttl(None);
        c.insert("later".into(), 3, 10, T0);
        assert!(c.contains("later", 1_000));
    }

    #[test]
    fn resident_bytes_drops_the_moment_entries_lapse() {
        let mut c = cache(10_000);
        c.insert_with_ttl("a".into(), 1, 100, T0, 1_000);
        c.insert("b".into(), 2, 100, T0);
        let charge = 100 + ENTRY_OVERHEAD_BYTES;
        assert_eq!(c.resident_bytes(999), 2 * charge);
        // At the deadline "a" is a ghost: still in used_bytes (not yet
        // reclaimed) but out of resident_bytes.
        assert_eq!(c.used_bytes(), 2 * charge);
        assert_eq!(c.resident_bytes(1_000), charge);
        assert_eq!(c.expire_sweep(1_000), 1);
        assert_eq!(c.used_bytes(), charge);
        assert_eq!(c.resident_bytes(1_000), charge);
    }

    #[test]
    fn expire_sweep_matches_full_scan_semantics() {
        // The indexed sweep must reclaim exactly the entries a full slab
        // scan would, across interleaved inserts/overwrites/removes.
        let mut c: Cache<u64, u64> = Cache::lru(1 << 20);
        let mut x = 42u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for step in 0..2_000u64 {
            let k = rng() % 64;
            match rng() % 4 {
                0 => {
                    c.insert_with_ttl(k, step, 32, step, 1 + rng() % 500);
                }
                1 => {
                    c.insert(k, step, 32, step);
                }
                2 => {
                    c.remove(&k);
                }
                _ => {
                    c.get(&k, step);
                }
            }
            if step % 97 == 0 {
                let expected: Vec<u64> = c
                    .keys()
                    .copied()
                    .filter(|k| !c.contains(k, step))
                    .collect();
                assert_eq!(c.expire_sweep(step), expected.len(), "step {step}");
                for k in expected {
                    assert!(c.peek(&k).is_none(), "step {step}: {k} survived sweep");
                }
            }
        }
        // Non-vacuous: the run actually expired and evicted things.
        assert!(c.stats().expired > 0);
    }

    #[test]
    fn works_with_every_policy_kind() {
        for kind in PolicyKind::ALL {
            let mut c: Cache<u64, u64> = Cache::new(10_000, kind);
            for i in 0..200u64 {
                c.insert(i, i, 100, T0);
                assert!(c.used_bytes() <= c.capacity_bytes(), "{kind:?}");
            }
            // Something must still be resident and retrievable.
            assert!(!c.is_empty(), "{kind:?}");
            let k = *c.keys().next().unwrap();
            assert_eq!(c.get(&k, T0), Some(&k), "{kind:?}");
        }
    }
}
