//! Miss-ratio-curve (MRC) estimation.
//!
//! The §4 theoretical model is driven by `MR(x)` — the miss ratio of a cache
//! of size `x`. This module provides three estimators:
//!
//! * [`zipf_hit_ratio`] — the idealized estimate: a cache holding the `c`
//!   hottest of `n` Zipf(α) keys hits with the summed popularity of those
//!   keys. Exact for LFU under the independent reference model; a good
//!   upper bound for LRU.
//! * [`che_lru_hit_ratio`] — Che's approximation for LRU: solve for the
//!   characteristic time `T` with `Σᵢ (1 − e^{−pᵢT}) = c`, then
//!   `hit = Σᵢ pᵢ (1 − e^{−pᵢT})`. Markedly more accurate than the
//!   top-c estimate at small cache sizes.
//! * [`StackDistance`] — Mattson's exact LRU MRC from a concrete trace, via
//!   a Fenwick tree over access timestamps (O(log n) per access). One pass
//!   yields the miss ratio at *every* cache size simultaneously.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// Normalized Zipf(α) popularity vector for ranks `1..=n` (index 0 = hottest).
pub fn zipf_popularities(n: usize, alpha: f64) -> Vec<f64> {
    assert!(n > 0, "zipf requires at least one key");
    let mut p: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-alpha)).collect();
    let sum: f64 = p.iter().sum();
    for v in &mut p {
        *v /= sum;
    }
    p
}

/// Idealized hit ratio of a cache holding the `cache_items` hottest of
/// `n` Zipf(α) keys.
pub fn zipf_hit_ratio(n: usize, alpha: f64, cache_items: usize) -> f64 {
    if cache_items == 0 {
        return 0.0;
    }
    if cache_items >= n {
        return 1.0;
    }
    zipf_popularities(n, alpha)[..cache_items].iter().sum()
}

/// Che's approximation of the LRU hit ratio for a popularity vector `p`
/// (need not be Zipfian) and a cache of `cache_items` entries.
pub fn che_lru_hit_ratio(popularities: &[f64], cache_items: usize) -> f64 {
    let n = popularities.len();
    if cache_items == 0 || n == 0 {
        return 0.0;
    }
    if cache_items >= n {
        return 1.0;
    }
    let c = cache_items as f64;
    // Occupancy Σ (1 - e^{-p_i T}) is increasing in T: bisect for T.
    let occupancy = |t: f64| -> f64 {
        popularities
            .iter()
            .map(|&p| 1.0 - (-p * t).exp())
            .sum::<f64>()
    };
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while occupancy(hi) < c {
        hi *= 2.0;
        if hi > 1e18 {
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if occupancy(mid) < c {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let t = 0.5 * (lo + hi);
    popularities
        .iter()
        .map(|&p| p * (1.0 - (-p * t).exp()))
        .sum()
}

/// Fixed-capacity Fenwick (binary indexed) tree over access timestamps.
/// Growth is handled by the owner ([`StackDistance`]) rebuilding a larger
/// tree from its live marks — O(n log n) but amortized over doublings.
#[derive(Debug, Clone, Default)]
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    /// Capacity for indices `1..=n`.
    fn with_capacity(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Largest valid index.
    fn capacity(&self) -> usize {
        self.tree.len().saturating_sub(1)
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        debug_assert!(i >= 1 && i <= self.capacity(), "fenwick index {i}");
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of marks in `[1, i]`.
    fn prefix(&self, mut i: usize) -> u64 {
        i = i.min(self.capacity());
        let mut s: i64 = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        debug_assert!(s >= 0);
        s as u64
    }
}

/// Mattson stack-distance processor: feed it a reference stream, get the
/// exact LRU miss-ratio curve.
#[derive(Debug, Clone, Default)]
pub struct StackDistance<K: Hash + Eq> {
    last_access: HashMap<K, usize>,
    fenwick: Fenwick,
    clock: usize,
    /// histogram[d] = number of accesses with stack distance d (1-based);
    /// grows on demand.
    histogram: Vec<u64>,
    cold_misses: u64,
    total: u64,
}

impl<K: Hash + Eq> StackDistance<K> {
    pub fn new() -> Self {
        StackDistance {
            last_access: HashMap::new(),
            fenwick: Fenwick::with_capacity(1024),
            clock: 0,
            histogram: Vec::new(),
            cold_misses: 0,
            total: 0,
        }
    }

    /// Double the Fenwick capacity, re-marking each key's latest access.
    fn grow(&mut self, need: usize) {
        let new_cap = need.next_power_of_two().max(2048);
        let mut fresh = Fenwick::with_capacity(new_cap);
        for &t in self.last_access.values() {
            fresh.add(t, 1);
        }
        self.fenwick = fresh;
    }

    /// Record one access; returns the stack distance (`None` on first touch).
    ///
    /// The distance counts the distinct keys accessed since the previous
    /// access to this key, including the key itself — so a distance-`d`
    /// access hits in any LRU cache holding ≥ `d` entries.
    pub fn access(&mut self, key: K) -> Option<u64> {
        self.clock += 1;
        self.total += 1;
        let t = self.clock;
        if t > self.fenwick.capacity() {
            self.grow(t * 2);
        }
        match self.last_access.insert(key, t) {
            None => {
                self.fenwick.add(t, 1);
                self.cold_misses += 1;
                None
            }
            Some(prev) => {
                // distinct keys touched in (prev, t-1], plus the key itself
                let between = self.fenwick.prefix(t - 1) - self.fenwick.prefix(prev);
                let distance = between + 1;
                self.fenwick.add(prev, -1);
                self.fenwick.add(t, 1);
                let d = distance as usize;
                if self.histogram.len() <= d {
                    self.histogram.resize(d + 1, 0);
                }
                self.histogram[d] += 1;
                Some(distance)
            }
        }
    }

    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    pub fn unique_keys(&self) -> u64 {
        self.cold_misses
    }

    /// Produce the miss-ratio curve over entry counts.
    pub fn curve(&self) -> MissRatioCurve {
        let mut points = Vec::with_capacity(self.histogram.len() + 1);
        // misses(c) = cold + accesses with distance > c
        let reuse_total: u64 = self.histogram.iter().sum();
        let mut within = 0u64; // accesses with distance <= c
        points.push((0u64, 1.0)); // size-0 cache misses everything
        for (d, &count) in self.histogram.iter().enumerate().skip(1) {
            within += count;
            let misses = self.cold_misses + (reuse_total - within);
            let ratio = if self.total == 0 {
                0.0
            } else {
                misses as f64 / self.total as f64
            };
            if count > 0 || d == self.histogram.len() - 1 {
                points.push((d as u64, ratio));
            }
        }
        if points.len() == 1 {
            // No reuses at all: every access is a cold miss at any size.
            points.push((1, 1.0));
        }
        MissRatioCurve { points }
    }
}

/// A piecewise-constant miss-ratio curve over cache sizes in *entries*.
/// Query with [`MissRatioCurve::miss_ratio`]; convert entries↔bytes at the
/// call site using the workload's mean entry size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MissRatioCurve {
    /// (cache_entries, miss_ratio), strictly increasing in entries.
    pub points: Vec<(u64, f64)>,
}

impl MissRatioCurve {
    /// Miss ratio for a cache of `entries` slots: the value at the largest
    /// point ≤ `entries` (curves are non-increasing step functions).
    pub fn miss_ratio(&self, entries: u64) -> f64 {
        let mut ratio = 1.0;
        for &(sz, mr) in &self.points {
            if sz <= entries {
                ratio = mr;
            } else {
                break;
            }
        }
        ratio
    }

    pub fn hit_ratio(&self, entries: u64) -> f64 {
        1.0 - self.miss_ratio(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_popularities_are_normalized_and_sorted() {
        let p = zipf_popularities(1000, 1.2);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(p.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn zipf_hit_ratio_monotone_in_cache_size() {
        let mut prev = 0.0;
        for c in [0, 1, 10, 100, 1_000, 10_000, 100_000] {
            let h = zipf_hit_ratio(100_000, 1.2, c);
            assert!(h >= prev);
            prev = h;
        }
        assert_eq!(zipf_hit_ratio(100, 1.2, 100), 1.0);
        assert_eq!(zipf_hit_ratio(100, 1.2, 0), 0.0);
    }

    #[test]
    fn zipf_skew_concentrates_mass() {
        // With α=1.2 over 100K keys the paper's working sets are tiny:
        // the top 1% of keys should cover well over half the accesses.
        let h = zipf_hit_ratio(100_000, 1.2, 1_000);
        assert!(h > 0.6, "top-1% coverage was {h}");
        // And low skew should cover much less.
        let h_low = zipf_hit_ratio(100_000, 0.6, 1_000);
        assert!(h_low < h - 0.2);
    }

    #[test]
    fn che_approximation_bounded_by_ideal() {
        let p = zipf_popularities(10_000, 1.0);
        for c in [10usize, 100, 1_000, 5_000] {
            let che = che_lru_hit_ratio(&p, c);
            let ideal = zipf_hit_ratio(10_000, 1.0, c);
            assert!(che <= ideal + 1e-6, "che {che} ideal {ideal} at c={c}");
            assert!(che > 0.0);
        }
        assert_eq!(che_lru_hit_ratio(&p, 10_000), 1.0);
        assert_eq!(che_lru_hit_ratio(&p, 0), 0.0);
    }

    #[test]
    fn che_matches_uniform_closed_form() {
        // Uniform popularities: LRU hit ratio ≈ c/n.
        let n = 1_000;
        let p = vec![1.0 / n as f64; n];
        for c in [100usize, 500, 900] {
            let che = che_lru_hit_ratio(&p, c);
            let expect = c as f64 / n as f64;
            assert!((che - expect).abs() < 0.05, "che={che} expect={expect}");
        }
    }

    #[test]
    fn stack_distance_of_simple_sequence() {
        let mut sd = StackDistance::new();
        assert_eq!(sd.access("a"), None);
        assert_eq!(sd.access("b"), None);
        assert_eq!(sd.access("a"), Some(2)); // b touched since
        assert_eq!(sd.access("a"), Some(1)); // immediate re-reference
        assert_eq!(sd.access("c"), None);
        assert_eq!(sd.access("b"), Some(3)); // a, c touched since
    }

    #[test]
    fn repeated_scans_have_distance_equal_to_working_set() {
        let mut sd = StackDistance::new();
        let n = 50u32;
        for _round in 0..4 {
            for k in 0..n {
                sd.access(k);
            }
        }
        let curve = sd.curve();
        // Cache of n entries captures all re-references; n-1 captures none
        // (cyclic scan is LRU's worst case).
        assert!((curve.miss_ratio(n as u64) - (n as f64 / (4 * n) as f64)).abs() < 1e-9);
        assert_eq!(curve.miss_ratio((n - 1) as u64), 1.0);
    }

    #[test]
    fn curve_is_non_increasing() {
        let mut sd = StackDistance::new();
        // pseudo-random-ish but deterministic mix
        for i in 0..5_000u64 {
            sd.access(crate::ring::splitmix64(i) % 300);
        }
        let curve = sd.curve();
        for w in curve.points.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 >= w[1].1 - 1e-12);
        }
        // Large cache miss ratio == cold-miss fraction.
        let cold = sd.unique_keys() as f64 / sd.total_accesses() as f64;
        assert!((curve.miss_ratio(1_000_000) - cold).abs() < 1e-9);
    }

    #[test]
    fn mrc_matches_direct_lru_simulation() {
        use crate::cache::Cache;
        // Compare Mattson's curve against actually running an LRU cache.
        let trace: Vec<u64> = (0..20_000u64)
            .map(|i| {
                let r = crate::ring::splitmix64(i);
                // 90% of traffic to 20 hot keys, rest to 500 cold keys
                if r % 10 < 9 {
                    r % 20
                } else {
                    20 + (r / 16) % 500
                }
            })
            .collect();
        let mut sd = StackDistance::new();
        for &k in &trace {
            sd.access(k);
        }
        let curve = sd.curve();
        for cache_entries in [10u64, 50, 200] {
            let mut cache: Cache<u64, ()> = Cache::lru(cache_entries * 164);
            let mut misses = 0u64;
            for &k in &trace {
                if cache.get(&k, 0).is_none() {
                    misses += 1;
                    cache.insert(k, (), 100, 0); // charge 164 per entry
                }
            }
            let simulated = misses as f64 / trace.len() as f64;
            let analytic = curve.miss_ratio(cache_entries);
            assert!(
                (simulated - analytic).abs() < 0.01,
                "entries={cache_entries} simulated={simulated} mattson={analytic}"
            );
        }
    }

    #[test]
    fn empty_curve_misses_everything() {
        let sd: StackDistance<u32> = StackDistance::new();
        let curve = sd.curve();
        assert_eq!(curve.miss_ratio(100), 1.0);
        assert_eq!(curve.hit_ratio(100), 0.0);
    }
}
