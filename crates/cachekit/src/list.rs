//! An intrusive doubly-linked list over slot indices.
//!
//! Eviction policies (LRU, FIFO, SLRU) need O(1) "move to front", "remove
//! arbitrary", and "pop back" over the cache's entry slots. Rather than
//! allocating per-node, the list stores `prev`/`next` arrays indexed by slot
//! id; slot ids are handed out by the cache's slab and reused after removal.

use serde::{Deserialize, Serialize};

const NIL: usize = usize::MAX;

/// Doubly-linked list whose nodes are external slot ids.
///
/// A slot may be in at most one list at a time; the caller is responsible for
/// not inserting a slot twice (debug assertions catch it).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SlotList {
    prev: Vec<usize>,
    next: Vec<usize>,
    /// Membership flag per slot, so `contains` and debug checks are O(1).
    member: Vec<bool>,
    head: Option<usize>,
    tail: Option<usize>,
    len: usize,
}

impl SlotList {
    pub fn new() -> Self {
        SlotList {
            prev: Vec::new(),
            next: Vec::new(),
            member: Vec::new(),
            head: None,
            tail: None,
            len: 0,
        }
    }

    fn ensure(&mut self, slot: usize) {
        if self.prev.len() <= slot {
            self.prev.resize(slot + 1, NIL);
            self.next.resize(slot + 1, NIL);
            self.member.resize(slot + 1, false);
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn contains(&self, slot: usize) -> bool {
        self.member.get(slot).copied().unwrap_or(false)
    }

    /// Most-recently-touched end.
    pub fn front(&self) -> Option<usize> {
        self.head
    }

    /// Least-recently-touched end (the eviction end).
    pub fn back(&self) -> Option<usize> {
        self.tail
    }

    pub fn push_front(&mut self, slot: usize) {
        self.ensure(slot);
        debug_assert!(!self.member[slot], "slot {slot} already in list");
        self.member[slot] = true;
        self.prev[slot] = NIL;
        self.next[slot] = self.head.unwrap_or(NIL);
        if let Some(h) = self.head {
            self.prev[h] = slot;
        }
        self.head = Some(slot);
        if self.tail.is_none() {
            self.tail = Some(slot);
        }
        self.len += 1;
    }

    pub fn push_back(&mut self, slot: usize) {
        self.ensure(slot);
        debug_assert!(!self.member[slot], "slot {slot} already in list");
        self.member[slot] = true;
        self.next[slot] = NIL;
        self.prev[slot] = self.tail.unwrap_or(NIL);
        if let Some(t) = self.tail {
            self.next[t] = slot;
        }
        self.tail = Some(slot);
        if self.head.is_none() {
            self.head = Some(slot);
        }
        self.len += 1;
    }

    /// Remove `slot` from the list. No-op if it is not a member.
    pub fn remove(&mut self, slot: usize) {
        if !self.contains(slot) {
            return;
        }
        let p = self.prev[slot];
        let n = self.next[slot];
        if p == NIL {
            self.head = (n != NIL).then_some(n);
        } else {
            self.next[p] = n;
        }
        if n == NIL {
            self.tail = (p != NIL).then_some(p);
        } else {
            self.prev[n] = p;
        }
        self.prev[slot] = NIL;
        self.next[slot] = NIL;
        self.member[slot] = false;
        self.len -= 1;
    }

    /// Remove and return the back (LRU end).
    pub fn pop_back(&mut self) -> Option<usize> {
        let t = self.tail?;
        self.remove(t);
        Some(t)
    }

    /// Move an existing member to the front; inserts if absent.
    pub fn move_to_front(&mut self, slot: usize) {
        self.remove(slot);
        self.push_front(slot);
    }

    /// Iterate front→back (for tests and invariant checks).
    pub fn iter(&self) -> SlotListIter<'_> {
        SlotListIter {
            list: self,
            cur: self.head,
        }
    }
}

pub struct SlotListIter<'a> {
    list: &'a SlotList,
    cur: Option<usize>,
}

impl Iterator for SlotListIter<'_> {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        let c = self.cur?;
        let n = self.list.next[c];
        self.cur = (n != NIL).then_some(n);
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(l: &SlotList) -> Vec<usize> {
        l.iter().collect()
    }

    #[test]
    fn push_and_pop_ordering() {
        let mut l = SlotList::new();
        l.push_front(1);
        l.push_front(2);
        l.push_front(3);
        assert_eq!(collect(&l), vec![3, 2, 1]);
        assert_eq!(l.pop_back(), Some(1));
        assert_eq!(l.pop_back(), Some(2));
        assert_eq!(l.pop_back(), Some(3));
        assert_eq!(l.pop_back(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn push_back_appends() {
        let mut l = SlotList::new();
        l.push_back(5);
        l.push_back(6);
        assert_eq!(collect(&l), vec![5, 6]);
        assert_eq!(l.front(), Some(5));
        assert_eq!(l.back(), Some(6));
    }

    #[test]
    fn remove_middle_relinks() {
        let mut l = SlotList::new();
        for s in [0, 1, 2, 3] {
            l.push_back(s);
        }
        l.remove(2);
        assert_eq!(collect(&l), vec![0, 1, 3]);
        assert!(!l.contains(2));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn remove_head_and_tail() {
        let mut l = SlotList::new();
        for s in [0, 1, 2] {
            l.push_back(s);
        }
        l.remove(0);
        assert_eq!(l.front(), Some(1));
        l.remove(2);
        assert_eq!(l.back(), Some(1));
        assert_eq!(collect(&l), vec![1]);
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut l = SlotList::new();
        l.push_back(1);
        l.remove(999);
        l.remove(0);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn move_to_front_reorders() {
        let mut l = SlotList::new();
        for s in [0, 1, 2] {
            l.push_back(s);
        }
        l.move_to_front(2);
        assert_eq!(collect(&l), vec![2, 0, 1]);
        l.move_to_front(1);
        assert_eq!(collect(&l), vec![1, 2, 0]);
        // moving the current front keeps order
        l.move_to_front(1);
        assert_eq!(collect(&l), vec![1, 2, 0]);
    }

    #[test]
    fn slots_can_be_reused_after_removal() {
        let mut l = SlotList::new();
        l.push_front(7);
        l.remove(7);
        l.push_back(7);
        assert_eq!(collect(&l), vec![7]);
    }

    #[test]
    fn singleton_list_invariants() {
        let mut l = SlotList::new();
        l.push_front(4);
        assert_eq!(l.front(), l.back());
        l.move_to_front(4);
        assert_eq!(l.len(), 1);
        assert_eq!(l.pop_back(), Some(4));
        assert_eq!(l.front(), None);
        assert_eq!(l.back(), None);
    }
}
