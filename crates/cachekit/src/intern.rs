//! Key interning: resolve a byte key to a small copyable id once, then pass
//! the id through the serve path instead of re-allocating and re-hashing
//! the bytes at every layer.
//!
//! The simulated services address values by `table/key` byte strings. The
//! pre-interning hot path built that `Vec<u8>` per request and hashed it
//! separately in the sharder ring, the cache index, the admission sketch,
//! and the single-flight table. An [`InternedKey`] carries the two hashes
//! the serving layers need — the routing hash ([`stable_hash`] of the
//! bytes, which consistent-hash rings and MRC profilers consume) and the
//! admission-sketch hash (byte-identical to what the cache computed over
//! the raw `Vec<u8>` key, so TinyLFU decisions are unchanged) — plus a
//! dense u32 id that makes cache-index hashing a single word multiply.
//!
//! Interning is a pure wall-clock optimization: every hash an `InternedKey`
//! exposes equals the hash the same byte key produced before, so routing,
//! admission, eviction, and every simulated outcome stay byte-identical.

use crate::cache::legacy_sketch_hash;
use crate::fxhash::FxHashMap;
use crate::ring::stable_hash;
use crate::CacheKeyHash;
use std::hash::{Hash, Hasher};

/// A small, copyable stand-in for an interned byte key.
///
/// Equality and hashing go through the dense id (two interned keys are equal
/// iff their bytes were equal, because the interner is bijective), so using
/// `InternedKey` as a `HashMap`/[`crate::Cache`] key costs one word hash
/// instead of a byte-string walk.
#[derive(Debug, Clone, Copy)]
pub struct InternedKey {
    id: u32,
    route_hash: u64,
    sketch_hash: u64,
}

impl InternedKey {
    /// Dense id in `[0, interner.len())`.
    pub fn id(self) -> u32 {
        self.id
    }

    /// [`stable_hash`] of the original bytes — feed to
    /// [`crate::HashRing::shard_for_hashed`] and MRC profilers.
    pub fn route_hash(self) -> u64 {
        self.route_hash
    }
}

impl PartialEq for InternedKey {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for InternedKey {}

impl Hash for InternedKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u32(self.id);
    }
}

impl CacheKeyHash for InternedKey {
    fn sketch_hash(&self) -> u64 {
        self.sketch_hash
    }
}

/// Bijective bytes ↔ id table. Ids are handed out densely in first-intern
/// order, so a given request stream always produces the same ids.
#[derive(Debug, Default)]
pub struct KeyInterner {
    ids: FxHashMap<Box<[u8]>, u32>,
    keys: Vec<InternedKey>,
    bytes: Vec<Box<[u8]>>,
}

impl KeyInterner {
    pub fn new() -> Self {
        KeyInterner::default()
    }

    /// Number of distinct keys interned so far.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The id for `bytes`, interning on first sight. The returned key's
    /// hashes equal `stable_hash(bytes)` and the cache's legacy sketch hash
    /// of the same bytes, so downstream behaviour is unchanged.
    pub fn intern(&mut self, bytes: &[u8]) -> InternedKey {
        if let Some(&id) = self.ids.get(bytes) {
            return self.keys[id as usize];
        }
        let id = u32::try_from(self.keys.len()).expect("interner overflow");
        let key = InternedKey {
            id,
            route_hash: stable_hash(bytes),
            sketch_hash: legacy_sketch_hash(bytes),
        };
        let owned: Box<[u8]> = bytes.into();
        self.ids.insert(owned.clone(), id);
        self.keys.push(key);
        self.bytes.push(owned);
        key
    }

    /// The id for `bytes` if it was interned before (no insertion).
    pub fn get(&self, bytes: &[u8]) -> Option<InternedKey> {
        self.ids.get(bytes).map(|&id| self.keys[id as usize])
    }

    /// The original bytes of an interned key.
    pub fn resolve(&self, key: InternedKey) -> &[u8] {
        &self.bytes[key.id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_bijective() {
        let mut i = KeyInterner::new();
        let a = i.intern(b"table/1");
        let b = i.intern(b"table/2");
        let a2 = i.intern(b"table/1");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), b"table/1");
        assert_eq!(i.resolve(b), b"table/2");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn hashes_match_the_byte_key_paths() {
        let mut i = KeyInterner::new();
        for bytes in [b"kv/abcdefg".as_slice(), b"".as_slice(), b"x".as_slice()] {
            let k = i.intern(bytes);
            assert_eq!(k.route_hash(), stable_hash(bytes));
            assert_eq!(k.sketch_hash(), bytes.sketch_hash());
            assert_eq!(k.sketch_hash(), bytes.to_vec().sketch_hash());
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = KeyInterner::new();
        assert_eq!(i.get(b"missing"), None);
        let k = i.intern(b"present");
        assert_eq!(i.get(b"present"), Some(k));
        assert_eq!(i.len(), 1);
    }
}
