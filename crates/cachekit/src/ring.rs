//! Consistent hashing.
//!
//! Linked caches are sharded across application servers (§2.4), and the §6
//! discussion of auto-sharders (Slicer) assumes key-range ownership that
//! moves minimally when servers come and go. A classic virtual-node hash
//! ring provides both: `shard_for(key)` routes requests, and
//! adding/removing a node relocates only ~1/N of the key space (asserted by
//! a property test).
//!
//! Hashing uses a self-contained 64-bit mix (SplitMix64 over FNV-1a) so
//! placement is stable across platforms and releases — `std`'s `DefaultHasher`
//! makes no such promise.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Stable 64-bit hash of a byte string: FNV-1a folded through SplitMix64.
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    splitmix64(h)
}

/// SplitMix64 finalizer — good avalanche behaviour for ring positions.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A consistent-hash ring mapping keys to shard ids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HashRing {
    /// (position, shard) sorted by position.
    points: Vec<(u64, u32)>,
    vnodes: u32,
    /// Distinct shard ids currently on the ring. Maintained incrementally:
    /// `shard_count` sits on the per-request placement path of sharded
    /// deployments, so it must not rescan the vnode vector.
    shards: BTreeSet<u32>,
}

impl HashRing {
    /// Create a ring with `vnodes` virtual nodes per shard. 128 vnodes keeps
    /// the max/min load ratio under ~1.25 for tens of shards.
    pub fn new(vnodes: u32) -> Self {
        HashRing {
            points: Vec::new(),
            vnodes: vnodes.max(1),
            shards: BTreeSet::new(),
        }
    }

    /// A ring pre-populated with shards `0..n`.
    pub fn with_shards(n: u32, vnodes: u32) -> Self {
        let mut ring = HashRing::new(vnodes);
        for s in 0..n {
            ring.add_shard(s);
        }
        ring
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of distinct shards on the ring.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn vnode_position(shard: u32, replica: u32) -> u64 {
        splitmix64(((shard as u64) << 32) | replica as u64)
    }

    /// Add a shard's virtual nodes to the ring. Idempotent: re-adding a
    /// shard that is already present (the failover path does this when a
    /// crashed shard recovers) is a no-op — a second copy of its vnodes
    /// would roughly double its share of the key space.
    pub fn add_shard(&mut self, shard: u32) {
        if !self.shards.insert(shard) {
            return;
        }
        // Single backward merge instead of vnodes × Vec::insert — the old
        // per-replica insert was O(points) per vnode, which made building or
        // rescaling a large ring quadratic (profiling flagged it at 10k+
        // vnodes). Placement must stay byte-identical, including how ties
        // resolve: the old loop inserted each new point *before* any
        // existing point of equal position, and a later replica of this same
        // call before an earlier one. Sorting new points by
        // (position, descending replica) and letting a new point win ties
        // against old ones reproduces exactly that order.
        let mut fresh: Vec<(u64, u32)> = (0..self.vnodes)
            .map(|r| (Self::vnode_position(shard, r), r))
            .collect();
        fresh.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let old_len = self.points.len();
        self.points.resize(old_len + fresh.len(), (0, 0));
        let mut write = self.points.len();
        let mut old = old_len;
        let mut new = fresh.len();
        while new > 0 {
            write -= 1;
            if old > 0 && self.points[old - 1].0 >= fresh[new - 1].0 {
                self.points[write] = self.points[old - 1];
                old -= 1;
            } else {
                new -= 1;
                self.points[write] = (fresh[new].0, shard);
            }
        }
    }

    /// Remove all of a shard's virtual nodes. Idempotent for the same
    /// reason `add_shard` is: the elastic drain path may ask to remove a
    /// shard that a concurrent fault already took off the ring, and a
    /// second removal must not disturb the remaining placement.
    pub fn remove_shard(&mut self, shard: u32) {
        if !self.shards.remove(&shard) {
            return;
        }
        self.points.retain(|&(_, s)| s != shard);
    }

    /// Whether `shard` currently has virtual nodes on the ring.
    pub fn contains_shard(&self, shard: u32) -> bool {
        self.shards.contains(&shard)
    }

    /// Shard ids currently on the ring, in ascending order.
    pub fn shard_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.shards.iter().copied()
    }

    /// The shard owning `key`, or `None` if the ring is empty.
    pub fn shard_for(&self, key: &[u8]) -> Option<u32> {
        self.shard_for_hashed(stable_hash(key))
    }

    /// [`HashRing::shard_for`] for callers that already hold the key's
    /// [`stable_hash`] (interned keys carry it), skipping the byte walk.
    pub fn shard_for_hashed(&self, hash: u64) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let idx = self.points.partition_point(|&(p, _)| p < hash);
        let idx = if idx == self.points.len() { 0 } else { idx };
        Some(self.points[idx].1)
    }

    /// The `n` distinct shards that would own `key` in preference order
    /// (for replicated placements). Fewer are returned if the ring has
    /// fewer shards.
    pub fn shards_for(&self, key: &[u8], n: usize) -> Vec<u32> {
        let mut out = Vec::new();
        if self.points.is_empty() || n == 0 {
            return out;
        }
        let h = stable_hash(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if !out.contains(&shard) {
                out.push(shard);
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("key-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_ring_routes_nothing() {
        let ring = HashRing::new(16);
        assert_eq!(ring.shard_for(b"k"), None);
        assert!(ring.shards_for(b"k", 3).is_empty());
    }

    #[test]
    fn routing_is_deterministic() {
        let ring = HashRing::with_shards(8, 64);
        for k in keys(100) {
            assert_eq!(ring.shard_for(&k), ring.shard_for(&k));
        }
    }

    #[test]
    fn all_shards_receive_load() {
        let ring = HashRing::with_shards(8, 128);
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for k in keys(10_000) {
            *counts.entry(ring.shard_for(&k).unwrap()).or_default() += 1;
        }
        assert_eq!(counts.len(), 8);
        let max = *counts.values().max().unwrap() as f64;
        let min = *counts.values().min().unwrap() as f64;
        assert!(max / min < 2.0, "imbalance too high: max={max} min={min}");
    }

    #[test]
    fn removing_a_shard_only_moves_its_keys() {
        let full = HashRing::with_shards(8, 128);
        let mut reduced = full.clone();
        reduced.remove_shard(3);
        let mut moved = 0;
        let mut total = 0;
        for k in keys(10_000) {
            let before = full.shard_for(&k).unwrap();
            let after = reduced.shard_for(&k).unwrap();
            total += 1;
            if before != after {
                moved += 1;
                assert_eq!(before, 3, "only keys owned by removed shard may move");
            }
            assert_ne!(after, 3);
        }
        // ~1/8 of the keyspace belonged to shard 3.
        let frac = moved as f64 / total as f64;
        assert!((0.05..0.25).contains(&frac), "moved fraction {frac}");
    }

    #[test]
    fn shards_for_returns_distinct_preference_list() {
        let ring = HashRing::with_shards(5, 64);
        let prefs = ring.shards_for(b"some-key", 3);
        assert_eq!(prefs.len(), 3);
        let mut dedup = prefs.clone();
        dedup.dedup();
        assert_eq!(prefs, dedup);
        assert_eq!(prefs[0], ring.shard_for(b"some-key").unwrap());
    }

    #[test]
    fn shards_for_caps_at_shard_count() {
        let ring = HashRing::with_shards(2, 64);
        assert_eq!(ring.shards_for(b"k", 10).len(), 2);
    }

    #[test]
    fn stable_hash_is_stable() {
        // Pinned values guard against accidental algorithm changes, which
        // would silently reshuffle every deployment's shard placement.
        assert_eq!(stable_hash(b""), splitmix64(0xcbf29ce484222325));
        assert_eq!(stable_hash(b"abc"), stable_hash(b"abc"));
        assert_ne!(stable_hash(b"abc"), stable_hash(b"abd"));
    }

    #[test]
    fn shard_count_tracks_membership() {
        let mut ring = HashRing::with_shards(4, 16);
        assert_eq!(ring.shard_count(), 4);
        ring.remove_shard(2);
        assert_eq!(ring.shard_count(), 3);
        ring.add_shard(9);
        assert_eq!(ring.shard_count(), 4);
    }

    #[test]
    fn re_adding_a_present_shard_is_a_noop() {
        // Regression: the failover path re-adds a recovered shard without
        // checking membership. A duplicate insert used to double the
        // shard's vnodes and roughly double its share of keys.
        let baseline = HashRing::with_shards(8, 128);
        let mut ring = baseline.clone();
        ring.add_shard(3);
        ring.add_shard(3);
        assert_eq!(ring.points.len(), baseline.points.len());
        assert_eq!(ring.shard_count(), 8);
        for k in keys(5_000) {
            assert_eq!(ring.shard_for(&k), baseline.shard_for(&k));
        }
    }

    #[test]
    fn remove_then_readd_restores_placement_exactly() {
        let baseline = HashRing::with_shards(8, 128);
        let mut ring = baseline.clone();
        ring.remove_shard(5);
        ring.add_shard(5);
        assert_eq!(ring.points, baseline.points);
        assert_eq!(ring.shard_count(), baseline.shard_count());
        for k in keys(5_000) {
            assert_eq!(ring.shard_for(&k), baseline.shard_for(&k));
        }
    }

    #[test]
    fn removing_an_absent_shard_is_a_noop() {
        // Symmetric regression to `re_adding_a_present_shard_is_a_noop`:
        // the elastic drain path can race a fault that already removed the
        // shard, and a double remove (or a remove of a shard that never
        // existed) must leave placement byte-identical.
        let baseline = HashRing::with_shards(8, 128);
        let mut ring = baseline.clone();
        ring.remove_shard(99); // never on the ring
        assert_eq!(ring.points, baseline.points);
        assert_eq!(ring.shard_count(), 8);
        ring.remove_shard(5);
        ring.remove_shard(5); // double remove
        ring.add_shard(5);
        assert_eq!(ring.points, baseline.points);
        assert_eq!(ring.shard_count(), baseline.shard_count());
        for k in keys(5_000) {
            assert_eq!(ring.shard_for(&k), baseline.shard_for(&k));
        }
    }

    #[test]
    fn add_shard_matches_per_replica_insert_oracle() {
        // Regression for the O(points × vnodes) add path: the merged insert
        // must produce byte-identical point order to the old per-replica
        // `Vec::insert` loop — including tie order (new point before an
        // equal-positioned old one; later replica before an earlier one).
        let naive_add = |points: &mut Vec<(u64, u32)>, shard: u32, vnodes: u32| {
            for r in 0..vnodes {
                let pos = HashRing::vnode_position(shard, r);
                let idx = points.partition_point(|&(p, _)| p < pos);
                points.insert(idx, (pos, shard));
            }
        };
        let mut ring = HashRing::new(64);
        let mut oracle: Vec<(u64, u32)> = Vec::new();
        for shard in 0..40 {
            ring.add_shard(shard);
            naive_add(&mut oracle, shard, 64);
            assert_eq!(ring.points, oracle, "diverged after shard {shard}");
        }
    }

    #[test]
    fn add_shard_scales_to_deep_rings() {
        // 100 shards × 128 vnodes = 12.8k points. The old quadratic path
        // made this build take O(points²) work; the merge path must keep the
        // exact same placement while staying fast enough to run in tests.
        let ring = HashRing::with_shards(100, 128);
        assert_eq!(ring.points.len(), 12_800);
        assert!(ring.points.windows(2).all(|w| w[0].0 <= w[1].0), "sorted");
        let mut rebuilt = HashRing::new(128);
        // Adding in a different order lands the same sorted point set.
        for shard in (0..100).rev() {
            rebuilt.add_shard(shard);
        }
        assert_eq!(ring.points, rebuilt.points);
        for k in keys(1_000) {
            assert_eq!(ring.shard_for(&k), rebuilt.shard_for(&k));
            assert_eq!(ring.shard_for(&k), ring.shard_for_hashed(stable_hash(&k)));
        }
    }

    #[test]
    fn membership_accessors_track_add_remove() {
        let mut ring = HashRing::with_shards(3, 16);
        assert!(ring.contains_shard(1));
        assert!(!ring.contains_shard(7));
        ring.remove_shard(1);
        assert!(!ring.contains_shard(1));
        assert_eq!(ring.shard_ids().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn shard_count_matches_sort_dedup_oracle() {
        // The incremental count must agree with the old implementation
        // (sort + dedup over the vnode vector) under an arbitrary add /
        // remove sequence, including duplicate adds and bogus removes.
        let oracle = |ring: &HashRing| {
            let mut ids: Vec<u32> = ring.points.iter().map(|&(_, s)| s).collect();
            ids.sort_unstable();
            ids.dedup();
            ids.len()
        };
        let mut ring = HashRing::new(16);
        let mut z = 0xfeed_beefu64;
        for _ in 0..500 {
            z = splitmix64(z);
            let shard = (z >> 8) as u32 % 24;
            if z.is_multiple_of(3) {
                ring.remove_shard(shard);
            } else {
                ring.add_shard(shard);
            }
            assert_eq!(ring.shard_count(), oracle(&ring));
        }
    }
}
