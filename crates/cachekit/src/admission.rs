//! TinyLFU admission control.
//!
//! Eviction decides who *leaves*; admission decides who may *enter*. Under
//! scan-heavy or long-tailed traffic (the Meta trace's one-hit wonders),
//! plain LRU lets cold keys wash hot ones out. TinyLFU (Einziger et al.)
//! keeps an approximate frequency history — a count-min sketch of 4-bit
//! counters with periodic halving, fronted by a doorkeeper Bloom filter —
//! and admits a candidate only if it is historically more popular than the
//! eviction victim it would displace.
//!
//! Everything here is hash-based and O(1); the sketch uses ~8 bits per
//! expected cache entry, negligible next to the entries themselves.

use cachekit_hash::spread;
use serde::{Deserialize, Serialize};

mod cachekit_hash {
    /// Re-derive independent hash functions from one 64-bit key hash.
    pub fn spread(hash: u64, i: u64) -> u64 {
        crate::ring::splitmix64(hash ^ (i.wrapping_mul(0x9E3779B97F4A7C15)))
    }
}

/// Count-min sketch with 4-bit counters packed 16 per `u64`, 4 hash rows in
/// one flat table, and halving-based aging every `sample_size` increments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrequencySketch {
    table: Vec<u64>,
    /// Mask for slot selection (table length is a power of two).
    mask: u64,
    additions: u64,
    sample_size: u64,
}

const ROWS: u64 = 4;
const COUNTER_MAX: u64 = 15;

impl FrequencySketch {
    /// Size the sketch for roughly `capacity` distinct hot items.
    pub fn new(capacity: usize) -> Self {
        let slots = (capacity.max(16)).next_power_of_two();
        FrequencySketch {
            table: vec![0; slots],
            mask: (slots - 1) as u64,
            additions: 0,
            sample_size: (slots as u64) * 10,
        }
    }

    fn slot_of(&self, hash: u64, row: u64) -> (usize, u32) {
        let h = spread(hash, row);
        let index = (h & self.mask) as usize;
        // 16 4-bit counters per word; pick one from the upper hash bits.
        let counter = ((h >> 32) & 0xF) as u32;
        (index, counter * 4)
    }

    fn counter_at(&self, index: usize, shift: u32) -> u64 {
        (self.table[index] >> shift) & COUNTER_MAX
    }

    /// Record one occurrence of `hash`.
    pub fn increment(&mut self, hash: u64) {
        let mut incremented = false;
        for row in 0..ROWS {
            let (index, shift) = self.slot_of(hash, row);
            let current = self.counter_at(index, shift);
            if current < COUNTER_MAX {
                self.table[index] += 1u64 << shift;
                incremented = true;
            }
        }
        if incremented {
            self.additions += 1;
            if self.additions >= self.sample_size {
                self.age();
            }
        }
    }

    /// Estimated frequency of `hash` (min over rows; ≤ 15).
    pub fn estimate(&self, hash: u64) -> u64 {
        (0..ROWS)
            .map(|row| {
                let (index, shift) = self.slot_of(hash, row);
                self.counter_at(index, shift)
            })
            .min()
            .unwrap_or(0)
    }

    /// Halve every counter — the aging step that keeps the sketch tracking
    /// *recent* popularity rather than all-time counts.
    fn age(&mut self) {
        for word in &mut self.table {
            // Halve each 4-bit lane: shift right then clear carried-in bits.
            *word = (*word >> 1) & 0x7777_7777_7777_7777;
        }
        self.additions /= 2;
    }

    pub fn additions(&self) -> u64 {
        self.additions
    }
}

/// A small Bloom filter in front of the sketch: the first occurrence of a
/// key only sets doorkeeper bits, so one-hit wonders never pollute the
/// sketch counters. Reset on each aging cycle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Doorkeeper {
    bits: Vec<u64>,
    mask: u64,
    set_count: u64,
    reset_at: u64,
}

impl Doorkeeper {
    pub fn new(capacity: usize) -> Self {
        let words = (capacity.max(64) / 8).next_power_of_two();
        Doorkeeper {
            bits: vec![0; words],
            mask: (words as u64 * 64) - 1,
            set_count: 0,
            reset_at: words as u64 * 16, // ~25% fill before reset
        }
    }

    /// Insert; returns true if the key was (probably) already present.
    pub fn insert(&mut self, hash: u64) -> bool {
        let mut present = true;
        for i in 0..2u64 {
            let bit = spread(hash, 100 + i) & self.mask;
            let (word, offset) = ((bit / 64) as usize, bit % 64);
            if self.bits[word] >> offset & 1 == 0 {
                present = false;
                self.bits[word] |= 1 << offset;
                self.set_count += 1;
            }
        }
        if self.set_count >= self.reset_at {
            self.bits.iter_mut().for_each(|w| *w = 0);
            self.set_count = 0;
        }
        present
    }
}

/// The TinyLFU admission policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TinyLfu {
    sketch: FrequencySketch,
    doorkeeper: Doorkeeper,
}

impl TinyLfu {
    pub fn new(expected_entries: usize) -> Self {
        TinyLfu {
            sketch: FrequencySketch::new(expected_entries),
            doorkeeper: Doorkeeper::new(expected_entries),
        }
    }

    /// Record one access to `hash` (call on every lookup and insert).
    pub fn record(&mut self, hash: u64) {
        if self.doorkeeper.insert(hash) {
            self.sketch.increment(hash);
        }
    }

    /// Frequency estimate including the doorkeeper's implicit +1.
    pub fn estimate(&self, hash: u64) -> u64 {
        self.sketch.estimate(hash)
    }

    /// Should `candidate` displace `victim`? Admit ties in favor of the
    /// candidate only when strictly more popular — conservative, matching
    /// the original TinyLFU design (protects the resident working set).
    pub fn admit(&self, candidate: u64, victim: u64) -> bool {
        self.estimate(candidate) > self.estimate(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::stable_hash;

    fn h(s: &str) -> u64 {
        stable_hash(s.as_bytes())
    }

    #[test]
    fn sketch_counts_frequencies_approximately() {
        let mut sk = FrequencySketch::new(1024);
        for _ in 0..10 {
            sk.increment(h("hot"));
        }
        sk.increment(h("cold"));
        assert!(sk.estimate(h("hot")) >= 8, "hot underestimated");
        assert!(sk.estimate(h("cold")) <= 3, "cold overestimated");
        assert_eq!(sk.estimate(h("never")), 0);
    }

    #[test]
    fn counters_saturate_at_fifteen() {
        let mut sk = FrequencySketch::new(64);
        for _ in 0..100 {
            sk.increment(h("k"));
        }
        assert!(sk.estimate(h("k")) <= 15);
    }

    #[test]
    fn aging_halves_counts() {
        let mut sk = FrequencySketch::new(16);
        for _ in 0..12 {
            sk.increment(h("a"));
        }
        let before = sk.estimate(h("a"));
        sk.age();
        let after = sk.estimate(h("a"));
        assert_eq!(after, before / 2);
    }

    #[test]
    fn doorkeeper_absorbs_first_touch() {
        let mut tl = TinyLfu::new(256);
        tl.record(h("one-hit"));
        // First touch lives only in the doorkeeper; sketch stays clean.
        assert_eq!(tl.estimate(h("one-hit")), 0);
        tl.record(h("one-hit"));
        assert!(tl.estimate(h("one-hit")) >= 1, "second touch reaches the sketch");
    }

    #[test]
    fn admit_prefers_frequent_candidates() {
        let mut tl = TinyLfu::new(1024);
        for _ in 0..8 {
            tl.record(h("popular"));
        }
        tl.record(h("rare"));
        assert!(tl.admit(h("popular"), h("rare")));
        assert!(!tl.admit(h("rare"), h("popular")));
        // Ties (both unknown) reject the candidate: protect residents.
        assert!(!tl.admit(h("x"), h("y")));
    }

    #[test]
    fn sketch_distinguishes_many_keys() {
        let mut sk = FrequencySketch::new(4096);
        for i in 0..200u32 {
            let key = format!("hot{i}");
            for _ in 0..9 {
                sk.increment(h(&key));
            }
        }
        for i in 0..2000u32 {
            sk.increment(h(&format!("cold{i}")));
        }
        let mut hot_wins = 0;
        for i in 0..200u32 {
            if sk.estimate(h(&format!("hot{i}"))) > sk.estimate(h(&format!("cold{}", i * 7))) {
                hot_wins += 1;
            }
        }
        assert!(hot_wins > 180, "sketch collisions too damaging: {hot_wins}/200");
    }
}
